"""Chebyshev deviation bounds for the unbiased estimators.

The paper (§4.2, "Summary of the expected L2 losses") notes that for the
unbiased estimators (OneR, MultiR-SS, MultiR-DS) the expected L2 loss
equals the variance, so Chebyshev's inequality

    P(|f - C2| >= k * sqrt(Var)) <= 1 / k²

yields distribution-free confidence intervals. These helpers turn the
closed-form variances of :mod:`repro.analysis.loss` into usable bounds.
"""

from __future__ import annotations

import math

__all__ = ["tail_probability", "deviation_for_confidence", "confidence_interval"]


def tail_probability(variance: float, deviation: float) -> float:
    """Chebyshev bound on ``P(|f - C2| >= deviation)`` (capped at 1)."""
    if variance < 0:
        raise ValueError(f"variance must be >= 0, got {variance}")
    if deviation <= 0:
        raise ValueError(f"deviation must be positive, got {deviation}")
    if variance == 0:
        return 0.0
    return min(1.0, variance / deviation**2)


def deviation_for_confidence(variance: float, confidence: float) -> float:
    """Half-width ``k·σ`` with ``1/k² = 1 - confidence``."""
    if variance < 0:
        raise ValueError(f"variance must be >= 0, got {variance}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    k = 1.0 / math.sqrt(1.0 - confidence)
    return k * math.sqrt(variance)


def confidence_interval(
    estimate: float, variance: float, confidence: float = 0.95
) -> tuple[float, float]:
    """Distribution-free interval containing C2 with ≥ ``confidence`` prob."""
    half = deviation_for_confidence(variance, confidence)
    return estimate - half, estimate + half

"""Confidence intervals for estimator outputs (evaluation utility).

For the unbiased estimators the expected L2 loss equals the variance, so
Chebyshev's inequality turns the closed forms of
:mod:`repro.analysis.loss` into distribution-free intervals (paper §4.2's
"Summary" discussion). Computing those variances needs the query degrees
and pool size, which are private — so this module is an *evaluation*
utility (it reads the true graph), used to check coverage and to size
experiments, not something a real curator could run verbatim. A deployed
system would substitute the noisy degrees from MultiR-DS's first round.
"""

from __future__ import annotations

from repro.analysis.chebyshev import confidence_interval
from repro.analysis.loss import (
    central_dp_variance,
    double_source_variance,
    oner_variance,
    single_source_variance,
)
from repro.errors import ReproError
from repro.estimators.base import EstimateResult
from repro.graph.bipartite import BipartiteGraph

__all__ = ["predicted_variance", "interval_for_result"]


def predicted_variance(result: EstimateResult, graph: BipartiteGraph) -> float:
    """Closed-form variance of the algorithm run recorded in ``result``.

    Supported algorithms: ``oner``, ``multir-ss``, ``multir-ds-basic``,
    ``multir-ds``, ``multir-ds-star``, ``central-dp``. ``naive`` is biased
    (an interval around its value would not cover C2) and ``exact`` is
    noiseless; both raise :class:`ReproError`.
    """
    layer = result.layer
    deg_u = graph.degree(layer, result.u)
    deg_w = graph.degree(layer, result.w)
    details = result.details

    if result.algorithm == "oner":
        pool = graph.layer_size(layer.opposite())
        return oner_variance(result.epsilon, pool, deg_u, deg_w)
    if result.algorithm == "multir-ss":
        source_degree = deg_u if details.get("source", "u") == "u" else deg_w
        return single_source_variance(
            details["eps1"], details["eps2"], source_degree
        )
    if result.algorithm in ("multir-ds-basic", "multir-ds", "multir-ds-star"):
        return double_source_variance(
            details["eps1"], details["eps2"], details["alpha"], deg_u, deg_w
        )
    if result.algorithm == "central-dp":
        return central_dp_variance(result.epsilon)
    raise ReproError(
        f"no variance model for algorithm {result.algorithm!r} "
        "(naive is biased; exact is noiseless)"
    )


def interval_for_result(
    result: EstimateResult,
    graph: BipartiteGraph,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Chebyshev interval containing ``C2`` with ≥ ``confidence``."""
    variance = predicted_variance(result, graph)
    return confidence_interval(result.value, variance, confidence)

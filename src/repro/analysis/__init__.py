"""Analytic error models, budget optimization, metrics, and bounds."""

from repro.analysis.chebyshev import (
    confidence_interval,
    deviation_for_confidence,
    tail_probability,
)
from repro.analysis.communication import (
    expected_bytes_multir_ds,
    expected_bytes_multir_ss,
    expected_bytes_naive,
    expected_bytes_oner,
    expected_noisy_list_size,
)
from repro.analysis.intervals import interval_for_result, predicted_variance
from repro.analysis.loss import (
    central_dp_variance,
    double_source_variance,
    laplace_noise_coefficient,
    naive_expectation,
    naive_l2_loss,
    naive_variance,
    oner_l2_loss,
    oner_variance,
    rr_noise_coefficient,
    single_source_variance,
)
from repro.analysis.metrics import (
    ErrorSummary,
    absolute_errors,
    bias,
    empirical_l2_loss,
    mean_absolute_error,
    mean_relative_error,
    summarize_errors,
)
from repro.analysis.planner import (
    epsilon_for_target_loss,
    epsilon_for_target_mae,
    predicted_loss_at,
)
from repro.analysis.optimizer import (
    Allocation,
    golden_section,
    joint_newton,
    newton_minimize_scalar,
    optimal_alpha,
    optimize_double_source,
    optimize_single_source,
    profile_loss,
)

__all__ = [
    "confidence_interval",
    "deviation_for_confidence",
    "tail_probability",
    "expected_bytes_multir_ds",
    "expected_bytes_multir_ss",
    "expected_bytes_naive",
    "expected_bytes_oner",
    "expected_noisy_list_size",
    "interval_for_result",
    "predicted_variance",
    "central_dp_variance",
    "double_source_variance",
    "laplace_noise_coefficient",
    "naive_expectation",
    "naive_l2_loss",
    "naive_variance",
    "oner_l2_loss",
    "oner_variance",
    "rr_noise_coefficient",
    "single_source_variance",
    "ErrorSummary",
    "absolute_errors",
    "bias",
    "empirical_l2_loss",
    "mean_absolute_error",
    "mean_relative_error",
    "summarize_errors",
    "epsilon_for_target_loss",
    "epsilon_for_target_mae",
    "predicted_loss_at",
    "Allocation",
    "golden_section",
    "joint_newton",
    "newton_minimize_scalar",
    "optimal_alpha",
    "optimize_double_source",
    "optimize_single_source",
    "profile_loss",
]

"""Closed-form communication-cost model (the paper's Table 3, last column).

The paper reports asymptotic communication costs; this module provides
the *exact expected byte counts* under the repository's message model
(8 bytes per vertex id / scalar), per algorithm:

* Naive / OneR — two noisy-list uploads at the full budget;
* MultiR-SS — two uploads at ε1, one download, one scalar release;
* MultiR-DS — a layer-wide degree round, two uploads and two downloads
  at ε1, two scalar releases.

The protocol's measured transfers converge to these expectations — an
executable check of the paper's cost analysis
(``tests/test_analysis_communication.py``).
"""

from __future__ import annotations

from repro.privacy.mechanisms import flip_probability
from repro.protocol.messages import FLOAT_BYTES, ID_BYTES

__all__ = [
    "expected_noisy_list_size",
    "expected_bytes_naive",
    "expected_bytes_oner",
    "expected_bytes_multir_ss",
    "expected_bytes_multir_ds",
]


def expected_noisy_list_size(epsilon: float, degree: int, domain: int) -> float:
    """``E|noisy list| = d(1-p) + (n-d)p`` with ``p = 1/(1+e^eps)``."""
    p = flip_probability(epsilon)
    return degree * (1.0 - p) + (domain - degree) * p


def expected_bytes_naive(
    epsilon: float, deg_u: int, deg_w: int, n_opposite: int
) -> float:
    """Naive: both query vertices upload a full-budget noisy list."""
    lists = expected_noisy_list_size(epsilon, deg_u, n_opposite) + (
        expected_noisy_list_size(epsilon, deg_w, n_opposite)
    )
    return lists * ID_BYTES


def expected_bytes_oner(
    epsilon: float, deg_u: int, deg_w: int, n_opposite: int
) -> float:
    """OneR moves exactly the same messages as Naive."""
    return expected_bytes_naive(epsilon, deg_u, deg_w, n_opposite)


def expected_bytes_multir_ss(
    eps1: float, deg_u: int, deg_w: int, n_opposite: int
) -> float:
    """MultiR-SS: two ε1 uploads + the source's download + one scalar."""
    up = expected_noisy_list_size(eps1, deg_u, n_opposite) + (
        expected_noisy_list_size(eps1, deg_w, n_opposite)
    )
    down = expected_noisy_list_size(eps1, deg_w, n_opposite)
    return (up + down) * ID_BYTES + FLOAT_BYTES


def expected_bytes_multir_ds(
    eps1: float, deg_u: int, deg_w: int, n_opposite: int, layer_size: int
) -> float:
    """MultiR-DS: degree round + both directions at ε1 + two scalars."""
    up = expected_noisy_list_size(eps1, deg_u, n_opposite) + (
        expected_noisy_list_size(eps1, deg_w, n_opposite)
    )
    down = up  # each query vertex downloads the other's list
    return (
        layer_size * FLOAT_BYTES
        + (up + down) * ID_BYTES
        + 2 * FLOAT_BYTES
    )

"""Error metrics used in the paper's evaluation.

The headline metric of Figs. 6–11 is the **mean absolute error** over the
sampled query pairs; the contribution list also speaks of mean *relative*
error, and L2 (squared) loss is the quantity the theory bounds. All three
are provided, plus bias (to separate Naive's systematic over-count from
pure noise) and a compact summary container.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "absolute_errors",
    "mean_absolute_error",
    "mean_relative_error",
    "empirical_l2_loss",
    "bias",
    "ErrorSummary",
    "summarize_errors",
]


def _paired(true_values, estimates) -> tuple[np.ndarray, np.ndarray]:
    true_arr = np.asarray(true_values, dtype=np.float64)
    est_arr = np.asarray(estimates, dtype=np.float64)
    if true_arr.shape != est_arr.shape:
        raise ValueError(
            f"shape mismatch: true {true_arr.shape} vs estimates {est_arr.shape}"
        )
    if true_arr.size == 0:
        raise ValueError("need at least one (true, estimate) pair")
    return true_arr, est_arr


def absolute_errors(true_values, estimates) -> np.ndarray:
    """Per-pair absolute errors ``|estimate - true|``."""
    true_arr, est_arr = _paired(true_values, estimates)
    return np.abs(est_arr - true_arr)


def mean_absolute_error(true_values, estimates) -> float:
    """The paper's headline metric (Figs. 6–11)."""
    return float(absolute_errors(true_values, estimates).mean())


def mean_relative_error(true_values, estimates, floor: float = 1.0) -> float:
    """Mean of ``|est - true| / max(true, floor)``.

    ``floor`` guards pairs with zero common neighbors, which are common in
    sparse graphs and would otherwise make relative error undefined.
    """
    true_arr, est_arr = _paired(true_values, estimates)
    denom = np.maximum(true_arr, floor)
    return float((np.abs(est_arr - true_arr) / denom).mean())


def empirical_l2_loss(true_values, estimates) -> float:
    """Mean squared error — the empirical analogue of the expected L2 loss."""
    true_arr, est_arr = _paired(true_values, estimates)
    return float(((est_arr - true_arr) ** 2).mean())


def bias(true_values, estimates) -> float:
    """Mean signed error ``mean(est - true)`` (Naive's over-count shows here)."""
    true_arr, est_arr = _paired(true_values, estimates)
    return float((est_arr - true_arr).mean())


@dataclass(frozen=True)
class ErrorSummary:
    """All headline metrics for one (algorithm, configuration) cell."""

    count: int
    mae: float
    mre: float
    l2: float
    bias: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mae={self.mae:.4g} mre={self.mre:.4g} "
            f"l2={self.l2:.4g} bias={self.bias:+.4g}"
        )


def summarize_errors(true_values, estimates) -> ErrorSummary:
    """Compute every metric at once."""
    true_arr, est_arr = _paired(true_values, estimates)
    return ErrorSummary(
        count=int(true_arr.size),
        mae=mean_absolute_error(true_arr, est_arr),
        mre=mean_relative_error(true_arr, est_arr),
        l2=empirical_l2_loss(true_arr, est_arr),
        bias=bias(true_arr, est_arr),
    )

"""Budget planning — inverting the loss model.

Deployments ask the loss model's question backwards: *what budget do I
need for a target accuracy?* The closed forms of
:mod:`repro.analysis.loss` are monotone decreasing in ε, so the inverse
is a bisection away. Answers are planning estimates under the same
assumptions as the forward model (known/estimated degrees and pool size).
"""

from __future__ import annotations

from repro.analysis.loss import (
    central_dp_variance,
    oner_variance,
    single_source_variance,
)
from repro.analysis.optimizer import optimize_double_source
from repro.errors import OptimizationError, ReproError

__all__ = ["predicted_loss_at", "epsilon_for_target_loss", "epsilon_for_target_mae"]

_EPS_LO = 1e-3
_EPS_HI = 64.0


def predicted_loss_at(
    epsilon: float,
    algorithm: str,
    deg_u: float,
    deg_w: float,
    n_opposite: int,
) -> float:
    """Forward model: expected L2 loss of ``algorithm`` at budget ε."""
    if algorithm == "oner":
        return oner_variance(epsilon, n_opposite, deg_u, deg_w)
    if algorithm == "multir-ss":
        return single_source_variance(epsilon / 2, epsilon / 2, deg_u)
    if algorithm == "multir-ds":
        alloc = optimize_double_source(epsilon, deg_u, deg_w, eps0=0.05 * epsilon)
        return alloc.predicted_loss
    if algorithm == "central-dp":
        return central_dp_variance(epsilon)
    raise ReproError(
        f"no invertible loss model for {algorithm!r} "
        "(naive is biased; exact is noiseless)"
    )


def epsilon_for_target_loss(
    target_l2: float,
    algorithm: str,
    deg_u: float,
    deg_w: float,
    n_opposite: int,
    tolerance: float = 1e-6,
) -> float:
    """Smallest ε whose predicted L2 loss is at or below ``target_l2``.

    Raises :class:`OptimizationError` when even ε = 64 cannot reach the
    target (e.g. OneR on a huge pool: its loss floors at ~0 only as
    ε → ∞, but numerically the flip probability underflows first).
    """
    if target_l2 <= 0:
        raise OptimizationError("target_l2 must be positive")

    def loss(eps: float) -> float:
        return predicted_loss_at(eps, algorithm, deg_u, deg_w, n_opposite)

    if loss(_EPS_HI) > target_l2:
        raise OptimizationError(
            f"{algorithm} cannot reach L2 <= {target_l2:g} for this query "
            f"even at eps = {_EPS_HI:g}"
        )
    lo, hi = _EPS_LO, _EPS_HI
    if loss(lo) <= target_l2:
        return lo
    while hi - lo > tolerance * max(1.0, hi):
        mid = (lo + hi) / 2.0
        if loss(mid) <= target_l2:
            hi = mid
        else:
            lo = mid
    return hi


def epsilon_for_target_mae(
    target_mae: float,
    algorithm: str,
    deg_u: float,
    deg_w: float,
    n_opposite: int,
) -> float:
    """Budget for a target *absolute* error.

    For a centered error with variance σ², the MAE is cσ with
    c ∈ [sqrt(2/pi) ≈ 0.80 (normal), 1/sqrt(2) ≈ 0.71 (Laplace)]; we plan
    with the conservative c = 0.8, i.e. target variance (MAE / 0.8)².
    """
    if target_mae <= 0:
        raise OptimizationError("target_mae must be positive")
    target_l2 = (target_mae / 0.8) ** 2
    return epsilon_for_target_loss(
        target_l2, algorithm, deg_u, deg_w, n_opposite
    )

"""Privacy-budget allocation optimization for the multiple-round algorithms.

MultiR-DS (paper §4.2) chooses ``(ε1, α)`` to minimize the double-source
loss ``F(ε1, α)`` subject to ``ε1 + ε2 = ε - ε0``. The inner problem is a
weighted-average quadratic in ``α`` with the closed-form minimizer

    α*(ε1) = B / (A + B),   A = g·du + 2h/ε2²,   B = g·dw + 2h/ε2²,

giving the profile objective ``F(ε1, α*) = A·B / (A + B)``. The outer 1-D
problem has no analytic solution (the paper notes the stationarity system
is transcendental and resorts to Newton's method); we implement a
safeguarded Newton iteration on the profile derivative with a
golden-section fallback, plus a joint 2-D damped Newton used as a
cross-check in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.analysis.loss import (
    double_source_variance,
    laplace_noise_coefficient,
    rr_noise_coefficient,
    single_source_variance,
)
from repro.errors import OptimizationError, PrivacyError

__all__ = [
    "Allocation",
    "optimal_alpha",
    "profile_loss",
    "newton_minimize_scalar",
    "golden_section",
    "optimize_double_source",
    "optimize_single_source",
    "joint_newton",
]

# Keep allocations away from the degenerate boundary: both the RR round and
# the Laplace round must retain a usable share of the remaining budget.
_MIN_FRACTION = 0.05
_MAX_FRACTION = 0.95


@dataclass(frozen=True)
class Allocation:
    """An optimized budget allocation and its predicted loss."""

    eps0: float
    eps1: float
    eps2: float
    alpha: float
    predicted_loss: float

    @property
    def total(self) -> float:
        return self.eps0 + self.eps1 + self.eps2


def optimal_alpha(eps1: float, eps2: float, deg_u: float, deg_w: float) -> float:
    """Closed-form minimizer of ``F`` over α for a fixed split."""
    g = rr_noise_coefficient(eps1)
    h = laplace_noise_coefficient(eps1)
    a = g * deg_u + 2.0 * h / eps2**2
    b = g * deg_w + 2.0 * h / eps2**2
    return b / (a + b)


def profile_loss(eps1: float, eps_remaining: float, deg_u: float, deg_w: float) -> float:
    """``min_α F(ε1, α)`` with ``ε2 = eps_remaining - ε1``: equals AB/(A+B)."""
    eps2 = eps_remaining - eps1
    if eps1 <= 0 or eps2 <= 0:
        raise PrivacyError("eps1 must lie strictly inside (0, eps_remaining)")
    g = rr_noise_coefficient(eps1)
    h = laplace_noise_coefficient(eps1)
    a = g * deg_u + 2.0 * h / eps2**2
    b = g * deg_w + 2.0 * h / eps2**2
    return a * b / (a + b)


# ----------------------------------------------------------------------
# Generic 1-D minimizers
# ----------------------------------------------------------------------
def golden_section(
    f: Callable[[float], float], lo: float, hi: float, tol: float = 1e-10
) -> float:
    """Golden-section search for the minimizer of a unimodal ``f``."""
    if not lo < hi:
        raise OptimizationError(f"invalid bracket [{lo}, {hi}]")
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = f(c), f(d)
    while b - a > tol * max(1.0, abs(a) + abs(b)):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = f(d)
    return (a + b) / 2.0


def newton_minimize_scalar(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    x0: float | None = None,
    max_iter: int = 60,
    tol: float = 1e-12,
) -> float:
    """Safeguarded Newton minimization of smooth ``f`` on ``[lo, hi]``.

    Newton steps target ``f'(x) = 0`` using central finite differences;
    steps leaving the bracket, or taken where ``f'' <= 0``, trigger a
    golden-section fallback. The better of the Newton fixed point and the
    fallback (by objective value) is returned, so the routine is robust to
    non-convexity at the bracket edges.
    """
    if not lo < hi:
        raise OptimizationError(f"invalid bracket [{lo}, {hi}]")
    span = hi - lo
    h = max(span * 1e-6, 1e-12)
    x = x0 if x0 is not None else (lo + hi) / 2.0
    x = min(max(x, lo + h), hi - h)

    converged = False
    for _ in range(max_iter):
        d1 = (f(x + h) - f(x - h)) / (2.0 * h)
        d2 = (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h)
        if not math.isfinite(d1) or not math.isfinite(d2) or d2 <= 0.0:
            break
        step = d1 / d2
        new_x = min(max(x - step, lo + h), hi - h)
        if abs(new_x - x) <= tol * max(1.0, abs(x)):
            x = new_x
            converged = True
            break
        x = new_x
    if not converged:
        fallback = golden_section(f, lo, hi)
        if f(fallback) < f(x):
            x = fallback
    return x


# ----------------------------------------------------------------------
# Paper-facing optimizers
# ----------------------------------------------------------------------
def optimize_double_source(
    epsilon: float,
    deg_u: float,
    deg_w: float,
    eps0: float = 0.0,
) -> Allocation:
    """Find ``(ε1, α)`` minimizing the MultiR-DS loss (paper §4.2).

    ``deg_u`` / ``deg_w`` may be noisy estimates (already corrected to be
    positive); ``eps0`` is the budget consumed by the degree round and is
    excluded from the optimization.
    """
    eps_remaining = epsilon - eps0
    if eps_remaining <= 0:
        raise PrivacyError("degree round consumed the whole budget")
    deg_u = max(float(deg_u), 1.0)
    deg_w = max(float(deg_w), 1.0)
    lo = _MIN_FRACTION * eps_remaining
    hi = _MAX_FRACTION * eps_remaining

    def objective(eps1: float) -> float:
        return profile_loss(eps1, eps_remaining, deg_u, deg_w)

    eps1 = newton_minimize_scalar(objective, lo, hi)
    eps2 = eps_remaining - eps1
    alpha = optimal_alpha(eps1, eps2, deg_u, deg_w)
    loss = double_source_variance(eps1, eps2, alpha, deg_u, deg_w)
    return Allocation(eps0=eps0, eps1=eps1, eps2=eps2, alpha=alpha, predicted_loss=loss)


def optimize_single_source(
    epsilon: float,
    deg_source: float,
    eps0: float = 0.0,
) -> Allocation:
    """Optimize the (ε1, ε2) split for MultiR-SS (the α = 1 special case)."""
    eps_remaining = epsilon - eps0
    if eps_remaining <= 0:
        raise PrivacyError("degree round consumed the whole budget")
    deg_source = max(float(deg_source), 1.0)
    lo = _MIN_FRACTION * eps_remaining
    hi = _MAX_FRACTION * eps_remaining

    def objective(eps1: float) -> float:
        return single_source_variance(eps1, eps_remaining - eps1, deg_source)

    eps1 = newton_minimize_scalar(objective, lo, hi)
    eps2 = eps_remaining - eps1
    loss = single_source_variance(eps1, eps2, deg_source)
    return Allocation(eps0=eps0, eps1=eps1, eps2=eps2, alpha=1.0, predicted_loss=loss)


def joint_newton(
    epsilon: float,
    deg_u: float,
    deg_w: float,
    eps0: float = 0.0,
    max_iter: int = 100,
) -> Allocation:
    """Damped 2-D Newton on ``(ε1, α)`` jointly (cross-check implementation).

    Solves the same problem as :func:`optimize_double_source` by iterating
    on the full gradient/Hessian of ``F(ε1, α)`` with numeric derivatives
    and backtracking line search. Used in tests to confirm the profile
    method reaches the same optimum.
    """
    eps_remaining = epsilon - eps0
    if eps_remaining <= 0:
        raise PrivacyError("degree round consumed the whole budget")
    deg_u = max(float(deg_u), 1.0)
    deg_w = max(float(deg_w), 1.0)
    lo = _MIN_FRACTION * eps_remaining
    hi = _MAX_FRACTION * eps_remaining

    def objective(eps1: float, alpha: float) -> float:
        alpha = min(max(alpha, 0.0), 1.0)
        return double_source_variance(eps1, eps_remaining - eps1, alpha, deg_u, deg_w)

    mid = (lo + hi) / 2.0
    x = [mid, optimal_alpha(mid, eps_remaining - mid, deg_u, deg_w)]
    h1 = (hi - lo) * 1e-6
    h2 = 1e-7
    for _ in range(max_iter):
        e1, al = x
        f0 = objective(e1, al)
        g1 = (objective(e1 + h1, al) - objective(e1 - h1, al)) / (2 * h1)
        g2 = (objective(e1, al + h2) - objective(e1, al - h2)) / (2 * h2)
        h11 = (objective(e1 + h1, al) - 2 * f0 + objective(e1 - h1, al)) / h1**2
        h22 = (objective(e1, al + h2) - 2 * f0 + objective(e1, al - h2)) / h2**2
        h12 = (
            objective(e1 + h1, al + h2)
            - objective(e1 + h1, al - h2)
            - objective(e1 - h1, al + h2)
            + objective(e1 - h1, al - h2)
        ) / (4 * h1 * h2)
        det = h11 * h22 - h12 * h12
        if det <= 0 or h11 <= 0:
            break
        step1 = (h22 * g1 - h12 * g2) / det
        step2 = (h11 * g2 - h12 * g1) / det
        scale = 1.0
        improved = False
        while scale > 1e-6:
            cand1 = min(max(e1 - scale * step1, lo), hi)
            cand2 = min(max(al - scale * step2, 0.0), 1.0)
            if objective(cand1, cand2) < f0:
                x = [cand1, cand2]
                improved = True
                break
            scale /= 2.0
        if not improved or (abs(x[0] - e1) < 1e-12 and abs(x[1] - al) < 1e-12):
            break

    # Coordinate-descent polish: alternate the closed-form alpha with a 1-D
    # Newton step on eps1. This guards against the joint Hessian going
    # indefinite near the boundary for strongly imbalanced degrees.
    for _ in range(8):
        e1_prev, al_prev = x
        alpha_new = optimal_alpha(e1_prev, eps_remaining - e1_prev, deg_u, deg_w)
        eps1_new = newton_minimize_scalar(
            lambda t: objective(t, alpha_new), lo, hi, x0=e1_prev, max_iter=20
        )
        x = [eps1_new, alpha_new]
        if abs(eps1_new - e1_prev) < 1e-10 and abs(alpha_new - al_prev) < 1e-10:
            break

    eps1, alpha = x
    eps2 = eps_remaining - eps1
    loss = objective(eps1, alpha)
    return Allocation(eps0=eps0, eps1=eps1, eps2=eps2, alpha=alpha, predicted_loss=loss)

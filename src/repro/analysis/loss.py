"""Closed-form error analysis of every estimator (the paper's Table 3).

All formulas are *exact* means/variances (not just the O(·) bounds quoted in
the paper's table), derived in the paper's proofs:

* Naive (Theorem 1 setting): each candidate ``v`` contributes a Bernoulli
  product ``A'[u,v]·A'[v,w]``; the estimator is biased.
* OneR (Theorem 4 proof): ``Var = p²(1-p)²·n1/(1-2p)⁴ + p(1-p)(du+dw)/(1-2p)²``.
* MultiR-SS (Theorem 6): ``Var = du·p(1-p)/(1-2p)² + 2(1-p)²/((1-2p)²ε2²)``.
* MultiR-DS (Theorem 8): weighted combination with weights ``α, 1-α``.
* CentralDP: pure Laplace noise with sensitivity 1.

These functions drive the MultiR-DS budget optimizer and the analytic
figures (Fig. 5, Table 3 verification).
"""

from __future__ import annotations

from repro.errors import PrivacyError
from repro.privacy.mechanisms import flip_probability

__all__ = [
    "rr_noise_coefficient",
    "laplace_noise_coefficient",
    "naive_expectation",
    "naive_variance",
    "naive_l2_loss",
    "oner_variance",
    "oner_l2_loss",
    "single_source_variance",
    "double_source_variance",
    "central_dp_variance",
]


def rr_noise_coefficient(epsilon_rr: float) -> float:
    """``g(ε1) = p(1-p)/(1-2p)²`` — per-neighbor RR variance (Eq. 1)."""
    p = flip_probability(epsilon_rr)
    return p * (1.0 - p) / (1.0 - 2.0 * p) ** 2


def laplace_noise_coefficient(epsilon_rr: float) -> float:
    """``h(ε1) = (1-p)²/(1-2p)²`` — squared single-source sensitivity."""
    p = flip_probability(epsilon_rr)
    return (1.0 - p) ** 2 / (1.0 - 2.0 * p) ** 2


# ----------------------------------------------------------------------
# Naive (Algorithm 1) — biased
# ----------------------------------------------------------------------
def _naive_category_probs(epsilon: float) -> tuple[float, float, float]:
    p = flip_probability(epsilon)
    return (1.0 - p) ** 2, p * (1.0 - p), p * p


def naive_expectation(
    epsilon: float, n_opposite: int, deg_u: int, deg_w: int, c2: int
) -> float:
    """Exact ``E[f̃1]`` of the Naive noisy-graph intersection count."""
    q_both, q_one, q_none = _naive_category_probs(epsilon)
    one_side = deg_u + deg_w - 2 * c2
    neither = n_opposite - deg_u - deg_w + c2
    return c2 * q_both + one_side * q_one + neither * q_none


def naive_variance(
    epsilon: float, n_opposite: int, deg_u: int, deg_w: int, c2: int
) -> float:
    """Exact ``Var[f̃1]`` — a sum of independent Bernoulli variances."""
    q_both, q_one, q_none = _naive_category_probs(epsilon)
    one_side = deg_u + deg_w - 2 * c2
    neither = n_opposite - deg_u - deg_w + c2
    return (
        c2 * q_both * (1 - q_both)
        + one_side * q_one * (1 - q_one)
        + neither * q_none * (1 - q_none)
    )


def naive_l2_loss(
    epsilon: float, n_opposite: int, deg_u: int, deg_w: int, c2: int
) -> float:
    """Exact expected L2 loss: variance plus squared bias."""
    mean = naive_expectation(epsilon, n_opposite, deg_u, deg_w, c2)
    var = naive_variance(epsilon, n_opposite, deg_u, deg_w, c2)
    return var + (mean - c2) ** 2


# ----------------------------------------------------------------------
# OneR (Algorithm 2) — unbiased
# ----------------------------------------------------------------------
def oner_variance(epsilon: float, n_opposite: int, deg_u: int, deg_w: int) -> float:
    """Exact ``Var[f̃2]`` (Theorem 4 proof, before the O(·) relaxation)."""
    p = flip_probability(epsilon)
    quartic = p**2 * (1.0 - p) ** 2 / (1.0 - 2.0 * p) ** 4
    return quartic * n_opposite + rr_noise_coefficient(epsilon) * (deg_u + deg_w)


def oner_l2_loss(epsilon: float, n_opposite: int, deg_u: int, deg_w: int) -> float:
    """OneR is unbiased, so its L2 loss equals its variance."""
    return oner_variance(epsilon, n_opposite, deg_u, deg_w)


# ----------------------------------------------------------------------
# Multiple-round estimators — unbiased
# ----------------------------------------------------------------------
def single_source_variance(eps1: float, eps2: float, deg_source: int) -> float:
    """Exact ``Var[f̃u]`` (Theorem 6): RR term plus Laplace term."""
    if eps2 <= 0:
        raise PrivacyError(f"estimator budget eps2 must be positive, got {eps2}")
    rr_term = rr_noise_coefficient(eps1) * deg_source
    laplace_term = 2.0 * laplace_noise_coefficient(eps1) / eps2**2
    return rr_term + laplace_term


def double_source_variance(
    eps1: float, eps2: float, alpha: float, deg_u: int, deg_w: int
) -> float:
    """Exact ``Var[f*] = α²Var[f̃u] + (1-α)²Var[f̃w]`` (Theorem 8)."""
    if not 0.0 <= alpha <= 1.0:
        raise PrivacyError(f"alpha must lie in [0, 1], got {alpha}")
    if eps2 <= 0:
        raise PrivacyError(f"estimator budget eps2 must be positive, got {eps2}")
    g = rr_noise_coefficient(eps1)
    h = laplace_noise_coefficient(eps1)
    rr_term = g * (alpha**2 * deg_u + (1.0 - alpha) ** 2 * deg_w)
    laplace_term = 2.0 * h * (alpha**2 + (1.0 - alpha) ** 2) / eps2**2
    return rr_term + laplace_term


def central_dp_variance(epsilon: float) -> float:
    """``Var[C2 + Lap(1/ε)] = 2/ε²`` — the central-model baseline."""
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    return 2.0 / epsilon**2

"""Sketch-mode batch path: bulk contingency draws, no lists materialized.

Mirrors :meth:`repro.protocol.session.ProtocolSession.naive_counts` in
sketch mode, but for a whole workload at once: each pair's noisy
intersection/union counts are drawn from their exact distributions via
four *batched* multinomials (one per candidate class), and each distinct
vertex's noisy list size comes from one vectorized pair of binomials. A
million-vertex candidate pool therefore costs O(pairs + vertices) — no
noisy list ever exists.

As with the session's sketch mode, each drawn quantity is marginally
exact but the joint distribution across pairs sharing a vertex is not
preserved (independent draws replace the shared noisy list); error and
communication statistics aggregate correctly, correlations do not.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph, Layer
from repro.engine.bulkrr import gather_rows
from repro.engine.pairwise import pairwise_intersections
from repro.privacy.debias import joint_report_probs
from repro.privacy.mechanisms import flip_probability
from repro.privacy.rng import RngLike, ensure_rng

__all__ = ["sketch_pair_counts"]


def sketch_pair_counts(
    graph: BipartiteGraph,
    layer: Layer,
    vertices: np.ndarray,
    ia: np.ndarray,
    ib: np.ndarray,
    epsilon: float,
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw ``(N1, N2)`` for every pair and a noisy size per vertex.

    ``vertices`` are the workload's distinct query vertices; ``ia``/``ib``
    index pairs into them. Candidate classes per pair — common neighbors,
    exclusive neighbors of either endpoint, and non-neighbors of both —
    each pass through one batched 4-outcome multinomial (reported by both /
    only a / only b / neither).
    """
    rng = ensure_rng(rng)
    p = flip_probability(epsilon)
    q = 1.0 - p
    domain = graph.layer_size(layer.opposite())
    vertices = np.asarray(vertices, dtype=np.int64)
    ia = np.asarray(ia, dtype=np.int64)
    ib = np.asarray(ib, dtype=np.int64)

    # Exact C2 per pair, computed once from the true rows with the same
    # sparse pairwise counter the materialized path uses.
    sub_indptr, true_cols = gather_rows(*graph.adjacency_csr(layer), vertices)
    c2 = pairwise_intersections(sub_indptr, true_cols, ia, ib, domain)
    deg = np.diff(sub_indptr)
    da, db = deg[ia], deg[ib]

    categories = (
        (c2, q, q),  # true common neighbors
        (da - c2, q, p),  # neighbors of a only
        (db - c2, p, q),  # neighbors of b only
        (domain - da - db + c2, p, p),  # neither
    )
    n1 = np.zeros(ia.size, dtype=np.int64)
    union = np.zeros(ia.size, dtype=np.int64)
    for count, qa, qb in categories:
        draws = rng.multinomial(count, joint_report_probs(qa, qb))
        n1 += draws[:, 0]
        union += draws[:, 0] + draws[:, 1] + draws[:, 2]

    sizes = rng.binomial(deg, q) + rng.binomial(domain - deg, p)
    return n1, union, sizes.astype(np.int64)

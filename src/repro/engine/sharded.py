"""Sharded execution of the keyed bulk-RR + pairwise stages.

The one-round bulk RR pass produces noisy output linear in
``n_vertices x domain`` expected bits, which caps the graph one worker
can serve long before the estimator math does. PR 4's keyed Philox
streams make the pass embarrassingly partitionable: every vertex's bits
are a pure function of ``(entropy, epoch, vertex, version)``, so any
split of the vertex block into contiguous ranges draws byte-identical
rows. This module exploits that:

* :class:`ShardedRunner` fans a :class:`~repro.engine.planner.ShardPlan`'s
  ranges out over a pluggable :class:`~repro.engine.transport.ShardTransport`
  — inline, forked worker processes (the default), or remote socket
  workers — streams each shard's CSR fragment back as it completes, and
  reassembles them in shard order; the result is asserted byte-identical
  to the serial keyed pass *whatever the transport*.
* The pairwise N1 stage reduces over shard *blocks*: pairs are grouped
  by the ``(shard(a), shard(b))`` block they span, each block stacks only
  its two fragments and re-chooses the counting backend for its own
  shape, and the partial counts scatter into the global answer.
  :meth:`ShardedRunner.run_workload` pushes *diagonal* blocks — pairs
  whose endpoints live in one shard — into the workers themselves:
  a shard touched only by diagonal pairs returns row sizes and reduced
  ``N1`` scalars instead of its noisy fragment, which is the traffic
  halving that makes remote workers pay on pair-dense workloads.

Fault tolerance (see ``docs/resilience-guide.md``)
--------------------------------------------------
Because a shard task is a pure function of its arguments, a failed or
slow task can be re-dispatched anywhere, any number of times, with zero
privacy cost and zero result drift — retries replay the identical keyed
draw instead of collecting fresh noise. Every draw runs under the
transport-agnostic retry driver (:func:`~repro.engine.transport.drive`):
wave-scaled deadlines, keyed-Philox backoff jitter, CRC32 payload
verification, fault classification, substrate recycling, and terminal
inline degradation in the parent. Everything the envelope did is
reported in :attr:`ShardDraw.faults` (and surfaced by the engine as
``details["shards"]["faults"]``); lifetime counters — including
per-transport ``"<name>:<kind>"`` breakdowns — accumulate in
:attr:`ShardedRunner.fault_totals`. A deterministic chaos harness for
all of it lives in :mod:`repro.engine.faults`.

The fork transport's workers inherit the graph at fork time; socket
workers install it once over the wire, keyed by digest. Platforms
without ``fork`` (and single-worker runners) execute the same code path
inline, so the runner is always safe to use.

See ``docs/sharding-guide.md`` for the determinism contract and
``docs/distributed-guide.md`` for the transport contract.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace

import numpy as np

from repro.engine.bulkrr import merge_csr_fragments
from repro.engine.pairwise import choose_backend, pairwise_intersections
from repro.engine.planner import ShardPlan
from repro.engine.transport import (
    _WORKER_CONTEXTS,  # noqa: F401  (re-exported: tests and tools patch here)
    ForkTransport,
    InlineTransport,
    RetryPolicy,
    ShardSpec,
    ShardTransport,
    SocketTransport,
    drive,
    empty_faults as _empty_faults,
    fork_available,
    make_transport,
)
from repro.errors import GraphError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer

__all__ = [
    "ShardDraw",
    "WorkloadDraw",
    "ShardedRunner",
    "fork_available",
    "make_transport",
]


@dataclass
class ShardDraw:
    """One sharded draw's reassembled output plus per-shard provenance."""

    indptr: np.ndarray
    columns: np.ndarray
    shards: list[dict] = field(default_factory=list)
    faults: dict = field(default_factory=_empty_faults)


@dataclass
class WorkloadDraw:
    """One transport-aware workload execution: sizes, pair counts, traffic.

    The in-worker-reduction counterpart of :class:`ShardDraw`: instead
    of one reassembled CSR, it carries exactly what the engine's pair
    pipeline needs — per-row noisy ``sizes`` (for ``N2`` and upload
    accounting) and per-pair ``n1`` — plus the transport accounting
    (``transport["bytes_to_parent"]`` et al.) that
    ``details["shards"]["transport"]`` surfaces. ``indptr``/``columns``
    are populated only when the caller asked to keep fragments.
    """

    sizes: np.ndarray
    n1: np.ndarray
    shards: list[dict] = field(default_factory=list)
    faults: dict = field(default_factory=_empty_faults)
    blocks: list[dict] = field(default_factory=list)
    transport: dict = field(default_factory=dict)
    indptr: np.ndarray | None = None
    columns: np.ndarray | None = None


class ShardedRunner:
    """Fan a shard plan's vertex ranges out over a shard transport.

    Parameters
    ----------
    graph, layer:
        The serving context the runner is bound to. The transport is
        bound to it before any work dispatches (fork: copy-on-write
        registration pre-fork; socket: digest-keyed install on first
        contact); a runner never serves a different graph.
    max_workers:
        Worker cap for the default fork transport. Defaults to
        ``os.cpu_count()``; a cap of 1 (or a platform without ``fork``)
        runs every range inline in the parent — same output, no
        processes. Ignored when an explicit ``transport`` is given.
    timeout_s, max_retries, backoff_base_s, backoff_cap_s, verify_payloads:
        The resilience envelope's knobs — see
        :class:`~repro.engine.transport.RetryPolicy`. They apply to
        every transport identically.
    transport:
        An explicit :class:`~repro.engine.transport.ShardTransport`
        (e.g. a :class:`~repro.engine.transport.SocketTransport` over a
        remote cluster). The runner owns it from here: ``close()``
        closes it, ``rebind()`` re-binds it.

    Raises
    ------
    ProtocolError
        If ``max_workers`` is not positive, ``timeout_s`` is not
        positive when given, ``max_retries`` is negative, or a backoff
        parameter is negative.

    Example
    -------
    >>> from repro.graph.generators import random_bipartite
    >>> from repro.graph.bipartite import Layer
    >>> from repro.engine.planner import plan_shards
    >>> import numpy as np
    >>> g = random_bipartite(20, 10, 60, rng=0)
    >>> plan = plan_shards(g, Layer.UPPER, np.arange(20), 2.0, shards=2)
    >>> with ShardedRunner(g, Layer.UPPER, max_workers=1) as runner:
    ...     draw = runner.draw(plan, 2.0, entropy=7, epoch=0)
    >>> len(draw.shards)
    2
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        *,
        max_workers: int | None = None,
        timeout_s: float | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        verify_payloads: bool = True,
        transport: ShardTransport | None = None,
    ):
        if max_workers is not None and max_workers <= 0:
            raise ProtocolError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.graph = graph
        self.layer = layer
        self.policy = RetryPolicy(
            timeout_s=timeout_s,
            max_retries=int(max_retries),
            backoff_base_s=float(backoff_base_s),
            backoff_cap_s=float(backoff_cap_s),
            verify_payloads=bool(verify_payloads),
        )
        if transport is None:
            transport = ForkTransport(max_workers=max_workers)
        self.transport = transport
        self.max_workers = (
            max_workers if max_workers is not None else transport.workers
        )
        transport.bind(graph, layer)
        # Lifetime fault counters across every draw (the serving report
        # reads these to make degraded behavior visible from the CLI);
        # alongside the plain keys, each count also accumulates under a
        # "<transport>:<kind>" key so mixed-transport servers can see
        # which substrate faulted.
        self.fault_totals: Counter = Counter()
        self._closed = False

    # -- resilience-knob views (kept as mutable attributes of record) --
    @property
    def timeout_s(self) -> float | None:
        return self.policy.timeout_s

    @timeout_s.setter
    def timeout_s(self, value: float | None) -> None:
        self.policy = replace(self.policy, timeout_s=value)

    @property
    def max_retries(self) -> int:
        return self.policy.max_retries

    @max_retries.setter
    def max_retries(self, value: int) -> None:
        self.policy = replace(self.policy, max_retries=int(value))

    @property
    def backoff_base_s(self) -> float:
        return self.policy.backoff_base_s

    @backoff_base_s.setter
    def backoff_base_s(self, value: float) -> None:
        self.policy = replace(self.policy, backoff_base_s=float(value))

    @property
    def backoff_cap_s(self) -> float:
        return self.policy.backoff_cap_s

    @backoff_cap_s.setter
    def backoff_cap_s(self, value: float) -> None:
        self.policy = replace(self.policy, backoff_cap_s=float(value))

    @property
    def verify_payloads(self) -> bool:
        return self.policy.verify_payloads

    @verify_payloads.setter
    def verify_payloads(self, value: bool) -> None:
        self.policy = replace(self.policy, verify_payloads=bool(value))

    # -- transport delegations (and fork-internals compatibility) ------
    @property
    def parallel(self) -> bool:
        """True when draws actually fan out to workers."""
        return self.transport.parallel

    @property
    def _token(self):
        return getattr(self.transport, "_token", None)

    @property
    def _segments(self) -> set:
        return getattr(self.transport, "_segments", set())

    @property
    def _retired(self) -> list:
        return getattr(self.transport, "_retired", [])

    def _reap_retired(self) -> int:
        return self.transport.reap()

    def close(self) -> None:
        """Shut the transport down and sweep its resources.

        Idempotent, and safe on a transport that never started (a
        serve-mode runner whose first tick never arrived). A closed
        runner may be used again: the next :meth:`draw` re-binds the
        transport — re-registering the fork context / reconnecting
        sockets — so a restarted server reuses its runner safely. A
        runner dropped *without* ``close()`` is released by the fork
        transport's GC finalizer.
        """
        self.transport.close()
        self._closed = True

    def rebind(self, graph: BipartiteGraph, *, delta=None) -> None:
        """Point the runner at a new graph snapshot (post-mutation).

        Delegates to the transport: the fork pool drains and re-forks so
        copy-on-write workers cannot serve the stale snapshot; socket
        workers resync lazily on digest mismatch — as one MUTATE delta
        push when ``delta`` (the :class:`~repro.graph.delta.DeltaLog`
        that carried the old snapshot to ``graph``) is given and the
        worker's digest is still on the transport's chain, else a full
        GRAPH re-install. A no-op when ``graph`` is already the bound
        snapshot.
        """
        if graph is self.graph:
            return
        self.graph = graph
        self.transport.bind(graph, self.layer, delta=delta)

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _check_versions(
        self, plan: ShardPlan, versions: np.ndarray | None
    ) -> np.ndarray | None:
        if versions is None:
            return None
        versions = np.ascontiguousarray(versions, dtype=np.uint64)
        if versions.shape != plan.vertices.shape:
            raise GraphError(
                "versions must align with the shard plan's vertices: "
                f"got {versions.shape} for {plan.vertices.shape}"
            )
        return versions

    def _build_specs(
        self,
        plan: ShardPlan,
        epsilon: float,
        entropy: int,
        epoch: int,
        versions: np.ndarray | None,
        measure: bool,
    ) -> list[ShardSpec]:
        return [
            ShardSpec(
                shard=s,
                lo=int(lo),
                hi=int(hi),
                vertices=plan.vertices[lo:hi],
                epsilon=float(epsilon),
                entropy=int(entropy),
                epoch=int(epoch),
                versions=None if versions is None else versions[lo:hi],
                measure=measure,
            )
            for s, (lo, hi) in enumerate(plan.ranges())
        ]

    def _record_faults(self, faults: dict, *, degraded: bool = True) -> None:
        ints = {k: v for k, v in faults.items() if isinstance(v, int)}
        self.fault_totals.update(ints)
        name = self.transport.name
        self.fault_totals.update({f"{name}:{k}": v for k, v in ints.items()})
        if degraded:
            n = len(faults["degraded_ranges"])
            self.fault_totals["degraded_ranges"] += n
            self.fault_totals[f"{name}:degraded_ranges"] += n

    def _drive(
        self,
        specs: list[ShardSpec],
        entropy: int,
        epoch: int,
        faults: dict,
        dispatches: Counter,
    ) -> dict:
        if self._closed:
            self._closed = False
        self.transport.bind(self.graph, self.layer)
        try:
            return drive(
                self.transport,
                self.graph,
                self.layer,
                specs,
                self.policy,
                entropy=int(entropy),
                epoch=int(epoch),
                faults=faults,
                dispatches=dispatches,
            )
        except BaseException:
            # A deterministic bug escaped the envelope: record what the
            # envelope did before it died, then propagate.
            self._record_faults(faults, degraded=False)
            raise

    def _shard_records(
        self,
        plan: ShardPlan,
        results: dict,
        dispatches: Counter,
        faults: dict,
    ) -> list[dict]:
        degraded = {
            (int(lo), int(hi)) for lo, hi in faults["degraded_ranges"]
        }
        return [
            {
                "range": (int(lo), int(hi)),
                "vertices": int(hi - lo),
                "noisy_ids": int(results[s].sizes.sum()),
                "est_bytes": int(plan.est_bytes[s]),
                "peak_bytes": int(results[s].peak_bytes),
                "attempts": int(dispatches[s]),
                "degraded": (int(lo), int(hi)) in degraded,
                "reduced": results[s].columns is None,
            }
            for s, (lo, hi) in enumerate(plan.ranges())
        ]

    # ------------------------------------------------------------------
    def draw(
        self,
        plan: ShardPlan,
        epsilon: float,
        *,
        entropy: int,
        epoch: int,
        versions: np.ndarray | None = None,
        measure_memory: bool = False,
    ) -> ShardDraw:
        """Draw every shard's keyed rows and reassemble them in shard order.

        Ranges are submitted to the transport together and their CSR
        fragments stream back as each worker finishes; the reassembled
        ``(indptr, columns)`` is byte-identical to the unsharded keyed
        pass whatever the plan's boundaries (every vertex owns a private
        counter stream) — **and whatever faults occur**: a range whose
        worker dies, stalls past ``timeout_s``, or returns a corrupt
        fragment is re-dispatched (capped keyed-jitter backoff, up to
        ``max_retries`` rounds) and finally drawn inline, replaying the
        identical keyed stream each time. Per-shard provenance lands in
        :attr:`ShardDraw.shards`; everything the resilience envelope did
        lands in :attr:`ShardDraw.faults`.

        Raises
        ------
        ReproError
            Non-fault worker exceptions (a :class:`PrivacyError` from a
            bad epsilon, a :class:`GraphError`) are *not* retried: they
            propagate after the resource sweep, because re-dispatching a
            deterministic bug reproduces it.
        """
        versions = self._check_versions(plan, versions)
        specs = self._build_specs(
            plan, epsilon, entropy, epoch, versions, measure_memory
        )
        faults = _empty_faults()
        dispatches: Counter = Counter()
        results = self._drive(specs, entropy, epoch, faults, dispatches)
        indptr, columns = merge_csr_fragments(
            [(results[s].indptr, results[s].columns) for s in sorted(results)]
        )
        shards = self._shard_records(plan, results, dispatches, faults)
        self._record_faults(faults)
        return ShardDraw(
            indptr=indptr, columns=columns, shards=shards, faults=faults
        )

    # ------------------------------------------------------------------
    def run_workload(
        self,
        plan: ShardPlan,
        epsilon: float,
        *,
        entropy: int,
        epoch: int,
        ia: np.ndarray,
        ib: np.ndarray,
        domain: int,
        versions: np.ndarray | None = None,
        measure_memory: bool = False,
        keep_fragments: bool = False,
    ) -> WorkloadDraw:
        """Draw + pairwise in one transport-aware pass with in-worker blocks.

        The workload-shaped sibling of :meth:`draw` + :meth:`pairwise`:
        pairs whose endpoints both live in shard ``s`` (the *diagonal*
        block) can be reduced by whoever draws shard ``s`` — and when
        every pair touching ``s`` is diagonal, the shard's noisy
        fragment never needs to reach the parent at all. Each such shard
        is dispatched with its local pair slots and
        ``want_fragment=False``; it answers with row sizes plus reduced
        ``N1`` scalars (a few hundred bytes) instead of its noisy CSR
        (megabytes at scale). Shards touched by any cross-shard pair
        still return fragments, and the parent reduces the remaining
        blocks exactly as :meth:`pairwise` does. The split is exact —
        every backend counts true integer intersections — so the
        returned ``n1`` is byte-identical to the ship-everything path,
        on every transport, faults or not.

        ``keep_fragments=True`` forces every fragment back (and fills
        :attr:`WorkloadDraw.indptr`/``columns``) for callers that also
        need the rows. The per-transport traffic ledger — bytes that
        actually crossed to the parent, pairs reduced in-worker, bytes
        the reduction saved — lands in :attr:`WorkloadDraw.transport`,
        which the engine surfaces as ``details["shards"]["transport"]``.
        """
        versions = self._check_versions(plan, versions)
        ia = np.asarray(ia, dtype=np.int64)
        ib = np.asarray(ib, dtype=np.int64)
        if ia.shape != ib.shape:
            raise ProtocolError("ia and ib must have the same shape")
        specs = self._build_specs(
            plan, epsilon, entropy, epoch, versions, measure_memory
        )
        num_shards = plan.num_shards
        offsets = plan.offsets
        if ia.size:
            sa = plan.shard_of_rows(ia)
            sb = plan.shard_of_rows(ib)
            diag = sa == sb
        else:
            sa = sb = np.empty(0, dtype=np.int64)
            diag = np.empty(0, dtype=bool)
        # A shard ships its fragment iff the parent still needs its rows:
        # a cross-shard pair touches it, or the caller wants the CSR.
        need_fragment = np.zeros(num_shards, dtype=bool)
        if keep_fragments or not self.transport.can_reduce:
            need_fragment[:] = True
        elif ia.size:
            off = ~diag
            need_fragment[sa[off]] = True
            need_fragment[sb[off]] = True
        local_pairs: dict[int, np.ndarray] = {}
        if ia.size:
            local_mask = diag & ~need_fragment[sa]
            for s in np.unique(sa[local_mask]):
                sel = np.flatnonzero(local_mask & (sa == s))
                lo = int(offsets[s])
                specs[s] = replace(
                    specs[s],
                    domain=int(domain),
                    ia=ia[sel] - lo,
                    ib=ib[sel] - lo,
                    want_fragment=False,
                )
                local_pairs[int(s)] = sel
        for s in range(num_shards):
            if s not in local_pairs and not need_fragment[s]:
                # No pairs touch this shard at all: sizes are still
                # needed (N2, upload accounting), the rows are not.
                specs[s] = replace(specs[s], want_fragment=False)

        faults = _empty_faults()
        dispatches: Counter = Counter()
        results = self._drive(specs, entropy, epoch, faults, dispatches)

        # -- reassemble sizes, local N1, and the parent-side blocks ----
        n = int(plan.vertices.size)
        sizes = np.empty(n, dtype=np.int64)
        for s, (lo, hi) in enumerate(plan.ranges()):
            sizes[lo:hi] = results[s].sizes
        n1 = np.zeros(ia.size, dtype=np.int64)
        blocks: list[dict] = []
        reduced_pairs = 0
        for s, sel in sorted(local_pairs.items()):
            res = results[s]
            n1[sel] = res.n1
            reduced_pairs += int(sel.size)
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            blocks.append(
                {
                    "block": (s, s),
                    "rows": hi - lo,
                    "pairs": int(sel.size),
                    "backend": res.backend or "worker",
                    "where": "worker",
                }
            )
        # Parent-side blocks over the fragments that did ship. Shards
        # that reduced in-worker hold empty rows in this CSR; no
        # remaining pair indexes them, by construction.
        lengths = np.zeros(n, dtype=np.int64)
        chunks: list[np.ndarray] = []
        for s, (lo, hi) in enumerate(plan.ranges()):
            res = results[s]
            if res.columns is not None:
                lengths[lo:hi] = res.sizes
                chunks.append(res.columns)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        columns = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        if ia.size:
            reduced_mask = np.zeros(ia.size, dtype=bool)
            for sel in local_pairs.values():
                reduced_mask[sel] = True
            rest = np.flatnonzero(~reduced_mask)
            if rest.size:
                rest_n1, parent_blocks = self.pairwise(
                    plan, indptr, columns, ia[rest], ib[rest], domain
                )
                n1[rest] = rest_n1
                for rec in parent_blocks:
                    rec["where"] = "parent"
                blocks.extend(parent_blocks)

        # -- traffic ledger --------------------------------------------
        bytes_to_parent = sum(int(r.payload_bytes) for r in results.values())
        fragment_bytes = 0
        saved_bytes = 0
        for s, (lo, hi) in enumerate(plan.ranges()):
            res = results[s]
            full_cost = int(res.sizes.sum()) * 8 + (hi - lo + 1) * 8
            if res.columns is None:
                saved_bytes += max(0, full_cost - int(res.payload_bytes))
            else:
                fragment_bytes += int(res.payload_bytes)
        transport_detail = {
            **self.transport.describe(),
            "bytes_to_parent": int(bytes_to_parent),
            "fragment_bytes": int(fragment_bytes),
            "bytes_saved": int(saved_bytes),
            "reduced_pairs": int(reduced_pairs),
            "reduced_shards": int(
                sum(1 for r in results.values() if r.columns is None)
            ),
            "fragment_shards": int(
                sum(1 for r in results.values() if r.columns is not None)
            ),
        }
        shards = self._shard_records(plan, results, dispatches, faults)
        self._record_faults(faults)
        return WorkloadDraw(
            sizes=sizes,
            n1=n1,
            shards=shards,
            faults=faults,
            blocks=blocks,
            transport=transport_detail,
            indptr=indptr if keep_fragments else None,
            columns=columns if keep_fragments else None,
        )

    # ------------------------------------------------------------------
    def pairwise(
        self,
        plan: ShardPlan,
        indptr: np.ndarray,
        columns: np.ndarray,
        ia: np.ndarray,
        ib: np.ndarray,
        domain: int,
    ) -> tuple[np.ndarray, list[dict]]:
        """Reduce pairwise N1 over shard blocks, re-choosing backends.

        Pairs are grouped by the (order-normalized) shard block their
        endpoints span. Each block stacks only its one or two fragments
        and calls :func:`~repro.engine.pairwise.choose_backend` on its
        *own* shape — the whole-workload choice systematically mispicks
        per shard, e.g. a workload too big for one bitset scratch whose
        individual blocks fit it comfortably. Block partials scatter
        into the global ``n1`` (bitset/merge) or come from the block's
        sparse Gram product; either way the reduction over blocks is
        exact, and every block's choice is returned for
        ``details["shards"]``.

        Returns
        -------
        tuple[numpy.ndarray, list[dict]]
            ``(n1, blocks)``: the per-pair intersection counts, and one
            ``{"block", "rows", "pairs", "backend"}`` record per shard
            block that held pairs.
        """
        ia = np.asarray(ia, dtype=np.int64)
        ib = np.asarray(ib, dtype=np.int64)
        n1 = np.zeros(ia.size, dtype=np.int64)
        if ia.size == 0:
            return n1, []
        sa = plan.shard_of_rows(ia)
        sb = plan.shard_of_rows(ib)
        lo_blk = np.minimum(sa, sb)
        hi_blk = np.maximum(sa, sb)
        order = np.lexsort((hi_blk, lo_blk))
        keys = lo_blk[order] * plan.num_shards + hi_blk[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(keys)) + 1, [keys.size])
        )
        blocks: list[dict] = []
        for b0, b1 in zip(starts[:-1], starts[1:]):
            members = order[b0:b1]
            s, t = int(lo_blk[members[0]]), int(hi_blk[members[0]])
            slo, shi = int(plan.offsets[s]), int(plan.offsets[s + 1])
            tlo, thi = int(plan.offsets[t]), int(plan.offsets[t + 1])
            # Stack the block's fragment(s) into one local CSR.
            if s == t:
                sub_indptr = indptr[slo : shi + 1] - indptr[slo]
                sub_columns = columns[indptr[slo] : indptr[shi]]
                rows = shi - slo

                def local(r: np.ndarray) -> np.ndarray:
                    return r - slo

            else:
                lengths = np.concatenate(
                    (
                        np.diff(indptr[slo : shi + 1]),
                        np.diff(indptr[tlo : thi + 1]),
                    )
                )
                sub_columns = np.concatenate(
                    (
                        columns[indptr[slo] : indptr[shi]],
                        columns[indptr[tlo] : indptr[thi]],
                    )
                )
                sub_indptr = np.zeros(lengths.size + 1, dtype=np.int64)
                np.cumsum(lengths, out=sub_indptr[1:])
                rows = (shi - slo) + (thi - tlo)
                s_rows = shi - slo

                def local(r: np.ndarray) -> np.ndarray:
                    return np.where(r < shi, r - slo, s_rows + (r - tlo))

            backend = choose_backend(rows, members.size, domain)
            n1[members] = pairwise_intersections(
                sub_indptr,
                sub_columns,
                local(ia[members]),
                local(ib[members]),
                domain,
                backend=backend,
            )
            blocks.append(
                {
                    "block": (s, t),
                    "rows": int(rows),
                    "pairs": int(members.size),
                    "backend": backend,
                }
            )
        return n1, blocks

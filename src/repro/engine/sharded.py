"""Process-parallel sharded execution of the keyed bulk-RR + pairwise stages.

The one-round bulk RR pass produces noisy output linear in
``n_vertices x domain`` expected bits, which caps the graph one worker
can serve long before the estimator math does. PR 4's keyed Philox
streams make the pass embarrassingly partitionable: every vertex's bits
are a pure function of ``(entropy, epoch, vertex)``, so any split of the
vertex block into contiguous ranges draws byte-identical rows. This
module exploits that:

* :class:`ShardedRunner` fans a :class:`~repro.engine.planner.ShardPlan`'s
  ranges out to forked worker processes (``ProcessPoolExecutor`` with
  the ``fork`` start method, so the immutable CSR graph is shared
  copy-on-write instead of pickled), streams each shard's CSR fragment
  back as it completes, and reassembles them in shard order — the result
  is asserted byte-identical to the serial keyed pass.
* The pairwise N1 stage reduces over shard *blocks*: pairs are grouped
  by the ``(shard(a), shard(b))`` block they span, each block stacks only
  its two fragments and re-chooses the counting backend for its own
  shape (bitset popcount and merge partials reduce by disjoint scatter;
  the Gram backend reduces via per-block sparse products), and the
  partial counts scatter into the global answer. The per-block backend
  choices are surfaced in ``EngineResult.details["shards"]``.

Fault tolerance (see ``docs/resilience-guide.md``)
--------------------------------------------------
Because a shard task is a pure function of its arguments, a failed or
slow task can be re-dispatched anywhere, any number of times, with zero
privacy cost and zero result drift — retries replay the identical keyed
draw instead of collecting fresh noise. :meth:`ShardedRunner.draw`
therefore wraps every task in a resilience envelope:

* a per-task deadline (``timeout_s``) bounds each fragment's
  *execution*: a retry round waits one deadline per execution wave
  (``ceil(tasks / max_workers)``), so a task queued behind other shards
  is never charged for queue time and the round's total wall wait stays
  bounded by ``waves * timeout_s``;
* worker death (``BrokenProcessPool``), deadline expiry, transport
  errors and payload-checksum mismatches all classify as *worker
  faults*: the failed ranges are re-dispatched to a **rebuilt** pool
  under capped exponential backoff whose jitter comes from the keyed
  Philox stream (deterministic per ``(entropy, epoch, attempt)``, never
  wall-clock randomness) — up to ``max_retries`` rounds;
* after the retry budget is exhausted, the remaining ranges degrade to
  inline single-process execution in the parent — the terminal fallback
  that cannot fail the way a worker can;
* every ``SharedMemory`` fragment name is parent-chosen and registered
  *before* dispatch, so a worker dying between ``shm.create`` and the
  parent's fetch cannot leak the segment: failure paths sweep the
  registry, and :meth:`ShardedRunner.close` performs a final sweep after
  joining any zombie workers.

Everything the envelope did is reported in :attr:`ShardDraw.faults`
(and surfaced by the engine as ``details["shards"]["faults"]``):
re-dispatches, backoff waits, deadline expiries, worker deaths, payload
errors, degraded ranges and reclaimed segments. A deterministic chaos
harness for all of it lives in :mod:`repro.engine.faults`.

Workers inherit the graph at fork time; only the small per-range vertex
slices and the returned fragments cross the process boundary. Platforms
without ``fork`` (and single-worker runners) execute the same code path
inline, so the runner is always safe to use — it degrades to
:func:`~repro.engine.bulkrr.shard_bulk_randomized_response`.

See ``docs/sharding-guide.md`` for the determinism contract, the memory
sizing model, and when *not* to shard.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import tracemalloc
import weakref
import zlib
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as _wait_futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.engine.bulkrr import (
    keyed_bulk_randomized_response,
    merge_csr_fragments,
)
from repro.engine.faults import FAULT_EXIT_CODE, FaultPlan
from repro.engine.pairwise import choose_backend, pairwise_intersections
from repro.engine.planner import ShardPlan
from repro.errors import GraphError, PayloadIntegrityError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer

__all__ = ["ShardDraw", "ShardedRunner", "fork_available"]

# Worker-side context registry. Entries are registered in the parent
# *before* its pool forks, so every worker inherits them copy-on-write;
# tasks then reference their context by token instead of pickling the
# graph per range.
_WORKER_CONTEXTS: dict[int, tuple[BipartiteGraph, Layer]] = {}
_NEXT_TOKEN = 0

# Keyed-stream domain tag for retry-backoff jitter ("BACK"): the jitter
# that decorrelates retry stampedes must itself be deterministic per
# (entropy, epoch, attempt), or reruns of the same failure schedule
# would not be reproducible.
_BACKOFF_TAG = 0x4241434B

# Exceptions that classify as *worker faults* — transient, re-dispatchable
# failures of the execution substrate rather than of the draw itself.
# Anything else (a PrivacyError from bad epsilon, a GraphError) is a real
# bug and propagates immediately after the segment sweep.
_WORKER_FAULTS = (
    BrokenProcessPool,
    FutureTimeoutError,
    TimeoutError,
    PayloadIntegrityError,
    OSError,
)


def _fault_kind(exc: BaseException) -> str:
    """Map a caught worker fault to its ``faults`` counter key.

    The deadline check precedes the transport bucket because
    ``TimeoutError`` is an ``OSError`` subclass.
    """
    if isinstance(exc, (FutureTimeoutError, TimeoutError)):
        return "timeouts"
    if isinstance(exc, PayloadIntegrityError):
        return "payload_errors"
    return "worker_deaths"


# Bounded grace for joining worker pools at close/release time. A worker
# that never exits is exactly the stall ``timeout_s`` defends against,
# so teardown escalates to terminate (then kill) instead of inheriting
# the hang — close() and interpreter shutdown must stay bounded.
_JOIN_GRACE_S = 5.0


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _columns_checksum(columns: np.ndarray) -> int:
    """CRC32 of a fragment's column bytes — the shm transport integrity tag."""
    return int(zlib.crc32(np.ascontiguousarray(columns)))


def _draw_range(
    token: int,
    vertices: np.ndarray,
    epsilon: float,
    entropy: int,
    epoch: int,
    measure: bool,
    shm_name: str | None,
    shard_index: int,
    attempt: int,
    versions: np.ndarray | None = None,
) -> tuple:
    """One shard's keyed draw (runs in a worker, or inline when serial).

    Returns ``(indptr, payload, size, peak_bytes, checksum)``. In-process
    calls (``shm_name is None``) return the columns array itself as
    ``payload``; pool calls write the columns into a ``SharedMemory``
    block *created under the parent-chosen name* and return that name —
    shipping multi-MB fragments through the result pipe interleaves
    64 KiB reads with the other workers' compute and costs ~40% of the
    draw, while an shm handoff is one parent-side memcpy after the
    workers finish. The parent owning the name is what makes the handoff
    leak-proof: a worker that dies after ``create`` leaves a segment the
    parent already knows how to unlink. ``checksum`` is the CRC32 of the
    column bytes, verified parent-side after the copy. ``peak_bytes`` is
    the tracemalloc high-water mark of the draw when ``measure`` is set
    (the benchmark's per-worker memory probe), else 0.

    ``shard_index``/``attempt`` identify the task to the chaos hook: a
    :class:`~repro.engine.faults.FaultPlan` installed in the parent's
    environment (inherited across the fork) can deterministically kill,
    delay or poison chosen ``(shard, attempt)`` tasks. Faults apply only
    to pool tasks — inline execution has no worker to kill and no shm
    payload to poison, which is exactly why it is the terminal fallback.
    """
    graph, layer = _WORKER_CONTEXTS[token]
    action = None
    if shm_name is not None:
        plan = FaultPlan.from_env()
        if plan is not None:
            action = plan.action_for(shard_index, attempt)
    if action is not None and action.kind == "kill":
        os._exit(FAULT_EXIT_CODE)
    if action is not None and action.kind == "delay":
        time.sleep(action.delay_s)
    if measure:
        tracemalloc.start()
    indptr, columns = keyed_bulk_randomized_response(
        graph, layer, vertices, epsilon, entropy=entropy, epoch=epoch,
        versions=versions,
    )
    peak = 0
    if measure:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    checksum = _columns_checksum(columns)
    if shm_name is None:
        return indptr, columns, int(columns.size), int(peak), checksum
    block = shared_memory.SharedMemory(
        create=True, name=shm_name, size=max(1, columns.nbytes)
    )
    np.ndarray(columns.shape, dtype=np.int64, buffer=block.buf)[:] = columns
    if action is not None and action.kind == "poison":
        # Corrupt the transported payload *after* the checksum was taken
        # from the good draw, so the parent's verification must catch it.
        if columns.nbytes:
            view = np.ndarray(columns.shape, dtype=np.int64, buffer=block.buf)
            view[0] = ~view[0]
        else:
            checksum ^= 1
    block.close()  # parent unlinks after copying
    if action is not None and action.kind == "kill_after_write":
        os._exit(FAULT_EXIT_CODE)  # the leak window the registry sweep covers
    return indptr, shm_name, int(columns.size), int(peak), checksum


def _sweep_segments(names: set[str], *, drop_missing: bool) -> int:
    """Unlink every registered segment that exists; return the count.

    Names whose segment does not (yet) exist are kept in the registry
    unless ``drop_missing`` — a delayed zombie worker may still create
    its segment later, and only :meth:`ShardedRunner.close` (which joins
    every worker first) can prove nobody ever will.
    """
    reclaimed = 0
    for name in list(names):
        try:
            block = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            if drop_missing:
                names.discard(name)
            continue
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            pass
        names.discard(name)
        reclaimed += 1
    return reclaimed


def _join_pool(pool: ProcessPoolExecutor, grace_s: float | None = None) -> None:
    """Join a pool's workers under a bounded grace, then force the rest.

    Healthy workers drain and exit within the grace; a permanently
    wedged one — the stall ``timeout_s`` exists to defend against — is
    terminated (and, failing that, killed) so close() and interpreter
    shutdown never inherit the hang.
    """
    if grace_s is None:
        grace_s = _JOIN_GRACE_S
    procs = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken pools may object
        pass
    deadline = time.monotonic() + grace_s
    for proc in procs:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - SIGTERM-immune worker
            proc.kill()
            proc.join(timeout=1.0)


def _release_runner(
    token: int, pool_box: list, retired: list, segments: set
) -> None:
    """Free a runner's worker pools, context registration and segments.

    Shared by :meth:`ShardedRunner.close` and the runner's GC finalizer,
    so a runner dropped without ``close()`` (pre-sharding call sites
    never needed one) cannot pin its graph in ``_WORKER_CONTEXTS``,
    leave worker processes behind for the interpreter's lifetime, or
    strand ``/dev/shm`` segments created by zombie workers. Retired
    pools (torn down with ``wait=False`` after a fault) are joined here
    under :data:`_JOIN_GRACE_S`, with stragglers terminated, so every
    would-be segment creator is provably gone — without an unbounded
    wait — before the final sweep.
    """
    pool = pool_box[0]
    if pool is not None:
        _join_pool(pool)
        pool_box[0] = None
    for old_pool, _names in retired:
        _join_pool(old_pool)
    retired.clear()
    _WORKER_CONTEXTS.pop(token, None)
    _sweep_segments(segments, drop_missing=True)


def _empty_faults() -> dict:
    return {
        "retries": 0,  # task re-dispatches to a rebuilt pool
        "timeouts": 0,  # per-task deadline expiries
        "worker_deaths": 0,  # BrokenProcessPool / dead workers
        "payload_errors": 0,  # checksum mismatches on the shm handoff
        "backoff_s": [],  # keyed-jitter waits before each retry round
        "degraded_ranges": [],  # ranges that fell back to inline execution
        "reclaimed_segments": 0,  # orphaned shm segments swept and unlinked
    }


@dataclass
class ShardDraw:
    """One sharded draw's reassembled output plus per-shard provenance."""

    indptr: np.ndarray
    columns: np.ndarray
    shards: list[dict] = field(default_factory=list)
    faults: dict = field(default_factory=_empty_faults)


class ShardedRunner:
    """Fan a shard plan's vertex ranges out to forked worker processes.

    Parameters
    ----------
    graph, layer:
        The serving context the runner is bound to. The graph is
        registered for copy-on-write inheritance before the pool forks;
        a runner never serves a different graph.
    max_workers:
        Worker process cap. Defaults to ``os.cpu_count()``; a cap of 1
        (or a platform without ``fork``) runs every range inline in the
        parent — same output, no processes.
    timeout_s:
        Per-task execution deadline in seconds. Each retry round waits
        one deadline per execution *wave* (``ceil(tasks /
        max_workers)`` waves), so a task queued behind other shards is
        not charged for its queue time and the round's wall wait is
        bounded by ``waves * timeout_s`` rather than ``tasks *
        timeout_s``. Tasks unfinished at the round deadline classify as
        worker faults and are re-dispatched; ``None`` waits
        indefinitely (the pre-resilience behavior).
    max_retries:
        Re-dispatch rounds against a rebuilt pool before the remaining
        ranges degrade to inline execution. ``0`` degrades immediately
        on the first fault.
    backoff_base_s, backoff_cap_s:
        Exponential backoff before retry round ``r`` waits
        ``min(cap, base * 2**(r-1))`` scaled by a jitter factor in
        ``[0.5, 1.0]`` drawn from the keyed Philox stream (key
        ``[entropy ^ BACKOFF_TAG]``, counter ``[attempt, epoch]``) — the
        schedule is deterministic per draw, not wall-clock random.
    verify_payloads:
        Verify the CRC32 of every fragment copied out of shared memory
        (on by default; the benchmark's overhead knob).

    Raises
    ------
    ProtocolError
        If ``max_workers`` is not positive, ``timeout_s`` is not
        positive when given, ``max_retries`` is negative, or a backoff
        parameter is negative.

    Example
    -------
    >>> from repro.graph.generators import random_bipartite
    >>> from repro.graph.bipartite import Layer
    >>> from repro.engine.planner import plan_shards
    >>> import numpy as np
    >>> g = random_bipartite(20, 10, 60, rng=0)
    >>> plan = plan_shards(g, Layer.UPPER, np.arange(20), 2.0, shards=2)
    >>> with ShardedRunner(g, Layer.UPPER, max_workers=1) as runner:
    ...     draw = runner.draw(plan, 2.0, entropy=7, epoch=0)
    >>> len(draw.shards)
    2
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        *,
        max_workers: int | None = None,
        timeout_s: float | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        verify_payloads: bool = True,
    ):
        global _NEXT_TOKEN
        if max_workers is not None and max_workers <= 0:
            raise ProtocolError(
                f"max_workers must be positive, got {max_workers}"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise ProtocolError(f"timeout_s must be positive, got {timeout_s}")
        if max_retries < 0:
            raise ProtocolError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ProtocolError("backoff parameters must be >= 0")
        self.graph = graph
        self.layer = layer
        self.max_workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        self.timeout_s = timeout_s
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.verify_payloads = bool(verify_payloads)
        # Lifetime fault counters across every draw (the serving report
        # reads these to make degraded behavior visible from the CLI).
        self.fault_totals: Counter = Counter()
        # Register before any pool can fork so workers inherit the graph.
        self._token = _NEXT_TOKEN
        _NEXT_TOKEN += 1
        _WORKER_CONTEXTS[self._token] = (graph, layer)
        # The pool lives in a one-slot box so the GC finalizer can free
        # it without holding a reference to the runner itself; pools torn
        # down after a fault are parked in `_retired` as `(pool, names)`
        # — the segment names their zombie workers might still create —
        # reaped once every worker has exited, and force-joined (bounded)
        # at close time. `_segments` holds every parent-issued shm name
        # not yet unlinked.
        self._pool_box: list = [None]
        self._retired: list = []
        self._segments: set[str] = set()
        self._seq = 0
        self._closed = False
        self._finalizer = weakref.finalize(
            self,
            _release_runner,
            self._token,
            self._pool_box,
            self._retired,
            self._segments,
        )

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """True when draws actually fan out to worker processes."""
        return self.max_workers > 1 and fork_available()

    def _ensure_pool(self, num_tasks: int) -> ProcessPoolExecutor | None:
        if not self.parallel or num_tasks <= 1:
            return None
        if self._pool_box[0] is None:
            # Start the shm resource tracker *before* forking so every
            # worker inherits it: create (worker) and unlink (parent)
            # then talk to one tracker and nothing is reported leaked.
            # Sized by the worker cap alone — workers fork lazily on
            # demand, and sizing by the first draw's range count would
            # permanently under-parallelize every later, larger draw.
            resource_tracker.ensure_running()
            self._pool_box[0] = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._pool_box[0]

    def _retire_pool(self, zombie_names: set[str]) -> None:
        """Tear the current pool down without waiting (it is suspect).

        A stuck or dead pool must not block the retry path, so teardown
        is non-blocking; the executor is parked in ``_retired`` together
        with ``zombie_names`` — the parent-issued segment names its
        workers might still create. :meth:`_reap_retired` drops the pool
        (and any of its names that never materialized) once every worker
        has provably exited; :meth:`close` force-joins whatever is left
        under a bounded grace.
        """
        pool = self._pool_box[0]
        if pool is None:
            return
        self._pool_box[0] = None
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may object
            pass
        self._retired.append((pool, set(zombie_names)))

    def _reap_retired(self) -> int:
        """Reap retired pools whose workers all exited; returns reclaimed.

        Non-blocking: pools with a still-live worker are kept. A dead
        pool can never create another segment, so whichever of its
        registered names exist are unlinked and the still-missing ones
        leave the registry for good — without this, a long-running
        server with recurring worker faults would grow ``_segments``
        without bound (one name per dispatch whose worker died before
        ``shm.create``).
        """
        reclaimed = 0
        survivors = []
        for pool, names in self._retired:
            procs = list((getattr(pool, "_processes", None) or {}).values())
            if any(proc.is_alive() for proc in procs):
                survivors.append((pool, names))
                continue
            doomed = names & self._segments
            reclaimed += _sweep_segments(doomed, drop_missing=True)
            self._segments -= names
        self._retired[:] = survivors
        return reclaimed

    def _new_segment_name(self, shard: int, attempt: int) -> str:
        """A fresh parent-owned shm name, registered before dispatch.

        Including the attempt keeps a retry's segment distinct from one
        a delayed zombie dispatch of the same shard may create later.
        """
        self._seq += 1
        name = f"repro_{os.getpid():x}_{self._seq:x}_{shard}_{attempt}"
        self._segments.add(name)
        return name

    def _backoff_wait(self, entropy: int, epoch: int, attempt: int) -> float:
        """Capped exponential backoff, jittered from the keyed stream."""
        base = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** max(0, attempt - 1))
        )
        if base <= 0:
            return 0.0
        bitgen = np.random.Philox(
            counter=[int(attempt), int(epoch), 0, 0],
            key=[int(entropy) ^ _BACKOFF_TAG, _BACKOFF_TAG],
        )
        jitter = 0.5 + 0.5 * float(np.random.Generator(bitgen).random())
        return base * jitter

    def _fetch_verified(self, payload, size: int, checksum: int) -> np.ndarray:
        """Materialize a task's columns, unlinking and verifying its segment.

        Raises
        ------
        PayloadIntegrityError
            If the copied bytes fail checksum verification (the segment
            is already unlinked either way — a corrupt fragment must not
            outlive its detection).
        """
        if isinstance(payload, np.ndarray):
            return payload
        block = shared_memory.SharedMemory(name=payload)
        try:
            columns = np.ndarray((size,), dtype=np.int64, buffer=block.buf).copy()
        finally:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - raced a sweep
                pass
            self._segments.discard(payload)
        if self.verify_payloads and _columns_checksum(columns) != checksum:
            raise PayloadIntegrityError(
                f"shard fragment {payload!r} failed checksum verification "
                f"({size} ids)"
            )
        return columns

    def close(self) -> None:
        """Shut every worker pool down and sweep the segment registry.

        Idempotent. Retired pools (torn down after faults) are joined
        here under a bounded grace — a zombie worker still holding a
        delayed task gets :data:`_JOIN_GRACE_S` to finish, after which
        it is terminated — so every would-be segment creator is
        provably gone before the final registry sweep, and a
        permanently wedged worker cannot hang shutdown. A closed runner
        may be used again: the next :meth:`draw` re-registers its
        context and forks a fresh pool, so a restarted server reuses its
        runner safely. A runner dropped *without* ``close()`` is
        released by its GC finalizer.
        """
        _release_runner(
            self._token, self._pool_box, self._retired, self._segments
        )
        self._closed = True

    def rebind(self, graph: BipartiteGraph) -> None:
        """Point the runner at a new graph snapshot (post-mutation).

        Workers hold the old graph through fork-time copy-on-write, so a
        live pool cannot see the swap: the current pool is joined (its
        workers drained under the bounded grace) and dropped, and the
        next :meth:`draw` forks fresh workers that inherit the rebound
        context. A no-op when ``graph`` is already the bound snapshot.
        """
        if graph is self.graph:
            return
        pool = self._pool_box[0]
        if pool is not None:
            _join_pool(pool)
            self._pool_box[0] = None
        self.graph = graph
        _WORKER_CONTEXTS[self._token] = (graph, self.layer)

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def draw(
        self,
        plan: ShardPlan,
        epsilon: float,
        *,
        entropy: int,
        epoch: int,
        versions: np.ndarray | None = None,
        measure_memory: bool = False,
    ) -> ShardDraw:
        """Draw every shard's keyed rows and reassemble them in shard order.

        Ranges are submitted to the pool together and their CSR fragments
        stream back as each worker finishes; the reassembled
        ``(indptr, columns)`` is byte-identical to the unsharded keyed
        pass whatever the plan's boundaries (every vertex owns a private
        counter stream) — **and whatever faults occur**: a range whose
        worker dies, stalls past ``timeout_s``, or returns a corrupt
        fragment is re-dispatched to a rebuilt pool (capped keyed-jitter
        backoff, up to ``max_retries`` rounds) and finally drawn inline,
        replaying the identical keyed stream each time. Per-shard
        provenance — vertex range, drawn ids, planner byte estimate,
        dispatch attempts, degraded flag, and (with ``measure_memory``)
        the worker's tracemalloc peak — lands in :attr:`ShardDraw.shards`;
        everything the resilience envelope did lands in
        :attr:`ShardDraw.faults`.

        Raises
        ------
        ReproError
            Non-fault worker exceptions (a :class:`PrivacyError` from a
            bad epsilon, a :class:`GraphError`) are *not* retried: they
            propagate after the segment sweep, because re-dispatching a
            deterministic bug reproduces it.
        """
        if self._closed:
            # Re-open: register the context again before any pool forks.
            _WORKER_CONTEXTS[self._token] = (self.graph, self.layer)
            self._closed = False
        if versions is not None:
            versions = np.ascontiguousarray(versions, dtype=np.uint64)
            if versions.shape != plan.vertices.shape:
                raise GraphError(
                    "versions must align with the shard plan's vertices: "
                    f"got {versions.shape} for {plan.vertices.shape}"
                )
        ranges = plan.ranges()
        faults = _empty_faults()
        # Earlier draws' retired pools may have finished dying since:
        # reap them now so recurring faults cannot grow the registry.
        faults["reclaimed_segments"] += self._reap_retired()
        results: dict[int, tuple] = {}  # shard -> (indptr, columns, size, peak)
        dispatches: Counter = Counter()
        pending: dict[int, tuple[int, int]] = dict(enumerate(ranges))
        pool = self._ensure_pool(len(ranges))

        if pool is not None:
            attempt = 0
            while pending and attempt <= self.max_retries:
                if attempt:
                    wait = self._backoff_wait(entropy, epoch, attempt)
                    faults["backoff_s"].append(round(wait, 6))
                    faults["retries"] += len(pending)
                    if wait > 0:
                        time.sleep(wait)
                    pool = self._ensure_pool(len(ranges))
                submitted: dict[int, object] = {}
                round_names: dict[int, str] = {}
                failed: dict[int, tuple[int, int]] = {}
                for s, (lo, hi) in pending.items():
                    name = self._new_segment_name(s, attempt)
                    try:
                        future = pool.submit(
                            _draw_range,
                            self._token,
                            plan.vertices[lo:hi],
                            float(epsilon),
                            int(entropy),
                            int(epoch),
                            measure_memory,
                            name,
                            s,
                            attempt,
                            None if versions is None else versions[lo:hi],
                        )
                    except BrokenProcessPool as exc:
                        # The pool died mid-submission: the task never
                        # reached a worker, so nobody can ever create
                        # this segment — drop its name immediately.
                        faults[_fault_kind(exc)] += 1
                        self._segments.discard(name)
                        failed[s] = (lo, hi)
                        continue
                    dispatches[s] += 1
                    submitted[s] = future
                    round_names[s] = name
                # One wait for the whole round. The deadline bounds a
                # task's *execution*, not its queue position: with more
                # ranges than workers a queued task is healthy, so the
                # round gets one timeout per execution wave the pool
                # needs — which also caps the total wall wait at
                # waves * timeout_s instead of tasks * timeout_s.
                expired: set = set()
                if submitted:
                    if self.timeout_s is None:
                        _wait_futures(list(submitted.values()))
                    else:
                        waves = -(-len(submitted) // self.max_workers)
                        _, expired = _wait_futures(
                            list(submitted.values()),
                            timeout=self.timeout_s * waves,
                        )
                for s, future in submitted.items():
                    if future in expired:
                        faults["timeouts"] += 1
                        failed[s] = pending[s]
                        continue
                    try:
                        indptr, payload, size, peak, checksum = future.result()
                        columns = self._fetch_verified(payload, size, checksum)
                        results[s] = (indptr, columns, size, peak)
                    except _WORKER_FAULTS as exc:
                        faults[_fault_kind(exc)] += 1
                        failed[s] = pending[s]
                    except BaseException:
                        # A deterministic bug, not a worker fault: sweep
                        # the outstanding segments and let it propagate.
                        faults["reclaimed_segments"] += _sweep_segments(
                            self._segments, drop_missing=False
                        )
                        self.fault_totals.update(
                            {
                                k: v
                                for k, v in faults.items()
                                if isinstance(v, int)
                            }
                        )
                        raise
                if failed:
                    # The pool is suspect (dead workers, or a stuck one
                    # we cannot cancel): retire it with the names its
                    # zombies might still create, rebuild next round,
                    # and reclaim whatever orphaned segments exist now.
                    self._retire_pool(
                        {round_names[s] for s in failed if s in round_names}
                    )
                    faults["reclaimed_segments"] += _sweep_segments(
                        self._segments, drop_missing=False
                    )
                    faults["reclaimed_segments"] += self._reap_retired()
                pending = failed
                attempt += 1
            if pending:
                # Terminal fallback: the remaining ranges run inline in
                # the parent — single-process, no shm, cannot fault.
                for s, (lo, hi) in sorted(pending.items()):
                    faults["degraded_ranges"].append((int(lo), int(hi)))
        for s, (lo, hi) in sorted(pending.items()):
            indptr, columns, size, peak, _ = _draw_range(
                self._token,
                plan.vertices[lo:hi],
                float(epsilon),
                int(entropy),
                int(epoch),
                measure_memory,
                None,
                s,
                -1,
                None if versions is None else versions[lo:hi],
            )
            dispatches[s] += 1
            results[s] = (indptr, columns, size, peak)

        fragments = [
            (results[s][0], results[s][1]) for s in range(len(ranges))
        ]
        indptr, columns = merge_csr_fragments(fragments)
        degraded = {
            (int(lo), int(hi)) for lo, hi in faults["degraded_ranges"]
        }
        shards = [
            {
                "range": (int(lo), int(hi)),
                "vertices": int(hi - lo),
                "noisy_ids": int(results[s][2]),
                "est_bytes": int(plan.est_bytes[s]),
                "peak_bytes": int(results[s][3]),
                "attempts": int(dispatches[s]),
                "degraded": (int(lo), int(hi)) in degraded,
            }
            for s, (lo, hi) in enumerate(ranges)
        ]
        self.fault_totals.update(
            {k: v for k, v in faults.items() if isinstance(v, int)}
        )
        self.fault_totals["degraded_ranges"] += len(faults["degraded_ranges"])
        return ShardDraw(
            indptr=indptr, columns=columns, shards=shards, faults=faults
        )

    # ------------------------------------------------------------------
    def pairwise(
        self,
        plan: ShardPlan,
        indptr: np.ndarray,
        columns: np.ndarray,
        ia: np.ndarray,
        ib: np.ndarray,
        domain: int,
    ) -> tuple[np.ndarray, list[dict]]:
        """Reduce pairwise N1 over shard blocks, re-choosing backends.

        Pairs are grouped by the (order-normalized) shard block their
        endpoints span. Each block stacks only its one or two fragments
        and calls :func:`~repro.engine.pairwise.choose_backend` on its
        *own* shape — the whole-workload choice systematically mispicks
        per shard, e.g. a workload too big for one bitset scratch whose
        individual blocks fit it comfortably. Block partials scatter
        into the global ``n1`` (bitset/merge) or come from the block's
        sparse Gram product; either way the reduction over blocks is
        exact, and every block's choice is returned for
        ``details["shards"]``.

        Returns
        -------
        tuple[numpy.ndarray, list[dict]]
            ``(n1, blocks)``: the per-pair intersection counts, and one
            ``{"block", "rows", "pairs", "backend"}`` record per shard
            block that held pairs.
        """
        ia = np.asarray(ia, dtype=np.int64)
        ib = np.asarray(ib, dtype=np.int64)
        n1 = np.zeros(ia.size, dtype=np.int64)
        if ia.size == 0:
            return n1, []
        sa = plan.shard_of_rows(ia)
        sb = plan.shard_of_rows(ib)
        lo_blk = np.minimum(sa, sb)
        hi_blk = np.maximum(sa, sb)
        order = np.lexsort((hi_blk, lo_blk))
        keys = lo_blk[order] * plan.num_shards + hi_blk[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(keys)) + 1, [keys.size])
        )
        blocks: list[dict] = []
        for b0, b1 in zip(starts[:-1], starts[1:]):
            members = order[b0:b1]
            s, t = int(lo_blk[members[0]]), int(hi_blk[members[0]])
            slo, shi = int(plan.offsets[s]), int(plan.offsets[s + 1])
            tlo, thi = int(plan.offsets[t]), int(plan.offsets[t + 1])
            # Stack the block's fragment(s) into one local CSR.
            if s == t:
                sub_indptr = indptr[slo : shi + 1] - indptr[slo]
                sub_columns = columns[indptr[slo] : indptr[shi]]
                rows = shi - slo

                def local(r: np.ndarray) -> np.ndarray:
                    return r - slo

            else:
                lengths = np.concatenate(
                    (
                        np.diff(indptr[slo : shi + 1]),
                        np.diff(indptr[tlo : thi + 1]),
                    )
                )
                sub_columns = np.concatenate(
                    (
                        columns[indptr[slo] : indptr[shi]],
                        columns[indptr[tlo] : indptr[thi]],
                    )
                )
                sub_indptr = np.zeros(lengths.size + 1, dtype=np.int64)
                np.cumsum(lengths, out=sub_indptr[1:])
                rows = (shi - slo) + (thi - tlo)
                s_rows = shi - slo

                def local(r: np.ndarray) -> np.ndarray:
                    return np.where(r < shi, r - slo, s_rows + (r - tlo))

            backend = choose_backend(rows, members.size, domain)
            n1[members] = pairwise_intersections(
                sub_indptr,
                sub_columns,
                local(ia[members]),
                local(ib[members]),
                domain,
                backend=backend,
            )
            blocks.append(
                {
                    "block": (s, t),
                    "rows": int(rows),
                    "pairs": int(members.size),
                    "backend": backend,
                }
            )
        return n1, blocks

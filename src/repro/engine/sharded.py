"""Process-parallel sharded execution of the keyed bulk-RR + pairwise stages.

The one-round bulk RR pass produces noisy output linear in
``n_vertices x domain`` expected bits, which caps the graph one worker
can serve long before the estimator math does. PR 4's keyed Philox
streams make the pass embarrassingly partitionable: every vertex's bits
are a pure function of ``(entropy, epoch, vertex)``, so any split of the
vertex block into contiguous ranges draws byte-identical rows. This
module exploits that:

* :class:`ShardedRunner` fans a :class:`~repro.engine.planner.ShardPlan`'s
  ranges out to forked worker processes (``ProcessPoolExecutor`` with
  the ``fork`` start method, so the immutable CSR graph is shared
  copy-on-write instead of pickled), streams each shard's CSR fragment
  back as it completes, and reassembles them in shard order — the result
  is asserted byte-identical to the serial keyed pass.
* The pairwise N1 stage reduces over shard *blocks*: pairs are grouped
  by the ``(shard(a), shard(b))`` block they span, each block stacks only
  its two fragments and re-chooses the counting backend for its own
  shape (bitset popcount and merge partials reduce by disjoint scatter;
  the Gram backend reduces via per-block sparse products), and the
  partial counts scatter into the global answer. The per-block backend
  choices are surfaced in ``EngineResult.details["shards"]``.

Workers inherit the graph at fork time; only the small per-range vertex
slices and the returned fragments cross the process boundary. Platforms
without ``fork`` (and single-worker runners) execute the same code path
inline, so the runner is always safe to use — it degrades to
:func:`~repro.engine.bulkrr.shard_bulk_randomized_response`.

See ``docs/sharding-guide.md`` for the determinism contract, the memory
sizing model, and when *not* to shard.
"""

from __future__ import annotations

import multiprocessing
import os
import tracemalloc
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.engine.bulkrr import (
    keyed_bulk_randomized_response,
    merge_csr_fragments,
)
from repro.engine.pairwise import choose_backend, pairwise_intersections
from repro.engine.planner import ShardPlan
from repro.errors import ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer

__all__ = ["ShardDraw", "ShardedRunner", "fork_available"]

# Worker-side context registry. Entries are registered in the parent
# *before* its pool forks, so every worker inherits them copy-on-write;
# tasks then reference their context by token instead of pickling the
# graph per range.
_WORKER_CONTEXTS: dict[int, tuple[BipartiteGraph, Layer]] = {}
_NEXT_TOKEN = 0


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _draw_range(
    token: int,
    vertices: np.ndarray,
    epsilon: float,
    entropy: int,
    epoch: int,
    measure: bool,
    via_shm: bool,
) -> tuple:
    """One shard's keyed draw (runs in a worker, or inline when serial).

    Returns ``(indptr, payload, size, peak_bytes)``. In-process calls
    return the columns array itself as ``payload``; pool calls
    (``via_shm``) write the columns into a ``SharedMemory`` block and
    return its name instead — shipping multi-MB fragments through the
    result pipe interleaves 64 KiB reads with the other workers' compute
    and costs ~40% of the draw, while an shm handoff is one parent-side
    memcpy after the workers finish. ``peak_bytes`` is the tracemalloc
    high-water mark of the draw when ``measure`` is set (the benchmark's
    per-worker memory probe), else 0.
    """
    graph, layer = _WORKER_CONTEXTS[token]
    if measure:
        tracemalloc.start()
    indptr, columns = keyed_bulk_randomized_response(
        graph, layer, vertices, epsilon, entropy=entropy, epoch=epoch
    )
    peak = 0
    if measure:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    if not via_shm:
        return indptr, columns, int(columns.size), int(peak)
    block = shared_memory.SharedMemory(create=True, size=max(1, columns.nbytes))
    np.ndarray(columns.shape, dtype=np.int64, buffer=block.buf)[:] = columns
    name = block.name
    block.close()  # parent unlinks after copying
    return indptr, name, int(columns.size), int(peak)


def _fetch_columns(payload, size: int) -> np.ndarray:
    """Materialize a task's columns, copying out of shared memory if used."""
    if isinstance(payload, np.ndarray):
        return payload
    block = shared_memory.SharedMemory(name=payload)
    try:
        return np.ndarray((size,), dtype=np.int64, buffer=block.buf).copy()
    finally:
        block.close()
        block.unlink()


def _discard_payload(payload) -> None:
    """Unlink a result's shm block without reading it (error cleanup)."""
    if isinstance(payload, np.ndarray):
        return
    try:
        block = shared_memory.SharedMemory(name=payload)
    except FileNotFoundError:  # pragma: no cover - already gone
        return
    block.close()
    block.unlink()


def _release_runner(token: int, pool_box: list) -> None:
    """Free a runner's worker pool and context registration.

    Shared by :meth:`ShardedRunner.close` and the runner's GC finalizer,
    so a runner dropped without ``close()`` (pre-sharding call sites
    never needed one) cannot pin its graph in ``_WORKER_CONTEXTS`` or
    leave worker processes behind for the interpreter's lifetime.
    """
    pool = pool_box[0]
    if pool is not None:
        pool.shutdown(wait=True)
        pool_box[0] = None
    _WORKER_CONTEXTS.pop(token, None)


@dataclass
class ShardDraw:
    """One sharded draw's reassembled output plus per-shard provenance."""

    indptr: np.ndarray
    columns: np.ndarray
    shards: list[dict] = field(default_factory=list)


class ShardedRunner:
    """Fan a shard plan's vertex ranges out to forked worker processes.

    Parameters
    ----------
    graph, layer:
        The serving context the runner is bound to. The graph is
        registered for copy-on-write inheritance before the pool forks;
        a runner never serves a different graph.
    max_workers:
        Worker process cap. Defaults to ``os.cpu_count()``; a cap of 1
        (or a platform without ``fork``) runs every range inline in the
        parent — same output, no processes.

    Raises
    ------
    ProtocolError
        If ``max_workers`` is not positive.

    Example
    -------
    >>> from repro.graph.generators import random_bipartite
    >>> from repro.graph.bipartite import Layer
    >>> from repro.engine.planner import plan_shards
    >>> import numpy as np
    >>> g = random_bipartite(20, 10, 60, rng=0)
    >>> plan = plan_shards(g, Layer.UPPER, np.arange(20), 2.0, shards=2)
    >>> with ShardedRunner(g, Layer.UPPER, max_workers=1) as runner:
    ...     draw = runner.draw(plan, 2.0, entropy=7, epoch=0)
    >>> len(draw.shards)
    2
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        *,
        max_workers: int | None = None,
    ):
        global _NEXT_TOKEN
        if max_workers is not None and max_workers <= 0:
            raise ProtocolError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.graph = graph
        self.layer = layer
        self.max_workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        # Register before any pool can fork so workers inherit the graph.
        self._token = _NEXT_TOKEN
        _NEXT_TOKEN += 1
        _WORKER_CONTEXTS[self._token] = (graph, layer)
        # The pool lives in a one-slot box so the GC finalizer can free
        # it without holding a reference to the runner itself.
        self._pool_box: list = [None]
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_runner, self._token, self._pool_box
        )

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """True when draws actually fan out to worker processes."""
        return self.max_workers > 1 and fork_available()

    def _ensure_pool(self, num_tasks: int) -> ProcessPoolExecutor | None:
        if not self.parallel or num_tasks <= 1:
            return None
        if self._pool_box[0] is None:
            # Start the shm resource tracker *before* forking so every
            # worker inherits it: create (worker) and unlink (parent)
            # then talk to one tracker and nothing is reported leaked.
            # Sized by the worker cap alone — workers fork lazily on
            # demand, and sizing by the first draw's range count would
            # permanently under-parallelize every later, larger draw.
            resource_tracker.ensure_running()
            self._pool_box[0] = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._pool_box[0]

    def close(self) -> None:
        """Shut the worker pool down (idempotent; frees the processes).

        A closed runner may be used again: the next :meth:`draw`
        re-registers its context and forks a fresh pool, so a restarted
        server reuses its runner safely. A runner dropped *without*
        ``close()`` is released by its GC finalizer.
        """
        _release_runner(self._token, self._pool_box)
        self._closed = True

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def draw(
        self,
        plan: ShardPlan,
        epsilon: float,
        *,
        entropy: int,
        epoch: int,
        measure_memory: bool = False,
    ) -> ShardDraw:
        """Draw every shard's keyed rows and reassemble them in shard order.

        Ranges are submitted to the pool together and their CSR fragments
        stream back as each worker finishes; the reassembled
        ``(indptr, columns)`` is byte-identical to the unsharded keyed
        pass whatever the plan's boundaries (every vertex owns a private
        counter stream). Per-shard provenance — vertex range, drawn ids,
        planner byte estimate, and (with ``measure_memory``) the worker's
        tracemalloc peak — lands in :attr:`ShardDraw.shards`.

        """
        if self._closed:
            # Re-open: register the context again before any pool forks.
            _WORKER_CONTEXTS[self._token] = (self.graph, self.layer)
            self._closed = False
        ranges = plan.ranges()
        pool = self._ensure_pool(len(ranges))
        args = [
            (
                self._token,
                plan.vertices[lo:hi],
                float(epsilon),
                int(entropy),
                int(epoch),
                measure_memory,
                pool is not None,
            )
            for lo, hi in ranges
        ]
        if pool is None:
            results = [_draw_range(*a) for a in args]
        else:
            futures = [pool.submit(_draw_range, *a) for a in args]
            results = []
            failure: BaseException | None = None
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    failure = failure if failure is not None else exc
            if failure is not None:
                # The successful workers' fragments live in shm blocks
                # whose names exist only in these results: unlink them
                # or a server with repeatedly failing ticks would pile
                # up multi-MB /dev/shm segments until process exit.
                for _, payload, _, _ in results:
                    _discard_payload(payload)
                raise failure
        fragments = [
            (ip, _fetch_columns(payload, size))
            for ip, payload, size, _ in results
        ]
        indptr, columns = merge_csr_fragments(fragments)
        shards = [
            {
                "range": (int(lo), int(hi)),
                "vertices": int(hi - lo),
                "noisy_ids": int(size),
                "est_bytes": int(plan.est_bytes[s]),
                "peak_bytes": int(peak),
            }
            for s, ((lo, hi), (_, _, size, peak)) in enumerate(
                zip(ranges, results)
            )
        ]
        return ShardDraw(indptr=indptr, columns=columns, shards=shards)

    # ------------------------------------------------------------------
    def pairwise(
        self,
        plan: ShardPlan,
        indptr: np.ndarray,
        columns: np.ndarray,
        ia: np.ndarray,
        ib: np.ndarray,
        domain: int,
    ) -> tuple[np.ndarray, list[dict]]:
        """Reduce pairwise N1 over shard blocks, re-choosing backends.

        Pairs are grouped by the (order-normalized) shard block their
        endpoints span. Each block stacks only its one or two fragments
        and calls :func:`~repro.engine.pairwise.choose_backend` on its
        *own* shape — the whole-workload choice systematically mispicks
        per shard, e.g. a workload too big for one bitset scratch whose
        individual blocks fit it comfortably. Block partials scatter
        into the global ``n1`` (bitset/merge) or come from the block's
        sparse Gram product; either way the reduction over blocks is
        exact, and every block's choice is returned for
        ``details["shards"]``.

        Returns
        -------
        tuple[numpy.ndarray, list[dict]]
            ``(n1, blocks)``: the per-pair intersection counts, and one
            ``{"block", "rows", "pairs", "backend"}`` record per shard
            block that held pairs.
        """
        ia = np.asarray(ia, dtype=np.int64)
        ib = np.asarray(ib, dtype=np.int64)
        n1 = np.zeros(ia.size, dtype=np.int64)
        if ia.size == 0:
            return n1, []
        sa = plan.shard_of_rows(ia)
        sb = plan.shard_of_rows(ib)
        lo_blk = np.minimum(sa, sb)
        hi_blk = np.maximum(sa, sb)
        order = np.lexsort((hi_blk, lo_blk))
        keys = lo_blk[order] * plan.num_shards + hi_blk[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(keys)) + 1, [keys.size])
        )
        blocks: list[dict] = []
        for b0, b1 in zip(starts[:-1], starts[1:]):
            members = order[b0:b1]
            s, t = int(lo_blk[members[0]]), int(hi_blk[members[0]])
            slo, shi = int(plan.offsets[s]), int(plan.offsets[s + 1])
            tlo, thi = int(plan.offsets[t]), int(plan.offsets[t + 1])
            # Stack the block's fragment(s) into one local CSR.
            if s == t:
                sub_indptr = indptr[slo : shi + 1] - indptr[slo]
                sub_columns = columns[indptr[slo] : indptr[shi]]
                rows = shi - slo

                def local(r: np.ndarray) -> np.ndarray:
                    return r - slo

            else:
                lengths = np.concatenate(
                    (
                        np.diff(indptr[slo : shi + 1]),
                        np.diff(indptr[tlo : thi + 1]),
                    )
                )
                sub_columns = np.concatenate(
                    (
                        columns[indptr[slo] : indptr[shi]],
                        columns[indptr[tlo] : indptr[thi]],
                    )
                )
                sub_indptr = np.zeros(lengths.size + 1, dtype=np.int64)
                np.cumsum(lengths, out=sub_indptr[1:])
                rows = (shi - slo) + (thi - tlo)
                s_rows = shi - slo

                def local(r: np.ndarray) -> np.ndarray:
                    return np.where(r < shi, r - slo, s_rows + (r - tlo))

            backend = choose_backend(rows, members.size, domain)
            n1[members] = pairwise_intersections(
                sub_indptr,
                sub_columns,
                local(ia[members]),
                local(ib[members]),
                domain,
                backend=backend,
            )
            blocks.append(
                {
                    "block": (s, t),
                    "rows": int(rows),
                    "pairs": int(members.size),
                    "backend": backend,
                }
            )
        return n1, blocks

"""Pluggable shard transports: *how* a shard plan's ranges execute.

PR 5 welded shard execution to one substrate — a fork pool with a
SharedMemory fragment return — and PR 6 welded the resilience envelope
to that pool. But nothing about either is fork-specific: a shard task is
a pure function of ``(graph, range, epsilon, entropy, epoch, versions)``
with a byte-identity guarantee, so *where* it runs is a deployment
decision, not a correctness one. This module carves that decision into
three layers:

* :class:`ShardSpec` / :class:`ShardResult` / :func:`execute_spec` —
  the work order, its answer, and the one pure compute routine every
  substrate shares (keyed draw, row sizes, optional in-worker pairwise
  ``N1`` reduction). Inline execution, fork workers, socket workers and
  the terminal degradation path all call the same function, which is
  what makes the byte-identity contract a single place to audit.
* :class:`ShardTransport` — the substrate contract
  (``submit(spec) -> future``, ``finalize``, ``recycle``, ``close``,
  capability flags) with three implementations:
  :class:`InlineTransport` (no processes),
  :class:`ForkTransport` (the PR 5 fork + SharedMemory pool,
  behavior- and byte-identical to the welded version), and
  :class:`SocketTransport` (remote workers over TCP speaking the
  length-prefixed frames of :mod:`repro.protocol.wire`, with a
  :class:`WorkerRegistry` tracking liveness and re-dispatching ranges
  away from dead workers).
* :func:`drive` — the transport-agnostic retry driver: wave-scaled
  deadlines, keyed-Philox backoff, fault classification, CRC32
  verification and terminal inline degradation, lifted verbatim out of
  ``ShardedRunner`` so every transport — including ones that don't
  exist yet — inherits the whole resilience envelope unchanged.

Determinism note: re-dispatch is safe on *every* transport for the same
reason it was safe on the fork pool — a retry replays the identical
keyed stream, so a range that bounces between a dead socket worker, a
live one, and finally the parent's inline fallback still returns the
same bytes. ``docs/distributed-guide.md`` is the contract document.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
import tracemalloc
import weakref
import zlib
from collections import Counter, OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as _wait_futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.engine.bulkrr import keyed_bulk_randomized_response
from repro.engine.faults import FAULT_EXIT_CODE, FaultPlan
from repro.engine.pairwise import choose_backend, pairwise_intersections
from repro.errors import PayloadIntegrityError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.protocol import wire

__all__ = [
    "ShardSpec",
    "ShardResult",
    "ShardTransport",
    "InlineTransport",
    "ForkTransport",
    "SocketTransport",
    "WorkerHandle",
    "WorkerRegistry",
    "RetryPolicy",
    "execute_spec",
    "drive",
    "make_transport",
    "fork_available",
]

# Worker-side context registry. Entries are registered in the parent
# *before* its pool forks, so every worker inherits them copy-on-write;
# tasks then reference their context by token instead of pickling the
# graph per range. (Socket workers have no shared memory with the parent
# and install the graph once over the wire instead — see
# :meth:`SocketTransport._install`.)
_WORKER_CONTEXTS: dict[int, tuple[BipartiteGraph, Layer]] = {}
_NEXT_TOKEN = 0

# Keyed-stream domain tag for retry-backoff jitter ("BACK"): the jitter
# that decorrelates retry stampedes must itself be deterministic per
# (entropy, epoch, attempt), or reruns of the same failure schedule
# would not be reproducible.
_BACKOFF_TAG = 0x4241434B

# Exceptions that classify as *worker faults* — transient, re-dispatchable
# failures of the execution substrate rather than of the draw itself.
# Anything else (a PrivacyError from bad epsilon, a GraphError) is a real
# bug and propagates immediately after the segment sweep. The tuple is
# transport-agnostic: a dead fork pool, an expired deadline, a corrupt
# shm fragment and a refused TCP connection all land in it.
_WORKER_FAULTS = (
    BrokenProcessPool,
    FutureTimeoutError,
    TimeoutError,
    PayloadIntegrityError,
    OSError,
)

# Bounded grace for joining worker pools at close/release time. A worker
# that never exits is exactly the stall ``timeout_s`` defends against,
# so teardown escalates to terminate (then kill) instead of inheriting
# the hang — close() and interpreter shutdown must stay bounded.
_JOIN_GRACE_S = 5.0

_LAYER_TAGS = {Layer.UPPER: 0, Layer.LOWER: 1}
_TAG_LAYERS = {0: Layer.UPPER, 1: Layer.LOWER}


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _fault_kind(exc: BaseException) -> str:
    """Map a caught worker fault to its ``faults`` counter key.

    The deadline check precedes the transport bucket because
    ``TimeoutError`` is an ``OSError`` subclass.
    """
    if isinstance(exc, (FutureTimeoutError, TimeoutError)):
        return "timeouts"
    if isinstance(exc, PayloadIntegrityError):
        return "payload_errors"
    return "worker_deaths"


def _columns_checksum(columns: np.ndarray) -> int:
    """CRC32 of a fragment's column bytes — the transport integrity tag."""
    return int(zlib.crc32(np.ascontiguousarray(columns)))


def empty_faults() -> dict:
    return {
        "retries": 0,  # task re-dispatches after a fault round
        "timeouts": 0,  # per-task deadline expiries
        "worker_deaths": 0,  # dead pools / dead sockets / dead workers
        "payload_errors": 0,  # checksum mismatches on the fragment handoff
        "backoff_s": [],  # keyed-jitter waits before each retry round
        "degraded_ranges": [],  # ranges that fell back to inline execution
        "reclaimed_segments": 0,  # orphaned shm segments swept and unlinked
    }


# ----------------------------------------------------------------------
# The work order, its answer, and the one shared compute routine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard's work order: everything its keyed draw is a function of.

    ``vertices`` are the range's global vertex ids; ``lo``/``hi`` locate
    the range inside its plan (provenance only — the draw never reads
    them). ``ia``/``ib``, when given, are *local* row slots into
    ``vertices``: the diagonal pairs the executor should reduce to
    ``N1`` scalars itself instead of shipping rows. ``want_fragment``
    controls whether the noisy CSR fragment travels back at all — a
    shard whose every pair reduces locally returns sizes + scalars only,
    which is the whole traffic win of in-worker reduction.
    """

    shard: int
    lo: int
    hi: int
    vertices: np.ndarray
    epsilon: float
    entropy: int
    epoch: int
    attempt: int = 0
    versions: np.ndarray | None = None
    domain: int = 0
    ia: np.ndarray | None = None
    ib: np.ndarray | None = None
    want_fragment: bool = True
    measure: bool = False


@dataclass
class ShardResult:
    """One executed spec's answer plus its transport accounting.

    ``sizes`` (per-row noisy id counts) always come back — they are what
    ``N2`` and the upload accounting need. ``indptr``/``columns`` are
    present iff the spec asked for the fragment; ``n1`` iff it carried
    local pairs. ``payload_bytes`` counts what actually crossed the
    transport to the parent (0 for inline execution), which is the
    quantity ``details["shards"]["transport"]`` and the transport
    benchmark report.
    """

    shard: int
    attempt: int
    sizes: np.ndarray
    indptr: np.ndarray | None = None
    columns: np.ndarray | None = None
    n1: np.ndarray | None = None
    backend: str | None = None
    peak_bytes: int = 0
    payload_bytes: int = 0


def execute_spec(
    graph: BipartiteGraph, layer: Layer, spec: ShardSpec
) -> ShardResult:
    """Execute one spec: keyed draw, row sizes, optional local pairwise.

    The single pure compute routine behind every transport *and* the
    terminal inline degradation — a spec executed here, in a forked
    worker, or on a remote socket worker produces identical bytes,
    because the draw is keyed by ``(entropy, epoch, vertex, version)``
    and the pairwise reduction is exact integer counting under every
    backend. ``spec.attempt`` deliberately does not participate.
    """
    if spec.measure:
        tracemalloc.start()
    indptr, columns = keyed_bulk_randomized_response(
        graph,
        layer,
        spec.vertices,
        spec.epsilon,
        entropy=spec.entropy,
        epoch=spec.epoch,
        versions=spec.versions,
    )
    peak = 0
    if spec.measure:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    sizes = np.diff(indptr)
    n1 = None
    backend = None
    if spec.ia is not None and spec.ia.size:
        backend = choose_backend(
            int(spec.vertices.size), int(spec.ia.size), spec.domain
        )
        n1 = pairwise_intersections(
            indptr, columns, spec.ia, spec.ib, spec.domain, backend=backend
        )
    return ShardResult(
        shard=spec.shard,
        attempt=spec.attempt,
        sizes=sizes,
        indptr=indptr if spec.want_fragment else None,
        columns=columns if spec.want_fragment else None,
        n1=n1,
        backend=backend,
        peak_bytes=int(peak),
    )


# ----------------------------------------------------------------------
# The transport contract
# ----------------------------------------------------------------------
class ShardTransport:
    """Substrate contract the retry driver runs shard specs against.

    A transport answers *how work runs*: it turns a :class:`ShardSpec`
    into a future (``submit``), turns the future's raw value into a
    verified :class:`ShardResult` (``finalize``), recovers from a fault
    round (``recycle``), reclaims leaked resources (``sweep`` /
    ``reap``) and shuts down (``close`` — idempotent, and safe on a
    transport that never started). ``parallel`` is the capability flag
    the driver consults before fanning out at all; ``can_reduce``
    advertises in-worker pairwise reduction.
    """

    name = "abstract"
    can_reduce = True

    def bind(self, graph: BipartiteGraph, layer: Layer, *, delta=None) -> None:
        """Point the transport at the serving context (idempotent).

        ``delta``, when given, is the :class:`~repro.graph.delta.DeltaLog`
        that carries the *previous* bound graph to ``graph`` — a hint
        transports with remote state (the socket cluster) use to push an
        edge delta instead of re-shipping the snapshot. Transports whose
        workers see the parent's memory directly ignore it.
        """
        raise NotImplementedError

    @property
    def parallel(self) -> bool:
        """True when submit() actually fans out to workers."""
        return False

    @property
    def workers(self) -> int:
        """Concurrent execution slots — the driver's wave divisor."""
        return 1

    def submit(self, spec: ShardSpec) -> Future:
        raise NotImplementedError

    def finalize(
        self, spec: ShardSpec, raw, *, verify: bool = True
    ) -> ShardResult:
        """Turn a future's raw value into a verified :class:`ShardResult`."""
        return raw

    def recycle(self, failed: list[ShardSpec]) -> int:
        """Recover the substrate after a fault round; returns reclaimed.

        Called with the specs that faulted this round. The fork pool
        retires and rebuilds; the socket transport drops suspect
        connections and refreshes liveness. Whatever orphaned resources
        the recovery reclaims are counted for ``faults``.
        """
        return 0

    def sweep(self) -> int:
        """Reclaim leaked resources on the error path; returns reclaimed."""
        return 0

    def reap(self) -> int:
        """Opportunistic start-of-draw cleanup; returns reclaimed."""
        return 0

    def close(self) -> None:
        """Release everything. Idempotent; safe if never started."""

    def describe(self) -> dict:
        """Static identity for ``details["shards"]["transport"]``."""
        return {"name": self.name, "workers": int(self.workers)}

    def __enter__(self) -> "ShardTransport":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class InlineTransport(ShardTransport):
    """No processes, no sockets: every spec executes in the caller.

    The degenerate transport — and the terminal degradation target every
    other transport falls back to. ``parallel`` is False, so the driver
    never even builds a retry loop; specs run serially via
    :func:`execute_spec` with ``attempt = -1``.
    """

    name = "inline"

    def __init__(self):
        self._graph: BipartiteGraph | None = None
        self._layer: Layer | None = None

    def bind(self, graph: BipartiteGraph, layer: Layer, *, delta=None) -> None:
        self._graph, self._layer = graph, layer

    def submit(self, spec: ShardSpec) -> Future:
        future: Future = Future()
        try:
            future.set_result(execute_spec(self._graph, self._layer, spec))
        except BaseException as exc:  # pragma: no cover - surfaced by driver
            future.set_exception(exc)
        return future


# ----------------------------------------------------------------------
# Fork transport (the PR 5/6 pool, carved out behavior-identical)
# ----------------------------------------------------------------------
def _fork_run_spec(token: int, spec: ShardSpec, shm_name: str | None) -> tuple:
    """Execute a spec in a forked worker; ship columns through shm.

    Fragment results return ``("shm", indptr, name, n_ids, sizes, n1,
    backend, peak, checksum)`` — the columns land in a ``SharedMemory``
    block *created under the parent-chosen name* (shipping multi-MB
    fragments through the result pipe interleaves 64 KiB reads with the
    other workers' compute; an shm handoff is one parent-side memcpy).
    Reduced results are small and return straight through the pipe as
    ``("pipe", sizes, n1, backend, peak, checksum)`` with a CRC over
    ``sizes + n1``.

    The chaos hook keys on ``(spec.shard, spec.attempt)`` exactly as the
    welded runner's did: kill/delay fire before the draw, poison
    corrupts the transported payload *after* its checksum was taken from
    the good draw (so parent verification must catch it), and
    kill_after_write exits in the leak window the segment registry
    sweep covers.
    """
    graph, layer = _WORKER_CONTEXTS[token]
    plan = FaultPlan.from_env()
    action = plan.action_for(spec.shard, spec.attempt) if plan else None
    if action is not None and action.kind == "kill":
        os._exit(FAULT_EXIT_CODE)
    if action is not None and action.kind == "delay":
        time.sleep(action.delay_s)
    result = execute_spec(graph, layer, spec)
    poison = action is not None and action.kind == "poison"
    if not spec.want_fragment:
        n1 = result.n1 if result.n1 is not None else np.empty(0, np.int64)
        checksum = wire.reduced_checksum(result.sizes, n1)
        if poison:
            if n1.size:
                n1 = n1.copy()
                n1[0] = ~n1[0]
            elif result.sizes.size:
                result.sizes = result.sizes.copy()
                result.sizes[0] = ~result.sizes[0]
            else:
                checksum ^= 1
        out = (
            "pipe", result.sizes, n1, result.backend,
            result.peak_bytes, checksum,
        )
        if action is not None and action.kind == "kill_after_write":
            os._exit(FAULT_EXIT_CODE)
        return out
    columns = result.columns
    checksum = _columns_checksum(columns)
    block = shared_memory.SharedMemory(
        create=True, name=shm_name, size=max(1, columns.nbytes)
    )
    np.ndarray(columns.shape, dtype=np.int64, buffer=block.buf)[:] = columns
    if poison:
        if columns.nbytes:
            view = np.ndarray(columns.shape, dtype=np.int64, buffer=block.buf)
            view[0] = ~view[0]
        else:
            checksum ^= 1
    block.close()  # parent unlinks after copying
    if action is not None and action.kind == "kill_after_write":
        os._exit(FAULT_EXIT_CODE)  # the leak window the registry sweep covers
    return (
        "shm", result.indptr, shm_name, int(columns.size), result.sizes,
        result.n1, result.backend, result.peak_bytes, checksum,
    )


def _sweep_segments(names: set[str], *, drop_missing: bool) -> int:
    """Unlink every registered segment that exists; return the count.

    Names whose segment does not (yet) exist are kept in the registry
    unless ``drop_missing`` — a delayed zombie worker may still create
    its segment later, and only close() (which joins every worker first)
    can prove nobody ever will.
    """
    reclaimed = 0
    for name in list(names):
        try:
            block = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            if drop_missing:
                names.discard(name)
            continue
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            pass
        names.discard(name)
        reclaimed += 1
    return reclaimed


def _join_pool(pool: ProcessPoolExecutor, grace_s: float | None = None) -> None:
    """Join a pool's workers under a bounded grace, then force the rest.

    Healthy workers drain and exit within the grace; a permanently
    wedged one — the stall ``timeout_s`` exists to defend against — is
    terminated (and, failing that, killed) so close() and interpreter
    shutdown never inherit the hang.
    """
    if grace_s is None:
        grace_s = _JOIN_GRACE_S
    procs = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken pools may object
        pass
    deadline = time.monotonic() + grace_s
    for proc in procs:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - SIGTERM-immune worker
            proc.kill()
            proc.join(timeout=1.0)


def _release_fork(
    token: int, pool_box: list, retired: list, segments: set
) -> None:
    """Free a fork transport's pools, context registration and segments.

    Shared by :meth:`ForkTransport.close` and the transport's GC
    finalizer, so a transport dropped without ``close()`` cannot pin its
    graph in ``_WORKER_CONTEXTS``, leave worker processes behind for the
    interpreter's lifetime, or strand ``/dev/shm`` segments created by
    zombie workers. Retired pools (torn down with ``wait=False`` after a
    fault) are joined here under :data:`_JOIN_GRACE_S`, with stragglers
    terminated, so every would-be segment creator is provably gone —
    without an unbounded wait — before the final sweep.
    """
    pool = pool_box[0]
    if pool is not None:
        _join_pool(pool)
        pool_box[0] = None
    for old_pool, _names in retired:
        _join_pool(old_pool)
    retired.clear()
    _WORKER_CONTEXTS.pop(token, None)
    _sweep_segments(segments, drop_missing=True)


class ForkTransport(ShardTransport):
    """The fork + SharedMemory pool, carved out of ``ShardedRunner``.

    Behavior- and byte-identical to the welded PR 5/6 machinery: workers
    inherit the graph copy-on-write at fork time through the module
    context registry, fragments return through parent-named shm
    segments verified by CRC32, suspect pools retire without blocking
    and are reaped once their workers provably exited, and every
    parent-issued segment name is registered *before* dispatch so no
    fault window can leak ``/dev/shm``.
    """

    name = "fork"

    def __init__(self, *, max_workers: int | None = None):
        global _NEXT_TOKEN
        if max_workers is not None and max_workers <= 0:
            raise ProtocolError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        self._graph: BipartiteGraph | None = None
        self._layer: Layer | None = None
        self._token = _NEXT_TOKEN
        _NEXT_TOKEN += 1
        # The pool lives in a one-slot box so the GC finalizer can free
        # it without holding a reference to the transport itself; pools
        # torn down after a fault are parked in `_retired` as
        # `(pool, names)` — the segment names their zombie workers might
        # still create — reaped once every worker has exited, and
        # force-joined (bounded) at close time. `_segments` holds every
        # parent-issued shm name not yet unlinked.
        self._pool_box: list = [None]
        self._retired: list = []
        self._segments: set[str] = set()
        self._seq = 0
        # (shard, attempt) -> segment name for specs in flight this round.
        self._names: dict[tuple[int, int], str] = {}
        self._finalizer = weakref.finalize(
            self,
            _release_fork,
            self._token,
            self._pool_box,
            self._retired,
            self._segments,
        )

    # -- context ------------------------------------------------------
    def bind(self, graph: BipartiteGraph, layer: Layer, *, delta=None) -> None:
        """Register (or re-register) the copy-on-write worker context.

        A live pool holds the previous graph through fork-time
        inheritance and cannot see a swap, so rebinding to a different
        snapshot joins and drops the current pool; the next submit forks
        fresh workers that inherit the new context. A no-op when already
        bound to the same ``(graph, layer)``. ``delta`` is ignored:
        forked workers inherit the new snapshot for free.
        """
        prev = _WORKER_CONTEXTS.get(self._token)
        if prev is not None and prev[0] is graph and prev[1] is layer:
            return
        if prev is not None:
            pool = self._pool_box[0]
            if pool is not None:
                _join_pool(pool)
                self._pool_box[0] = None
        _WORKER_CONTEXTS[self._token] = (graph, layer)
        self._graph, self._layer = graph, layer

    @property
    def parallel(self) -> bool:
        return self.max_workers > 1 and fork_available()

    @property
    def workers(self) -> int:
        return self.max_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool_box[0] is None:
            # Start the shm resource tracker *before* forking so every
            # worker inherits it: create (worker) and unlink (parent)
            # then talk to one tracker and nothing is reported leaked.
            # Sized by the worker cap alone — workers fork lazily on
            # demand, and sizing by one draw's range count would
            # permanently under-parallelize every later, larger draw.
            resource_tracker.ensure_running()
            self._pool_box[0] = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._pool_box[0]

    def _new_segment_name(self, shard: int, attempt: int) -> str:
        """A fresh parent-owned shm name, registered before dispatch.

        Including the attempt keeps a retry's segment distinct from one
        a delayed zombie dispatch of the same shard may create later.
        """
        self._seq += 1
        name = f"repro_{os.getpid():x}_{self._seq:x}_{shard}_{attempt}"
        self._segments.add(name)
        return name

    # -- the contract --------------------------------------------------
    def submit(self, spec: ShardSpec) -> Future:
        pool = self._ensure_pool()
        name = None
        if spec.want_fragment:
            name = self._new_segment_name(spec.shard, spec.attempt)
        try:
            future = pool.submit(_fork_run_spec, self._token, spec, name)
        except BrokenProcessPool:
            # The pool died mid-submission: the task never reached a
            # worker, so nobody can ever create this segment — drop its
            # name immediately.
            if name is not None:
                self._segments.discard(name)
            raise
        if name is not None:
            self._names[(spec.shard, spec.attempt)] = name
        return future

    def finalize(
        self, spec: ShardSpec, raw, *, verify: bool = True
    ) -> ShardResult:
        if raw[0] == "pipe":
            _, sizes, n1, backend, peak, checksum = raw
            if verify and wire.reduced_checksum(sizes, n1) != checksum:
                raise PayloadIntegrityError(
                    f"reduced block for shard {spec.shard} failed checksum "
                    f"verification ({n1.size} pairs)"
                )
            return ShardResult(
                shard=spec.shard,
                attempt=spec.attempt,
                sizes=sizes,
                n1=n1 if spec.ia is not None else None,
                backend=backend,
                peak_bytes=int(peak),
                payload_bytes=int(sizes.nbytes + n1.nbytes),
            )
        _, indptr, shm_name, n_ids, sizes, n1, backend, peak, checksum = raw
        self._names.pop((spec.shard, spec.attempt), None)
        block = shared_memory.SharedMemory(name=shm_name)
        try:
            columns = np.ndarray(
                (n_ids,), dtype=np.int64, buffer=block.buf
            ).copy()
        finally:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - raced a sweep
                pass
            self._segments.discard(shm_name)
        if verify and _columns_checksum(columns) != checksum:
            raise PayloadIntegrityError(
                f"shard fragment {shm_name!r} failed checksum verification "
                f"({n_ids} ids)"
            )
        return ShardResult(
            shard=spec.shard,
            attempt=spec.attempt,
            sizes=sizes,
            indptr=indptr,
            columns=columns,
            n1=n1,
            backend=backend,
            peak_bytes=int(peak),
            payload_bytes=int(columns.nbytes + sizes.nbytes),
        )

    def recycle(self, failed: list[ShardSpec]) -> int:
        """Retire the suspect pool and reclaim orphaned segments.

        The pool is torn down without waiting (a stuck worker must not
        block the retry path) and parked with the segment names its
        zombies might still create; dead retired pools are reaped, and
        whatever orphaned segments exist now are unlinked.
        """
        zombie_names = set()
        for spec in failed:
            name = self._names.pop((spec.shard, spec.attempt), None)
            if name is not None:
                zombie_names.add(name)
        pool = self._pool_box[0]
        if pool is not None:
            self._pool_box[0] = None
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken pools may object
                pass
            self._retired.append((pool, zombie_names))
        reclaimed = _sweep_segments(self._segments, drop_missing=False)
        reclaimed += self.reap()
        return reclaimed

    def sweep(self) -> int:
        return _sweep_segments(self._segments, drop_missing=False)

    def reap(self) -> int:
        """Reap retired pools whose workers all exited; returns reclaimed.

        Non-blocking: pools with a still-live worker are kept. A dead
        pool can never create another segment, so whichever of its
        registered names exist are unlinked and the still-missing ones
        leave the registry for good — without this, a long-running
        server with recurring worker faults would grow ``_segments``
        without bound (one name per dispatch whose worker died before
        ``shm.create``).
        """
        reclaimed = 0
        survivors = []
        for pool, names in self._retired:
            procs = list((getattr(pool, "_processes", None) or {}).values())
            if any(proc.is_alive() for proc in procs):
                survivors.append((pool, names))
                continue
            doomed = names & self._segments
            reclaimed += _sweep_segments(doomed, drop_missing=True)
            self._segments -= names
        self._retired[:] = survivors
        return reclaimed

    def close(self) -> None:
        _release_fork(
            self._token, self._pool_box, self._retired, self._segments
        )
        self._names.clear()


# ----------------------------------------------------------------------
# Socket transport: remote workers speaking protocol/wire.py frames
# ----------------------------------------------------------------------
def read_frame(sock: socket.socket) -> tuple[int, object]:
    """Read and decode exactly one wire frame from a socket.

    The 5-byte header is read first and its declared length checked
    against :data:`~repro.protocol.wire.MAX_FRAME_PAYLOAD` *before* the
    payload is buffered, so a corrupt header cannot demand a giant
    allocation. Raises ``ConnectionError`` (an ``OSError``, hence a
    worker fault) on EOF mid-frame.
    """
    header = _read_exact(sock, wire.frame_overhead())
    _, length = wire._HEADER.unpack(header)
    if length > wire.MAX_FRAME_PAYLOAD:
        raise ProtocolError(
            f"peer declared a {length}-byte frame beyond the wire limit"
        )
    body = _read_exact(sock, length)
    kind, payload, _ = wire.decode_frame(header + body)
    return kind, payload


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("worker closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class WorkerHandle:
    """One remote worker: its address, connection, and liveness state."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = int(port)
        self.sock: socket.socket | None = None
        self.lock = threading.Lock()  # serializes request/response pairs
        self.alive = True
        self.digest: int | None = None  # graph the worker currently holds
        self.caps = 0
        self.last_seen = 0.0
        self.dispatched = 0
        self.delta_pushes = 0  # MUTATE frames this worker absorbed
        self.diverged = 0  # delta pushes refused → full re-install

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def drop(self) -> None:
        """Close the connection (keeps the handle; reconnects lazily)."""
        sock, self.sock, self.digest = self.sock, None, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already dead
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"WorkerHandle({self.address}, {state})"


class WorkerRegistry:
    """Tracks a socket cluster's workers and their liveness.

    The registry is what makes re-dispatch *deterministic in effect*:
    a dead worker leaves the live list, the retry driver re-submits its
    ranges, and placement over the survivors changes — but the keyed
    draw makes the bytes identical wherever the range lands, so the
    failover is invisible in the output.
    """

    def __init__(self, addresses):
        handles = []
        for entry in addresses:
            if isinstance(entry, WorkerHandle):
                handles.append(entry)
                continue
            if isinstance(entry, str):
                host, _, port = entry.rpartition(":")
                if not host or not port.isdigit():
                    raise ProtocolError(
                        f"worker address {entry!r} is not host:port"
                    )
                handles.append(WorkerHandle(host, int(port)))
            else:
                host, port = entry
                handles.append(WorkerHandle(host, int(port)))
        if not handles:
            raise ProtocolError("a socket transport needs at least one worker")
        self.handles = handles

    def live(self) -> list[WorkerHandle]:
        return [h for h in self.handles if h.alive]

    def mark_dead(self, handle: WorkerHandle) -> None:
        handle.alive = False
        handle.drop()

    def describe(self) -> list[dict]:
        return [
            {
                "address": h.address,
                "alive": h.alive,
                "dispatched": h.dispatched,
                "digest": h.digest,
                "delta_pushes": h.delta_pushes,
                "diverged": h.diverged,
            }
            for h in self.handles
        ]


class SocketTransport(ShardTransport):
    """Shard execution on remote workers over length-prefixed TCP frames.

    Speaks the :mod:`repro.protocol.wire` shard-transport frames to
    ``python -m repro.engine.worker`` processes: HELLO exchanges
    capabilities and the graph digest each side holds, GRAPH installs
    the snapshot once per worker (re-sent only when the digest moves,
    e.g. after an incremental rotation), SHARD_SPEC carries one work
    order, and the answer is one REDUCED frame (sizes + locally reduced
    ``N1`` scalars) followed by a FRAGMENT frame iff the spec asked for
    rows — both integrity-tagged with the same CRC32 checksum word the
    fork transport's shm handoff uses, verified at decode time.

    Each worker connection is serialized by its handle lock; concurrent
    specs fan out over a thread pool and round-robin across *live*
    workers, so a worker that dies mid-draw (detected as a connection
    fault, or by a heartbeat PING during :meth:`recycle`) simply stops
    receiving ranges while the retry driver re-dispatches its pending
    ones to the survivors — byte-identically.

    **Streaming ingest.** A ``bind(..., delta=log)`` records the edge
    delta that carried the previous snapshot to the new one in a bounded
    per-snapshot chain; a worker whose installed digest is on the chain
    absorbs the rotation as one MUTATE frame (net inserts + deletes)
    instead of a full GRAPH re-ship, verified end-to-end by the target
    content digest in its DELTA_ACK. A worker off the chain — it died
    and rejoined mid-stream, or fell behind the chain cap — diverges and
    falls back to the full install. The ``ingest`` traffic ledger in
    :meth:`describe` counts both paths and the bytes the deltas saved.
    """

    name = "socket"

    # Historical snapshots a delta chain reaches back to. Matches the
    # worker's GRAPH_CACHE_LIMIT: a base older than the worker could
    # still hold is a guaranteed UNKNOWN_BASE round trip.
    CHAIN_LIMIT = 8

    def __init__(
        self,
        workers,
        *,
        connect_timeout_s: float = 10.0,
        request_timeout_s: float | None = None,
    ):
        self.registry = (
            workers
            if isinstance(workers, WorkerRegistry)
            else WorkerRegistry(workers)
        )
        self.connect_timeout_s = float(connect_timeout_s)
        self.request_timeout_s = request_timeout_s
        self._graph: BipartiteGraph | None = None
        self._layer: Layer | None = None
        self._digest: int | None = None
        self._graph_frame: bytes | None = None
        self._threads: ThreadPoolExecutor | None = None
        self._seq = 0
        self._closed = False
        # base content digest -> {edge: final-membership} ops reaching
        # the *current* graph; oldest bases evicted at CHAIN_LIMIT.
        self._chain: OrderedDict[int, dict] = OrderedDict()
        self._mutate_frames: dict[int, bytes] = {}
        self._ingest = {
            "delta_pushes": 0,  # rotations absorbed as MUTATE frames
            "delta_bytes": 0,  # what the MUTATE frames cost
            "delta_saved_bytes": 0,  # graph re-ships those frames avoided
            "graph_installs": 0,  # full GRAPH frames shipped
            "graph_bytes": 0,  # what the full installs cost
            "diverged": 0,  # delta pushes refused by the worker
        }

    # -- context ------------------------------------------------------
    def bind(self, graph: BipartiteGraph, layer: Layer, *, delta=None) -> None:
        if self._graph is graph and self._layer is layer:
            return
        ops = None
        if (
            delta is not None
            and self._graph is not None
            and delta.base is self._graph
            and self._layer is layer
        ):
            ops = delta.net_ops()
        if ops:
            # Extend every historical chain entry (last-op-wins overlay,
            # the same composition DeltaLog.compose performs) so workers
            # several snapshots behind still resync with one push, then
            # record the new hop under the outgoing snapshot's digest.
            prev_digest = self._ensure_digest()
            for base, chained in self._chain.items():
                self._chain[base] = {**chained, **ops}
            self._chain[prev_digest] = dict(ops)
            while len(self._chain) > self.CHAIN_LIMIT:
                self._chain.popitem(last=False)
        else:
            # Not an incremental hop (fresh bind, or a delta recorded
            # against some other snapshot): no chain can be trusted.
            self._chain.clear()
        self._mutate_frames.clear()
        self._graph, self._layer = graph, layer
        # Lazily recomputed: workers re-install on digest mismatch at
        # their next submit, which is how a rebind propagates.
        self._digest = None
        self._graph_frame = None

    @property
    def parallel(self) -> bool:
        return not self._closed and bool(self.registry.live())

    @property
    def workers(self) -> int:
        return max(1, len(self.registry.live()))

    def _ensure_digest(self) -> int:
        if self._digest is None:
            graph = self._graph
            self._graph_frame = wire.encode_graph(
                graph.num_upper, graph.num_lower, graph.edges
            )
            self._digest = wire.graph_digest(
                graph.num_upper, graph.num_lower, graph.edges
            )
        return self._digest

    def _pool(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=max(2, 2 * len(self.registry.handles)),
                thread_name_prefix="shard-tx",
            )
        self._closed = False
        return self._threads

    # -- connection management ----------------------------------------
    def _connect(self, handle: WorkerHandle) -> socket.socket:
        sock = socket.create_connection(
            (handle.host, handle.port), timeout=self.connect_timeout_s
        )
        sock.settimeout(self.request_timeout_s)
        digest = self._ensure_digest()
        sock.sendall(
            wire.encode_hello(
                wire.WIRE_VERSION,
                wire.CAP_REDUCE | wire.CAP_VERSIONS,
                digest,
            )
        )
        kind, payload = read_frame(sock)
        if kind != wire.KIND_HELLO:
            raise ProtocolError(
                f"worker {handle.address} answered HELLO with kind {kind}"
            )
        if payload["version"] != wire.WIRE_VERSION:
            raise ProtocolError(
                f"worker {handle.address} speaks wire version "
                f"{payload['version']}, parent speaks {wire.WIRE_VERSION}"
            )
        handle.caps = payload["caps"]
        handle.digest = payload["digest"]
        handle.last_seen = time.monotonic()
        return sock

    def _mutate_frame(self, base: int) -> bytes:
        """The (memoized) MUTATE frame carrying ``base`` to the bound graph."""
        frame = self._mutate_frames.get(base)
        if frame is None:
            ops = self._chain[base]
            inserts = sorted(e for e, op in ops.items() if op)
            deletes = sorted(e for e, op in ops.items() if not op)
            frame = wire.encode_mutate(
                base,
                self._ensure_digest(),
                np.array(inserts, dtype=np.int64).reshape(-1, 2),
                np.array(deletes, dtype=np.int64).reshape(-1, 2),
            )
            self._mutate_frames[base] = frame
        return frame

    def _push_delta(
        self, handle: WorkerHandle, sock: socket.socket, digest: int
    ) -> bool:
        """Try to carry a worker to ``digest`` with one MUTATE frame.

        True on an OK ack for the target digest; False (after counting
        the divergence) when the worker refused — unknown base, digest
        mismatch — in which case the stream is still frame-aligned and
        the caller falls back to the full GRAPH install.
        """
        frame = self._mutate_frame(handle.digest)
        sock.sendall(frame)
        kind, payload = read_frame(sock)
        if kind != wire.KIND_DELTA_ACK:
            raise ProtocolError(
                f"worker {handle.address} answered a delta push with "
                f"kind {kind}"
            )
        if payload["status"] == wire.DELTA_OK and payload["digest"] == digest:
            handle.digest = digest
            handle.last_seen = time.monotonic()
            handle.delta_pushes += 1
            self._ingest["delta_pushes"] += 1
            self._ingest["delta_bytes"] += len(frame)
            self._ingest["delta_saved_bytes"] += max(
                0, len(self._graph_frame) - len(frame)
            )
            return True
        handle.diverged += 1
        self._ingest["diverged"] += 1
        return False

    def _install(self, handle: WorkerHandle, sock: socket.socket) -> None:
        """Carry a worker holding a different snapshot to the bound one.

        A worker whose digest sits on the delta chain gets the rotation
        as one MUTATE push; everyone else — including a pushed worker
        that refused its delta — gets the full GRAPH frame.
        """
        digest = self._ensure_digest()
        if handle.digest == digest:
            return
        if (
            handle.digest in self._chain
            and handle.caps & wire.CAP_MUTATE
            and self._push_delta(handle, sock, digest)
        ):
            return
        sock.sendall(self._graph_frame)
        kind, payload = read_frame(sock)
        if kind != wire.KIND_HELLO or payload["digest"] != digest:
            raise ProtocolError(
                f"worker {handle.address} failed to install graph "
                f"{digest:#x}"
            )
        handle.digest = digest
        handle.last_seen = time.monotonic()
        self._ingest["graph_installs"] += 1
        self._ingest["graph_bytes"] += len(self._graph_frame)

    def _request(self, handle: WorkerHandle, spec: ShardSpec) -> dict:
        """One request/response exchange: SHARD_SPEC → REDUCED [+FRAGMENT]."""
        try:
            with handle.lock:
                if handle.sock is None:
                    handle.sock = self._connect(handle)
                sock = handle.sock
                self._install(handle, sock)
                sock.sendall(
                    wire.encode_shard_spec(
                        shard=spec.shard,
                        attempt=spec.attempt,
                        epoch=spec.epoch,
                        entropy=spec.entropy,
                        epsilon=spec.epsilon,
                        domain=spec.domain,
                        layer=_LAYER_TAGS[self._layer],
                        vertices=spec.vertices,
                        versions=spec.versions,
                        ia=spec.ia,
                        ib=spec.ib,
                        want_fragment=spec.want_fragment,
                        measure=spec.measure,
                    )
                )
                received = 0
                kind, payload = read_frame(sock)
                if kind == wire.KIND_WORKER_ERROR:
                    # A deterministic worker-side bug, not a substrate
                    # fault: re-dispatching it would reproduce it.
                    raise ProtocolError(
                        f"worker {handle.address}: {payload['message']}"
                    )
                if kind != wire.KIND_REDUCED:
                    raise ProtocolError(
                        f"worker {handle.address} answered a spec with "
                        f"kind {kind}"
                    )
                reduced = payload
                received += (
                    wire.frame_overhead()
                    + reduced["sizes"].nbytes
                    + reduced["n1"].nbytes
                    + 24
                )
                fragment = None
                if spec.want_fragment:
                    kind, fragment = read_frame(sock)
                    if kind != wire.KIND_FRAGMENT:
                        raise ProtocolError(
                            f"worker {handle.address} sent kind {kind} "
                            "instead of the requested fragment"
                        )
                    received += (
                        wire.frame_overhead()
                        + fragment["indptr"].nbytes
                        + fragment["columns"].nbytes
                        + 12
                    )
                handle.last_seen = time.monotonic()
                handle.dispatched += 1
                return {
                    "reduced": reduced,
                    "fragment": fragment,
                    "payload_bytes": received,
                }
        except socket.timeout as exc:
            # A deadline inside the socket layer is the remote analogue
            # of a fork task outliving timeout_s.
            handle.drop()
            raise TimeoutError(
                f"worker {handle.address} exceeded the request deadline"
            ) from exc
        except OSError:
            handle.drop()
            raise
        except PayloadIntegrityError:
            # The frame arrived but its bytes contradict the checksum
            # word: drop the stream (it can no longer be trusted to be
            # frame-aligned) and let the driver re-dispatch.
            handle.drop()
            raise

    # -- the contract --------------------------------------------------
    def submit(self, spec: ShardSpec) -> Future:
        live = self.registry.live()
        if not live:
            raise ConnectionError("no live socket workers remain")
        handle = live[(spec.shard + spec.attempt) % len(live)]
        return self._pool().submit(self._request, handle, spec)

    def finalize(
        self, spec: ShardSpec, raw, *, verify: bool = True
    ) -> ShardResult:
        # Checksums were verified at frame decode time (wire.decode_frame
        # raises PayloadIntegrityError on mismatch), so `verify` has
        # nothing left to do here.
        reduced = raw["reduced"]
        fragment = raw["fragment"]
        n1 = reduced["n1"]
        return ShardResult(
            shard=spec.shard,
            attempt=spec.attempt,
            sizes=reduced["sizes"],
            indptr=None if fragment is None else fragment["indptr"],
            columns=None if fragment is None else fragment["columns"],
            n1=n1 if (spec.ia is not None and n1.size) else None,
            backend="remote",
            peak_bytes=reduced["peak_bytes"],
            payload_bytes=int(raw["payload_bytes"]),
        )

    def recycle(self, failed: list[ShardSpec]) -> int:
        """Drop every suspect connection and heartbeat the cluster.

        Connections already faulted were dropped in ``_request``; the
        remaining handles get a PING, and ones that cannot answer are
        marked dead so the next round's round-robin skips them — the
        deterministic re-dispatch of a dead worker's ranges.
        """
        self.ping()
        return 0

    def ping(self) -> int:
        """Heartbeat every handle; mark unresponsive workers dead.

        Dead handles are *probed* rather than skipped: a replacement
        worker listening on the same address (or the original, restarted
        mid-stream) answers the probe's HELLO and revives its handle —
        the rejoin path of the streaming cluster. A rejoined worker's
        digest comes from its HELLO, so its next dispatch resyncs it
        through :meth:`_install` (delta push when its digest is still on
        the chain, full install otherwise). Returns the number of live
        workers after the sweep.
        """
        for handle in self.registry.handles:
            self._seq += 1
            nonce = self._seq & 0xFFFFFFFF
            try:
                with handle.lock:
                    if handle.sock is None:
                        handle.sock = self._connect(handle)
                    handle.sock.sendall(wire.encode_ping(nonce))
                    kind, payload = read_frame(handle.sock)
                    if kind != wire.KIND_PONG or payload["nonce"] != nonce:
                        raise ConnectionError("bad heartbeat answer")
                handle.last_seen = time.monotonic()
                handle.alive = True
            except (OSError, ProtocolError):
                self.registry.mark_dead(handle)
        return len(self.registry.live())

    def close(self) -> None:
        """Drop every connection and the request thread pool. Idempotent."""
        self._closed = True
        if self._threads is not None:
            self._threads.shutdown(wait=True, cancel_futures=True)
            self._threads = None
        for handle in self.registry.handles:
            handle.drop()

    def describe(self) -> dict:
        return {
            "name": self.name,
            "workers": int(self.workers),
            "cluster": self.registry.describe(),
            "ingest": dict(self._ingest),
        }


# ----------------------------------------------------------------------
# The transport-agnostic retry driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """The resilience envelope's knobs, independent of any substrate.

    ``timeout_s`` bounds a task's *execution*: a retry round waits one
    deadline per execution wave (``ceil(tasks / transport.workers)``),
    so a task queued behind other shards is never charged for queue time
    and the round's total wall wait stays bounded by
    ``waves * timeout_s``. ``max_retries`` rounds re-dispatch against a
    recycled substrate under capped exponential backoff whose jitter
    comes from the keyed Philox stream (deterministic per
    ``(entropy, epoch, attempt)``, never wall-clock randomness); after
    the budget is exhausted the remaining ranges degrade to inline
    execution in the caller — the terminal fallback that cannot fail
    the way a worker can.
    """

    timeout_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    verify_payloads: bool = True

    def __post_init__(self):
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ProtocolError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.max_retries < 0:
            raise ProtocolError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ProtocolError("backoff parameters must be >= 0")

    def backoff_wait(self, entropy: int, epoch: int, attempt: int) -> float:
        """Capped exponential backoff, jittered from the keyed stream."""
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2 ** max(0, attempt - 1)),
        )
        if base <= 0:
            return 0.0
        bitgen = np.random.Philox(
            counter=[int(attempt), int(epoch), 0, 0],
            key=[int(entropy) ^ _BACKOFF_TAG, _BACKOFF_TAG],
        )
        jitter = 0.5 + 0.5 * float(np.random.Generator(bitgen).random())
        return base * jitter


def drive(
    transport: ShardTransport,
    graph: BipartiteGraph,
    layer: Layer,
    specs: list[ShardSpec],
    policy: RetryPolicy,
    *,
    entropy: int,
    epoch: int,
    faults: dict,
    dispatches: Counter,
) -> dict[int, ShardResult]:
    """Run every spec to completion under the resilience envelope.

    The loop PR 6 built for the fork pool, expressed against the
    transport contract: submit the pending round, wait one wave-scaled
    deadline for all of it, classify what failed (deadline expiry,
    substrate death, payload corruption), recycle the substrate, back
    off on the keyed-jitter schedule, and re-dispatch — up to
    ``policy.max_retries`` rounds, after which the survivors degrade to
    inline :func:`execute_spec` with ``attempt = -1``. Non-fault
    exceptions (a PrivacyError from bad epsilon, a GraphError) are *not*
    retried: they propagate after a resource sweep, because
    re-dispatching a deterministic bug reproduces it.

    Mutates ``faults`` (an :func:`empty_faults` dict) and ``dispatches``
    (per-shard submission counts) in place; returns shard → result.
    """
    results: dict[int, ShardResult] = {}
    pending: dict[int, ShardSpec] = {spec.shard: spec for spec in specs}
    faults["reclaimed_segments"] += transport.reap()

    if transport.parallel and len(specs) > 1:
        attempt = 0
        while pending and attempt <= policy.max_retries:
            if attempt:
                wait = policy.backoff_wait(entropy, epoch, attempt)
                faults["backoff_s"].append(round(wait, 6))
                faults["retries"] += len(pending)
                if wait > 0:
                    time.sleep(wait)
            submitted: dict[int, tuple[ShardSpec, Future]] = {}
            failed: dict[int, ShardSpec] = {}
            for s, spec in pending.items():
                spec_a = replace(spec, attempt=attempt)
                try:
                    future = transport.submit(spec_a)
                except _WORKER_FAULTS as exc:
                    faults[_fault_kind(exc)] += 1
                    failed[s] = spec
                    continue
                dispatches[s] += 1
                submitted[s] = (spec_a, future)
            # One wait for the whole round. The deadline bounds a task's
            # *execution*, not its queue position: with more ranges than
            # workers a queued task is healthy, so the round gets one
            # timeout per execution wave the transport needs — which
            # also caps the total wall wait at waves * timeout_s instead
            # of tasks * timeout_s.
            expired: set = set()
            if submitted:
                futures = [f for _, f in submitted.values()]
                if policy.timeout_s is None:
                    _wait_futures(futures)
                else:
                    waves = -(-len(submitted) // max(1, transport.workers))
                    _, expired = _wait_futures(
                        futures, timeout=policy.timeout_s * waves
                    )
            for s, (spec_a, future) in submitted.items():
                if future in expired:
                    faults["timeouts"] += 1
                    failed[s] = pending[s]
                    continue
                try:
                    raw = future.result()
                    results[s] = transport.finalize(
                        spec_a, raw, verify=policy.verify_payloads
                    )
                except _WORKER_FAULTS as exc:
                    faults[_fault_kind(exc)] += 1
                    failed[s] = pending[s]
                except BaseException:
                    # A deterministic bug, not a worker fault: sweep the
                    # substrate's outstanding resources and propagate.
                    faults["reclaimed_segments"] += transport.sweep()
                    raise
            if failed:
                faults["reclaimed_segments"] += transport.recycle(
                    [replace(pending[s], attempt=attempt) for s in failed]
                )
            pending = failed
            attempt += 1
        for s, spec in sorted(pending.items()):
            faults["degraded_ranges"].append((int(spec.lo), int(spec.hi)))
    # Terminal fallback — and the whole path for serial transports or
    # single-spec draws: execute inline in the caller. attempt = -1
    # keeps a chaos plan keyed on pool attempts from firing here (inline
    # execution has no worker to kill and no payload to poison, which is
    # exactly why it is the terminal fallback).
    for s, spec in sorted(pending.items()):
        result = execute_spec(graph, layer, replace(spec, attempt=-1))
        dispatches[s] += 1
        results[s] = result
    return results


# ----------------------------------------------------------------------
def make_transport(
    kind: str,
    *,
    max_workers: int | None = None,
    workers=None,
) -> ShardTransport:
    """Build a transport by name: ``inline``, ``fork`` or ``socket``.

    ``max_workers`` sizes the fork pool; ``workers`` is the socket
    cluster's address list (``["host:port", ...]``). The CLI's
    ``serve --transport`` flag resolves through here.
    """
    if kind == "inline":
        return InlineTransport()
    if kind == "fork":
        return ForkTransport(max_workers=max_workers)
    if kind == "socket":
        if not workers:
            raise ProtocolError(
                "a socket transport needs --workers host:port[,host:port...]"
            )
        return SocketTransport(workers)
    raise ProtocolError(
        f"unknown transport {kind!r} (expected inline, fork or socket)"
    )

"""Sublinear-memory sketch views: blipped Bloom, vector-of-counts, HLL.

A materialized noisy row costs O(domain) expected bytes per vertex — the
memory wall between the engine and million-vertex serving. A *sketch
view* replaces the row with a fixed-size summary released once under the
same ε-edge-LDP budget:

* **Blipped Bloom** (``bloom``) — the RAPPOR construction: each neighbor
  hashes into one of ``m`` bits, every bit then passes through Warner RR
  at ``p = 1/(1 + e^ε)``. One edge change toggles at most one bit, so the
  release is ε-edge LDP. Stored packed: ``m/8`` bytes per vertex.
* **Vector of counts** (``voc``) — neighbors hash into ``m`` buckets of
  *counts*; each bucket gets independent Laplace(1/ε) noise. One edge
  change moves one bucket by 1 (sensitivity 1). ``8 m`` bytes per vertex.
* **HLL-style registers** (``hll``) — each neighbor hashes to a bucket
  and a geometric rank (trailing zeros of a second hash word); a register
  keeps the max rank. One edge change perturbs at most one register, so
  a k-ary randomized response over the register's value domain at budget
  ε makes the release ε-edge LDP. ``m`` bytes per vertex.

Estimation inverts each mechanism with the shared algebra in
:mod:`repro.privacy.debias`:

* VoC: ``Σ_j ã_j b̃_j`` has expectation ``c (1 - 1/m) + d_a d_b / m``, so
  ``ĉ = (Σ ã b̃ - d̂_a d̂_b / m) / (1 - 1/m)`` is exactly unbiased
  (independent noise on the two sides; ``d̂ = Σ ã_j`` is the exact-count
  sum plus Laplace noise).
* Bloom: the per-bit zero indicator ``ẑ_j = 1 - φ(y_j)`` is unbiased for
  "bucket j empty", ``E[Σ ẑ_j] = m (1 - 1/m)^d``, so linear counting
  ``d̂ = ln(Σ ẑ / m) / ln(1 - 1/m)`` estimates the cardinality and the
  per-bucket *product* ``ẑ^a_j ẑ^b_j`` (independent sides) estimates the
  union; the intersection is inclusion–exclusion. Asymptotically
  unbiased (the log is nonlinear), with a closed-form delta-method
  variance.
* HLL: for a threshold ``t``, ``P(register ≤ t) = (1 - 2^{-t}/m)^d`` —
  Bloom is the ``t = 0`` special case with ``2^{-t}/m`` replaced by
  ``1/m``. The k-RR CDF debias gives an unbiased per-register indicator
  estimate; threshold-``t`` linear counting with a per-pair adaptive
  ``t`` (the one keeping the debiased CDF nearest 1/2, where the log
  inversion is best conditioned) yields cardinalities and, via register
  products, unions.

Every noise draw can come from the keyed Philox sketch streams
(:func:`~repro.engine.bulkrr.keyed_sketch_uniforms`, counter ``[block,
family-stage, vertex, epoch]``), making sketch views redraw-deterministic
under the bounded-cache contract and shard-invariant by construction.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.engine.bulkrr import (
    KEYED_STAGE_SKETCH_BLOOM,
    KEYED_STAGE_SKETCH_HLL,
    KEYED_STAGE_SKETCH_VOC,
    gather_rows,
    keyed_sketch_uniforms,
    philox4x64,
)
from repro.errors import ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.debias import (
    debias_bit,
    debias_bit_variance,
    krr_cdf_variance,
    krr_probabilities,
)
from repro.privacy.mechanisms import flip_probability
from repro.privacy.rng import RngLike, ensure_rng

__all__ = [
    "SKETCH_KINDS",
    "HLL_EPSILON_FLOOR",
    "SketchConfig",
    "SketchFamily",
    "BloomSketch",
    "VectorOfCountsSketch",
    "HllSketch",
    "sketch_family",
    "check_sketch_epsilon",
]

SKETCH_KINDS = ("bloom", "voc", "hll")

# Below this budget the HLL release is statistically useless: its k-RR
# runs over 31 register symbols, so the truthful-report probability is
# e^eps / (e^eps + 30) — under eps ≈ 4 most reports are replacement
# symbols and the CDF debias divides by a vanishing margin, blowing up
# the linear-counting inversion (see ROADMAP "Adaptive sketch sizing").
HLL_EPSILON_FLOOR = 4.0


def check_sketch_epsilon(
    config: "SketchConfig", epsilon: float, *, strict: bool = False
) -> None:
    """Warn (or refuse, when ``strict``) on unstable family/ε pairings.

    Today the only floor is HLL's: selecting ``hll`` below
    :data:`HLL_EPSILON_FLOOR` emits a :class:`RuntimeWarning` — or raises
    :class:`~repro.errors.ProtocolError` under ``strict=True`` — because
    the 31-symbol k-RR inversion destabilizes there. At or above the
    floor (and for every other family) this is a no-op, so callers can
    invoke it unconditionally wherever a config first meets a budget.
    """
    if config.kind != "hll" or float(epsilon) >= HLL_EPSILON_FLOOR:
        return
    message = (
        f"hll sketch at epsilon={float(epsilon):g} is below the stability "
        f"floor {HLL_EPSILON_FLOOR:g}: the {_HLL_MAX_RANK + 1}-symbol k-RR "
        f"inversion destabilizes (truthful-report margin vanishes); use "
        f"bloom/voc at this budget or raise epsilon"
    )
    if strict:
        raise ProtocolError(message)
    warnings.warn(message, RuntimeWarning, stacklevel=2)

# Public hash key: bucket assignment is not secret (the curator must
# evaluate it), only fixed — a config's hash_seed pins it.
_HASH_TAG = 0x48415348  # "HASH"
# HLL rank cap: ranks live in {0..30}, so a register value fits int8 and
# the k-RR domain is 31 symbols.
_HLL_MAX_RANK = 30
# Smallest bucket count any family accepts (below this the linear-count
# inversion has no usable range).
_MIN_BUCKETS = 8
_U53 = 1.0 / 9007199254740992.0  # 2**-53, the log-argument clamp


@dataclass(frozen=True)
class SketchConfig:
    """One sketch family pinned to a bucket count and a public hash seed.

    ``kind`` is one of :data:`SKETCH_KINDS`; ``m`` is the bucket / bit /
    register count (``bloom`` requires a multiple of 8 so views pack into
    whole bytes); ``hash_seed`` fixes the public bucket hash. Two caches
    (or shards) agree on every drawn bit iff they share the config and
    the entropy/epoch — which is why :meth:`check_compatible` style
    comparisons use config equality.
    """

    kind: str
    m: int
    hash_seed: int = 0x5EEDC0DE

    def __post_init__(self):
        if self.kind not in SKETCH_KINDS:
            raise ProtocolError(
                f"unknown sketch kind {self.kind!r}; known: {', '.join(SKETCH_KINDS)}"
            )
        if self.m < _MIN_BUCKETS:
            raise ProtocolError(
                f"sketch needs at least {_MIN_BUCKETS} buckets, got {self.m}"
            )
        if self.kind == "bloom" and self.m % 8:
            raise ProtocolError(
                f"bloom bit count must be a multiple of 8, got {self.m}"
            )

    @property
    def bytes_per_vertex(self) -> int:
        """Stored view size: packed bits, float64 buckets, or uint8 registers."""
        if self.kind == "bloom":
            return self.m // 8
        if self.kind == "voc":
            return self.m * 8
        return self.m

    @staticmethod
    def for_budget(kind: str, budget_bytes: int, hash_seed: int = 0x5EEDC0DE) -> "SketchConfig":
        """The largest config of ``kind`` fitting ``budget_bytes`` per vertex."""
        budget_bytes = int(budget_bytes)
        if kind == "bloom":
            m = budget_bytes * 8
        elif kind == "voc":
            m = budget_bytes // 8
        elif kind == "hll":
            m = budget_bytes
        else:
            raise ProtocolError(
                f"unknown sketch kind {kind!r}; known: {', '.join(SKETCH_KINDS)}"
            )
        if m < _MIN_BUCKETS:
            raise ProtocolError(
                f"a {budget_bytes}-byte budget cannot hold a {kind} sketch "
                f"(needs at least {_MIN_BUCKETS} buckets)"
            )
        return SketchConfig(kind=kind, m=m, hash_seed=hash_seed)


def _hash_words(cols: np.ndarray, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Two independent 64-bit hash words per column id (public Philox hash)."""
    cols = np.asarray(cols, dtype=np.int64)
    counters = np.empty((cols.size, 4), dtype=np.uint64)
    counters[:, 0] = cols.astype(np.uint64) + np.uint64(1)
    counters[:, 1:] = np.uint64(0)
    words = philox4x64(counters, (int(seed), _HASH_TAG))
    return words[:, 0], words[:, 1]


def _occupancy_variance(m: int, prob: float, d: np.ndarray) -> np.ndarray:
    """Variance of the "buckets below threshold" count for a ``d``-set.

    Each element independently lands "above threshold in bucket j" with
    probability ``prob``; the count of clean buckets then has
    ``Var = m(m-1)(1-2·prob)^d + m(1-prob)^d - m²(1-prob)^{2d}``
    (Bloom occupancy is ``prob = 1/m``; HLL threshold ``t`` is
    ``prob = 2^{-t}/m``).
    """
    d = np.asarray(d, dtype=np.float64)
    prob = np.asarray(prob, dtype=np.float64)
    one = (1.0 - prob) ** d
    two = (1.0 - np.minimum(2.0 * prob, 1.0)) ** d
    return np.maximum(m * (m - 1) * two + m * one - m * m * one * one, 0.0)


class SketchFamily:
    """Shared encode / release / estimate machinery of one sketch kind.

    Subclasses fix the keyed stage, the raw/released dtypes and the
    family's debias math; everything graph-facing (row gathering, bucket
    hashing, keyed-vs-rng release plumbing) lives here. Views are always
    2-D ``(num_vertices, view_width)`` arrays whose rows are the
    per-vertex payloads a cache stores and evicts individually.
    """

    kind: ClassVar[str] = "abstract"
    stage: ClassVar[int] = -1
    #: Whether the intersection estimator is exactly unbiased (VoC) or
    #: only asymptotically so through a log inversion (Bloom, HLL).
    unbiased_intersection: ClassVar[bool] = False

    def __init__(self, config: SketchConfig):
        if config.kind != self.kind:
            raise ProtocolError(
                f"{type(self).__name__} cannot serve a {config.kind!r} config"
            )
        self.config = config
        self.m = int(config.m)

    # -- encoding ------------------------------------------------------
    def _buckets(
        self, graph: BipartiteGraph, layer: Layer, vertices: np.ndarray
    ) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """Per-edge ``(k, segment, bucket, rank)`` of the workload rows."""
        vertices = np.asarray(vertices, dtype=np.int64)
        sub_indptr, cols = gather_rows(*graph.adjacency_csr(layer), vertices)
        seg = np.repeat(
            np.arange(vertices.size, dtype=np.int64), np.diff(sub_indptr)
        )
        word0, word1 = _hash_words(cols, self.config.hash_seed)
        buckets = (word0 % np.uint64(self.m)).astype(np.int64)
        return vertices.size, seg, buckets, word1

    def encode(
        self, graph: BipartiteGraph, layer: Layer, vertices: np.ndarray
    ) -> np.ndarray:
        """The noiseless ``(k, m)`` sketch of every listed vertex's row."""
        raise NotImplementedError

    # -- release -------------------------------------------------------
    def _uniforms(
        self,
        k: int,
        per_vertex: int,
        *,
        rng: RngLike,
        entropy: "int | None",
        epoch: int,
        vertices: "np.ndarray | None",
        versions: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """``(k, per_vertex)`` uniforms, keyed when ``entropy`` is given."""
        if entropy is not None:
            if vertices is None:
                raise ProtocolError(
                    "keyed sketch release needs the vertex ids (they index "
                    "the counter streams)"
                )
            return keyed_sketch_uniforms(
                entropy, epoch, vertices, self.stage, per_vertex, versions
            )
        return ensure_rng(rng).random((k, per_vertex))

    def release(
        self,
        raw: np.ndarray,
        epsilon: float,
        *,
        rng: RngLike = None,
        entropy: "int | None" = None,
        epoch: int = 0,
        vertices: "np.ndarray | None" = None,
        versions: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Perturb a raw sketch block into the stored ε-LDP views."""
        raise NotImplementedError

    def encode_release(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        vertices: np.ndarray,
        epsilon: float,
        *,
        rng: RngLike = None,
        entropy: "int | None" = None,
        epoch: int = 0,
        versions: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Encode + release in one call (the cache/engine entry point)."""
        raw = self.encode(graph, layer, vertices)
        return self.release(
            raw, epsilon, rng=rng, entropy=entropy, epoch=epoch,
            vertices=np.asarray(vertices, dtype=np.int64),
            versions=versions,
        )

    # -- estimation ----------------------------------------------------
    def cardinality(self, views: np.ndarray, epsilon: float) -> np.ndarray:
        """Debiased neighbor-count estimate per view row."""
        raise NotImplementedError

    def intersect(
        self, views: np.ndarray, ia: np.ndarray, ib: np.ndarray, epsilon: float
    ) -> np.ndarray:
        """Debiased ``C2`` estimate for every ``(ia[i], ib[i])`` view pair."""
        raise NotImplementedError

    def intersection_variance(
        self,
        deg_a: np.ndarray,
        deg_b: np.ndarray,
        intersection: np.ndarray,
        epsilon: float,
    ) -> np.ndarray:
        """Closed-form (plug-in) variance of :meth:`intersect`.

        Conservative: covariances between the cardinality and union
        estimates (which would *reduce* the inclusion–exclusion variance)
        are dropped, so the return upper-approximates the true variance.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(m={self.m})"

    # -- shared linear-counting helpers --------------------------------
    def _linear_count(self, mean_clean: np.ndarray, prob: float) -> np.ndarray:
        """Invert ``E[clean fraction] = (1 - prob)^d`` with clamping."""
        ratio = np.clip(mean_clean, 0.5 / self.m, 1.0)
        return np.log(ratio) / math.log1p(-prob)

    def _linear_count_variance(
        self, prob: float, entry_var: float, d: np.ndarray, product: bool
    ) -> np.ndarray:
        """Delta-method variance of one linear-counting inversion.

        ``entry_var`` is the per-bucket debias variance; a ``product``
        estimate (union via two-sided bucket products) inflates it to
        ``2 v + v²`` (worst case over 0/1 true indicators, independent
        sides). Hash (occupancy) variance adds on top, and the log
        derivative ``1 / (m F ln(1 - prob))`` squares in.
        """
        d = np.clip(np.asarray(d, dtype=np.float64), 0.0, None)
        prob = np.asarray(prob, dtype=np.float64)
        per_entry = entry_var * (2.0 + entry_var) if product else entry_var
        var_z = self.m * per_entry + _occupancy_variance(self.m, prob, d)
        mean_z = np.maximum(self.m * (1.0 - prob) ** d, 0.5)
        return var_z / (mean_z * np.log1p(-prob)) ** 2


class BloomSketch(SketchFamily):
    """RAPPOR-style blipped Bloom filter (1 hash, per-bit Warner RR)."""

    kind = "bloom"
    stage = KEYED_STAGE_SKETCH_BLOOM
    unbiased_intersection = False

    def encode(self, graph, layer, vertices):
        k, seg, buckets, _ = self._buckets(graph, layer, vertices)
        bits = np.zeros(k * self.m, dtype=bool)
        bits[seg * self.m + buckets] = True
        return bits.reshape(k, self.m)

    def release(self, raw, epsilon, *, rng=None, entropy=None, epoch=0,
                vertices=None, versions=None):
        p = flip_probability(epsilon)
        raw = np.asarray(raw, dtype=bool)
        u = self._uniforms(
            raw.shape[0], self.m,
            rng=rng, entropy=entropy, epoch=epoch, vertices=vertices,
            versions=versions,
        )
        noisy = raw ^ (u < p)
        return np.packbits(noisy, axis=1)

    def _zero_indicators(self, views: np.ndarray, epsilon: float) -> np.ndarray:
        p = flip_probability(epsilon)
        bits = np.unpackbits(np.asarray(views, dtype=np.uint8), axis=1)[:, : self.m]
        return 1.0 - debias_bit(bits, p)

    def cardinality(self, views, epsilon):
        zhat = self._zero_indicators(views, epsilon)
        return self._linear_count(zhat.mean(axis=1), 1.0 / self.m)

    def intersect(self, views, ia, ib, epsilon):
        zhat = self._zero_indicators(views, epsilon)
        ia = np.asarray(ia, dtype=np.int64)
        ib = np.asarray(ib, dtype=np.int64)
        card = self._linear_count(zhat.mean(axis=1), 1.0 / self.m)
        union = self._linear_count(
            (zhat[ia] * zhat[ib]).mean(axis=1), 1.0 / self.m
        )
        return card[ia] + card[ib] - union

    def intersection_variance(self, deg_a, deg_b, intersection, epsilon):
        v = debias_bit_variance(flip_probability(epsilon))
        deg_a = np.asarray(deg_a, dtype=np.float64)
        deg_b = np.asarray(deg_b, dtype=np.float64)
        du = np.maximum(deg_a + deg_b - intersection, np.maximum(deg_a, deg_b))
        prob = 1.0 / self.m
        return (
            self._linear_count_variance(prob, v, deg_a, product=False)
            + self._linear_count_variance(prob, v, deg_b, product=False)
            + self._linear_count_variance(prob, v, du, product=True)
        )


class VectorOfCountsSketch(SketchFamily):
    """Hashed count buckets with per-bucket Laplace(1/ε) noise."""

    kind = "voc"
    stage = KEYED_STAGE_SKETCH_VOC
    unbiased_intersection = True

    def encode(self, graph, layer, vertices):
        k, seg, buckets, _ = self._buckets(graph, layer, vertices)
        counts = np.bincount(seg * self.m + buckets, minlength=k * self.m)
        return counts.reshape(k, self.m).astype(np.float64)

    def release(self, raw, epsilon, *, rng=None, entropy=None, epoch=0,
                vertices=None, versions=None):
        raw = np.asarray(raw, dtype=np.float64)
        scale = 1.0 / float(epsilon)
        if entropy is not None:
            u = self._uniforms(
                raw.shape[0], self.m,
                rng=rng, entropy=entropy, epoch=epoch, vertices=vertices,
                versions=versions,
            )
            centered = u - 0.5
            inner = np.maximum(1.0 - 2.0 * np.abs(centered), _U53)
            noise = -scale * np.sign(centered) * np.log(inner)
        else:
            noise = ensure_rng(rng).laplace(0.0, scale, size=raw.shape)
        return raw + noise

    def cardinality(self, views, epsilon):
        return np.asarray(views, dtype=np.float64).sum(axis=1)

    def intersect(self, views, ia, ib, epsilon):
        views = np.asarray(views, dtype=np.float64)
        ia = np.asarray(ia, dtype=np.int64)
        ib = np.asarray(ib, dtype=np.int64)
        card = views.sum(axis=1)
        dot = np.einsum("ij,ij->i", views[ia], views[ib])
        return (dot - card[ia] * card[ib] / self.m) / (1.0 - 1.0 / self.m)

    def intersection_variance(self, deg_a, deg_b, intersection, epsilon):
        deg_a = np.clip(np.asarray(deg_a, dtype=np.float64), 0.0, None)
        deg_b = np.clip(np.asarray(deg_b, dtype=np.float64), 0.0, None)
        s2 = 2.0 / float(epsilon) ** 2  # per-bucket Laplace variance
        m = float(self.m)
        dot_var = (
            s2 * (deg_a + deg_b + (deg_a**2 + deg_b**2) / m)
            + m * s2 * s2
            + deg_a * deg_b / m
        )
        prod_var = s2 * (deg_a**2 + deg_b**2) / m
        return dot_var / (1.0 - 1.0 / m) ** 2 + prod_var


class HllSketch(SketchFamily):
    """Max-rank registers released through k-ary randomized response."""

    kind = "hll"
    stage = KEYED_STAGE_SKETCH_HLL
    # k-RR symbol count: register values live in {0 .. _HLL_MAX_RANK}.
    num_values = _HLL_MAX_RANK + 1
    unbiased_intersection = False

    def encode(self, graph, layer, vertices):
        k, seg, buckets, word1 = self._buckets(graph, layer, vertices)
        # Geometric rank: 1 + trailing zeros of the second hash word,
        # capped so a register value always fits the k-RR domain.
        ranks = np.ones(word1.size, dtype=np.int64)
        zeros = word1
        for _ in range(_HLL_MAX_RANK - 1):
            low = (zeros & np.uint64(1)) == 0
            if not low.any():
                break
            ranks[low] += 1
            zeros = zeros >> np.uint64(1)
            zeros[~low] = np.uint64(1)  # stop counting for settled edges
        registers = np.zeros(k * self.m, dtype=np.int64)
        np.maximum.at(registers, seg * self.m + buckets, ranks)
        return registers.reshape(k, self.m).astype(np.uint8)

    def release(self, raw, epsilon, *, rng=None, entropy=None, epoch=0,
                vertices=None, versions=None):
        check_sketch_epsilon(self.config, epsilon)
        raw = np.asarray(raw, dtype=np.int64)
        truthful, _ = krr_probabilities(epsilon, self.num_values)
        u = self._uniforms(
            raw.shape[0], 2 * self.m,
            rng=rng, entropy=entropy, epoch=epoch, vertices=vertices,
            versions=versions,
        )
        keep = u[:, : self.m] < truthful
        # Replacement symbol: uniform over the other num_values - 1 values.
        alt = np.minimum(
            (u[:, self.m :] * (self.num_values - 1)).astype(np.int64),
            self.num_values - 2,
        )
        alt = alt + (alt >= raw)
        return np.where(keep, raw, alt).astype(np.uint8)

    def _cdf_counts(self, views: np.ndarray) -> np.ndarray:
        """``(rows, num_values)`` cumulative counts of register reports."""
        views = np.asarray(views, dtype=np.int64)
        rows = views.shape[0]
        flat = (
            np.arange(rows, dtype=np.int64)[:, None] * self.num_values + views
        ).reshape(-1)
        hist = np.bincount(flat, minlength=rows * self.num_values)
        return np.cumsum(hist.reshape(rows, self.num_values), axis=1)

    def _debias_cdf_grid(
        self, counts: np.ndarray, epsilon: float
    ) -> np.ndarray:
        """Debiased mean CDF estimate per row × threshold from raw counts."""
        truthful, other = krr_probabilities(epsilon, self.num_values)
        t = np.arange(self.num_values, dtype=np.float64)
        return (counts / self.m - (t + 1.0) * other) / (truthful - other)

    def cardinality(self, views, epsilon):
        grid = self._debias_cdf_grid(self._cdf_counts(views), epsilon)
        t = self._choose_threshold(grid)
        f = np.take_along_axis(grid, t[:, None], axis=1)[:, 0]
        probs = 2.0 ** (-t.astype(np.float64)) / self.m
        return self._linear_count_t(f, probs)

    @staticmethod
    def _choose_threshold(grid: np.ndarray) -> np.ndarray:
        """Per-row smallest threshold whose debiased CDF reaches 1/2.

        The true CDF ``(1 - 2^{-t}/m)^d`` is monotone in ``t``, so the
        crossing point is robust to per-threshold debias noise (a
        nearest-to-1/2 rule would instead chase noise outliers at high
        thresholds, where the log inversion explodes). 1/2 is where the
        inversion's signal-to-noise peaks. Deterministic post-processing
        of the released registers — no privacy cost. Rows that never
        cross (extreme noise) fall back to the top threshold, whose
        debiased CDF is exactly 1.
        """
        above = grid >= 0.5
        t = np.argmax(above, axis=1).astype(np.int64)
        t[~above.any(axis=1)] = grid.shape[1] - 1
        return t

    def _linear_count_t(self, mean_clean: np.ndarray, probs: np.ndarray) -> np.ndarray:
        ratio = np.clip(mean_clean, 0.5 / self.m, 1.0)
        return np.log(ratio) / np.log1p(-probs)

    def intersect(self, views, ia, ib, epsilon):
        views = np.asarray(views, dtype=np.int64)
        ia = np.asarray(ia, dtype=np.int64)
        ib = np.asarray(ib, dtype=np.int64)
        truthful, other = krr_probabilities(epsilon, self.num_values)
        denom = truthful - other
        counts = self._cdf_counts(views)  # per-vertex cumulative counts
        # Joint cumulative counts: a union bucket is ≤ t iff the
        # element-wise max of the two registers is — one histogram of the
        # max array per pair.
        joint = self._cdf_counts(np.maximum(views[ia], views[ib]))
        t_grid = np.arange(self.num_values, dtype=np.float64)
        a_t = (t_grid + 1.0) * other
        # E[(Ia - a_t)(Ib - a_t)] / denom² expanded over the counts.
        f_union = (
            joint / self.m
            - a_t * (counts[ia] + counts[ib]) / self.m
            + a_t * a_t
        ) / denom**2
        t = self._choose_threshold(f_union)
        probs = 2.0 ** (-t.astype(np.float64)) / self.m
        grid = self._debias_cdf_grid(counts, epsilon)
        fa = np.take_along_axis(grid[ia], t[:, None], axis=1)[:, 0]
        fb = np.take_along_axis(grid[ib], t[:, None], axis=1)[:, 0]
        fu = np.take_along_axis(f_union, t[:, None], axis=1)[:, 0]
        card_a = self._linear_count_t(fa, probs)
        card_b = self._linear_count_t(fb, probs)
        union = self._linear_count_t(fu, probs)
        return card_a + card_b - union

    def intersection_variance(self, deg_a, deg_b, intersection, epsilon):
        v = krr_cdf_variance(epsilon, self.num_values)
        deg_a = np.clip(np.asarray(deg_a, dtype=np.float64), 0.0, None)
        deg_b = np.clip(np.asarray(deg_b, dtype=np.float64), 0.0, None)
        du = np.maximum(deg_a + deg_b - intersection, np.maximum(deg_a, deg_b))
        # The adaptive threshold keeps the clean fraction near 1/2:
        # (1 - 2^{-t}/m)^du ≈ 1/2 gives prob ≈ ln 2 / du per pair. Use the
        # union's threshold (all three inversions share it).
        prob = np.clip(math.log(2.0) / np.maximum(du, 1.0), _U53, 1.0 / self.m)
        return (
            self._linear_count_variance(prob, v, deg_a, product=False)
            + self._linear_count_variance(prob, v, deg_b, product=False)
            + self._linear_count_variance(prob, v, du, product=True)
        )


_FAMILIES = {
    BloomSketch.kind: BloomSketch,
    VectorOfCountsSketch.kind: VectorOfCountsSketch,
    HllSketch.kind: HllSketch,
}


def sketch_family(config: SketchConfig) -> SketchFamily:
    """The :class:`SketchFamily` instance serving ``config``."""
    return _FAMILIES[config.kind](config)

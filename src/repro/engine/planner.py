"""Workload planning: validation, vertex dedup and budget slicing.

A plan turns an arbitrary same-layer pair workload into the arrays the
vectorized stages consume: the sorted distinct query vertices (each
perturbs exactly once, whatever the pair multiplicity) and, per pair, the
slots of its endpoints within that vertex block. Budgets come either as an
explicit per-batch ``epsilon`` or as one slice of a
:class:`~repro.privacy.composition.QueryBudgetManager`, so a sequence of
batches can honestly share an analyst budget.

For epoch-cached serving the plan additionally splits into cached and
uncached blocks: :func:`split_cached` partitions the distinct vertex block
by a cache-membership mask (only the uncached block is perturbed — and
charged — this tick), and :func:`pair_keys` gives every pair its
order-normalized key for pair-granular (sketch-mode) caching.

Sketch-view planning (:func:`plan_views`) adds the per-vertex list-vs-
sketch decision: a vertex whose expected noisy row outweighs the
configured sketch keeps a fixed-size sketch view instead of a
materialized list, sized so the workload's total view memory fits an
optional byte budget. The decision is closed over the pair graph —
if either endpoint of a pair is sketched, both are ("sketch contagion")
— so every pair is answered homogeneously (list×list or sketch×sketch)
and each vertex still releases exactly one ε-LDP view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError, PrivacyError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.composition import QueryBudgetManager
from repro.privacy.mechanisms import flip_probability

__all__ = [
    "WorkloadPlan",
    "CacheSplit",
    "TenantSlice",
    "ShardPlan",
    "ViewPlan",
    "plan_workload",
    "split_cached",
    "pair_keys",
    "slice_by_tenant",
    "estimate_noisy_row_bytes",
    "plan_shards",
    "plan_views",
]

# Bytes per transmitted column id of a noisy row (mirrors
# ``repro.protocol.messages.ID_BYTES`` without importing the protocol
# layer into the planner).
_ROW_ID_BYTES = 8


@dataclass(frozen=True)
class WorkloadPlan:
    """A validated batch: distinct vertices, pair slots and the budget."""

    layer: Layer
    epsilon: float
    pairs: tuple[QueryPair, ...]
    vertices: np.ndarray  # sorted distinct query vertices
    ia: np.ndarray  # slot of pair.a within `vertices`, per pair
    ib: np.ndarray  # slot of pair.b within `vertices`, per pair
    # Optional per-vertex list-vs-sketch decision (see plan_views);
    # None when the workload was planned without a sketch config.
    views: "ViewPlan | None" = None

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.size)


@dataclass(frozen=True)
class CacheSplit:
    """A plan's distinct vertex block partitioned by cache membership."""

    cached: np.ndarray
    uncached: np.ndarray

    @property
    def num_cached(self) -> int:
        return int(self.cached.size)

    @property
    def num_uncached(self) -> int:
        return int(self.uncached.size)


def split_cached(plan: WorkloadPlan, cached_mask: np.ndarray) -> CacheSplit:
    """Partition the plan's distinct vertices into cached/uncached blocks.

    ``cached_mask`` is a boolean per entry of ``plan.vertices`` (True when
    an epoch view already exists). Only the uncached block passes through
    randomized response — and the privacy charge — this tick.
    """
    cached_mask = np.asarray(cached_mask, dtype=bool)
    if cached_mask.shape != (plan.num_vertices,):
        raise ProtocolError(
            f"cache mask shape {cached_mask.shape} does not match the "
            f"plan's {plan.num_vertices} distinct vertices"
        )
    return CacheSplit(
        cached=plan.vertices[cached_mask],
        uncached=plan.vertices[~cached_mask],
    )


@dataclass(frozen=True)
class TenantSlice:
    """One tenant's share of a multi-tenant workload plan."""

    tenant: str
    indices: np.ndarray  # slots of this tenant's pairs within `plan.pairs`
    vertices: np.ndarray  # sorted distinct vertices those pairs touch

    @property
    def num_pairs(self) -> int:
        return int(self.indices.size)


def slice_by_tenant(
    plan: WorkloadPlan, tags: Sequence[str]
) -> dict[str, TenantSlice]:
    """Partition a plan's pairs into per-tenant slices.

    ``tags`` gives the requesting tenant of each pair, aligned with
    ``plan.pairs``. Returns one :class:`TenantSlice` per distinct tag,
    in first-appearance order — the view the serving layer's per-tenant
    accounting and reports are built on. Slices share vertices freely
    (that sharing is exactly what makes the common epoch cache pay off);
    whether a shared vertex's charge lands on one tenant or another is
    decided at serving time by arrival order, not here.

    Raises
    ------
    ProtocolError
        If ``tags`` is not aligned with the plan's pairs.
    """
    if len(tags) != plan.num_pairs:
        raise ProtocolError(
            f"{len(tags)} tenant tags do not match the plan's "
            f"{plan.num_pairs} pairs"
        )
    order: dict[str, list[int]] = {}
    for i, tag in enumerate(tags):
        order.setdefault(str(tag), []).append(i)
    slices: dict[str, TenantSlice] = {}
    for tag, indices in order.items():
        idx = np.asarray(indices, dtype=np.int64)
        verts = np.unique(
            np.concatenate([plan.vertices[plan.ia[idx]], plan.vertices[plan.ib[idx]]])
        )
        slices[tag] = TenantSlice(tenant=tag, indices=idx, vertices=verts)
    return slices


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous vertex ranges covering one workload's distinct vertices.

    Shard ``s`` owns ``vertices[offsets[s]:offsets[s + 1]]``; the ranges
    are contiguous, disjoint and cover the whole block in order, so
    concatenating per-shard CSR fragments in shard order reproduces the
    unsharded row layout exactly. ``est_bytes`` carries the planner's
    expected noisy-payload size per shard (see
    :func:`estimate_noisy_row_bytes`) — the quantity the memory budget
    sized the ranges by.
    """

    vertices: np.ndarray  # the full sorted distinct vertex block
    offsets: np.ndarray  # shard s = vertices[offsets[s]:offsets[s + 1]]
    est_bytes: np.ndarray  # expected noisy payload bytes per shard
    mem_bytes: int | None  # the budget that sized the plan (None: count-sized)

    @property
    def num_shards(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def max_shard_bytes(self) -> int:
        """The largest per-shard estimate — what one worker must hold."""
        return int(self.est_bytes.max()) if self.num_shards else 0

    def ranges(self) -> list[tuple[int, int]]:
        """Per-shard ``(lo, hi)`` index ranges into :attr:`vertices`."""
        return [
            (int(self.offsets[s]), int(self.offsets[s + 1]))
            for s in range(self.num_shards)
        ]

    def shard_vertices(self, shard: int) -> np.ndarray:
        """The vertex ids owned by one shard."""
        return self.vertices[self.offsets[shard] : self.offsets[shard + 1]]

    def shard_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """The shard owning each workload row slot (vectorized lookup)."""
        return np.searchsorted(self.offsets, rows, side="right") - 1


def estimate_noisy_row_bytes(
    degrees: np.ndarray, domain: int, epsilon: float
) -> np.ndarray:
    """Expected noisy-report size, in bytes, per vertex.

    Under ε-randomized response a degree-``d`` vertex reports each of its
    ``d`` edges with probability ``1 - p`` and each of its ``domain - d``
    non-edges with probability ``p``, so the expected report length is
    ``d (1 - p) + (domain - d) p`` column ids of 8 bytes each. This is
    the quantity :func:`plan_shards` packs against a memory budget — the
    noisy output dominates a shard's working set.

    Parameters
    ----------
    degrees:
        True degree per vertex (array or scalar).
    domain:
        Opposite-layer size (the candidate pool each row ranges over).
    epsilon:
        The RR budget the rows will be drawn at.

    Returns
    -------
    numpy.ndarray
        Expected bytes per vertex, as float64 (same shape as
        ``degrees``).

    Example
    -------
    >>> import numpy as np
    >>> est = estimate_noisy_row_bytes(np.array([10, 0]), 1000, 2.0)
    >>> bool((est > 0).all())
    True
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    p = flip_probability(epsilon)
    expected_ids = degrees * (1.0 - p) + (domain - degrees) * p
    return expected_ids * _ROW_ID_BYTES


@dataclass(frozen=True)
class ViewPlan:
    """Per-vertex list-vs-sketch decision for one workload.

    ``sketch_mask[i]`` is True when ``vertices[i]`` releases a fixed-size
    sketch view instead of a materialized noisy row. The mask is closed
    over the workload's pair graph: every pair is either list×list or
    sketch×sketch (a mixed pair would need exploding-variance product
    estimators, and answering it from *both* view kinds would double-
    charge the vertex). ``promoted`` counts vertices sketched only by
    that closure; ``row_bytes`` carries the planner's expected
    materialized size per vertex and ``sketch_bytes`` the fixed
    per-vertex sketch size the decision traded it against.
    """

    vertices: np.ndarray  # the plan's sorted distinct vertices
    sketch_mask: np.ndarray  # bool per vertex: True -> sketch view
    row_bytes: np.ndarray  # expected noisy-row bytes if materialized
    sketch_bytes: int  # fixed per-vertex sketch view bytes
    promoted: int  # vertices sketched only by the pair closure

    @property
    def num_sketched(self) -> int:
        return int(np.count_nonzero(self.sketch_mask))

    @property
    def num_listed(self) -> int:
        return int(self.sketch_mask.size - self.num_sketched)

    @property
    def est_view_bytes(self) -> int:
        """Expected total view memory under this plan's decisions."""
        listed = self.row_bytes[~self.sketch_mask].sum()
        return int(listed + self.num_sketched * self.sketch_bytes)

    def per_vertex_bytes(self) -> np.ndarray:
        """Expected view bytes per vertex (rows where listed, else sketch)."""
        return np.where(
            self.sketch_mask, float(self.sketch_bytes), self.row_bytes
        )


def plan_views(
    graph: BipartiteGraph,
    layer: Layer,
    vertices: np.ndarray,
    epsilon: float,
    *,
    ia: np.ndarray,
    ib: np.ndarray,
    sketch_bytes: int,
    mem_bytes: int | None = None,
    force_sketch: bool = False,
) -> ViewPlan:
    """Decide list-vs-sketch per vertex, driven by degree and memory budget.

    The decision has three stages:

    1. **Economy** — a vertex is sketched when its expected noisy-row
       bytes (:func:`estimate_noisy_row_bytes`, a monotone function of
       its degree) exceed ``sketch_bytes``; a sketch that is bigger than
       the row it replaces never pays.
    2. **Budget** — with ``mem_bytes``, still-listed vertices are flipped
       to sketch largest-row-first until the workload's total expected
       view memory fits the budget (sketching cheap rows is pointless, so
       flips start at the most expensive). The budget is a soft cap: if
       every vertex is sketched and the total still exceeds it, the plan
       reports the overshoot via :attr:`ViewPlan.est_view_bytes`.
    3. **Pair closure** — any pair with one sketched endpoint promotes
       the other endpoint to sketch too, iterated to a fixpoint over the
       workload's pair graph. Every pair is then answered from one view
       kind and each vertex still releases exactly one ε-LDP view.

    ``force_sketch`` short-circuits all three stages (the pure
    sketch-view execution mode).

    Parameters
    ----------
    graph, layer, vertices, epsilon:
        As for :func:`plan_shards`; ``epsilon`` fixes the expected noisy
        row size.
    ia, ib:
        Per-pair endpoint slots within ``vertices`` (the closure runs
        over them).
    sketch_bytes:
        Fixed per-vertex sketch view size (positive) —
        ``SketchConfig.bytes_per_vertex``.
    mem_bytes:
        Optional workload-wide expected view memory budget (positive).
    force_sketch:
        Sketch every vertex regardless of economy or budget.

    Returns
    -------
    ViewPlan

    Raises
    ------
    ProtocolError
        If ``sketch_bytes`` or ``mem_bytes`` is not positive.
    GraphError
        If a vertex id is out of range for ``layer``.
    """
    if sketch_bytes <= 0:
        raise ProtocolError(f"sketch_bytes must be positive, got {sketch_bytes}")
    if mem_bytes is not None and mem_bytes <= 0:
        raise ProtocolError(f"mem_bytes must be positive, got {mem_bytes}")
    vertices = np.asarray(vertices, dtype=np.int64)
    k = vertices.size
    n_layer = graph.layer_size(layer)
    if k and (vertices.min() < 0 or vertices.max() >= n_layer):
        raise GraphError(f"view-plan vertex out of range for {layer} layer")
    domain = graph.layer_size(layer.opposite())
    row_bytes = (
        estimate_noisy_row_bytes(graph.degrees(layer)[vertices], domain, epsilon)
        if k
        else np.empty(0, dtype=np.float64)
    )
    if force_sketch:
        return ViewPlan(
            vertices=vertices,
            sketch_mask=np.ones(k, dtype=bool),
            row_bytes=row_bytes,
            sketch_bytes=int(sketch_bytes),
            promoted=0,
        )
    mask = row_bytes > float(sketch_bytes)
    if mem_bytes is not None and k:
        total = row_bytes[~mask].sum() + np.count_nonzero(mask) * sketch_bytes
        # Flip the most expensive still-listed rows until the budget fits
        # (each flip replaces row_bytes with sketch_bytes, and flips are
        # only attempted where that shrinks the total).
        order = np.argsort(row_bytes)[::-1]
        for slot in order:
            if total <= mem_bytes:
                break
            if mask[slot] or row_bytes[slot] <= sketch_bytes:
                continue
            total += sketch_bytes - row_bytes[slot]
            mask[slot] = True
    budgeted = int(np.count_nonzero(mask))
    ia = np.asarray(ia, dtype=np.int64)
    ib = np.asarray(ib, dtype=np.int64)
    # Pair closure to a fixpoint: sketching spreads over pair-graph
    # connected components (each sweep extends the mask by one hop, so
    # the loop runs at most the largest component's diameter).
    while True:
        pair_sketch = mask[ia] | mask[ib]
        before = int(np.count_nonzero(mask))
        mask[ia[pair_sketch]] = True
        mask[ib[pair_sketch]] = True
        if int(np.count_nonzero(mask)) == before:
            break
    return ViewPlan(
        vertices=vertices,
        sketch_mask=mask,
        row_bytes=row_bytes,
        sketch_bytes=int(sketch_bytes),
        promoted=int(np.count_nonzero(mask)) - budgeted,
    )


def plan_shards(
    graph: BipartiteGraph,
    layer: Layer,
    vertices: np.ndarray,
    epsilon: float,
    *,
    shards: int | None = None,
    mem_bytes: int | None = None,
    view_plan: "ViewPlan | None" = None,
) -> ShardPlan:
    """Split a workload's vertex block into contiguous budget-sized ranges.

    Exactly one of ``shards`` and ``mem_bytes`` sizes the plan (neither
    means one shard). With ``mem_bytes`` the block is packed greedily:
    each range takes vertices until its expected noisy payload
    (:func:`estimate_noisy_row_bytes`) would exceed the budget — a single
    vertex whose own estimate exceeds the budget still gets a
    (one-vertex, over-budget) shard, since rows are indivisible. With
    ``shards`` the block is cut at the byte-balanced quantiles, so the
    requested number of ranges carry roughly equal expected payloads.

    Shard boundaries never change the drawn bits: the keyed kernel gives
    every vertex a private counter-based stream, so any plan's per-shard
    draws concatenate to the byte-identical unsharded output (see
    ``docs/sharding-guide.md``).

    Parameters
    ----------
    graph, layer:
        The serving context; ``vertices`` must be valid ids on ``layer``.
    vertices:
        The workload's (typically sorted distinct) vertex block.
    epsilon:
        The RR budget the rows will be drawn at (fixes the flip
        probability the size estimate depends on).
    shards:
        Explicit shard count (positive). Mutually exclusive with
        ``mem_bytes``.
    mem_bytes:
        Per-shard byte budget for the expected noisy payload (positive).
        Mutually exclusive with ``shards``.
    view_plan:
        Optional :class:`ViewPlan` over the same vertex block. When
        given, packing uses its per-vertex view bytes (fixed
        ``sketch_bytes`` for sketched vertices, expected row bytes for
        listed ones) instead of assuming every vertex materializes —
        sketched shards pack far more vertices per budget.

    Returns
    -------
    ShardPlan
        The contiguous ranges with their per-shard byte estimates. An
        empty vertex block yields a zero-shard plan.

    Raises
    ------
    ProtocolError
        If both ``shards`` and ``mem_bytes`` are given, or either is not
        positive.
    GraphError
        If a vertex id is out of range for ``layer``.

    Example
    -------
    >>> from repro.graph.generators import random_bipartite
    >>> from repro.graph.bipartite import Layer
    >>> g = random_bipartite(40, 30, 200, rng=0)
    >>> plan = plan_shards(g, Layer.UPPER, np.arange(40), 2.0, shards=4)
    >>> plan.num_shards, int(plan.offsets[0]), int(plan.offsets[-1])
    (4, 0, 40)
    """
    if shards is not None and mem_bytes is not None:
        raise ProtocolError("pass either shards or mem_bytes, not both")
    if shards is not None and shards <= 0:
        raise ProtocolError(f"shards must be positive, got {shards}")
    if mem_bytes is not None and mem_bytes <= 0:
        raise ProtocolError(f"mem_bytes must be positive, got {mem_bytes}")
    vertices = np.asarray(vertices, dtype=np.int64)
    k = vertices.size
    n_layer = graph.layer_size(layer)
    if k and (vertices.min() < 0 or vertices.max() >= n_layer):
        raise GraphError(f"shard vertex out of range for {layer} layer")
    domain = graph.layer_size(layer.opposite())
    if view_plan is not None:
        if view_plan.sketch_mask.shape != (k,):
            raise ProtocolError(
                f"view plan covers {view_plan.sketch_mask.size} vertices, "
                f"shard plan needs {k}"
            )
        per_vertex = view_plan.per_vertex_bytes()
    else:
        per_vertex = (
            estimate_noisy_row_bytes(
                graph.degrees(layer)[vertices], domain, epsilon
            )
            if k
            else np.empty(0, dtype=np.float64)
        )
    if k == 0:
        return ShardPlan(
            vertices=vertices,
            offsets=np.zeros(1, dtype=np.int64),
            est_bytes=np.empty(0, dtype=np.int64),
            mem_bytes=mem_bytes,
        )
    cumulative = np.concatenate(([0.0], np.cumsum(per_vertex)))
    if mem_bytes is not None:
        # Greedy packing: each cut lands on the last vertex that still
        # fits the running budget; a single over-budget vertex advances
        # by one (rows are indivisible).
        cuts = [0]
        while cuts[-1] < k:
            start = cuts[-1]
            fit = int(
                np.searchsorted(
                    cumulative, cumulative[start] + mem_bytes, side="right"
                )
                - 1
            )
            cuts.append(max(fit, start + 1))
        offsets = np.asarray(cuts, dtype=np.int64)
    elif shards is not None and shards > 1:
        # Byte-balanced quantile cuts (deduplicated: never more shards
        # than vertices, every shard nonempty).
        targets = cumulative[-1] * np.arange(1, shards) / shards
        interior = np.searchsorted(cumulative[1:-1], targets, side="left") + 1
        offsets = np.unique(
            np.concatenate(([0], np.minimum(interior, k - 1), [k]))
        ).astype(np.int64)
    else:
        offsets = np.array([0, k], dtype=np.int64)
    est = np.diff(cumulative[offsets]).astype(np.int64)
    return ShardPlan(
        vertices=vertices, offsets=offsets, est_bytes=est, mem_bytes=mem_bytes
    )


def pair_keys(plan: WorkloadPlan) -> np.ndarray:
    """Order-normalized ``(min, max)`` vertex-id key per pair.

    ``C2`` is symmetric, so ``(a, b)`` and ``(b, a)`` must share one cache
    entry; the key array has shape ``(num_pairs, 2)``.
    """
    a = plan.vertices[plan.ia]
    b = plan.vertices[plan.ib]
    return np.stack([np.minimum(a, b), np.maximum(a, b)], axis=1)


def plan_workload(
    graph: BipartiteGraph,
    layer: Layer,
    pairs: Sequence[QueryPair],
    epsilon: float | None = None,
    *,
    budget: QueryBudgetManager | None = None,
    sketch_bytes: int | None = None,
    view_mem_bytes: int | None = None,
    force_sketch: bool = False,
) -> WorkloadPlan:
    """Validate a pair workload and resolve its batch budget.

    Exactly one of ``epsilon`` and ``budget`` funds the batch; with a
    manager, one slice is reserved per call (a batch is one query against
    the analyst's total, however many pairs it answers).

    With ``sketch_bytes`` the plan additionally carries a
    :class:`ViewPlan` (see :func:`plan_views`): the per-vertex
    list-vs-sketch decision, sized against ``view_mem_bytes`` when given
    and forced all-sketch by ``force_sketch``.

    Parameters
    ----------
    graph, layer:
        The serving context; every pair must live on ``layer`` and its
        endpoints must be valid vertex ids there.
    pairs:
        The same-layer :class:`~repro.graph.sampling.QueryPair` workload
        (at least one pair; duplicates are allowed and deduplicate into
        shared vertex slots).
    epsilon:
        Explicit per-batch budget. Mutually exclusive with ``budget``.
    budget:
        A :class:`~repro.privacy.composition.QueryBudgetManager`; one
        slice is reserved by this call and funds the whole batch.
    sketch_bytes:
        Fixed per-vertex sketch view size; enables sketch-view planning
        (``SketchConfig.bytes_per_vertex``).
    view_mem_bytes:
        Optional workload-wide view memory budget for the list-vs-sketch
        decision. Requires ``sketch_bytes``.
    force_sketch:
        Sketch every vertex (pure sketch-view mode). Requires
        ``sketch_bytes``.

    Returns
    -------
    WorkloadPlan
        The validated plan: resolved ``epsilon``, the sorted distinct
        query vertices, and each pair's endpoint slots within them.

    Raises
    ------
    ProtocolError
        If the workload is empty or a pair sits on the wrong layer.
    PrivacyError
        If both or neither of ``epsilon``/``budget`` are given, or the
        resolved epsilon is not a positive finite number.
    GraphError
        If any endpoint is out of range for ``layer``.
    BudgetExceededError
        Propagated from ``budget`` when its total is exhausted.

    Example
    -------
    >>> from repro.graph.generators import random_bipartite
    >>> from repro.graph.sampling import QueryPair
    >>> g = random_bipartite(10, 8, 30, rng=0)
    >>> plan = plan_workload(
    ...     g, Layer.UPPER,
    ...     [QueryPair(Layer.UPPER, 1, 4), QueryPair(Layer.UPPER, 4, 2)],
    ...     epsilon=2.0,
    ... )
    >>> plan.num_pairs, plan.vertices.tolist()
    (2, [1, 2, 4])
    """
    if not pairs:
        raise ProtocolError("batch needs at least one query pair")
    for pair in pairs:
        if pair.layer is not layer:
            raise ProtocolError(f"pair {pair} is not on the requested {layer} layer")

    if budget is not None:
        if epsilon is not None:
            raise PrivacyError("pass either epsilon or a budget manager, not both")
        epsilon = budget.next_budget()
    if epsilon is None:
        raise PrivacyError("a batch needs an epsilon or a budget manager")
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise PrivacyError(f"epsilon must be a positive finite number, got {epsilon}")

    endpoints = np.array([(pair.a, pair.b) for pair in pairs], dtype=np.int64)
    n_layer = graph.layer_size(layer)
    if endpoints.min() < 0 or endpoints.max() >= n_layer:
        raise GraphError(f"query vertex out of range for {layer} layer of size {n_layer}")
    vertices, inverse = np.unique(endpoints, return_inverse=True)
    inverse = inverse.reshape(endpoints.shape)
    ia = np.ascontiguousarray(inverse[:, 0])
    ib = np.ascontiguousarray(inverse[:, 1])
    if sketch_bytes is None:
        if view_mem_bytes is not None or force_sketch:
            raise ProtocolError(
                "view_mem_bytes/force_sketch require sketch_bytes"
            )
        views = None
    else:
        views = plan_views(
            graph,
            layer,
            vertices,
            epsilon,
            ia=ia,
            ib=ib,
            sketch_bytes=sketch_bytes,
            mem_bytes=view_mem_bytes,
            force_sketch=force_sketch,
        )
    return WorkloadPlan(
        layer=layer,
        epsilon=epsilon,
        pairs=tuple(pairs),
        vertices=vertices,
        ia=ia,
        ib=ib,
        views=views,
    )

"""Workload planning: validation, vertex dedup and budget slicing.

A plan turns an arbitrary same-layer pair workload into the arrays the
vectorized stages consume: the sorted distinct query vertices (each
perturbs exactly once, whatever the pair multiplicity) and, per pair, the
slots of its endpoints within that vertex block. Budgets come either as an
explicit per-batch ``epsilon`` or as one slice of a
:class:`~repro.privacy.composition.QueryBudgetManager`, so a sequence of
batches can honestly share an analyst budget.

For epoch-cached serving the plan additionally splits into cached and
uncached blocks: :func:`split_cached` partitions the distinct vertex block
by a cache-membership mask (only the uncached block is perturbed — and
charged — this tick), and :func:`pair_keys` gives every pair its
order-normalized key for pair-granular (sketch-mode) caching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError, PrivacyError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.composition import QueryBudgetManager
from repro.privacy.mechanisms import flip_probability

__all__ = [
    "WorkloadPlan",
    "CacheSplit",
    "TenantSlice",
    "ShardPlan",
    "plan_workload",
    "split_cached",
    "pair_keys",
    "slice_by_tenant",
    "estimate_noisy_row_bytes",
    "plan_shards",
]

# Bytes per transmitted column id of a noisy row (mirrors
# ``repro.protocol.messages.ID_BYTES`` without importing the protocol
# layer into the planner).
_ROW_ID_BYTES = 8


@dataclass(frozen=True)
class WorkloadPlan:
    """A validated batch: distinct vertices, pair slots and the budget."""

    layer: Layer
    epsilon: float
    pairs: tuple[QueryPair, ...]
    vertices: np.ndarray  # sorted distinct query vertices
    ia: np.ndarray  # slot of pair.a within `vertices`, per pair
    ib: np.ndarray  # slot of pair.b within `vertices`, per pair

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.size)


@dataclass(frozen=True)
class CacheSplit:
    """A plan's distinct vertex block partitioned by cache membership."""

    cached: np.ndarray
    uncached: np.ndarray

    @property
    def num_cached(self) -> int:
        return int(self.cached.size)

    @property
    def num_uncached(self) -> int:
        return int(self.uncached.size)


def split_cached(plan: WorkloadPlan, cached_mask: np.ndarray) -> CacheSplit:
    """Partition the plan's distinct vertices into cached/uncached blocks.

    ``cached_mask`` is a boolean per entry of ``plan.vertices`` (True when
    an epoch view already exists). Only the uncached block passes through
    randomized response — and the privacy charge — this tick.
    """
    cached_mask = np.asarray(cached_mask, dtype=bool)
    if cached_mask.shape != (plan.num_vertices,):
        raise ProtocolError(
            f"cache mask shape {cached_mask.shape} does not match the "
            f"plan's {plan.num_vertices} distinct vertices"
        )
    return CacheSplit(
        cached=plan.vertices[cached_mask],
        uncached=plan.vertices[~cached_mask],
    )


@dataclass(frozen=True)
class TenantSlice:
    """One tenant's share of a multi-tenant workload plan."""

    tenant: str
    indices: np.ndarray  # slots of this tenant's pairs within `plan.pairs`
    vertices: np.ndarray  # sorted distinct vertices those pairs touch

    @property
    def num_pairs(self) -> int:
        return int(self.indices.size)


def slice_by_tenant(
    plan: WorkloadPlan, tags: Sequence[str]
) -> dict[str, TenantSlice]:
    """Partition a plan's pairs into per-tenant slices.

    ``tags`` gives the requesting tenant of each pair, aligned with
    ``plan.pairs``. Returns one :class:`TenantSlice` per distinct tag,
    in first-appearance order — the view the serving layer's per-tenant
    accounting and reports are built on. Slices share vertices freely
    (that sharing is exactly what makes the common epoch cache pay off);
    whether a shared vertex's charge lands on one tenant or another is
    decided at serving time by arrival order, not here.

    Raises
    ------
    ProtocolError
        If ``tags`` is not aligned with the plan's pairs.
    """
    if len(tags) != plan.num_pairs:
        raise ProtocolError(
            f"{len(tags)} tenant tags do not match the plan's "
            f"{plan.num_pairs} pairs"
        )
    order: dict[str, list[int]] = {}
    for i, tag in enumerate(tags):
        order.setdefault(str(tag), []).append(i)
    slices: dict[str, TenantSlice] = {}
    for tag, indices in order.items():
        idx = np.asarray(indices, dtype=np.int64)
        verts = np.unique(
            np.concatenate([plan.vertices[plan.ia[idx]], plan.vertices[plan.ib[idx]]])
        )
        slices[tag] = TenantSlice(tenant=tag, indices=idx, vertices=verts)
    return slices


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous vertex ranges covering one workload's distinct vertices.

    Shard ``s`` owns ``vertices[offsets[s]:offsets[s + 1]]``; the ranges
    are contiguous, disjoint and cover the whole block in order, so
    concatenating per-shard CSR fragments in shard order reproduces the
    unsharded row layout exactly. ``est_bytes`` carries the planner's
    expected noisy-payload size per shard (see
    :func:`estimate_noisy_row_bytes`) — the quantity the memory budget
    sized the ranges by.
    """

    vertices: np.ndarray  # the full sorted distinct vertex block
    offsets: np.ndarray  # shard s = vertices[offsets[s]:offsets[s + 1]]
    est_bytes: np.ndarray  # expected noisy payload bytes per shard
    mem_bytes: int | None  # the budget that sized the plan (None: count-sized)

    @property
    def num_shards(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def max_shard_bytes(self) -> int:
        """The largest per-shard estimate — what one worker must hold."""
        return int(self.est_bytes.max()) if self.num_shards else 0

    def ranges(self) -> list[tuple[int, int]]:
        """Per-shard ``(lo, hi)`` index ranges into :attr:`vertices`."""
        return [
            (int(self.offsets[s]), int(self.offsets[s + 1]))
            for s in range(self.num_shards)
        ]

    def shard_vertices(self, shard: int) -> np.ndarray:
        """The vertex ids owned by one shard."""
        return self.vertices[self.offsets[shard] : self.offsets[shard + 1]]

    def shard_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """The shard owning each workload row slot (vectorized lookup)."""
        return np.searchsorted(self.offsets, rows, side="right") - 1


def estimate_noisy_row_bytes(
    degrees: np.ndarray, domain: int, epsilon: float
) -> np.ndarray:
    """Expected noisy-report size, in bytes, per vertex.

    Under ε-randomized response a degree-``d`` vertex reports each of its
    ``d`` edges with probability ``1 - p`` and each of its ``domain - d``
    non-edges with probability ``p``, so the expected report length is
    ``d (1 - p) + (domain - d) p`` column ids of 8 bytes each. This is
    the quantity :func:`plan_shards` packs against a memory budget — the
    noisy output dominates a shard's working set.

    Parameters
    ----------
    degrees:
        True degree per vertex (array or scalar).
    domain:
        Opposite-layer size (the candidate pool each row ranges over).
    epsilon:
        The RR budget the rows will be drawn at.

    Returns
    -------
    numpy.ndarray
        Expected bytes per vertex, as float64 (same shape as
        ``degrees``).

    Example
    -------
    >>> import numpy as np
    >>> est = estimate_noisy_row_bytes(np.array([10, 0]), 1000, 2.0)
    >>> bool((est > 0).all())
    True
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    p = flip_probability(epsilon)
    expected_ids = degrees * (1.0 - p) + (domain - degrees) * p
    return expected_ids * _ROW_ID_BYTES


def plan_shards(
    graph: BipartiteGraph,
    layer: Layer,
    vertices: np.ndarray,
    epsilon: float,
    *,
    shards: int | None = None,
    mem_bytes: int | None = None,
) -> ShardPlan:
    """Split a workload's vertex block into contiguous budget-sized ranges.

    Exactly one of ``shards`` and ``mem_bytes`` sizes the plan (neither
    means one shard). With ``mem_bytes`` the block is packed greedily:
    each range takes vertices until its expected noisy payload
    (:func:`estimate_noisy_row_bytes`) would exceed the budget — a single
    vertex whose own estimate exceeds the budget still gets a
    (one-vertex, over-budget) shard, since rows are indivisible. With
    ``shards`` the block is cut at the byte-balanced quantiles, so the
    requested number of ranges carry roughly equal expected payloads.

    Shard boundaries never change the drawn bits: the keyed kernel gives
    every vertex a private counter-based stream, so any plan's per-shard
    draws concatenate to the byte-identical unsharded output (see
    ``docs/sharding-guide.md``).

    Parameters
    ----------
    graph, layer:
        The serving context; ``vertices`` must be valid ids on ``layer``.
    vertices:
        The workload's (typically sorted distinct) vertex block.
    epsilon:
        The RR budget the rows will be drawn at (fixes the flip
        probability the size estimate depends on).
    shards:
        Explicit shard count (positive). Mutually exclusive with
        ``mem_bytes``.
    mem_bytes:
        Per-shard byte budget for the expected noisy payload (positive).
        Mutually exclusive with ``shards``.

    Returns
    -------
    ShardPlan
        The contiguous ranges with their per-shard byte estimates. An
        empty vertex block yields a zero-shard plan.

    Raises
    ------
    ProtocolError
        If both ``shards`` and ``mem_bytes`` are given, or either is not
        positive.
    GraphError
        If a vertex id is out of range for ``layer``.

    Example
    -------
    >>> from repro.graph.generators import random_bipartite
    >>> from repro.graph.bipartite import Layer
    >>> g = random_bipartite(40, 30, 200, rng=0)
    >>> plan = plan_shards(g, Layer.UPPER, np.arange(40), 2.0, shards=4)
    >>> plan.num_shards, int(plan.offsets[0]), int(plan.offsets[-1])
    (4, 0, 40)
    """
    if shards is not None and mem_bytes is not None:
        raise ProtocolError("pass either shards or mem_bytes, not both")
    if shards is not None and shards <= 0:
        raise ProtocolError(f"shards must be positive, got {shards}")
    if mem_bytes is not None and mem_bytes <= 0:
        raise ProtocolError(f"mem_bytes must be positive, got {mem_bytes}")
    vertices = np.asarray(vertices, dtype=np.int64)
    k = vertices.size
    n_layer = graph.layer_size(layer)
    if k and (vertices.min() < 0 or vertices.max() >= n_layer):
        raise GraphError(f"shard vertex out of range for {layer} layer")
    domain = graph.layer_size(layer.opposite())
    per_vertex = (
        estimate_noisy_row_bytes(
            graph.degrees(layer)[vertices], domain, epsilon
        )
        if k
        else np.empty(0, dtype=np.float64)
    )
    if k == 0:
        return ShardPlan(
            vertices=vertices,
            offsets=np.zeros(1, dtype=np.int64),
            est_bytes=np.empty(0, dtype=np.int64),
            mem_bytes=mem_bytes,
        )
    cumulative = np.concatenate(([0.0], np.cumsum(per_vertex)))
    if mem_bytes is not None:
        # Greedy packing: each cut lands on the last vertex that still
        # fits the running budget; a single over-budget vertex advances
        # by one (rows are indivisible).
        cuts = [0]
        while cuts[-1] < k:
            start = cuts[-1]
            fit = int(
                np.searchsorted(
                    cumulative, cumulative[start] + mem_bytes, side="right"
                )
                - 1
            )
            cuts.append(max(fit, start + 1))
        offsets = np.asarray(cuts, dtype=np.int64)
    elif shards is not None and shards > 1:
        # Byte-balanced quantile cuts (deduplicated: never more shards
        # than vertices, every shard nonempty).
        targets = cumulative[-1] * np.arange(1, shards) / shards
        interior = np.searchsorted(cumulative[1:-1], targets, side="left") + 1
        offsets = np.unique(
            np.concatenate(([0], np.minimum(interior, k - 1), [k]))
        ).astype(np.int64)
    else:
        offsets = np.array([0, k], dtype=np.int64)
    est = np.diff(cumulative[offsets]).astype(np.int64)
    return ShardPlan(
        vertices=vertices, offsets=offsets, est_bytes=est, mem_bytes=mem_bytes
    )


def pair_keys(plan: WorkloadPlan) -> np.ndarray:
    """Order-normalized ``(min, max)`` vertex-id key per pair.

    ``C2`` is symmetric, so ``(a, b)`` and ``(b, a)`` must share one cache
    entry; the key array has shape ``(num_pairs, 2)``.
    """
    a = plan.vertices[plan.ia]
    b = plan.vertices[plan.ib]
    return np.stack([np.minimum(a, b), np.maximum(a, b)], axis=1)


def plan_workload(
    graph: BipartiteGraph,
    layer: Layer,
    pairs: Sequence[QueryPair],
    epsilon: float | None = None,
    *,
    budget: QueryBudgetManager | None = None,
) -> WorkloadPlan:
    """Validate a pair workload and resolve its batch budget.

    Exactly one of ``epsilon`` and ``budget`` funds the batch; with a
    manager, one slice is reserved per call (a batch is one query against
    the analyst's total, however many pairs it answers).

    Parameters
    ----------
    graph, layer:
        The serving context; every pair must live on ``layer`` and its
        endpoints must be valid vertex ids there.
    pairs:
        The same-layer :class:`~repro.graph.sampling.QueryPair` workload
        (at least one pair; duplicates are allowed and deduplicate into
        shared vertex slots).
    epsilon:
        Explicit per-batch budget. Mutually exclusive with ``budget``.
    budget:
        A :class:`~repro.privacy.composition.QueryBudgetManager`; one
        slice is reserved by this call and funds the whole batch.

    Returns
    -------
    WorkloadPlan
        The validated plan: resolved ``epsilon``, the sorted distinct
        query vertices, and each pair's endpoint slots within them.

    Raises
    ------
    ProtocolError
        If the workload is empty or a pair sits on the wrong layer.
    PrivacyError
        If both or neither of ``epsilon``/``budget`` are given, or the
        resolved epsilon is not a positive finite number.
    GraphError
        If any endpoint is out of range for ``layer``.
    BudgetExceededError
        Propagated from ``budget`` when its total is exhausted.

    Example
    -------
    >>> from repro.graph.generators import random_bipartite
    >>> from repro.graph.sampling import QueryPair
    >>> g = random_bipartite(10, 8, 30, rng=0)
    >>> plan = plan_workload(
    ...     g, Layer.UPPER,
    ...     [QueryPair(Layer.UPPER, 1, 4), QueryPair(Layer.UPPER, 4, 2)],
    ...     epsilon=2.0,
    ... )
    >>> plan.num_pairs, plan.vertices.tolist()
    (2, [1, 2, 4])
    """
    if not pairs:
        raise ProtocolError("batch needs at least one query pair")
    for pair in pairs:
        if pair.layer is not layer:
            raise ProtocolError(f"pair {pair} is not on the requested {layer} layer")

    if budget is not None:
        if epsilon is not None:
            raise PrivacyError("pass either epsilon or a budget manager, not both")
        epsilon = budget.next_budget()
    if epsilon is None:
        raise PrivacyError("a batch needs an epsilon or a budget manager")
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise PrivacyError(f"epsilon must be a positive finite number, got {epsilon}")

    endpoints = np.array([(pair.a, pair.b) for pair in pairs], dtype=np.int64)
    n_layer = graph.layer_size(layer)
    if endpoints.min() < 0 or endpoints.max() >= n_layer:
        raise GraphError(f"query vertex out of range for {layer} layer of size {n_layer}")
    vertices, inverse = np.unique(endpoints, return_inverse=True)
    inverse = inverse.reshape(endpoints.shape)
    return WorkloadPlan(
        layer=layer,
        epsilon=epsilon,
        pairs=tuple(pairs),
        vertices=vertices,
        ia=np.ascontiguousarray(inverse[:, 0]),
        ib=np.ascontiguousarray(inverse[:, 1]),
    )

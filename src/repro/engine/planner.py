"""Workload planning: validation, vertex dedup and budget slicing.

A plan turns an arbitrary same-layer pair workload into the arrays the
vectorized stages consume: the sorted distinct query vertices (each
perturbs exactly once, whatever the pair multiplicity) and, per pair, the
slots of its endpoints within that vertex block. Budgets come either as an
explicit per-batch ``epsilon`` or as one slice of a
:class:`~repro.privacy.composition.QueryBudgetManager`, so a sequence of
batches can honestly share an analyst budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError, PrivacyError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.composition import QueryBudgetManager

__all__ = ["WorkloadPlan", "plan_workload"]


@dataclass(frozen=True)
class WorkloadPlan:
    """A validated batch: distinct vertices, pair slots and the budget."""

    layer: Layer
    epsilon: float
    pairs: tuple[QueryPair, ...]
    vertices: np.ndarray  # sorted distinct query vertices
    ia: np.ndarray  # slot of pair.a within `vertices`, per pair
    ib: np.ndarray  # slot of pair.b within `vertices`, per pair

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.size)


def plan_workload(
    graph: BipartiteGraph,
    layer: Layer,
    pairs: Sequence[QueryPair],
    epsilon: float | None = None,
    *,
    budget: QueryBudgetManager | None = None,
) -> WorkloadPlan:
    """Validate a pair workload and resolve its batch budget.

    Exactly one of ``epsilon`` and ``budget`` funds the batch; with a
    manager, one slice is reserved per call (a batch is one query against
    the analyst's total, however many pairs it answers).
    """
    if not pairs:
        raise ProtocolError("batch needs at least one query pair")
    for pair in pairs:
        if pair.layer is not layer:
            raise ProtocolError(f"pair {pair} is not on the requested {layer} layer")

    if budget is not None:
        if epsilon is not None:
            raise PrivacyError("pass either epsilon or a budget manager, not both")
        epsilon = budget.next_budget()
    if epsilon is None:
        raise PrivacyError("a batch needs an epsilon or a budget manager")
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise PrivacyError(f"epsilon must be a positive finite number, got {epsilon}")

    endpoints = np.array([(pair.a, pair.b) for pair in pairs], dtype=np.int64)
    n_layer = graph.layer_size(layer)
    if endpoints.min() < 0 or endpoints.max() >= n_layer:
        raise GraphError(f"query vertex out of range for {layer} layer of size {n_layer}")
    vertices, inverse = np.unique(endpoints, return_inverse=True)
    inverse = inverse.reshape(endpoints.shape)
    return WorkloadPlan(
        layer=layer,
        epsilon=epsilon,
        pairs=tuple(pairs),
        vertices=vertices,
        ia=np.ascontiguousarray(inverse[:, 0]),
        ib=np.ascontiguousarray(inverse[:, 1]),
    )

"""Workload planning: validation, vertex dedup and budget slicing.

A plan turns an arbitrary same-layer pair workload into the arrays the
vectorized stages consume: the sorted distinct query vertices (each
perturbs exactly once, whatever the pair multiplicity) and, per pair, the
slots of its endpoints within that vertex block. Budgets come either as an
explicit per-batch ``epsilon`` or as one slice of a
:class:`~repro.privacy.composition.QueryBudgetManager`, so a sequence of
batches can honestly share an analyst budget.

For epoch-cached serving the plan additionally splits into cached and
uncached blocks: :func:`split_cached` partitions the distinct vertex block
by a cache-membership mask (only the uncached block is perturbed — and
charged — this tick), and :func:`pair_keys` gives every pair its
order-normalized key for pair-granular (sketch-mode) caching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError, PrivacyError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.composition import QueryBudgetManager

__all__ = [
    "WorkloadPlan",
    "CacheSplit",
    "TenantSlice",
    "plan_workload",
    "split_cached",
    "pair_keys",
    "slice_by_tenant",
]


@dataclass(frozen=True)
class WorkloadPlan:
    """A validated batch: distinct vertices, pair slots and the budget."""

    layer: Layer
    epsilon: float
    pairs: tuple[QueryPair, ...]
    vertices: np.ndarray  # sorted distinct query vertices
    ia: np.ndarray  # slot of pair.a within `vertices`, per pair
    ib: np.ndarray  # slot of pair.b within `vertices`, per pair

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.size)


@dataclass(frozen=True)
class CacheSplit:
    """A plan's distinct vertex block partitioned by cache membership."""

    cached: np.ndarray
    uncached: np.ndarray

    @property
    def num_cached(self) -> int:
        return int(self.cached.size)

    @property
    def num_uncached(self) -> int:
        return int(self.uncached.size)


def split_cached(plan: WorkloadPlan, cached_mask: np.ndarray) -> CacheSplit:
    """Partition the plan's distinct vertices into cached/uncached blocks.

    ``cached_mask`` is a boolean per entry of ``plan.vertices`` (True when
    an epoch view already exists). Only the uncached block passes through
    randomized response — and the privacy charge — this tick.
    """
    cached_mask = np.asarray(cached_mask, dtype=bool)
    if cached_mask.shape != (plan.num_vertices,):
        raise ProtocolError(
            f"cache mask shape {cached_mask.shape} does not match the "
            f"plan's {plan.num_vertices} distinct vertices"
        )
    return CacheSplit(
        cached=plan.vertices[cached_mask],
        uncached=plan.vertices[~cached_mask],
    )


@dataclass(frozen=True)
class TenantSlice:
    """One tenant's share of a multi-tenant workload plan."""

    tenant: str
    indices: np.ndarray  # slots of this tenant's pairs within `plan.pairs`
    vertices: np.ndarray  # sorted distinct vertices those pairs touch

    @property
    def num_pairs(self) -> int:
        return int(self.indices.size)


def slice_by_tenant(
    plan: WorkloadPlan, tags: Sequence[str]
) -> dict[str, TenantSlice]:
    """Partition a plan's pairs into per-tenant slices.

    ``tags`` gives the requesting tenant of each pair, aligned with
    ``plan.pairs``. Returns one :class:`TenantSlice` per distinct tag,
    in first-appearance order — the view the serving layer's per-tenant
    accounting and reports are built on. Slices share vertices freely
    (that sharing is exactly what makes the common epoch cache pay off);
    whether a shared vertex's charge lands on one tenant or another is
    decided at serving time by arrival order, not here.

    Raises
    ------
    ProtocolError
        If ``tags`` is not aligned with the plan's pairs.
    """
    if len(tags) != plan.num_pairs:
        raise ProtocolError(
            f"{len(tags)} tenant tags do not match the plan's "
            f"{plan.num_pairs} pairs"
        )
    order: dict[str, list[int]] = {}
    for i, tag in enumerate(tags):
        order.setdefault(str(tag), []).append(i)
    slices: dict[str, TenantSlice] = {}
    for tag, indices in order.items():
        idx = np.asarray(indices, dtype=np.int64)
        verts = np.unique(
            np.concatenate([plan.vertices[plan.ia[idx]], plan.vertices[plan.ib[idx]]])
        )
        slices[tag] = TenantSlice(tenant=tag, indices=idx, vertices=verts)
    return slices


def pair_keys(plan: WorkloadPlan) -> np.ndarray:
    """Order-normalized ``(min, max)`` vertex-id key per pair.

    ``C2`` is symmetric, so ``(a, b)`` and ``(b, a)`` must share one cache
    entry; the key array has shape ``(num_pairs, 2)``.
    """
    a = plan.vertices[plan.ia]
    b = plan.vertices[plan.ib]
    return np.stack([np.minimum(a, b), np.maximum(a, b)], axis=1)


def plan_workload(
    graph: BipartiteGraph,
    layer: Layer,
    pairs: Sequence[QueryPair],
    epsilon: float | None = None,
    *,
    budget: QueryBudgetManager | None = None,
) -> WorkloadPlan:
    """Validate a pair workload and resolve its batch budget.

    Exactly one of ``epsilon`` and ``budget`` funds the batch; with a
    manager, one slice is reserved per call (a batch is one query against
    the analyst's total, however many pairs it answers).

    Parameters
    ----------
    graph, layer:
        The serving context; every pair must live on ``layer`` and its
        endpoints must be valid vertex ids there.
    pairs:
        The same-layer :class:`~repro.graph.sampling.QueryPair` workload
        (at least one pair; duplicates are allowed and deduplicate into
        shared vertex slots).
    epsilon:
        Explicit per-batch budget. Mutually exclusive with ``budget``.
    budget:
        A :class:`~repro.privacy.composition.QueryBudgetManager`; one
        slice is reserved by this call and funds the whole batch.

    Returns
    -------
    WorkloadPlan
        The validated plan: resolved ``epsilon``, the sorted distinct
        query vertices, and each pair's endpoint slots within them.

    Raises
    ------
    ProtocolError
        If the workload is empty or a pair sits on the wrong layer.
    PrivacyError
        If both or neither of ``epsilon``/``budget`` are given, or the
        resolved epsilon is not a positive finite number.
    GraphError
        If any endpoint is out of range for ``layer``.
    BudgetExceededError
        Propagated from ``budget`` when its total is exhausted.
    """
    if not pairs:
        raise ProtocolError("batch needs at least one query pair")
    for pair in pairs:
        if pair.layer is not layer:
            raise ProtocolError(f"pair {pair} is not on the requested {layer} layer")

    if budget is not None:
        if epsilon is not None:
            raise PrivacyError("pass either epsilon or a budget manager, not both")
        epsilon = budget.next_budget()
    if epsilon is None:
        raise PrivacyError("a batch needs an epsilon or a budget manager")
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise PrivacyError(f"epsilon must be a positive finite number, got {epsilon}")

    endpoints = np.array([(pair.a, pair.b) for pair in pairs], dtype=np.int64)
    n_layer = graph.layer_size(layer)
    if endpoints.min() < 0 or endpoints.max() >= n_layer:
        raise GraphError(f"query vertex out of range for {layer} layer of size {n_layer}")
    vertices, inverse = np.unique(endpoints, return_inverse=True)
    inverse = inverse.reshape(endpoints.shape)
    return WorkloadPlan(
        layer=layer,
        epsilon=epsilon,
        pairs=tuple(pairs),
        vertices=vertices,
        ia=np.ascontiguousarray(inverse[:, 0]),
        ib=np.ascontiguousarray(inverse[:, 1]),
    )

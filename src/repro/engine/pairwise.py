"""Sparse pairwise intersection counting and the vectorized OneR de-bias.

Once the workload's noisy lists sit in one CSR block, every queried pair's
noisy intersection size ``N1`` is an entry of the Gram matrix ``A Aᵀ``.
Three interchangeable backends compute exactly the same counts:

* ``bitset`` — rows packed into bit arrays, pairs answered by
  ``popcount(row_a & row_b)`` (:func:`numpy.bitwise_count`); fastest when
  ``rows × domain`` bits fit comfortably in memory.
* ``sparse`` — one SciPy CSR product ``A Aᵀ`` gathered at the query
  pairs; wins when the workload is dense in its distinct vertices (many
  pairs per row), e.g. all-pairs projections.
* ``merge`` — a ``searchsorted``-based sorted-merge per pair; the
  dependency-free fallback and the safe choice for huge sparse workloads.
"""

from __future__ import annotations

import numpy as np

from repro.privacy.debias import debias_intersection_counts
from repro.privacy.mechanisms import flip_probability

try:  # SciPy is optional: the other backends cover its absence.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised via backend="merge"
    _sparse = None

__all__ = [
    "HAVE_SCIPY",
    "PRODUCT_MAX_ROWS",
    "BITSET_MAX_CELLS",
    "choose_backend",
    "pack_bitset_row",
    "pairwise_intersections",
    "debias_pair_counts",
]

HAVE_SCIPY = _sparse is not None
# numpy.bitwise_count arrived in NumPy 2.0; older builds fall back to the
# sparse/merge backends.
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")
# A @ A.T allocates an output over the workload's distinct-vertex square;
# beyond this many rows the Gram product is never attempted.
PRODUCT_MAX_ROWS = 32_768
# The bitset backend scatters a rows x domain boolean scratch (1 byte per
# cell) before packing; cap it at ~200 MB.
BITSET_MAX_CELLS = 200_000_000
# Pair blocks processed at once by the bitset backend (bounds the gathered
# packed-row working set).
_BITSET_PAIR_BLOCK = 16_384


def choose_backend(rows: int, num_pairs: int, domain: int) -> str:
    """Pick the counting backend for a workload shape.

    The thresholds are static memory guards: ``bitset`` while the dense
    ``rows x domain`` scratch stays under :data:`BITSET_MAX_CELLS`,
    ``sparse`` while the Gram output square stays under
    :data:`PRODUCT_MAX_ROWS` rows *and* the workload is pair-dense, else
    the dependency-free ``merge``. Because they are per-*shape*, a
    sharded workload must call this per shard block, not once for the
    whole workload: a 100k-row workload as a whole overflows the bitset
    scratch, while each of its 10k-row shard blocks fits comfortably —
    the shard runner therefore re-chooses per block
    (:meth:`repro.engine.sharded.ShardedRunner.pairwise`) and logs every
    choice in ``details["shards"]``.

    Parameters
    ----------
    rows:
        Distinct noisy rows the backend must hold (the workload's — or
        shard block's — vertex count).
    num_pairs:
        Query pairs to answer over those rows.
    domain:
        Opposite-layer size (columns of every row).

    Returns
    -------
    str
        ``"bitset"``, ``"sparse"`` or ``"merge"`` — all three return
        identical counts; only speed and scratch memory differ.

    Example
    -------
    >>> choose_backend(100, 1000, 1000) in {"bitset", "sparse", "merge"}
    True
    """
    if HAVE_BITWISE_COUNT and rows * max(domain, 1) <= BITSET_MAX_CELLS:
        return "bitset"
    if HAVE_SCIPY and rows <= PRODUCT_MAX_ROWS and num_pairs > rows:
        return "sparse"
    return "merge"


def pack_bitset_row(columns: np.ndarray, domain: int) -> np.ndarray:
    """One sorted neighbor list packed into the bitset backend's row format.

    The epoch cache pre-packs each vertex's noisy row once so repeated
    serving ticks can hand the bitset backend its ``packed`` block without
    re-scattering a dense boolean matrix per tick.
    """
    row = np.zeros(max(int(domain), 1), dtype=bool)
    row[np.asarray(columns, dtype=np.int64)] = True
    return np.packbits(row)


def pairwise_intersections(
    indptr: np.ndarray,
    columns: np.ndarray,
    ia: np.ndarray,
    ib: np.ndarray,
    domain: int,
    *,
    backend: str | None = None,
    packed: np.ndarray | None = None,
) -> np.ndarray:
    """``|row(ia[j]) ∩ row(ib[j])|`` for every query pair ``j``.

    Rows are the (sorted) CSR neighbor lists; ``ia``/``ib`` hold row
    indices. ``backend=None`` picks via :func:`choose_backend`; all
    backends return identical counts. ``packed`` optionally supplies the
    bitset backend's pre-packed row matrix (one :func:`pack_bitset_row`
    per CSR row) so callers holding cached masks skip the packing pass;
    the other backends ignore it.
    """
    ia = np.asarray(ia, dtype=np.int64)
    ib = np.asarray(ib, dtype=np.int64)
    if backend is None:
        backend = choose_backend(indptr.size - 1, ia.size, domain)
    if backend == "bitset":
        if not HAVE_BITWISE_COUNT:
            raise RuntimeError("the bitset backend needs numpy.bitwise_count (NumPy >= 2.0)")
        return _bitset_intersections(indptr, columns, ia, ib, domain, packed=packed)
    if backend == "sparse":
        if not HAVE_SCIPY:
            raise RuntimeError("the sparse backend needs SciPy")
        return _gram_intersections(indptr, columns, ia, ib, domain)
    if backend == "merge":
        return _merge_intersections(indptr, columns, ia, ib)
    raise ValueError(f"unknown backend {backend!r}")


def _bitset_intersections(indptr, columns, ia, ib, domain, packed=None) -> np.ndarray:
    rows = indptr.size - 1
    if packed is None:
        dense = np.zeros((rows, max(int(domain), 1)), dtype=bool)
        dense[np.repeat(np.arange(rows), np.diff(indptr)), columns] = True
        packed = np.packbits(dense, axis=1)
        del dense
    elif packed.shape[0] != rows:
        raise ValueError(
            f"precomputed mask has {packed.shape[0]} rows, workload has {rows}"
        )
    out = np.empty(ia.size, dtype=np.int64)
    for start in range(0, ia.size, _BITSET_PAIR_BLOCK):
        stop = min(start + _BITSET_PAIR_BLOCK, ia.size)
        both = packed[ia[start:stop]] & packed[ib[start:stop]]
        out[start:stop] = np.bitwise_count(both).sum(axis=1, dtype=np.int64)
    return out


def _gram_intersections(indptr, columns, ia, ib, domain) -> np.ndarray:
    rows = indptr.size - 1
    matrix = _sparse.csr_matrix(
        (np.ones(columns.size, dtype=np.int64), columns, indptr),
        shape=(rows, max(int(domain), 1)),
    )
    gram = (matrix @ matrix.T).tocsr()
    return np.asarray(gram[ia, ib]).ravel().astype(np.int64)


def _merge_intersections(indptr, columns, ia, ib) -> np.ndarray:
    out = np.empty(ia.size, dtype=np.int64)
    for j in range(ia.size):
        a0, a1 = indptr[ia[j]], indptr[ia[j] + 1]
        b0, b1 = indptr[ib[j]], indptr[ib[j] + 1]
        if a1 - a0 > b1 - b0:
            a0, a1, b0, b1 = b0, b1, a0, a1
        short = columns[a0:a1]
        longer = columns[b0:b1]
        if short.size == 0 or longer.size == 0:
            out[j] = 0
            continue
        at = np.searchsorted(longer, short)
        at[at == longer.size] = longer.size - 1
        out[j] = int(np.count_nonzero(longer[at] == short))
    return out


def debias_pair_counts(
    n1: np.ndarray, n2: np.ndarray, domain: int, epsilon: float
) -> np.ndarray:
    """OneR's unbiased C2 estimate for every pair in one expression.

    ``f̃2 = [N1 (1-p)² - (N2 - N1) p(1-p) + (domain - N2) p²] / (1-2p)²``
    applied element-wise over the whole workload (paper Theorem 3); the
    algebra lives in :func:`repro.privacy.debias.debias_intersection_counts`.
    """
    return debias_intersection_counts(n1, n2, domain, flip_probability(epsilon))

"""Vectorized batch query engine for whole pair workloads.

One shared ε-RR round, executed entirely at array level: bulk randomized
response over every distinct workload vertex, sparse-matrix pairwise
counting (SciPy Gram product with a ``searchsorted`` merge fallback), a
bulk sketch-mode path for million-vertex candidate pools, and a workload
planner that dedupes vertices, honors analyst budget managers, and emits
one privacy/communication accounting per batch. For workloads whose
noisy output exceeds one worker's memory, the shard planner
(:func:`plan_shards`) and process-parallel :class:`ShardedRunner`
partition the keyed bulk-RR + pairwise stages over contiguous vertex
ranges with bit-identical output (``docs/sharding-guide.md``). Sublinear
per-vertex memory comes from sketch views (:mod:`repro.engine.sketches`):
blipped Bloom, vector-of-counts, and HLL encodings that
:func:`plan_views` assigns per vertex under a byte budget
(``docs/sketch-guide.md``).
"""

from repro.engine.bulkrr import (
    bernoulli_hits,
    bulk_randomized_response,
    keyed_bulk_randomized_response,
    keyed_sketch_uniforms,
    shard_bulk_randomized_response,
)
from repro.engine.core import (
    BATCH_METHODS,
    BatchQueryEngine,
    EngineResult,
    workload_party,
)
from repro.engine.faults import FaultAction, FaultPlan
from repro.engine.pairwise import (
    HAVE_SCIPY,
    choose_backend,
    debias_pair_counts,
    pack_bitset_row,
    pairwise_intersections,
)
from repro.engine.planner import (
    CacheSplit,
    ShardPlan,
    ViewPlan,
    WorkloadPlan,
    estimate_noisy_row_bytes,
    pair_keys,
    plan_shards,
    plan_views,
    plan_workload,
    split_cached,
)
from repro.engine.sharded import (
    ShardDraw,
    ShardedRunner,
    WorkloadDraw,
    fork_available,
)
from repro.engine.sketch import sketch_pair_counts
from repro.engine.transport import (
    ForkTransport,
    InlineTransport,
    RetryPolicy,
    ShardResult,
    ShardSpec,
    ShardTransport,
    SocketTransport,
    WorkerRegistry,
    execute_spec,
    make_transport,
)
from repro.engine.sketches import (
    SKETCH_KINDS,
    BloomSketch,
    HllSketch,
    SketchConfig,
    SketchFamily,
    VectorOfCountsSketch,
    sketch_family,
)

__all__ = [
    "BATCH_METHODS",
    "BatchQueryEngine",
    "CacheSplit",
    "EngineResult",
    "FaultAction",
    "FaultPlan",
    "ForkTransport",
    "InlineTransport",
    "RetryPolicy",
    "ShardDraw",
    "ShardPlan",
    "ShardResult",
    "ShardSpec",
    "ShardTransport",
    "ShardedRunner",
    "SocketTransport",
    "WorkerRegistry",
    "WorkloadDraw",
    "SketchConfig",
    "SketchFamily",
    "BloomSketch",
    "VectorOfCountsSketch",
    "HllSketch",
    "SKETCH_KINDS",
    "ViewPlan",
    "WorkloadPlan",
    "estimate_noisy_row_bytes",
    "execute_spec",
    "fork_available",
    "make_transport",
    "pair_keys",
    "plan_shards",
    "plan_views",
    "plan_workload",
    "sketch_family",
    "split_cached",
    "workload_party",
    "pack_bitset_row",
    "bernoulli_hits",
    "bulk_randomized_response",
    "keyed_bulk_randomized_response",
    "keyed_sketch_uniforms",
    "shard_bulk_randomized_response",
    "choose_backend",
    "pairwise_intersections",
    "debias_pair_counts",
    "sketch_pair_counts",
    "HAVE_SCIPY",
]

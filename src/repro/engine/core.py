"""The batch query engine: a whole pair workload in one vectorized pass.

:class:`BatchQueryEngine` is the array-level replacement for running
:class:`~repro.estimators.batch.BatchOneRound` (or worse, one
:class:`~repro.protocol.session.ProtocolSession` per pair) over a
workload. One call plans the workload, perturbs every distinct vertex in
one bulk RR draw (or draws sketch-mode sufficient statistics), counts all
pairwise noisy intersections through one sparse product, de-biases every
pair with a single vectorized expression, and emits exactly one
:class:`~repro.privacy.accountant.PrivacyLedger` /
:class:`~repro.protocol.messages.CommunicationLog` accounting for the
batch.

Privacy matches the shared-round protocol: each distinct workload vertex
passes through one ε-RR invocation, so the batch is ε-edge LDP by parallel
composition regardless of how many pairs it answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.engine.bulkrr import bulk_randomized_response
from repro.engine.pairwise import (
    choose_backend,
    debias_pair_counts,
    pairwise_intersections,
)
from repro.engine.planner import (
    ShardPlan,
    WorkloadPlan,
    pair_keys,
    plan_shards,
    plan_workload,
    split_cached,
)
from repro.engine.sharded import ShardedRunner
from repro.engine.transport import ShardTransport, make_transport
from repro.engine.sketch import sketch_pair_counts
from repro.engine.sketches import SketchConfig, sketch_family
from repro.errors import PrivacyError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.composition import QueryBudgetManager
from repro.privacy.mechanisms import flip_probability
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.messages import ID_BYTES, CommunicationLog, Direction
from repro.protocol.session import ExecutionMode, resolve_mode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving uses engine)
    from repro.serving.cache import NoisyViewCache

__all__ = ["BATCH_METHODS", "EngineResult", "BatchQueryEngine", "workload_party"]

# Application-level method names that route a workload through the engine
# instead of a per-pair estimator (shared by similarity / projection /
# community so the aliases cannot drift apart).
BATCH_METHODS = ("batch-oner", "batch", "engine")


def workload_party(layer: Layer, num_vertices: int) -> str:
    """Ledger group label for a batch's distinct query vertices.

    All rounds of one batch must charge the same label so sequential
    composition across rounds (RR + degree reports) adds up per vertex.
    """
    return f"{layer.value}:workload[{num_vertices}v]"


@dataclass(frozen=True)
class EngineResult:
    """Every pair's estimate plus the batch's accounting, in arrays."""

    layer: Layer
    epsilon: float
    pairs: tuple[QueryPair, ...]
    values: np.ndarray
    noisy_intersections: np.ndarray
    noisy_unions: np.ndarray
    vertices: np.ndarray  # distinct query vertices, sorted
    ia: np.ndarray  # per-pair slot of pair.a within `vertices`
    ib: np.ndarray
    upload_bytes: int
    num_query_vertices: int
    mode: ExecutionMode
    max_epsilon_spent: float
    details: dict = field(default_factory=dict)
    _index: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    def value(self, pair: QueryPair) -> float:
        """The estimate for one of the batch's pairs (O(1) lookup)."""
        if not self._index:
            self._index.update({p: i for i, p in enumerate(self.pairs)})
        try:
            return float(self.values[self._index[pair]])
        except KeyError:
            raise ProtocolError(f"pair {pair} is not part of this batch") from None


class BatchQueryEngine:
    """Answers same-layer pair workloads with array-level work only.

    Parameters
    ----------
    mode:
        Default execution mode (``AUTO`` resolves by candidate-pool
        size).
    shards, shard_mem_bytes:
        Turn on sharded execution of the materialize-mode bulk-RR +
        pairwise stages: the workload's vertex block is split into
        contiguous ranges, each range is drawn from the keyed Philox
        kernel by a forked worker process, and pairwise N1 reduces over
        shard blocks with a per-block backend re-choice. When only
        ``shards`` is given it is both the range count and the worker
        cap; ``shard_mem_bytes`` sizes ranges by their expected noisy
        payload instead (workers then default to the cpu count, or to
        ``shards`` when both are given — the same semantics the
        :class:`~repro.serving.server.QueryServer` options use). The
        drawn bits are shard-invariant (see ``docs/sharding-guide.md``),
        and ``details["shards"]`` records every range and backend
        choice. Sketch mode has no rows to shard and ignores both
        options.
    shard_timeout_s, shard_retries:
        Resilience knobs forwarded to the :class:`ShardedRunner`: the
        per-task deadline and the re-dispatch budget before a failed
        range degrades to inline execution. Whatever the resilience
        envelope did is reported in ``details["shards"]["faults"]``.
    shard_transport, shard_workers:
        *Where* shard work runs: a
        :class:`~repro.engine.transport.ShardTransport` instance, or a
        kind name (``"inline"``, ``"fork"``, ``"socket"``) resolved via
        :func:`~repro.engine.transport.make_transport`;
        ``shard_workers`` is the socket cluster's ``host:port`` address
        list. Defaults to the fork pool. Giving a transport alone (no
        ``shards``/``shard_mem_bytes``) turns sharding on with one
        range per transport worker. Per-draw traffic accounting lands
        in ``details["shards"]["transport"]``.
    sketch, view_mem_bytes:
        A :class:`~repro.engine.sketches.SketchConfig` turns on
        sublinear-memory sketch views. Under ``SKETCH_VIEW`` mode every
        workload vertex releases one fixed-size sketch; under
        ``MATERIALIZE`` the planner decides per vertex (hybrid): a
        vertex whose expected noisy row outweighs the sketch — or that
        the optional ``view_mem_bytes`` workload budget forces out — is
        sketched, and the decision is closed over pairs so every pair is
        answered from one view kind (see
        :func:`~repro.engine.planner.plan_views`). The decision is
        reported in ``details["planner"]``.

    A sharding engine owns a worker pool; call :meth:`close` (or use the
    engine as a context manager) to free the processes.
    """

    name = "engine-batch"
    unbiased = True

    def __init__(
        self,
        *,
        mode: ExecutionMode = ExecutionMode.AUTO,
        shards: int | None = None,
        shard_mem_bytes: int | None = None,
        shard_timeout_s: float | None = None,
        shard_retries: int = 2,
        shard_transport: "ShardTransport | str | None" = None,
        shard_workers: Sequence[str] | None = None,
        sketch: "SketchConfig | None" = None,
        view_mem_bytes: int | None = None,
    ):
        if shards is not None and shards <= 0:
            raise ProtocolError(f"shards must be positive, got {shards}")
        if shard_mem_bytes is not None and shard_mem_bytes <= 0:
            raise ProtocolError(
                f"shard_mem_bytes must be positive, got {shard_mem_bytes}"
            )
        if view_mem_bytes is not None and sketch is None:
            raise ProtocolError("view_mem_bytes requires a sketch config")
        if mode is ExecutionMode.SKETCH_VIEW and sketch is None:
            raise ProtocolError(
                "sketch-view mode needs a SketchConfig (pass sketch=)"
            )
        self.mode = mode
        self.shards = shards
        self.shard_mem_bytes = shard_mem_bytes
        self.shard_timeout_s = shard_timeout_s
        self.shard_retries = shard_retries
        self.shard_transport = shard_transport
        self.shard_workers = list(shard_workers) if shard_workers else None
        self.sketch = sketch
        self.view_mem_bytes = view_mem_bytes
        self._runner: ShardedRunner | None = None

    # ------------------------------------------------------------------
    @property
    def sharding(self) -> bool:
        """True when this engine shards its materialize-mode draws."""
        return (
            self.shards is not None
            or self.shard_mem_bytes is not None
            or self.shard_transport is not None
        )

    def close(self) -> None:
        """Release the sharded runner's worker pool (no-op otherwise)."""
        if self._runner is not None:
            self._runner.close()
            self._runner = None

    def __enter__(self) -> "BatchQueryEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _shard_runner(self, graph: BipartiteGraph, layer: Layer) -> ShardedRunner:
        """The engine's runner, rebound when the serving context changes."""
        runner = self._runner
        if runner is not None and (
            runner.graph is not graph or runner.layer is not layer
        ):
            runner.close()
            runner = None
        if runner is None:
            transport = self.shard_transport
            if isinstance(transport, str):
                transport = make_transport(
                    transport,
                    max_workers=self.shards,
                    workers=self.shard_workers,
                )
            runner = ShardedRunner(
                graph,
                layer,
                max_workers=self.shards,
                timeout_s=self.shard_timeout_s,
                max_retries=self.shard_retries,
                transport=transport,
            )
            self._runner = runner
        return runner

    def _plan_shard_count(self, runner: ShardedRunner) -> int | None:
        """Range count for :func:`plan_shards` (None when a mem budget rules)."""
        if self.shard_mem_bytes is not None:
            return None
        if self.shards is not None:
            return self.shards
        # Transport-only configuration: one range per transport worker.
        return max(1, runner.transport.workers)

    def estimate_pairs(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        pairs: Sequence[QueryPair],
        epsilon: float | None = None,
        *,
        budget: QueryBudgetManager | None = None,
        rng: RngLike = None,
        mode: ExecutionMode | None = None,
        ledger: PrivacyLedger | None = None,
        comm: CommunicationLog | None = None,
        cache: "NoisyViewCache | None" = None,
    ) -> EngineResult:
        """Estimate ``C2`` for every pair from one shared noisy round.

        ``budget`` (a :class:`QueryBudgetManager`) may fund the batch
        instead of ``epsilon``; one slice is drawn per call. An external
        ``ledger``/``comm`` can be passed when the batch is one round of a
        larger protocol (e.g. batch similarity, which adds a degree round
        against the same ledger).

        ``cache`` (a :class:`~repro.serving.cache.NoisyViewCache`) turns
        the call into one epoch-cached serving tick: vertices (materialize
        mode) or pairs (sketch mode) already holding an epoch view are
        served from the identical cached draw with **zero** additional
        budget charge; only cache misses are perturbed and charged —
        through the cache's :class:`~repro.privacy.epoch.EpochAccountant`
        and, in aggregate, ``ledger.charge_parallel``. Epsilon defaults to
        (and must match) the cache's pinned budget.

        A sharding engine (``shards=`` / ``shard_mem_bytes=`` at
        construction) executes the uncached materialize path as a fanned
        keyed draw plus a per-shard-block pairwise reduce, reporting
        every range and backend choice in ``details["shards"]``; cached
        ticks shard inside the cache instead (attach a runner to the
        cache / server).
        """
        if cache is not None:
            if budget is not None:
                raise PrivacyError(
                    "an epoch cache pins the batch epsilon; a budget manager "
                    "cannot fund cached batches"
                )
            if epsilon is None:
                epsilon = cache.epsilon
        rng = ensure_rng(rng)
        if mode is None and cache is not None:
            mode = cache.mode
        mode = self._resolve_mode(graph, layer, mode)
        sketch = self.sketch
        if sketch is None and cache is not None:
            sketch = cache.sketch
        if mode is ExecutionMode.SKETCH_VIEW and sketch is None:
            raise ProtocolError(
                "sketch-view mode needs a SketchConfig (pass sketch= to the "
                "engine or serve from a sketch-view cache)"
            )
        # Uncached batches with a sketch config carry a per-vertex
        # list-vs-sketch plan: forced all-sketch in SKETCH_VIEW mode,
        # decided by row economics / the view budget under MATERIALIZE.
        plan_sketch = (
            cache is None
            and sketch is not None
            and mode in (ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH_VIEW)
        )
        plan = plan_workload(
            graph, layer, pairs, epsilon, budget=budget,
            **(
                {
                    "sketch_bytes": sketch.bytes_per_vertex,
                    "view_mem_bytes": self.view_mem_bytes,
                    "force_sketch": mode is ExecutionMode.SKETCH_VIEW,
                }
                if plan_sketch
                else {}
            ),
        )
        if ledger is None:
            ledger = PrivacyLedger(limit=plan.epsilon)
        if comm is None:
            comm = CommunicationLog()
        domain = graph.layer_size(plan.layer.opposite())
        k = plan.num_vertices

        if cache is not None:
            cache.check_compatible(graph, plan.layer, plan.epsilon, mode, self.sketch)
            return self._estimate_pairs_cached(
                graph, plan, mode, cache, rng, ledger, comm, domain, k
            )
        if plan.views is not None and plan.views.num_sketched:
            return self._estimate_pairs_views(
                graph, plan, mode, sketch, rng, ledger, comm, domain, k
            )

        shard_details = None
        if mode is ExecutionMode.MATERIALIZE and self.sharding:
            # Sharded path: keyed draws (entropy from the caller's rng, so
            # the run is reproducible per seed) fanned over the plan's
            # ranges; shard boundaries never change the drawn bits.
            # A mem budget sizes the ranges; an explicit count only
            # applies without one (it then still caps the workers).
            runner = self._shard_runner(graph, plan.layer)
            shard_plan = plan_shards(
                graph, plan.layer, plan.vertices, plan.epsilon,
                shards=self._plan_shard_count(runner),
                mem_bytes=self.shard_mem_bytes,
            )
            entropy = int(rng.integers(1 << 62))
            workload = runner.run_workload(
                shard_plan, plan.epsilon, entropy=entropy, epoch=0,
                ia=plan.ia, ib=plan.ib, domain=domain,
            )
            sizes = workload.sizes
            n1 = workload.n1
            n2 = sizes[plan.ia] + sizes[plan.ib] - n1
            backend = "sharded"
            shard_details = {
                "count": shard_plan.num_shards,
                "mem_bytes": shard_plan.mem_bytes,
                "draw": workload.shards,
                "pairwise": workload.blocks,
                "faults": workload.faults,
                "transport": workload.transport,
            }
        elif mode is ExecutionMode.MATERIALIZE:
            indptr, columns = bulk_randomized_response(
                graph, plan.layer, plan.vertices, plan.epsilon, rng
            )
            sizes = np.diff(indptr)
            backend = choose_backend(k, plan.num_pairs, domain)
            n1 = pairwise_intersections(
                indptr, columns, plan.ia, plan.ib, domain, backend=backend
            )
            n2 = sizes[plan.ia] + sizes[plan.ib] - n1
        else:
            n1, n2, sizes = sketch_pair_counts(
                graph, plan.layer, plan.vertices, plan.ia, plan.ib, plan.epsilon, rng
            )
            backend = "sketch"

        values = debias_pair_counts(n1, n2, domain, plan.epsilon)
        upload_bytes = int(sizes.sum()) * ID_BYTES

        party = workload_party(plan.layer, k)
        ledger.charge_parallel(
            party, plan.epsilon, "randomized-response", "engine-batch-rr", count=k
        )
        comm.record(Direction.UPLOAD, upload_bytes, "engine-batch:edges")
        ledger.assert_within(ledger.limit if ledger.limit is not None else plan.epsilon)

        return EngineResult(
            layer=plan.layer,
            epsilon=plan.epsilon,
            pairs=plan.pairs,
            values=values,
            noisy_intersections=np.asarray(n1, dtype=np.int64),
            noisy_unions=np.asarray(n2, dtype=np.int64),
            vertices=plan.vertices,
            ia=plan.ia,
            ib=plan.ib,
            upload_bytes=upload_bytes,
            num_query_vertices=k,
            mode=mode,
            max_epsilon_spent=ledger.max_spent(),
            details={
                "flip_probability": flip_probability(plan.epsilon),
                "candidate_pool": domain,
                "backend": backend,
                "party": party,
                **({"shards": shard_details} if shard_details else {}),
            },
        )

    @staticmethod
    def _planner_details(vp) -> dict:
        """The ``details["planner"]`` payload for a view-planned batch."""
        return {
            "sketched_vertices": vp.num_sketched,
            "listed_vertices": vp.num_listed,
            "promoted": vp.promoted,
            "sketch_bytes_per_vertex": vp.sketch_bytes,
            "est_view_bytes": vp.est_view_bytes,
        }

    def _estimate_pairs_views(
        self,
        graph: BipartiteGraph,
        plan: WorkloadPlan,
        mode: ExecutionMode,
        sketch: SketchConfig,
        rng: np.random.Generator,
        ledger: PrivacyLedger,
        comm: CommunicationLog,
        domain: int,
        k: int,
    ) -> EngineResult:
        """One view-planned batch: sketched and listed sub-blocks side by side.

        The plan's sketch mask is pair-closed, so every pair is answered
        from exactly one view kind: sketched pairs through the family's
        debiased intersection estimator, listed pairs through the usual
        bulk-RR + pairwise + Theorem-3 pipeline. Each vertex releases
        exactly one ε-LDP view either way, so the batch privacy charge is
        unchanged. The sketch entropy is drawn from ``rng`` *before* any
        listed randomness, making the sketch bits invariant to the listed
        path's backend and sharding (and bit-reproducible per seed).

        Sketched pairs have no ``(N1, N2)`` counts; their slots carry the
        ``-1`` sentinel in ``noisy_intersections``/``noisy_unions``.
        ``details["sketch_variance"]`` carries the closed-form variance of
        each sketched pair's estimate (0 for listed pairs).
        """
        vp = plan.views
        family = sketch_family(sketch)
        sk = vp.sketch_mask
        pair_sk = sk[plan.ia]  # closure: sk[ia] == sk[ib] for every pair

        # --- sketched sub-block (entropy first: see docstring) ---------
        sk_slots = np.flatnonzero(sk)
        pos_sk = np.full(k, -1, dtype=np.int64)
        pos_sk[sk_slots] = np.arange(sk_slots.size)
        entropy = int(rng.integers(1 << 62))
        views = family.encode_release(
            graph, plan.layer, plan.vertices[sk_slots], plan.epsilon,
            entropy=entropy, epoch=0,
        )
        ia_sk = pos_sk[plan.ia[pair_sk]]
        ib_sk = pos_sk[plan.ib[pair_sk]]
        sketch_values = family.intersect(views, ia_sk, ib_sk, plan.epsilon)
        sketch_bytes = int(views.nbytes)

        # --- listed sub-block ------------------------------------------
        listed_slots = np.flatnonzero(~sk)
        pos_li = np.full(k, -1, dtype=np.int64)
        pos_li[listed_slots] = np.arange(listed_slots.size)
        ia_li = pos_li[plan.ia[~pair_sk]]
        ib_li = pos_li[plan.ib[~pair_sk]]
        n1 = np.full(plan.num_pairs, -1, dtype=np.int64)
        n2 = np.full(plan.num_pairs, -1, dtype=np.int64)
        values = np.empty(plan.num_pairs, dtype=np.float64)
        values[pair_sk] = sketch_values
        listed_bytes = 0
        shard_details = None
        backend = "sketch-view"
        if listed_slots.size:
            listed = plan.vertices[listed_slots]
            if self.sharding:
                runner = self._shard_runner(graph, plan.layer)
                shard_plan = plan_shards(
                    graph, plan.layer, listed, plan.epsilon,
                    shards=self._plan_shard_count(runner),
                    mem_bytes=self.shard_mem_bytes,
                )
                workload = runner.run_workload(
                    shard_plan, plan.epsilon,
                    entropy=int(rng.integers(1 << 62)), epoch=0,
                    ia=ia_li, ib=ib_li, domain=domain,
                )
                sizes = workload.sizes
                li_n1 = workload.n1
                backend = "sketch-view+sharded"
                shard_details = {
                    "count": shard_plan.num_shards,
                    "mem_bytes": shard_plan.mem_bytes,
                    "draw": workload.shards,
                    "pairwise": workload.blocks,
                    "faults": workload.faults,
                    "transport": workload.transport,
                }
            else:
                indptr, columns = bulk_randomized_response(
                    graph, plan.layer, listed, plan.epsilon, rng
                )
                li_backend = choose_backend(
                    listed.size, int(ia_li.size), domain
                )
                li_n1 = pairwise_intersections(
                    indptr, columns, ia_li, ib_li, domain, backend=li_backend
                )
                backend = f"sketch-view+{li_backend}"
                sizes = np.diff(indptr)
            li_n2 = sizes[ia_li] + sizes[ib_li] - li_n1
            n1[~pair_sk] = li_n1
            n2[~pair_sk] = li_n2
            values[~pair_sk] = debias_pair_counts(
                li_n1, li_n2, domain, plan.epsilon
            )
            # Every listed vertex uploads its full noisy row regardless of
            # where it was reduced, so sizes (not a fragment's columns)
            # are the honest upload accounting.
            listed_bytes = int(sizes.sum()) * ID_BYTES

        # Closed-form variance of every sketched estimate (listed slots 0),
        # from the family's conservative bound at the estimated degrees.
        deg_hat = np.clip(family.cardinality(views, plan.epsilon), 0.0, None)
        variance = np.zeros(plan.num_pairs, dtype=np.float64)
        variance[pair_sk] = family.intersection_variance(
            deg_hat[ia_sk], deg_hat[ib_sk],
            np.clip(sketch_values, 0.0, None), plan.epsilon,
        )

        upload_bytes = listed_bytes + sketch_bytes
        party = workload_party(plan.layer, k)
        # Every vertex — sketched or listed — releases exactly one ε-LDP
        # view, so the batch charge is the same parallel composition as
        # the all-materialized path.
        ledger.charge_parallel(
            party, plan.epsilon, "randomized-response", "engine-batch-rr", count=k
        )
        comm.record(Direction.UPLOAD, upload_bytes, "engine-batch:views")
        ledger.assert_within(
            ledger.limit if ledger.limit is not None else plan.epsilon
        )

        return EngineResult(
            layer=plan.layer,
            epsilon=plan.epsilon,
            pairs=plan.pairs,
            values=values,
            noisy_intersections=n1,
            noisy_unions=n2,
            vertices=plan.vertices,
            ia=plan.ia,
            ib=plan.ib,
            upload_bytes=upload_bytes,
            num_query_vertices=k,
            mode=mode,
            max_epsilon_spent=ledger.max_spent(),
            details={
                "flip_probability": flip_probability(plan.epsilon),
                "candidate_pool": domain,
                "backend": backend,
                "party": party,
                "planner": {
                    **self._planner_details(vp),
                    "sketch_kind": sketch.kind,
                    "sketch_buckets": sketch.m,
                    "sketch_pairs": int(np.count_nonzero(pair_sk)),
                    "listed_pairs": int(np.count_nonzero(~pair_sk)),
                },
                "sketch_entropy": entropy,
                "sketch_variance": variance,
                **({"shards": shard_details} if shard_details else {}),
            },
        )

    def _estimate_pairs_cached(
        self,
        graph: BipartiteGraph,
        plan: WorkloadPlan,
        mode: ExecutionMode,
        cache: "NoisyViewCache",
        rng: np.random.Generator,
        ledger: PrivacyLedger,
        comm: CommunicationLog,
        domain: int,
        k: int,
    ) -> EngineResult:
        """One serving tick: perturb and charge only the cache misses.

        Materialize mode splits the plan's distinct vertex block into
        cached/uncached halves — the uncached block passes through one
        bulk RR draw and joins the cache, then the whole tick is answered
        from cached rows (so a pair repeated within the epoch gets a
        bit-identical estimate). Sketch mode is pair-granular: repeated
        pairs replay their cached ``(N1, N2)`` draw; new pairs draw fresh
        statistics and recharge their endpoints (documented sketch-mode
        honesty: without a stored list there is nothing to reuse).
        """
        accountant = cache.accountant
        recharges_before = cache.stats.recharges
        if mode is ExecutionMode.MATERIALIZE:
            split = split_cached(plan, cache.vertex_cached_mask(plan.vertices))
            # Only vertices never drawn this epoch are charged: a bounded
            # cache reconstructs evicted views deterministically, so their
            # redraw is privacy-free. Charge *before* drawing: a refused
            # charge (epoch allowance, ledger limit) must leave no stored
            # view behind, or later queries would ride the uncharged draw
            # for free.
            charged = cache.uncharged(split.uncached)
            party = accountant.charge_vertices(
                plan.layer, charged, plan.epsilon,
                "randomized-response", "serve-rr", ledger=ledger,
            )
            fresh_bytes = 0
            cache.last_shard_draw = []
            cache.last_shard_faults = {}
            if split.num_uncached:
                fresh_bytes = cache.materialize_fresh(split.uncached, rng) * ID_BYTES
            indptr, columns = cache.gather_views(plan.vertices)
            sizes = np.diff(indptr)
            backend = choose_backend(k, plan.num_pairs, domain)
            packed = (
                cache.packed_matrix(plan.vertices) if backend == "bitset" else None
            )
            n1 = pairwise_intersections(
                indptr, columns, plan.ia, plan.ib, domain,
                backend=backend, packed=packed,
            )
            n2 = sizes[plan.ia] + sizes[plan.ib] - n1
            hits, misses = split.num_cached, split.num_uncached
            cache.stats.vertex_hits += hits
            cache.stats.vertex_misses += misses
            values = None
        elif mode is ExecutionMode.SKETCH_VIEW:
            # Vertex-granular like materialize: a resident sketch view is
            # reused bit for bit, only never-drawn vertices are charged,
            # and evicted views reconstruct from their keyed streams.
            split = split_cached(
                plan, cache.sketch_view_cached_mask(plan.vertices)
            )
            charged = cache.uncharged(split.uncached)
            party = accountant.charge_vertices(
                plan.layer, charged, plan.epsilon,
                "randomized-response", "serve-rr", ledger=ledger,
            )
            fresh_bytes = 0
            if split.num_uncached:
                fresh_bytes = cache.sketch_view_fresh(split.uncached, rng)
            views = cache.gather_sketch_views(plan.vertices)
            family = sketch_family(cache.sketch)
            values = family.intersect(views, plan.ia, plan.ib, plan.epsilon)
            n1 = np.full(plan.num_pairs, -1, dtype=np.int64)
            n2 = np.full(plan.num_pairs, -1, dtype=np.int64)
            backend = "sketch-view"
            hits, misses = split.num_cached, split.num_uncached
            cache.stats.vertex_hits += hits
            cache.stats.vertex_misses += misses
        else:
            keys = pair_keys(plan)
            hit_mask = np.fromiter(
                (cache.has_pair(a, b) for a, b in keys),
                dtype=bool,
                count=plan.num_pairs,
            )
            backend = "sketch"
            fresh_bytes = 0
            charged = np.empty(0, dtype=np.int64)
            party = None
            if not hit_mask.all():
                # Unique missed keys: a pair repeated within the tick draws
                # once and every occurrence replays that stored draw. Only
                # pairs never drawn this epoch recharge their endpoints —
                # a bounded cache replays evicted pairs deterministically.
                miss_keys = np.unique(keys[~hit_mask], axis=0)
                new_keys = cache.unseen_pairs(miss_keys)
                verts = (
                    np.unique(new_keys)
                    if new_keys.size
                    else np.empty(0, dtype=np.int64)
                )
                # As above: the charge must precede the draw so a refusal
                # leaves no uncharged cached statistics behind.
                party = accountant.charge_vertices(
                    plan.layer, verts, plan.epsilon,
                    "randomized-response", "serve-rr", ledger=ledger,
                )
                _, _, upload_ids = cache.sketch_fresh(miss_keys, rng)
                fresh_bytes = upload_ids * ID_BYTES
                charged = verts
            counts = [cache.pair_counts(a, b) for a, b in keys]
            n1 = np.array([c[0] for c in counts], dtype=np.int64)
            n2 = np.array([c[1] for c in counts], dtype=np.int64)
            hits = int(hit_mask.sum())
            misses = plan.num_pairs - hits
            cache.stats.pair_hits += hits
            cache.stats.pair_misses += misses
            values = None

        if values is None:
            values = debias_pair_counts(n1, n2, domain, plan.epsilon)
        if fresh_bytes:
            comm.record(Direction.UPLOAD, fresh_bytes, "engine-batch:edges")
        # The tick is done with its working set: enforce the LRU budget
        # (no-op on unbounded caches).
        cache.evict_to_budget()

        return EngineResult(
            layer=plan.layer,
            epsilon=plan.epsilon,
            pairs=plan.pairs,
            values=values,
            noisy_intersections=np.asarray(n1, dtype=np.int64),
            noisy_unions=np.asarray(n2, dtype=np.int64),
            vertices=plan.vertices,
            ia=plan.ia,
            ib=plan.ib,
            upload_bytes=fresh_bytes,
            num_query_vertices=k,
            mode=mode,
            max_epsilon_spent=accountant.max_lifetime_spent(),
            details={
                "flip_probability": flip_probability(plan.epsilon),
                "candidate_pool": domain,
                "backend": backend,
                "party": party,
                "cache": {
                    "epoch": cache.epoch,
                    "hits": hits,
                    "misses": misses,
                    "charged_vertices": int(charged.size),
                    # Evicted entries redrawn (privacy-free) by this tick:
                    # re-upload work the byte budget traded for memory.
                    "recharges": cache.stats.recharges - recharges_before,
                },
                **(
                    {
                        "shards": {
                            "draw": cache.last_shard_draw,
                            "faults": cache.last_shard_faults,
                        }
                    }
                    if cache.shard_runner is not None and cache.last_shard_draw
                    else {}
                ),
            },
        )

    def _resolve_mode(
        self, graph: BipartiteGraph, layer: Layer, mode: ExecutionMode | None
    ) -> ExecutionMode:
        return resolve_mode(graph, layer, mode if mode is not None else self.mode)

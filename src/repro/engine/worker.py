"""The remote shard worker: ``python -m repro.engine.worker --listen``.

One worker process serves keyed shard draws to any number of parent
:class:`~repro.engine.transport.SocketTransport` connections over the
length-prefixed frames of :mod:`repro.protocol.wire`. The lifecycle
(``docs/distributed-guide.md``):

1. **Listen.** ``--listen HOST:PORT`` binds (port ``0`` picks a free
   one) and prints ``LISTENING host:port`` on stdout — the line test
   harnesses and launch scripts parse to learn the bound address.
2. **Hello.** Each connection opens with a HELLO exchange: the parent
   sends its protocol version, capability bits and the digest of the
   graph it is about to serve; the worker answers with its own version,
   capabilities (reduce + versions) and the digest it currently holds
   (0 when it holds none). Version mismatches are refused.
3. **Install.** When the digests disagree the parent ships one GRAPH
   frame; the worker rebuilds the :class:`BipartiteGraph` from it,
   verifies the digest, and acknowledges with a fresh HELLO. Installed
   graphs are kept in a per-process cache keyed by digest, so many
   connections (and repeated reconnects) install once.
4. **Serve.** SHARD_SPEC frames execute through the same
   :func:`~repro.engine.transport.execute_spec` every other transport
   uses — the keyed draw is a pure function of the spec, so the bytes
   match fork and inline execution exactly. The answer is one REDUCED
   frame (row sizes + locally reduced pairwise ``N1`` scalars), then a
   FRAGMENT frame iff the spec asked for rows; both carry the CRC32
   checksum word. Heartbeat PINGs answer with PONGs at any point.
5. **Ingest.** MUTATE frames push an edge delta against a base snapshot
   the worker already holds: the worker applies the net inserts/deletes
   through :meth:`BipartiteGraph.apply_edge_delta`, verifies the result
   hashes to the frame's target digest, caches it (the install cache is
   bounded — oldest snapshots evicted at :data:`GRAPH_CACHE_LIMIT`), and
   answers DELTA_ACK. A worker that does not hold the base (it died and
   rejoined mid-stream, or fell off the parent's compacted chain)
   answers ``DELTA_UNKNOWN_BASE`` and the parent falls back to a full
   GRAPH install — the digest-divergence path the chaos suite exercises.

A deterministic chaos plan (``REPRO_FAULT_PLAN`` in the worker's
environment, keyed on ``(shard, attempt)`` exactly like the fork pool's)
can kill the worker mid-draw, delay it, corrupt its payload after the
checksum was taken, or kill it after the write — the loopback
integration suite uses this to prove a parent survives a worker dying
mid-draw with byte-identical output.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time

import numpy as np

from repro.engine.faults import FAULT_EXIT_CODE, FaultPlan
from repro.engine.transport import (
    _TAG_LAYERS,
    ShardSpec,
    execute_spec,
    read_frame,
)
from repro.errors import ReproError
from repro.graph.bipartite import BipartiteGraph
from repro.protocol import wire

__all__ = ["WorkerState", "serve", "main"]

WORKER_CAPS = wire.CAP_REDUCE | wire.CAP_VERSIONS | wire.CAP_MUTATE

# Installed snapshots kept per process. A long-running ingest stream
# retires snapshots every rotation; without a bound the worker would pin
# every historical graph it ever served. Oldest-installed is evicted
# first — the parent's delta chain is capped the same way, so a base old
# enough to be evicted here is one the parent would full-install anyway.
GRAPH_CACHE_LIMIT = 8

# Chaos sentinel: fault-plan entries with this shard id key on mutation
# pushes instead of shard draws; ``attempt`` counts the worker's MUTATE
# frames (0-based, across all connections).
MUTATE_FAULT_SHARD = -2


class WorkerState:
    """Per-process worker state: the installed graphs, keyed by digest."""

    def __init__(self):
        self.graphs: dict[int, BipartiteGraph] = {}
        self.lock = threading.Lock()
        self.served = 0
        self.mutations = 0

    def _put(self, digest: int, graph: BipartiteGraph) -> None:
        self.graphs.pop(digest, None)
        self.graphs[digest] = graph  # newest last; latest_digest relies on it
        while len(self.graphs) > GRAPH_CACHE_LIMIT:
            self.graphs.pop(next(iter(self.graphs)))

    def install(self, payload: dict) -> int:
        """Install a decoded GRAPH frame; returns its digest."""
        digest = int(payload["digest"])
        with self.lock:
            if digest in self.graphs:
                self.graphs[digest] = self.graphs.pop(digest)
            else:
                self._put(
                    digest,
                    BipartiteGraph(
                        payload["n_upper"], payload["n_lower"], payload["edges"]
                    ),
                )
        return digest

    def install_graph(self, digest: int, graph: BipartiteGraph) -> None:
        """Cache a delta-applied snapshot under its verified digest."""
        with self.lock:
            self._put(int(digest), graph)

    def next_mutation(self) -> int:
        """The 0-based sequence number of the next MUTATE push."""
        with self.lock:
            seq = self.mutations
            self.mutations += 1
            return seq

    def latest_digest(self) -> int:
        with self.lock:
            return next(reversed(self.graphs)) if self.graphs else 0

    def graph_for(self, digest: int) -> BipartiteGraph | None:
        with self.lock:
            return self.graphs.get(digest)


def _apply_prelude_chaos(action) -> None:
    """Chaos kinds that fire before the draw (kill / delay)."""
    if action.kind == "kill":
        os._exit(FAULT_EXIT_CODE)
    if action.kind == "delay":
        time.sleep(action.delay_s)


def _handle_spec(
    conn: socket.socket, state: WorkerState, payload: dict, digest: int
) -> None:
    """Execute one SHARD_SPEC and stream its REDUCED (+FRAGMENT) answer."""
    graph = state.graph_for(digest)
    if graph is None:
        conn.sendall(
            wire.encode_worker_error(
                f"no graph installed for digest {digest:#x}; send GRAPH first"
            )
        )
        return
    plan = FaultPlan.from_env()
    action = (
        plan.action_for(payload["shard"], payload["attempt"]) if plan else None
    )
    if action is not None:
        _apply_prelude_chaos(action)
    spec = ShardSpec(
        shard=payload["shard"],
        lo=0,
        hi=int(payload["vertices"].size),
        vertices=payload["vertices"],
        epsilon=payload["epsilon"],
        entropy=payload["entropy"],
        epoch=payload["epoch"],
        attempt=payload["attempt"],
        versions=payload["versions"],
        domain=payload["domain"],
        ia=payload["ia"],
        ib=payload["ib"],
        want_fragment=payload["want_fragment"],
        measure=payload["measure"],
    )
    layer = _TAG_LAYERS[payload["layer"]]
    result = execute_spec(graph, layer, spec)
    sizes = result.sizes
    n1 = result.n1 if result.n1 is not None else np.empty(0, np.int64)
    poison = action is not None and action.kind == "poison"
    # Poison corrupts the *transported* payload after the checksum was
    # taken from the good draw, so parent-side verification must catch
    # it — the same contract as the fork transport's shm poison.
    reduced_checksum = wire.reduced_checksum(sizes, n1)
    if poison:
        if n1.size:
            n1 = n1.copy()
            n1[0] = ~n1[0]
        elif sizes.size:
            sizes = sizes.copy()
            sizes[0] = ~sizes[0]
        else:
            reduced_checksum ^= 1
    conn.sendall(
        wire.encode_reduced(
            spec.shard,
            spec.attempt,
            sizes,
            n1,
            peak_bytes=result.peak_bytes,
            checksum=reduced_checksum,
        )
    )
    if spec.want_fragment:
        columns = result.columns
        frag_checksum = wire.columns_checksum(columns)
        if poison:
            if columns.size:
                columns = columns.copy()
                columns[0] = ~columns[0]
            else:
                frag_checksum ^= 1
        conn.sendall(
            wire.encode_fragment(
                spec.shard,
                spec.attempt,
                result.indptr,
                columns,
                checksum=frag_checksum,
            )
        )
    state.served += 1
    if action is not None and action.kind == "kill_after_write":
        os._exit(FAULT_EXIT_CODE)


def _handle_mutate(
    conn: socket.socket, state: WorkerState, payload: dict, digest: int
) -> int:
    """Apply one MUTATE push; returns the digest this connection serves.

    The delta only lands if the worker holds the base snapshot *and* the
    applied result hashes to the frame's target digest — anything else
    leaves the installed state untouched and tells the parent exactly
    which digest the worker still holds, so the fallback is always a
    clean full install rather than serving silently wrong bits.
    """
    base = int(payload["base_digest"])
    target = int(payload["target_digest"])
    graph = state.graph_for(base)
    if graph is None:
        conn.sendall(
            wire.encode_delta_ack(wire.DELTA_UNKNOWN_BASE, state.latest_digest())
        )
        return digest
    seq = state.next_mutation()
    plan = FaultPlan.from_env()
    action = plan.action_for(MUTATE_FAULT_SHARD, seq) if plan else None
    if action is not None:
        _apply_prelude_chaos(action)
    try:
        mutated = graph.apply_edge_delta(payload["inserts"], payload["deletes"])
    except ReproError:
        conn.sendall(wire.encode_delta_ack(wire.DELTA_DIGEST_MISMATCH, base))
        return digest
    actual = wire.graph_digest(
        mutated.num_upper, mutated.num_lower, mutated.edges
    )
    if actual != target:
        conn.sendall(wire.encode_delta_ack(wire.DELTA_DIGEST_MISMATCH, base))
        return digest
    state.install_graph(actual, mutated)
    conn.sendall(wire.encode_delta_ack(wire.DELTA_OK, actual))
    if action is not None and action.kind == "kill_after_write":
        os._exit(FAULT_EXIT_CODE)
    return actual


def _serve_connection(conn: socket.socket, state: WorkerState) -> None:
    """One parent connection's frame loop (runs on its own thread)."""
    # The digest this connection serves: set by HELLO, updated by GRAPH.
    digest = 0
    try:
        with conn:
            while True:
                try:
                    kind, payload = read_frame(conn)
                except (ConnectionError, OSError):
                    return  # parent went away; nothing to clean up
                if kind == wire.KIND_HELLO:
                    if payload["version"] != wire.WIRE_VERSION:
                        conn.sendall(
                            wire.encode_worker_error(
                                f"wire version {payload['version']} "
                                f"unsupported (worker speaks "
                                f"{wire.WIRE_VERSION})"
                            )
                        )
                        return
                    # Advertise the parent's expected digest if we hold
                    # it, else whatever we have (0 when nothing).
                    wanted = int(payload["digest"])
                    held = (
                        wanted
                        if state.graph_for(wanted) is not None
                        else state.latest_digest()
                    )
                    digest = held
                    conn.sendall(
                        wire.encode_hello(
                            wire.WIRE_VERSION, WORKER_CAPS, held
                        )
                    )
                elif kind == wire.KIND_PING:
                    conn.sendall(wire.encode_pong(payload["nonce"]))
                elif kind == wire.KIND_GRAPH:
                    digest = state.install(payload)
                    conn.sendall(
                        wire.encode_hello(
                            wire.WIRE_VERSION, WORKER_CAPS, digest
                        )
                    )
                elif kind == wire.KIND_MUTATE:
                    digest = _handle_mutate(conn, state, payload, digest)
                elif kind == wire.KIND_SHARD_SPEC:
                    try:
                        _handle_spec(conn, state, payload, digest)
                    except ReproError as exc:
                        # A deterministic library error (bad epsilon, bad
                        # vertex) — report it; re-dispatch would only
                        # reproduce it, and the parent knows that.
                        conn.sendall(wire.encode_worker_error(str(exc)))
                else:
                    conn.sendall(
                        wire.encode_worker_error(
                            f"unexpected frame kind {kind}"
                        )
                    )
    except OSError:  # pragma: no cover - peer vanished mid-send
        return


def serve(
    host: str,
    port: int,
    *,
    state: WorkerState | None = None,
    ready_file=None,
    max_connections: int = 64,
) -> None:
    """Bind, announce ``LISTENING host:port``, and serve until killed.

    ``port=0`` binds a free port; the announcement line (written to
    ``ready_file``, default stdout, and flushed) is the contract launch
    harnesses parse. Each accepted connection gets a daemon thread, so
    a hung parent cannot wedge the accept loop.
    """
    state = state if state is not None else WorkerState()
    out = ready_file if ready_file is not None else sys.stdout
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as listener:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(max_connections)
        bound_host, bound_port = listener.getsockname()
        print(f"LISTENING {bound_host}:{bound_port}", file=out, flush=True)
        while True:
            conn, _addr = listener.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=_serve_connection,
                args=(conn, state),
                daemon=True,
            ).start()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.worker",
        description=(
            "Serve keyed shard draws to SocketTransport parents over the "
            "repro wire protocol."
        ),
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="address to bind (port 0 picks a free port; default %(default)s)",
    )
    args = parser.parse_args(argv)
    host, _, port = args.listen.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--listen expects HOST:PORT, got {args.listen!r}")
    try:
        serve(host, int(port))
    except KeyboardInterrupt:  # pragma: no cover - operator stop
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

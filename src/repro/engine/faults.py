"""Deterministic chaos injection for sharded execution.

The resilience layer in :mod:`repro.engine.sharded` claims that *any*
schedule of worker failures — deaths, stalls, corrupted fragments — is
invisible in the served bits, because every shard task is a pure
function of ``(graph, range, epsilon, entropy, epoch)`` under the keyed
Philox contract. That claim is only worth anything if failures can be
produced on demand, reproducibly, inside tests and benchmarks. This
module provides that: a :class:`FaultPlan` names exactly which shard
tasks fail, how, and on which dispatch attempt.

The plan crosses the fork boundary through an environment variable
(:data:`FAULT_PLAN_ENV`): the parent installs the JSON-encoded plan
before the worker pool forks, every forked worker inherits it, and the
worker-side hook in ``_draw_range`` consults it per task. Because the
hook keys on ``(shard_index, attempt)`` — both passed in the task
arguments by the parent — a fault schedule is deterministic: "kill shard
0 on its first dispatch" fails exactly once and the re-dispatch
succeeds, no wall-clock or PID randomness involved.

Faults apply only to *pool* tasks. The runner's terminal inline
fallback (and a 1-worker runner, which never forks) executes the same
keyed draw in the parent with no shared-memory handoff, so there is no
worker to kill and no payload to poison — which is also what guarantees
that a "kill everything on every attempt" schedule still terminates
with correct output.

Supported fault kinds:

``kill``
    The worker calls ``os._exit`` before drawing anything — the parent
    sees ``BrokenProcessPool`` before a shared-memory segment exists.
``kill_after_write``
    The worker dies *after* creating and filling its shared-memory
    segment but before returning — the segment exists with no owner,
    the exact leak window the runner's name registry sweep covers.
``delay``
    The worker sleeps ``delay_s`` before drawing, tripping the parent's
    per-task deadline (the worker then completes as a zombie; its
    segment is reclaimed by the sweep).
``poison``
    The worker corrupts its shared-memory payload after computing the
    checksum of the good draw, so the parent's integrity verification
    fails and the range is re-dispatched.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ProtocolError

__all__ = ["FAULT_PLAN_ENV", "FAULT_KINDS", "FaultAction", "FaultPlan"]

# The env var carrying the JSON plan across the fork boundary.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

FAULT_KINDS = ("kill", "kill_after_write", "delay", "poison")

# Worker exit code for injected kills (distinguishable from crashes in
# process listings; the parent only ever sees BrokenProcessPool).
FAULT_EXIT_CODE = 87


@dataclass(frozen=True)
class FaultAction:
    """One injected failure: *which* task, *when*, and *how* it fails.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    shard:
        Shard index the fault targets; ``None`` targets every shard.
    attempts:
        Dispatch attempts (0 = first dispatch) on which the fault fires;
        ``None`` fires on every attempt — with ``kill`` that exhausts
        the retry budget and forces the inline fallback.
    delay_s:
        Sleep length for ``delay`` faults.
    """

    kind: str
    shard: int | None = None
    attempts: tuple[int, ...] | None = (0,)
    delay_s: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ProtocolError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.delay_s < 0:
            raise ProtocolError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.attempts is not None:
            object.__setattr__(
                self, "attempts", tuple(int(a) for a in self.attempts)
            )

    def matches(self, shard: int, attempt: int) -> bool:
        """Does this action fire for the given ``(shard, attempt)`` task?"""
        if self.shard is not None and self.shard != shard:
            return False
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic failure schedule over one runner's shard tasks.

    Install it (or use :meth:`active`) before the runner's first draw so
    the pool's forked workers inherit the plan through the environment.

    Example
    -------
    >>> plan = FaultPlan.kill_shards([0])
    >>> plan.action_for(0, 0).kind
    'kill'
    >>> plan.action_for(0, 1) is None  # the re-dispatch succeeds
    True
    >>> plan.action_for(1, 0) is None  # other shards untouched
    True
    """

    actions: tuple[FaultAction, ...]

    def __post_init__(self):
        object.__setattr__(self, "actions", tuple(self.actions))

    # -- construction helpers -----------------------------------------
    @classmethod
    def kill_shards(
        cls,
        shards: list[int] | None,
        *,
        attempts: tuple[int, ...] | None = (0,),
        after_write: bool = False,
    ) -> "FaultPlan":
        """Kill the listed shards' workers (``None``: every shard)."""
        kind = "kill_after_write" if after_write else "kill"
        targets = [None] if shards is None else shards
        return cls(
            tuple(
                FaultAction(kind=kind, shard=s, attempts=attempts)
                for s in targets
            )
        )

    @classmethod
    def delay_shards(
        cls,
        shards: list[int] | None,
        delay_s: float,
        *,
        attempts: tuple[int, ...] | None = (0,),
    ) -> "FaultPlan":
        """Stall the listed shards' workers past the parent deadline."""
        targets = [None] if shards is None else shards
        return cls(
            tuple(
                FaultAction(
                    kind="delay", shard=s, attempts=attempts, delay_s=delay_s
                )
                for s in targets
            )
        )

    @classmethod
    def poison_shards(
        cls,
        shards: list[int] | None,
        *,
        attempts: tuple[int, ...] | None = (0,),
    ) -> "FaultPlan":
        """Corrupt the listed shards' shared-memory payloads."""
        targets = [None] if shards is None else shards
        return cls(
            tuple(
                FaultAction(kind="poison", shard=s, attempts=attempts)
                for s in targets
            )
        )

    # -- worker-side lookup -------------------------------------------
    def action_for(self, shard: int, attempt: int) -> FaultAction | None:
        """The first action firing for this task, or ``None``."""
        for action in self.actions:
            if action.matches(int(shard), int(attempt)):
                return action
        return None

    # -- env transport -------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "kind": a.kind,
                    "shard": a.shard,
                    "attempts": None if a.attempts is None else list(a.attempts),
                    "delay_s": a.delay_s,
                }
                for a in self.actions
            ]
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        return cls(
            tuple(
                FaultAction(
                    kind=entry["kind"],
                    shard=entry["shard"],
                    attempts=(
                        None
                        if entry["attempts"] is None
                        else tuple(entry["attempts"])
                    ),
                    delay_s=entry.get("delay_s", 0.0),
                )
                for entry in json.loads(payload)
            )
        )

    def install(self) -> None:
        """Publish the plan for workers forked from this process."""
        os.environ[FAULT_PLAN_ENV] = self.to_json()

    @staticmethod
    def uninstall() -> None:
        """Remove any installed plan (idempotent)."""
        os.environ.pop(FAULT_PLAN_ENV, None)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The installed plan, or ``None`` — the worker-side entry point."""
        payload = os.environ.get(FAULT_PLAN_ENV)
        if not payload:
            return None
        return cls.from_json(payload)

    @contextmanager
    def active(self) -> Iterator["FaultPlan"]:
        """Install the plan for the block's duration, then remove it."""
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

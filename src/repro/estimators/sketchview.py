"""Sketch-view estimators — per-pair C2 from fixed-size private sketches.

These wrap the :mod:`repro.engine.sketches` families in the standard
:class:`CommonNeighborEstimator` interface so the registry, the experiment
harness and the contract suite can exercise the sublinear-memory release
path pair by pair. Each query vertex encodes its neighbor list into one
fixed-size sketch (a blipped Bloom filter, a Laplace-noised vector of
counts, or a k-RR-perturbed HLL register array), releases it once under
ε-edge LDP, and the curator debiases the two views into a ``C2`` estimate
with a closed-form variance.

Like :class:`~repro.estimators.centraldp.CentralDPEstimator`, the release
has no per-round session protocol — there is exactly one upload per
vertex — so :meth:`estimate` bypasses :class:`ProtocolSession` and builds
its transcript directly, charging a local
:class:`~repro.privacy.accountant.PrivacyLedger` per vertex.

The hash seed is drawn from the caller's ``rng`` per call, so the
vector-of-counts estimator is unbiased over its own randomness (hash +
noise); Bloom and HLL invert a nonlinear occupancy law and are
asymptotically unbiased only.
"""

from __future__ import annotations

import math
from typing import Any, ClassVar

import numpy as np

from repro.engine.sketches import SketchConfig, sketch_family
from repro.errors import PrivacyError, ProtocolError
from repro.estimators.base import CommonNeighborEstimator, EstimateResult
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode, ProtocolSession, ProtocolTranscript

__all__ = [
    "BloomViewEstimator",
    "VocViewEstimator",
    "HllViewEstimator",
]

# Default per-vertex view budget (bytes) when no explicit size is given —
# the ISSUE's sublinear-memory target.
_DEFAULT_VIEW_BYTES = 64


class _SketchViewEstimator(CommonNeighborEstimator):
    """Shared flow of the three sketch-view estimators."""

    kind: ClassVar[str] = "abstract"
    supported_modes = (ExecutionMode.AUTO, ExecutionMode.SKETCH_VIEW)

    def __init__(
        self,
        *,
        m: int | None = None,
        view_bytes: int | None = None,
    ):
        if m is not None and view_bytes is not None:
            raise ProtocolError("pass either m or view_bytes, not both")
        if m is not None:
            self.config_template = SketchConfig(self.kind, int(m))
        else:
            self.config_template = SketchConfig.for_budget(
                self.kind, int(view_bytes or _DEFAULT_VIEW_BYTES)
            )

    def estimate(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        u: int,
        w: int,
        epsilon: float,
        *,
        rng: RngLike = None,
        mode: ExecutionMode = ExecutionMode.AUTO,
    ) -> EstimateResult:
        if mode not in self.supported_modes:
            raise ProtocolError(
                f"{self.name} answers in sketch-view mode only, got {mode.value}"
            )
        if u == w:
            raise ProtocolError("query vertices must be distinct")
        if not math.isfinite(epsilon) or epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        graph.degree(layer, u)  # validates the vertex indices
        graph.degree(layer, w)
        rng = ensure_rng(rng)
        # A per-call hash seed: unbiasedness claims hold over hash *and*
        # noise randomness, and a fixed caller seed still reproduces the
        # full draw.
        config = SketchConfig(
            self.config_template.kind,
            self.config_template.m,
            hash_seed=int(rng.integers(1 << 62)),
        )
        family = sketch_family(config)
        vertices = np.array([u, w], dtype=np.int64)
        views = family.encode_release(graph, layer, vertices, epsilon, rng=rng)
        slots = np.array([0], dtype=np.int64), np.array([1], dtype=np.int64)
        value = float(family.intersect(views, slots[0], slots[1], epsilon)[0])
        cards = family.cardinality(views, epsilon)
        variance = float(
            family.intersection_variance(
                np.clip(cards[:1], 0.0, None),
                np.clip(cards[1:], 0.0, None),
                np.clip(np.array([value]), 0.0, None),
                epsilon,
            )[0]
        )

        # One ε-LDP release per vertex: the same parallel composition as
        # one randomized-response round.
        ledger = PrivacyLedger(limit=epsilon)
        for vertex in (u, w):
            ledger.charge(
                f"{layer.value}:{vertex}", epsilon,
                "sketch-release", "round1:sketch-view",
            )
        ledger.assert_within(epsilon)
        transcript = ProtocolTranscript(
            rounds=1,
            upload_bytes=2 * config.bytes_per_vertex,
            download_bytes=0,
            max_epsilon_spent=ledger.max_spent(),
            mode=ExecutionMode.SKETCH_VIEW,
        )
        return EstimateResult(
            value=value,
            algorithm=self.name,
            epsilon=float(epsilon),
            layer=layer,
            u=int(u),
            w=int(w),
            transcript=transcript,
            details={
                "sketch_kind": config.kind,
                "sketch_buckets": config.m,
                "bytes_per_vertex": config.bytes_per_vertex,
                "cardinality_u": float(cards[0]),
                "cardinality_w": float(cards[1]),
                "variance": variance,
            },
        )

    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        # Sketch views have no per-round session protocol; estimate()
        # overrides the session flow entirely (sessions reject
        # SKETCH_VIEW mode), so _run is unreachable in normal use but is
        # provided for interface completeness.
        raise ProtocolError(
            f"{self.name} has no session protocol; call estimate()"
        )  # pragma: no cover


class BloomViewEstimator(_SketchViewEstimator):
    """Blipped Bloom filter views (RAPPOR-style per-bit RR)."""

    name = "bloom-view"
    kind = "bloom"
    unbiased = False  # linear counting inverts a nonlinear occupancy law


class VocViewEstimator(_SketchViewEstimator):
    """Laplace-noised vector-of-counts views (unbiased dot-product C2)."""

    name = "voc-view"
    kind = "voc"
    unbiased = True


class HllViewEstimator(_SketchViewEstimator):
    """k-RR-perturbed HLL register views (debiased CDF threshold count)."""

    name = "hll-view"
    kind = "hll"
    unbiased = False  # threshold inversion is asymptotically unbiased only

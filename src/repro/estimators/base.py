"""Estimator interface shared by all common-neighborhood algorithms.

Every algorithm implements :class:`CommonNeighborEstimator`: given a graph,
a same-layer query pair ``(u, w)`` and a total privacy budget ``epsilon``,
:meth:`~CommonNeighborEstimator.estimate` opens a protocol session, runs
the algorithm's rounds, verifies the budget, and returns an
:class:`EstimateResult` bundling the estimate with the protocol transcript
(rounds, communication bytes, realized budget) and per-algorithm details
(budget splits, α, intermediate counts).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.rng import RngLike
from repro.protocol.session import ExecutionMode, ProtocolSession, ProtocolTranscript

__all__ = ["EstimateResult", "CommonNeighborEstimator"]


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of one privacy-preserving common-neighborhood query."""

    value: float
    algorithm: str
    epsilon: float
    layer: Layer
    u: int
    w: int
    transcript: ProtocolTranscript | None
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def communication_bytes(self) -> int:
        """Total bytes moved during the protocol (0 for non-protocol runs)."""
        return self.transcript.total_bytes if self.transcript else 0

    @property
    def rounds(self) -> int:
        return self.transcript.rounds if self.transcript else 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.algorithm}(eps={self.epsilon:g}) "
            f"C2({self.u}, {self.w}) ≈ {self.value:.3f}"
        )


class CommonNeighborEstimator(abc.ABC):
    """Base class for ε-edge-LDP common-neighborhood estimators.

    Subclasses implement :meth:`_run`, receiving an opened
    :class:`ProtocolSession` and returning ``(value, details)``. The base
    class owns session lifecycle and budget verification, so an algorithm
    cannot accidentally report a result that violated its budget.
    """

    #: Registry / display name, e.g. ``"multir-ds"``.
    name: ClassVar[str] = "abstract"
    #: Whether the estimator is unbiased (E[f] = C2); used in reports.
    unbiased: ClassVar[bool] = True

    def estimate(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        u: int,
        w: int,
        epsilon: float,
        *,
        rng: RngLike = None,
        mode: ExecutionMode = ExecutionMode.AUTO,
    ) -> EstimateResult:
        """Estimate ``C2(u, w)`` under ``epsilon``-edge LDP."""
        session = ProtocolSession(graph, layer, u, w, epsilon, rng=rng, mode=mode)
        value, details = self._run(session)
        transcript = session.finalize()
        return EstimateResult(
            value=float(value),
            algorithm=self.name,
            epsilon=float(epsilon),
            layer=layer,
            u=int(u),
            w=int(w),
            transcript=transcript,
            details=details,
        )

    @abc.abstractmethod
    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        """Execute the algorithm's rounds against an open session."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

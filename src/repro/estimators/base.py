"""Estimator interface shared by all common-neighborhood algorithms.

Every algorithm implements :class:`CommonNeighborEstimator`: given a graph,
a same-layer query pair ``(u, w)`` and a total privacy budget ``epsilon``,
:meth:`~CommonNeighborEstimator.estimate` opens a protocol session, runs
the algorithm's rounds, verifies the budget, and returns an
:class:`EstimateResult` bundling the estimate with the protocol transcript
(rounds, communication bytes, realized budget) and per-algorithm details
(budget splits, α, intermediate counts).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.graph.bipartite import BipartiteGraph, Layer
from repro.protocol.session import ExecutionMode, ProtocolSession, ProtocolTranscript
from repro.privacy.rng import RngLike

__all__ = ["EstimateResult", "CommonNeighborEstimator"]


def _plain(value: Any) -> Any:
    """Recursively reduce a details value to JSON-able builtins."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of one privacy-preserving common-neighborhood query."""

    value: float
    algorithm: str
    epsilon: float
    layer: Layer
    u: int
    w: int
    transcript: ProtocolTranscript | None
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def communication_bytes(self) -> int:
        """Total bytes moved during the protocol (0 for non-protocol runs)."""
        return self.transcript.total_bytes if self.transcript else 0

    @property
    def rounds(self) -> int:
        return self.transcript.rounds if self.transcript else 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.algorithm}(eps={self.epsilon:g}) "
            f"C2({self.u}, {self.w}) ≈ {self.value:.3f}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation (numpy/enum values reduced to builtins).

        Round-trips through :meth:`from_dict`; part of the registry-wide
        estimator contract (every result must be serializable so
        experiment manifests and the serving layer can persist answers).
        """
        transcript = None
        if self.transcript is not None:
            transcript = {
                "rounds": int(self.transcript.rounds),
                "upload_bytes": int(self.transcript.upload_bytes),
                "download_bytes": int(self.transcript.download_bytes),
                "max_epsilon_spent": float(self.transcript.max_epsilon_spent),
                "mode": self.transcript.mode.value,
            }
        return {
            "value": float(self.value),
            "algorithm": str(self.algorithm),
            "epsilon": float(self.epsilon),
            "layer": self.layer.value,
            "u": int(self.u),
            "w": int(self.w),
            "transcript": transcript,
            "details": _plain(self.details),
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "EstimateResult":
        """Rebuild a result from :meth:`to_dict` output."""
        transcript = None
        if payload.get("transcript") is not None:
            t = payload["transcript"]
            transcript = ProtocolTranscript(
                rounds=int(t["rounds"]),
                upload_bytes=int(t["upload_bytes"]),
                download_bytes=int(t["download_bytes"]),
                max_epsilon_spent=float(t["max_epsilon_spent"]),
                mode=ExecutionMode(t["mode"]),
            )
        return EstimateResult(
            value=float(payload["value"]),
            algorithm=str(payload["algorithm"]),
            epsilon=float(payload["epsilon"]),
            layer=Layer(payload["layer"]),
            u=int(payload["u"]),
            w=int(payload["w"]),
            transcript=transcript,
            details=dict(payload.get("details", {})),
        )


class CommonNeighborEstimator(abc.ABC):
    """Base class for ε-edge-LDP common-neighborhood estimators.

    Subclasses implement :meth:`_run`, receiving an opened
    :class:`ProtocolSession` and returning ``(value, details)``. The base
    class owns session lifecycle and budget verification, so an algorithm
    cannot accidentally report a result that violated its budget.
    """

    #: Registry / display name, e.g. ``"multir-ds"``.
    name: ClassVar[str] = "abstract"
    #: Whether the estimator is unbiased (E[f] = C2); used in reports.
    unbiased: ClassVar[bool] = True
    #: Execution modes :meth:`estimate` accepts (the contract suite runs
    #: each estimator under every supported mode and nothing else).
    supported_modes: ClassVar[tuple[ExecutionMode, ...]] = (
        ExecutionMode.AUTO,
        ExecutionMode.MATERIALIZE,
        ExecutionMode.SKETCH,
    )
    #: Declared budget use as a multiple of the requested ``epsilon``:
    #: the transcript's ``max_epsilon_spent`` must be at most this times
    #: the request (1.0 for everything private, 0.0 for the exact
    #: baseline). The contract suite enforces the declaration.
    declared_epsilon_cost: ClassVar[float] = 1.0

    def estimate(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        u: int,
        w: int,
        epsilon: float,
        *,
        rng: RngLike = None,
        mode: ExecutionMode = ExecutionMode.AUTO,
    ) -> EstimateResult:
        """Estimate ``C2(u, w)`` under ``epsilon``-edge LDP."""
        session = ProtocolSession(graph, layer, u, w, epsilon, rng=rng, mode=mode)
        value, details = self._run(session)
        transcript = session.finalize()
        return EstimateResult(
            value=float(value),
            algorithm=self.name,
            epsilon=float(epsilon),
            layer=layer,
            u=int(u),
            w=int(w),
            transcript=transcript,
            details=details,
        )

    @abc.abstractmethod
    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        """Execute the algorithm's rounds against an open session."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

"""Common-neighborhood estimators under edge LDP (the paper's algorithms)."""

from repro.estimators.base import CommonNeighborEstimator, EstimateResult
from repro.estimators.batch import BatchEstimateResult, BatchOneRound
from repro.estimators.centraldp import CentralDPEstimator
from repro.estimators.exact import ExactCounter
from repro.estimators.multir_ds import (
    MultiRoundDoubleSource,
    MultiRoundDoubleSourceBasic,
    MultiRoundDoubleSourceStar,
)
from repro.estimators.multir_ss import MultiRoundSingleSource
from repro.estimators.naive import NaiveEstimator
from repro.estimators.oner import OneRoundEstimator
from repro.estimators.registry import (
    ESTIMATOR_FACTORIES,
    available_estimators,
    get_estimator,
)

__all__ = [
    "CommonNeighborEstimator",
    "EstimateResult",
    "BatchEstimateResult",
    "BatchOneRound",
    "CentralDPEstimator",
    "ExactCounter",
    "MultiRoundDoubleSource",
    "MultiRoundDoubleSourceBasic",
    "MultiRoundDoubleSourceStar",
    "MultiRoundSingleSource",
    "NaiveEstimator",
    "OneRoundEstimator",
    "ESTIMATOR_FACTORIES",
    "available_estimators",
    "get_estimator",
]

"""Non-private exact counter — the ground truth every experiment compares to."""

from __future__ import annotations

import math
from typing import Any

from repro.estimators.base import CommonNeighborEstimator, EstimateResult
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.rng import RngLike
from repro.protocol.session import ExecutionMode, ProtocolSession

__all__ = ["ExactCounter"]


class ExactCounter(CommonNeighborEstimator):
    """Returns the true ``C2(u, w)``; offers **no privacy** (baseline only)."""

    name = "exact"
    unbiased = True
    declared_epsilon_cost = 0.0

    def estimate(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        u: int,
        w: int,
        epsilon: float = math.inf,
        *,
        rng: RngLike = None,
        mode: ExecutionMode = ExecutionMode.AUTO,
    ) -> EstimateResult:
        if mode not in self.supported_modes:
            raise ValueError(f"{self.name} does not support mode {mode.value}")
        if u == w:
            raise ValueError("query vertices must be distinct")
        value = graph.count_common_neighbors(layer, u, w)
        return EstimateResult(
            value=float(value),
            algorithm=self.name,
            epsilon=float(epsilon),
            layer=layer,
            u=int(u),
            w=int(w),
            transcript=None,
            details={"exact": True},
        )

    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        value = session.graph.count_common_neighbors(session.layer, session.u, session.w)
        return float(value), {"exact": True}

"""CentralDP — the trusted-curator baseline.

Under the central model the curator sees the whole graph, so the query can
be answered with a single Laplace release: ``C2(u, w) + Lap(1/ε)`` (the
sensitivity of a common-neighbor count under one-edge change is 1). The
paper includes it as the utility upper bound edge-LDP algorithms are
measured against.
"""

from __future__ import annotations

import math
from typing import Any

from repro.estimators.base import CommonNeighborEstimator, EstimateResult
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.rng import RngLike, ensure_rng
from repro.privacy.sensitivity import central_c2_sensitivity
from repro.protocol.messages import FLOAT_BYTES
from repro.protocol.session import ExecutionMode, ProtocolSession, ProtocolTranscript

__all__ = ["CentralDPEstimator"]


class CentralDPEstimator(CommonNeighborEstimator):
    """Central-model Laplace release of the exact count (not LDP)."""

    name = "central-dp"
    unbiased = True

    def estimate(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        u: int,
        w: int,
        epsilon: float,
        *,
        rng: RngLike = None,
        mode: ExecutionMode = ExecutionMode.AUTO,
    ) -> EstimateResult:
        if mode not in self.supported_modes:
            raise ValueError(f"{self.name} does not support mode {mode.value}")
        if u == w:
            raise ValueError("query vertices must be distinct")
        if not math.isfinite(epsilon) or epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        rng = ensure_rng(rng)
        mechanism = LaplaceMechanism(epsilon, central_c2_sensitivity())
        true_count = graph.count_common_neighbors(layer, u, w)
        value = mechanism.release(true_count, rng)
        transcript = ProtocolTranscript(
            rounds=1,
            upload_bytes=FLOAT_BYTES,
            download_bytes=0,
            max_epsilon_spent=epsilon,
            mode=mode,
        )
        return EstimateResult(
            value=value,
            algorithm=self.name,
            epsilon=float(epsilon),
            layer=layer,
            u=int(u),
            w=int(w),
            transcript=transcript,
            details={"model": "central", "sensitivity": central_c2_sensitivity()},
        )

    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        # The central model bypasses the per-vertex protocol; estimate()
        # overrides the session flow entirely, so _run is never reached in
        # normal use but is provided for interface completeness.
        true_count = session.graph.count_common_neighbors(
            session.layer, session.u, session.w
        )
        mechanism = LaplaceMechanism(session.epsilon, central_c2_sensitivity())
        return mechanism.release(true_count, session.rng), {"model": "central"}

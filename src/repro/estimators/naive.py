"""Naive baseline (paper Algorithm 1).

Both query vertices perturb their neighbor lists with randomized response
using the full budget; the curator counts common neighbors directly on the
noisy graph. Because the noisy graph is far denser than the input (every
non-edge survives as a noisy edge with probability ``p``), the count is
severely biased upward — the motivating failure the paper's Fig. 2 shows.
"""

from __future__ import annotations

from typing import Any

from repro.estimators.base import CommonNeighborEstimator
from repro.protocol.session import ProtocolSession

__all__ = ["NaiveEstimator"]


class NaiveEstimator(CommonNeighborEstimator):
    """Count common neighbors on the RR noisy graph (biased)."""

    name = "naive"
    unbiased = False

    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        label = session.begin_round("rr")
        handle_u = session.randomized_response(session.u, session.epsilon, label)
        handle_w = session.randomized_response(session.w, session.epsilon, label)
        noisy_intersection, _ = session.naive_counts(handle_u, handle_w)
        details = {
            "noisy_intersection": noisy_intersection,
            "eps_rr": session.epsilon,
        }
        return float(noisy_intersection), details

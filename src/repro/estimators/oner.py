"""OneR — the one-round unbiased estimator (paper Algorithm 2, Theorem 3).

OneR uses the same noisy graph as Naive but de-biases it: each candidate
``v`` on the opposite layer contributes ``φ(u,v)·φ(v,w)`` with
``φ(i,j) = (A'[i,j] - p)/(1-2p)``, an unbiased estimate of
``A[u,v]·A[v,w]``. Summed over all candidates this is unbiased for
``C2(u, w)``, and the paper's expansion lets it be evaluated from just the
noisy intersection size ``N1``, the noisy union size ``N2`` and the
candidate-pool size ``n1``:

    f̃2 = [N1 (1-p)² - (N2 - N1) p(1-p) + (n1 - N2) p²] / (1-2p)²
"""

from __future__ import annotations

from typing import Any

from repro.estimators.base import CommonNeighborEstimator
from repro.privacy.debias import debias_intersection_counts
from repro.privacy.mechanisms import flip_probability
from repro.protocol.session import ProtocolSession

__all__ = ["OneRoundEstimator"]


class OneRoundEstimator(CommonNeighborEstimator):
    """Unbiased single-round estimator over the full candidate pool."""

    name = "oner"
    unbiased = True

    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        label = session.begin_round("rr")
        handle_u = session.randomized_response(session.u, session.epsilon, label)
        handle_w = session.randomized_response(session.w, session.epsilon, label)
        n1, n2 = session.naive_counts(handle_u, handle_w)

        pool = session.n_opposite
        value = float(
            debias_intersection_counts(
                n1, n2, pool, flip_probability(session.epsilon)
            )
        )
        details = {
            "noisy_intersection": n1,
            "noisy_union": n2,
            "candidate_pool": pool,
            "eps_rr": session.epsilon,
        }
        return value, details

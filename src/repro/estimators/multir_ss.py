"""MultiR-SS — the multiple-round single-source algorithm (paper Alg. 3).

Round 1: both query vertices apply randomized response with budget ε1 and
upload their noisy lists (following the paper's description of Alg. 3; the
estimator itself consumes only the *other* vertex's list).

Round 2: the source vertex (``u`` by default) downloads the other vertex's
noisy list, intersects it with its own true neighbors — ``S1`` hits and
``S2 = deg(u) - S1`` misses — and releases

    f̃u = S1·(1-p)/(1-2p) - S2·p/(1-2p) + Lap((1-p)/((1-2p)·ε2))

where the Laplace scale is the estimator's global sensitivity (one bit of
``u``'s list moves f̃u by at most ``(1-p)/(1-2p)``). The candidate pool
shrinks from the whole opposite layer to ``N(u)``, removing the ``n1``
factor from the L2 loss (Theorem 6).

The optional ``optimize_budget`` variant (paper §4.2, the α = 1 special
case of MultiR-DS) spends a small ε0 on a degree round and picks the
(ε1, ε2) split minimizing the predicted loss.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.optimizer import optimize_single_source
from repro.errors import PrivacyError
from repro.estimators.base import CommonNeighborEstimator
from repro.privacy.budget import BudgetSplit
from repro.privacy.mechanisms import flip_probability
from repro.privacy.sensitivity import single_source_sensitivity
from repro.protocol.noisy import NoisyListHandle
from repro.protocol.session import ProtocolSession

__all__ = ["MultiRoundSingleSource", "single_source_raw"]


def single_source_raw(
    session: ProtocolSession, observer: int, handle: NoisyListHandle
) -> tuple[float, int, int]:
    """The pre-noise single-source estimate ``f_observer`` and its counts."""
    s1, s2 = session.ss_counts(observer, handle)
    p = flip_probability(handle.epsilon)
    value = s1 * (1.0 - p) / (1.0 - 2.0 * p) - s2 * p / (1.0 - 2.0 * p)
    return value, s1, s2


class MultiRoundSingleSource(CommonNeighborEstimator):
    """Two-round single-source estimator (MultiR-SS).

    Parameters
    ----------
    graph_fraction:
        Share of the budget given to randomized response (``ε1``); the
        paper's default splits evenly (0.5).
    source:
        Which query vertex builds the estimator: ``"u"`` (paper default),
        ``"w"``, or ``"auto"`` — pick the vertex whose *noisy* degree is
        smaller (extension: Theorem 6's loss scales with the source
        degree, so the cheaper source wins; requires a degree round).
    optimize_budget:
        When True, run a small degree round (``eps0_fraction`` of ε) and
        optimize the (ε1, ε2) split for the source's estimated degree.
    eps0_fraction:
        Budget share for the degree round (used by ``optimize_budget``
        and/or ``source="auto"``; charged once when both are active).
    """

    name = "multir-ss"
    unbiased = True

    def __init__(
        self,
        graph_fraction: float = 0.5,
        source: str = "u",
        optimize_budget: bool = False,
        eps0_fraction: float = 0.05,
    ):
        if source not in ("u", "w", "auto"):
            raise PrivacyError(f"source must be 'u', 'w' or 'auto', got {source!r}")
        if not 0.0 < graph_fraction < 1.0:
            raise PrivacyError("graph_fraction must be in (0, 1)")
        self.graph_fraction = float(graph_fraction)
        self.source = source
        self.optimize_budget = bool(optimize_budget)
        self.eps0_fraction = float(eps0_fraction)

    # ------------------------------------------------------------------
    def _plan(
        self, session: ProtocolSession
    ) -> tuple[BudgetSplit, str, dict[str, Any]]:
        """Run the optional degree round; decide source and budget split."""
        epsilon = session.epsilon
        needs_degrees = self.optimize_budget or self.source == "auto"
        if not needs_degrees:
            if self.graph_fraction == 0.5:
                return BudgetSplit.even(epsilon), self.source, {}
            split = BudgetSplit.with_fraction(epsilon, self.graph_fraction)
            return split, self.source, {}

        eps0 = epsilon * self.eps0_fraction
        label0 = session.begin_round("degrees")
        report = session.degree_round(eps0, label0)
        fallback = max(report.noisy_average_degree, 1.0)
        noisy_u = report.noisy_degree_u if report.noisy_degree_u >= 1.0 else fallback
        noisy_w = report.noisy_degree_w if report.noisy_degree_w >= 1.0 else fallback

        if self.source == "auto":
            source = "u" if noisy_u <= noisy_w else "w"
        else:
            source = self.source
        source_degree = noisy_u if source == "u" else noisy_w

        extra: dict[str, Any] = {"noisy_degree": source_degree}
        if self.optimize_budget:
            alloc = optimize_single_source(epsilon, source_degree, eps0)
            split = BudgetSplit(degree=eps0, graph=alloc.eps1, estimator=alloc.eps2)
            extra["predicted_loss"] = alloc.predicted_loss
        else:
            remaining = epsilon - eps0
            graph_eps = remaining * self.graph_fraction
            split = BudgetSplit(
                degree=eps0, graph=graph_eps, estimator=remaining - graph_eps
            )
        if self.source == "auto":
            extra["selected_source"] = source
        return split, source, extra

    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        split, source, extra = self._plan(session)

        rr_label = session.begin_round("rr")
        handle_u = session.randomized_response(session.u, split.graph, rr_label)
        handle_w = session.randomized_response(session.w, split.graph, rr_label)

        est_label = session.begin_round("estimate")
        if source == "u":
            observer, other = session.u, handle_w
        else:
            observer, other = session.w, handle_u
        session.download(other, observer)
        raw, s1, s2 = single_source_raw(session, observer, other)
        value = session.release_scalar(
            observer,
            raw,
            split.estimator,
            single_source_sensitivity(split.graph),
            est_label,
        )
        details: dict[str, Any] = {
            "source": source,
            "eps0": split.degree,
            "eps1": split.graph,
            "eps2": split.estimator,
            "s1": s1,
            "s2": s2,
            **extra,
        }
        return value, details

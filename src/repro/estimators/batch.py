"""Batch estimation: many C2 queries from one shared noisy-graph round.

Running a per-pair algorithm independently over a workload charges every
vertex once *per pair it appears in* — a vertex in q pairs suffers qε
under sequential composition. When the analyst needs many pairwise counts
over a vertex set (projection, clustering, all-pairs similarity), the
better protocol is a single shared randomized-response round: each
distinct query vertex uploads one noisy list at the full budget, and every
pairwise estimate is post-processing (the OneR de-biasing applied pair by
pair).

Privacy: each vertex's data passes through exactly one ε-RR invocation,
so the whole batch is ε-edge LDP by parallel composition — independent of
the number of pairs answered. The price is OneR's candidate-pool variance
per pair (no second round is possible without further budget) and
correlated errors between pairs sharing a vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.mechanisms import RandomizedResponse
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.messages import ID_BYTES

__all__ = ["BatchEstimateResult", "BatchOneRound"]


@dataclass(frozen=True)
class BatchEstimateResult:
    """Outcome of one shared-round batch of common-neighborhood queries."""

    layer: Layer
    epsilon: float
    pairs: tuple[QueryPair, ...]
    values: np.ndarray
    upload_bytes: int
    num_query_vertices: int
    max_epsilon_spent: float
    details: dict = field(default_factory=dict)
    _index: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    def value(self, pair: QueryPair) -> float:
        """The estimate for one of the batch's pairs (O(1) after first use)."""
        if not self._index:
            self._index.update({p: i for i, p in enumerate(self.pairs)})
        try:
            return float(self.values[self._index[pair]])
        except KeyError:
            raise ProtocolError(f"pair {pair} is not part of this batch") from None


class BatchOneRound:
    """One shared ε-RR round answering a whole same-layer pair workload.

    This is the straightforward per-vertex/per-pair reference
    implementation (and the baseline the engine benchmarks measure
    against); production workloads should prefer
    :class:`repro.engine.BatchQueryEngine`, which computes the identical
    estimates with array-level work only.
    """

    name = "batch-oner"
    unbiased = True

    def estimate_pairs(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        pairs: Sequence[QueryPair],
        epsilon: float,
        *,
        rng: RngLike = None,
    ) -> BatchEstimateResult:
        """Estimate ``C2`` for every pair from one noisy round.

        All pairs must live on ``layer``. Every distinct vertex appearing
        in the workload perturbs its list exactly once; the ledger records
        the single charge per vertex and verifies the ε bound.
        """
        if not pairs:
            raise ProtocolError("batch needs at least one query pair")
        for pair in pairs:
            if pair.layer is not layer:
                raise ProtocolError(
                    f"pair {pair} is not on the requested {layer} layer"
                )

        rng = ensure_rng(rng)
        rr = RandomizedResponse(epsilon)
        ledger = PrivacyLedger(limit=epsilon)
        domain = graph.layer_size(layer.opposite())

        vertices = sorted({v for pair in pairs for v in (pair.a, pair.b)})
        noisy_lists: dict[int, np.ndarray] = {}
        upload_bytes = 0
        for vertex in vertices:
            noisy = rr.perturb_neighbor_list(
                graph.neighbors(layer, vertex), domain, rng
            )
            noisy_lists[vertex] = noisy
            upload_bytes += noisy.size * ID_BYTES
            ledger.charge(
                f"{layer.value}:{vertex}", epsilon, "randomized-response", "batch-rr"
            )

        p = rr.flip_probability
        denom = (1.0 - 2.0 * p) ** 2
        values = np.empty(len(pairs))
        for i, pair in enumerate(pairs):
            list_a, list_b = noisy_lists[pair.a], noisy_lists[pair.b]
            n1 = int(np.intersect1d(list_a, list_b, assume_unique=True).size)
            n2 = int(list_a.size + list_b.size - n1)
            values[i] = (
                n1 * (1.0 - p) ** 2
                - (n2 - n1) * p * (1.0 - p)
                + (domain - n2) * p * p
            ) / denom

        ledger.assert_within(epsilon)
        return BatchEstimateResult(
            layer=layer,
            epsilon=float(epsilon),
            pairs=tuple(pairs),
            values=values,
            upload_bytes=upload_bytes,
            num_query_vertices=len(vertices),
            max_epsilon_spent=ledger.max_spent(),
            details={"flip_probability": p, "candidate_pool": domain},
        )

"""MultiR-DS — the multiple-round double-source family (paper §4.2, Alg. 4).

Three variants share the same round structure:

* :class:`MultiRoundDoubleSourceBasic` — fixed split (default ε1 = 0.5ε,
  no degree round) and plain averaging ``(f̃u + f̃w)/2``. The paper's
  ablation baseline in Figs. 8–9.
* :class:`MultiRoundDoubleSource` — the full algorithm: an ε0 = 0.05ε
  degree round provides noisy ``du``, ``dw`` (non-positive reports are
  corrected with the layer's noisy average degree); Newton's method picks
  ``(ε1, α)`` minimizing the predicted loss; the result is the weighted
  average ``α·f̃u + (1-α)·f̃w``.
* :class:`MultiRoundDoubleSourceStar` — MultiR-DS* assumes degrees are
  public: same optimization but no degree round, so ε0 is reallocated to
  the working rounds.

Privacy: the degree round is ε0 by parallel composition across the layer;
the RR round is ε1 for each query vertex; the two Laplace releases are ε2
each but act on disjoint neighbor lists (u releases f̃u, w releases f̃w),
composing in parallel to ε2. Sequentially the protocol is
(ε0 + ε1 + ε2)-edge LDP — checked at runtime by the session ledger.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.optimizer import Allocation, optimize_double_source
from repro.errors import PrivacyError
from repro.estimators.base import CommonNeighborEstimator
from repro.estimators.multir_ss import single_source_raw
from repro.privacy.sensitivity import single_source_sensitivity
from repro.protocol.session import ProtocolSession

__all__ = [
    "MultiRoundDoubleSourceBasic",
    "MultiRoundDoubleSource",
    "MultiRoundDoubleSourceStar",
]


def _double_source_rounds(
    session: ProtocolSession, eps1: float, eps2: float, alpha: float
) -> tuple[float, dict[str, Any]]:
    """Run the RR + estimate rounds shared by every DS variant."""
    rr_label = session.begin_round("rr")
    handle_u = session.randomized_response(session.u, eps1, rr_label)
    handle_w = session.randomized_response(session.w, eps1, rr_label)

    est_label = session.begin_round("estimate")
    sensitivity = single_source_sensitivity(eps1)

    session.download(handle_w, session.u)
    raw_u, s1_u, _ = single_source_raw(session, session.u, handle_w)
    f_u = session.release_scalar(session.u, raw_u, eps2, sensitivity, est_label)

    session.download(handle_u, session.w)
    raw_w, s1_w, _ = single_source_raw(session, session.w, handle_u)
    f_w = session.release_scalar(session.w, raw_w, eps2, sensitivity, est_label)

    value = alpha * f_u + (1.0 - alpha) * f_w
    details: dict[str, Any] = {
        "alpha": alpha,
        "eps1": eps1,
        "eps2": eps2,
        "f_u": f_u,
        "f_w": f_w,
        "s1_u": s1_u,
        "s1_w": s1_w,
    }
    return value, details


class MultiRoundDoubleSourceBasic(CommonNeighborEstimator):
    """DS-Basic: plain average of both single-source estimators.

    Spends ``graph_fraction·ε`` on randomized response and the rest on the
    Laplace releases; performs no degree estimation and no optimization.
    """

    name = "multir-ds-basic"
    unbiased = True

    def __init__(self, graph_fraction: float = 0.5):
        if not 0.0 < graph_fraction < 1.0:
            raise PrivacyError("graph_fraction must be in (0, 1)")
        self.graph_fraction = float(graph_fraction)

    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        eps1 = session.epsilon * self.graph_fraction
        eps2 = session.epsilon - eps1
        value, details = _double_source_rounds(session, eps1, eps2, alpha=0.5)
        details["eps0"] = 0.0
        return value, details


class MultiRoundDoubleSource(CommonNeighborEstimator):
    """Full MultiR-DS with degree estimation and budget optimization."""

    name = "multir-ds"
    unbiased = True

    def __init__(self, eps0_fraction: float = 0.05, correct_degrees: bool = True):
        if not 0.0 < eps0_fraction < 1.0:
            raise PrivacyError("eps0_fraction must be in (0, 1)")
        self.eps0_fraction = float(eps0_fraction)
        self.correct_degrees = bool(correct_degrees)

    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        eps0 = session.epsilon * self.eps0_fraction
        label0 = session.begin_round("degrees")
        report = session.degree_round(eps0, label0)

        noisy_du, noisy_dw = report.noisy_degree_u, report.noisy_degree_w
        fallback = max(report.noisy_average_degree, 1.0)
        if self.correct_degrees:
            # Paper Alg. 4 lines 4-5: replace unusable (non-positive) noisy
            # degrees by the layer's estimated average degree.
            if noisy_du < 1.0:
                noisy_du = fallback
            if noisy_dw < 1.0:
                noisy_dw = fallback

        alloc = optimize_double_source(session.epsilon, noisy_du, noisy_dw, eps0)
        value, details = _double_source_rounds(
            session, alloc.eps1, alloc.eps2, alloc.alpha
        )
        details.update(
            eps0=eps0,
            noisy_degree_u=noisy_du,
            noisy_degree_w=noisy_dw,
            noisy_average_degree=report.noisy_average_degree,
            predicted_loss=alloc.predicted_loss,
        )
        return value, details


class MultiRoundDoubleSourceStar(CommonNeighborEstimator):
    """MultiR-DS*: optimized allocation with *public* vertex degrees.

    Skips the degree round entirely, so the whole budget goes to the RR
    and Laplace rounds — the paper observes this makes it slightly more
    accurate and faster than MultiR-DS.
    """

    name = "multir-ds-star"
    unbiased = True

    def _run(self, session: ProtocolSession) -> tuple[float, dict[str, Any]]:
        deg_u = session.graph.degree(session.layer, session.u)
        deg_w = session.graph.degree(session.layer, session.w)
        alloc: Allocation = optimize_double_source(
            session.epsilon, max(deg_u, 1), max(deg_w, 1), eps0=0.0
        )
        value, details = _double_source_rounds(
            session, alloc.eps1, alloc.eps2, alloc.alpha
        )
        details.update(
            eps0=0.0,
            public_degree_u=deg_u,
            public_degree_w=deg_w,
            predicted_loss=alloc.predicted_loss,
        )
        return value, details

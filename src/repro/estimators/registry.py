"""Name-based estimator registry used by the experiment harness and CLI."""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.estimators.base import CommonNeighborEstimator
from repro.estimators.centraldp import CentralDPEstimator
from repro.estimators.exact import ExactCounter
from repro.estimators.multir_ds import (
    MultiRoundDoubleSource,
    MultiRoundDoubleSourceBasic,
    MultiRoundDoubleSourceStar,
)
from repro.estimators.multir_ss import MultiRoundSingleSource
from repro.estimators.naive import NaiveEstimator
from repro.estimators.oner import OneRoundEstimator
from repro.estimators.sketchview import (
    BloomViewEstimator,
    HllViewEstimator,
    VocViewEstimator,
)

__all__ = ["available_estimators", "get_estimator", "ESTIMATOR_FACTORIES"]

ESTIMATOR_FACTORIES: dict[str, Callable[..., CommonNeighborEstimator]] = {
    ExactCounter.name: ExactCounter,
    NaiveEstimator.name: NaiveEstimator,
    OneRoundEstimator.name: OneRoundEstimator,
    MultiRoundSingleSource.name: MultiRoundSingleSource,
    MultiRoundDoubleSourceBasic.name: MultiRoundDoubleSourceBasic,
    MultiRoundDoubleSource.name: MultiRoundDoubleSource,
    MultiRoundDoubleSourceStar.name: MultiRoundDoubleSourceStar,
    CentralDPEstimator.name: CentralDPEstimator,
    BloomViewEstimator.name: BloomViewEstimator,
    VocViewEstimator.name: VocViewEstimator,
    HllViewEstimator.name: HllViewEstimator,
}


def available_estimators() -> list[str]:
    """Registered algorithm names, in presentation order."""
    return list(ESTIMATOR_FACTORIES)


def get_estimator(name: str, **kwargs) -> CommonNeighborEstimator:
    """Instantiate an estimator by registry name.

    Keyword arguments are forwarded to the estimator constructor (e.g.
    ``get_estimator("multir-ss", graph_fraction=0.3)``).
    """
    try:
        factory = ESTIMATOR_FACTORIES[name]
    except KeyError:
        known = ", ".join(available_estimators())
        raise ReproError(f"unknown estimator {name!r}; known: {known}") from None
    return factory(**kwargs)

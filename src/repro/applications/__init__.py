"""Downstream applications built on the edge-LDP estimators."""

from repro.applications.anomaly import (
    AnomalyScore,
    expected_null_c2,
    rank_pairs,
    score_pair,
)
from repro.applications.butterfly import (
    ButterflyEstimate,
    estimate_butterflies_between,
    estimate_global_butterflies,
)
from repro.applications.community import (
    detect_communities,
    ldp_communities,
    pairwise_rand_index,
)
from repro.applications.degrees import (
    DegreePublication,
    noisy_degree_histogram,
    publish_noisy_degrees,
)
from repro.applications.ingredients import (
    BatchIngredients,
    PairIngredients,
    batch_pair_ingredients,
    private_pair_ingredients,
)
from repro.applications.jaccard import JaccardEstimate, estimate_jaccard
from repro.applications.recommendation import (
    Recommendation,
    recommend_items,
    recommend_items_served,
)
from repro.applications.projection import (
    exact_projection,
    ldp_projection,
    ldp_projection_with_total_budget,
)
from repro.applications.similarity import (
    SIMILARITY_KINDS,
    SimilarityEstimate,
    estimate_similarity,
    top_k_similar,
    top_k_similar_served,
)

__all__ = [
    "AnomalyScore",
    "expected_null_c2",
    "rank_pairs",
    "score_pair",
    "ButterflyEstimate",
    "estimate_butterflies_between",
    "estimate_global_butterflies",
    "detect_communities",
    "ldp_communities",
    "pairwise_rand_index",
    "Recommendation",
    "recommend_items",
    "recommend_items_served",
    "DegreePublication",
    "noisy_degree_histogram",
    "publish_noisy_degrees",
    "PairIngredients",
    "private_pair_ingredients",
    "BatchIngredients",
    "batch_pair_ingredients",
    "JaccardEstimate",
    "estimate_jaccard",
    "exact_projection",
    "ldp_projection",
    "ldp_projection_with_total_budget",
    "SIMILARITY_KINDS",
    "SimilarityEstimate",
    "estimate_similarity",
    "top_k_similar",
    "top_k_similar_served",
]

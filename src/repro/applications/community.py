"""Community detection over the edge-LDP bipartite projection.

Bipartite projection followed by community detection is the standard
pipeline for grouping same-layer entities (the paper cites community
search among the tasks built on common-neighbor counts). Here the
projection edges carry *estimated* counts
(:func:`repro.applications.projection.ldp_projection`), and any networkx
community algorithm runs on the result — post-processing, free of privacy
cost.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import networkx as nx

from repro.applications.projection import exact_projection, ldp_projection
from repro.errors import ReproError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.rng import RngLike

# exact_projection is re-exported so callers can compare the private
# pipeline against the non-private one without a second import.
__all__ = [
    "detect_communities",
    "ldp_communities",
    "pairwise_rand_index",
    "exact_projection",
]

_METHODS = ("label-propagation", "greedy-modularity")


def detect_communities(
    projected: nx.Graph, method: str = "greedy-modularity"
) -> list[set[int]]:
    """Partition a (projection) graph into communities.

    Isolated vertices become singleton communities; the partition covers
    every node exactly once.
    """
    if method not in _METHODS:
        raise ReproError(f"unknown method {method!r}; choose from {_METHODS}")
    if projected.number_of_nodes() == 0:
        return []
    if projected.number_of_edges() == 0:
        return [{int(v)} for v in projected.nodes]
    if method == "label-propagation":
        communities = nx.community.asyn_lpa_communities(
            projected, weight="weight", seed=0
        )
    else:
        communities = nx.community.greedy_modularity_communities(
            projected, weight="weight"
        )
    return [set(map(int, group)) for group in communities]


def ldp_communities(
    graph: BipartiteGraph,
    layer: Layer,
    vertices: Sequence[int],
    epsilon: float,
    threshold: float = 0.5,
    method: str = "greedy-modularity",
    c2_method: str = "batch-oner",
    *,
    rng: RngLike = None,
) -> list[set[int]]:
    """Detect same-layer communities from privately estimated projections.

    The default ``c2_method`` builds the projection through the batch
    query engine — one shared ε-RR round for the whole all-pairs workload,
    so every vertex's total loss is ``epsilon``; any registered per-pair
    estimator name reproduces the independent-queries model instead.
    """
    projected = ldp_projection(
        graph, layer, vertices, epsilon, method=c2_method,
        threshold=threshold, rng=rng,
    )
    return detect_communities(projected, method)


def pairwise_rand_index(
    partition_a: Sequence[set[int]], partition_b: Sequence[set[int]]
) -> float:
    """Rand index between two partitions of the same element set.

    The fraction of element pairs on which the partitions agree (both
    together or both apart); 1.0 means identical clusterings.
    """
    label_a = {v: i for i, group in enumerate(partition_a) for v in group}
    label_b = {v: i for i, group in enumerate(partition_b) for v in group}
    if set(label_a) != set(label_b):
        raise ReproError("partitions cover different element sets")
    elements = sorted(label_a)
    if len(elements) < 2:
        return 1.0
    agreements = 0
    total = 0
    for x, y in combinations(elements, 2):
        together_a = label_a[x] == label_a[y]
        together_b = label_b[x] == label_b[y]
        agreements += together_a == together_b
        total += 1
    return agreements / total

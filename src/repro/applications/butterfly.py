"""Butterfly ((2,2)-biclique) counting under edge LDP.

The paper motivates common-neighborhood estimation as the primitive for
(p,q)-biclique counting; the base case is the butterfly, whose count
between two same-layer vertices is ``B(u,w) = C(C2(u,w), 2)``.

A plug-in ``C(f, 2)`` of an unbiased estimate ``f`` is biased upward by
``Var(f)/2``. For the single-source estimator the variance is known in
closed form (Theorem 6), ``Var = g(ε1)·du + 2h(ε1)/ε2²``, and is *linear*
in the source degree — so substituting an independent unbiased noisy
degree ``d̃u`` keeps the correction unbiased:

    B̂ = ( f² − ĝVar − f ) / 2,   ĝVar = g(ε1)·d̃u + 2h(ε1)/ε2²
    E[B̂] = ( C2² + Var − Var − C2 ) / 2 = C(C2, 2).

Everything the curator combines here is already-released data, so the
correction is pure post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PrivacyError
from repro.estimators.multir_ss import MultiRoundSingleSource
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import sample_query_pairs
from repro.analysis.loss import laplace_noise_coefficient, rr_noise_coefficient
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.privacy.sensitivity import degree_sensitivity
from repro.protocol.session import ExecutionMode

__all__ = [
    "ButterflyEstimate",
    "estimate_butterflies_between",
    "estimate_global_butterflies",
]


@dataclass(frozen=True)
class ButterflyEstimate:
    """A private butterfly-count estimate and its de-biasing ingredients."""

    value: float
    c2_estimate: float
    variance_correction: float
    noisy_degree: float
    epsilon: float


def estimate_butterflies_between(
    graph: BipartiteGraph,
    layer: Layer,
    u: int,
    w: int,
    epsilon: float,
    degree_fraction: float = 0.2,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
) -> ButterflyEstimate:
    """Unbiased estimate of ``C(C2(u,w), 2)`` under ``epsilon``-edge LDP.

    ``degree_fraction`` of the budget funds the noisy source degree used
    by the variance correction; the rest funds a single-source C2
    estimate (even ε1/ε2 split, source ``u``).
    """
    if not 0.0 < degree_fraction < 1.0:
        raise PrivacyError("degree_fraction must be in (0, 1)")
    rng = ensure_rng(rng)
    eps_deg = epsilon * degree_fraction
    eps_c2 = epsilon - eps_deg

    mech = LaplaceMechanism(eps_deg, degree_sensitivity())
    noisy_du = mech.release(graph.degree(layer, u), rng)

    estimator = MultiRoundSingleSource(source="u")
    result = estimator.estimate(graph, layer, u, w, eps_c2, rng=rng, mode=mode)
    f = result.value
    eps1 = result.details["eps1"]
    eps2 = result.details["eps2"]

    variance = (
        rr_noise_coefficient(eps1) * noisy_du
        + 2.0 * laplace_noise_coefficient(eps1) / eps2**2
    )
    value = (f * f - variance - f) / 2.0
    return ButterflyEstimate(
        value=value,
        c2_estimate=f,
        variance_correction=variance,
        noisy_degree=noisy_du,
        epsilon=epsilon,
    )


def estimate_global_butterflies(
    graph: BipartiteGraph,
    layer: Layer,
    epsilon: float,
    num_samples: int = 100,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
) -> float:
    """Horvitz–Thompson estimate of the total butterfly count on ``layer``.

    Samples ``num_samples`` uniform same-layer pairs, estimates each
    pair's butterflies with a fresh per-query budget (the paper's query
    model), and rescales by the number of pairs. Unbiased over the joint
    sampling + privacy randomness; the sampling variance dominates for
    small ``num_samples`` — this is a substrate demonstration, not a
    low-variance global counter.
    """
    if num_samples <= 0:
        raise PrivacyError(f"num_samples must be positive, got {num_samples}")
    size = graph.layer_size(layer)
    if size < 2:
        return 0.0
    parent = ensure_rng(rng)
    # min_degree=0: global estimation must sample from *all* pairs to stay
    # unbiased, including pairs with isolated endpoints.
    pairs = sample_query_pairs(
        graph, layer, num_samples, rng=parent, min_degree=0
    )
    rngs = spawn_rngs(parent, len(pairs))
    total_pairs = size * (size - 1) / 2.0
    estimates = [
        estimate_butterflies_between(
            graph, layer, pair.a, pair.b, epsilon, rng=child, mode=mode
        ).value
        for pair, child in zip(pairs, rngs)
    ]
    return total_pairs * float(sum(estimates)) / len(estimates)

"""Layer-wide noisy degree publication under edge LDP.

Degree distributions are the most commonly released graph statistic under
(L)DP (paper §6 cites several lines of work). Here every vertex of a layer
releases ``deg + Lap(1/ε)`` once — parallel composition makes the whole
round ε-edge LDP — and the curator post-processes the reports into the
statistics the other applications and MultiR-DS's correction step rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrivacyError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.rng import RngLike, ensure_rng
from repro.privacy.sensitivity import degree_sensitivity

__all__ = [
    "DegreePublication",
    "publish_noisy_degrees",
    "noisy_degree_histogram",
]


@dataclass(frozen=True)
class DegreePublication:
    """All noisy degree reports of one layer plus derived statistics."""

    layer: Layer
    epsilon: float
    noisy_degrees: np.ndarray

    @property
    def average_degree(self) -> float:
        """Unbiased estimate of the layer's mean degree."""
        return float(self.noisy_degrees.mean())

    @property
    def total_edges_estimate(self) -> float:
        """Unbiased estimate of ``|E|`` (sum of a layer's degrees)."""
        return float(self.noisy_degrees.sum())

    def clipped(self) -> np.ndarray:
        """Non-negative post-processed reports (for display/histograms)."""
        return np.maximum(self.noisy_degrees, 0.0)


def publish_noisy_degrees(
    graph: BipartiteGraph,
    layer: Layer,
    epsilon: float,
    rng: RngLike = None,
) -> DegreePublication:
    """Every vertex of ``layer`` releases its degree via Laplace(1/ε)."""
    rng = ensure_rng(rng)
    mech = LaplaceMechanism(epsilon, degree_sensitivity())
    noisy = mech.release_many(graph.degrees(layer).astype(np.float64), rng)
    return DegreePublication(layer=layer, epsilon=float(epsilon), noisy_degrees=noisy)


def noisy_degree_histogram(
    publication: DegreePublication,
    bin_edges: np.ndarray | list[float],
) -> np.ndarray:
    """Histogram counts of the (clipped) noisy degrees over ``bin_edges``.

    Pure post-processing of already-released reports — no extra privacy
    cost. Bin edges must be increasing and non-empty.
    """
    edges = np.asarray(bin_edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2 or (np.diff(edges) <= 0).any():
        raise PrivacyError("bin_edges must be an increasing 1-D array")
    counts, _ = np.histogram(publication.clipped(), bins=edges)
    return counts

"""Vertex-similarity measures under edge LDP.

Generalizes the Jaccard application to the other standard set-overlap
coefficients built from ``(C2, deg_u, deg_w)``:

* ``jaccard``  — ``C2 / (du + dw - C2)``
* ``dice``     — ``2 C2 / (du + dw)``
* ``cosine``   — ``C2 / sqrt(du · dw)``
* ``overlap``  — ``C2 / min(du, dw)``

plus :func:`top_k_similar`, the private analogue of the similarity search
motivating the paper's introduction. Plug-in ratios of unbiased estimates
are not unbiased themselves (documented caveat); values are clamped to
[0, 1].
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.applications.ingredients import (
    PairIngredients,
    batch_pair_ingredients,
    private_pair_ingredients,
)
from repro.engine.core import BATCH_METHODS
from repro.errors import ReproError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.composition import QueryBudgetManager
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.protocol.session import ExecutionMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving is optional)
    from repro.serving.server import QueryServer

__all__ = [
    "SimilarityEstimate",
    "SIMILARITY_KINDS",
    "BATCH_METHODS",
    "estimate_similarity",
    "top_k_similar",
    "top_k_similar_served",
]


def _jaccard(c2: float, du: float, dw: float) -> float:
    union = du + dw - c2
    return c2 / union if union > 0 else (1.0 if c2 > 0 else 0.0)


def _dice(c2: float, du: float, dw: float) -> float:
    total = du + dw
    return 2.0 * c2 / total if total > 0 else 0.0


def _cosine(c2: float, du: float, dw: float) -> float:
    denom = math.sqrt(max(du, 0.0) * max(dw, 0.0))
    return c2 / denom if denom > 0 else 0.0


def _overlap(c2: float, du: float, dw: float) -> float:
    denom = min(du, dw)
    return c2 / denom if denom > 0 else 0.0


SIMILARITY_KINDS: dict[str, Callable[[float, float, float], float]] = {
    "jaccard": _jaccard,
    "dice": _dice,
    "cosine": _cosine,
    "overlap": _overlap,
}


@dataclass(frozen=True)
class SimilarityEstimate:
    """A private similarity value and the released ingredients behind it."""

    kind: str
    value: float
    raw_value: float
    ingredients: PairIngredients


def estimate_similarity(
    graph: BipartiteGraph,
    layer: Layer,
    u: int,
    w: int,
    epsilon: float,
    kind: str = "jaccard",
    method: str = "multir-ds",
    degree_fraction: float = 0.2,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
) -> SimilarityEstimate:
    """Estimate one similarity coefficient for a same-layer pair."""
    try:
        formula = SIMILARITY_KINDS[kind]
    except KeyError:
        known = ", ".join(SIMILARITY_KINDS)
        raise ReproError(f"unknown similarity kind {kind!r}; known: {known}") from None
    ingredients = private_pair_ingredients(
        graph, layer, u, w, epsilon, method, degree_fraction, rng=rng, mode=mode
    )
    raw = formula(
        ingredients.c2_estimate,
        ingredients.noisy_degree_u,
        ingredients.noisy_degree_w,
    )
    return SimilarityEstimate(
        kind=kind,
        value=min(max(raw, 0.0), 1.0),
        raw_value=raw,
        ingredients=ingredients,
    )


def top_k_similar(
    graph: BipartiteGraph,
    layer: Layer,
    query_vertex: int,
    candidates: Sequence[int],
    k: int,
    total_epsilon: float,
    kind: str = "jaccard",
    method: str = "batch-oner",
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
) -> list[tuple[int, SimilarityEstimate]]:
    """The ``k`` candidates most similar to ``query_vertex``.

    ``total_epsilon`` is the *analyst's* budget for the whole search. With
    the default batch method the comparisons are one engine workload: every
    involved vertex (the query vertex and each candidate) releases its data
    exactly once at ``total_epsilon``, so the cumulative per-vertex privacy
    loss is ``total_epsilon`` by parallel composition — no splitting, and
    utility independent of the number of candidates screened. Passing a
    registered per-pair estimator name instead reproduces the paper's
    query-model accounting: the budget is split uniformly across the
    comparisons via :class:`QueryBudgetManager`.
    """
    candidates = [int(c) for c in candidates if int(c) != int(query_vertex)]
    if k <= 0:
        raise ReproError(f"k must be positive, got {k}")
    if not candidates:
        return []
    try:
        formula = SIMILARITY_KINDS[kind]
    except KeyError:
        known = ", ".join(SIMILARITY_KINDS)
        raise ReproError(f"unknown similarity kind {kind!r}; known: {known}") from None
    parent = ensure_rng(rng)

    if method in BATCH_METHODS:
        pairs = [QueryPair(layer, query_vertex, c) for c in candidates]
        batch = batch_pair_ingredients(
            graph, layer, pairs, total_epsilon, rng=parent, mode=mode
        )
        scored = []
        for i, candidate in enumerate(candidates):
            ingredients = PairIngredients(
                c2_estimate=float(batch.c2_estimates[i]),
                noisy_degree_u=float(batch.noisy_degrees_a[i]),
                noisy_degree_w=float(batch.noisy_degrees_b[i]),
                epsilon=batch.epsilon,
                epsilon_degrees=batch.epsilon_degrees,
                epsilon_c2=batch.epsilon_c2,
            )
            raw = formula(
                ingredients.c2_estimate,
                ingredients.noisy_degree_u,
                ingredients.noisy_degree_w,
            )
            estimate = SimilarityEstimate(
                kind=kind,
                value=min(max(raw, 0.0), 1.0),
                raw_value=raw,
                ingredients=ingredients,
            )
            scored.append((candidate, estimate))
    else:
        manager = QueryBudgetManager(
            total_epsilon, policy="uniform", num_queries=len(candidates)
        )
        rngs = spawn_rngs(parent, len(candidates))
        scored = []
        for candidate, child in zip(candidates, rngs):
            eps = manager.next_budget()
            estimate = estimate_similarity(
                graph, layer, query_vertex, candidate, eps, kind, method,
                rng=child, mode=mode,
            )
            scored.append((candidate, estimate))
    scored.sort(key=lambda item: item[1].value, reverse=True)
    return scored[:k]


async def top_k_similar_served(
    server: "QueryServer",
    query_vertex: int,
    candidates: Sequence[int],
    k: int,
    kind: str = "jaccard",
    *,
    tenant: str | None = None,
) -> list[tuple[int, SimilarityEstimate]]:
    """Async top-k search routed through a running :class:`QueryServer`.

    Each comparison is one served query: the whole candidate screen
    coalesces into the server's tick batches, and any vertex (or pair)
    already holding an epoch view is answered from cache for free — a
    second top-k search over overlapping candidates in the same epoch
    costs **zero** additional budget. Degrees come from the server's
    epoch-cached Laplace releases, so the server must be constructed with
    ``degree_epsilon``. On a multi-tenant server, ``tenant`` names the
    analyst whose budget funds the screen's cache misses.
    """
    if server.degree_epsilon is None:
        raise ReproError(
            "served similarity needs noisy degrees; construct the "
            "QueryServer with degree_epsilon"
        )
    try:
        formula = SIMILARITY_KINDS[kind]
    except KeyError:
        known = ", ".join(SIMILARITY_KINDS)
        raise ReproError(f"unknown similarity kind {kind!r}; known: {known}") from None
    if k <= 0:
        raise ReproError(f"k must be positive, got {k}")
    candidates = [int(c) for c in candidates if int(c) != int(query_vertex)]
    if not candidates:
        return []

    served = await asyncio.gather(
        *(
            server.query(query_vertex, candidate, tenant=tenant)
            for candidate in candidates
        )
    )
    scored = []
    for candidate, estimate in zip(candidates, served):
        ingredients = PairIngredients(
            c2_estimate=estimate.value,
            noisy_degree_u=float(estimate.noisy_degree_a),
            noisy_degree_w=float(estimate.noisy_degree_b),
            epsilon=server.epsilon + server.degree_epsilon,
            epsilon_degrees=server.degree_epsilon,
            epsilon_c2=server.epsilon,
        )
        raw = formula(
            ingredients.c2_estimate,
            ingredients.noisy_degree_u,
            ingredients.noisy_degree_w,
        )
        scored.append(
            (
                candidate,
                SimilarityEstimate(
                    kind=kind,
                    value=min(max(raw, 0.0), 1.0),
                    raw_value=raw,
                    ingredients=ingredients,
                ),
            )
        )
    scored.sort(key=lambda item: item[1].value, reverse=True)
    return scored[:k]

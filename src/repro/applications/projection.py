"""Edge-LDP bipartite projection.

Projecting a bipartite graph onto one layer — connecting two same-layer
vertices with weight ``C2(u, w)`` — is a standard preprocessing step for
community detection and recommendation (paper §1 cites bipartite graph
projection among the tasks built on common-neighbor counts). This module
builds the projection with *estimated* counts so the neighbor lists of the
projected vertices are never revealed.

Budget semantics match the paper's query model by default: every pairwise
query is an independent protocol run granted the full ``epsilon``. To
bound the *cumulative* loss of a projected vertex across all the pairs it
participates in, pass a :class:`~repro.privacy.composition.QueryBudgetManager`
(or use ``total_epsilon``), which splits one budget across the queries.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import networkx as nx

from repro.errors import PrivacyError
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.composition import QueryBudgetManager
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.protocol.session import ExecutionMode

__all__ = ["ldp_projection", "ldp_projection_with_total_budget", "exact_projection"]


def exact_projection(
    graph: BipartiteGraph, layer: Layer, vertices: Sequence[int]
) -> nx.Graph:
    """Non-private reference projection (true common-neighbor weights)."""
    projected = nx.Graph()
    projected.add_nodes_from(int(v) for v in vertices)
    for a, b in combinations(vertices, 2):
        weight = graph.count_common_neighbors(layer, a, b)
        if weight > 0:
            projected.add_edge(int(a), int(b), weight=float(weight))
    return projected


def ldp_projection(
    graph: BipartiteGraph,
    layer: Layer,
    vertices: Sequence[int],
    epsilon: float,
    method: str = "multir-ds",
    threshold: float = 0.5,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
    **estimator_kwargs,
) -> nx.Graph:
    """Project ``vertices`` onto a weighted graph using estimated counts.

    Edges with estimated weight at or below ``threshold`` are dropped
    (estimates can be negative for pairs with no common neighbors; the
    threshold acts as the usual post-processing cleanup).
    """
    vertices = [int(v) for v in vertices]
    parent = ensure_rng(rng)
    estimator = get_estimator(method, **estimator_kwargs)
    pairs = list(combinations(vertices, 2))
    rngs = spawn_rngs(parent, len(pairs))

    projected = nx.Graph()
    projected.add_nodes_from(vertices)
    for (a, b), child in zip(pairs, rngs):
        estimate = estimator.estimate(
            graph, layer, a, b, epsilon, rng=child, mode=mode
        ).value
        if estimate > threshold:
            projected.add_edge(a, b, weight=float(estimate))
    return projected


def ldp_projection_with_total_budget(
    graph: BipartiteGraph,
    layer: Layer,
    vertices: Sequence[int],
    total_epsilon: float,
    method: str = "multir-ds",
    threshold: float = 0.5,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
    **estimator_kwargs,
) -> nx.Graph:
    """Projection whose whole pairwise workload shares one budget.

    Each projected vertex appears in ``len(vertices) - 1`` pairs; splitting
    ``total_epsilon`` uniformly across them bounds every vertex's
    cumulative sequential-composition loss by ``total_epsilon``
    (conservatively — the vertex is only charged in the pairs it joins).
    """
    vertices = [int(v) for v in vertices]
    if len(vertices) < 2:
        raise PrivacyError("projection needs at least two vertices")
    per_vertex_queries = len(vertices) - 1
    manager = QueryBudgetManager(
        total_epsilon, policy="uniform", num_queries=per_vertex_queries
    )
    per_query = manager.next_budget()
    return ldp_projection(
        graph, layer, vertices, per_query, method, threshold,
        rng=rng, mode=mode, **estimator_kwargs,
    )

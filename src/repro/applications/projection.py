"""Edge-LDP bipartite projection.

Projecting a bipartite graph onto one layer — connecting two same-layer
vertices with weight ``C2(u, w)`` — is a standard preprocessing step for
community detection and recommendation (paper §1 cites bipartite graph
projection among the tasks built on common-neighbor counts). This module
builds the projection with *estimated* counts so the neighbor lists of the
projected vertices are never revealed.

Budget semantics depend on the method. Per-pair estimator names follow the
paper's query model: every pairwise query is an independent protocol run
granted the full ``epsilon``. The batch methods (``"batch-oner"`` /
``"batch"`` / ``"engine"``) answer the whole all-pairs workload through
:class:`~repro.engine.BatchQueryEngine` instead: each projected vertex
perturbs its list exactly once, so ``epsilon`` bounds every vertex's
*cumulative* loss across all the pairs it participates in — which is why
:func:`ldp_projection_with_total_budget` routes through the engine by
default rather than splitting the budget per query.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import networkx as nx

from repro.engine.core import BATCH_METHODS, BatchQueryEngine
from repro.errors import PrivacyError, ReproError
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.composition import QueryBudgetManager
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.protocol.session import ExecutionMode

__all__ = ["ldp_projection", "ldp_projection_with_total_budget", "exact_projection"]


def exact_projection(
    graph: BipartiteGraph, layer: Layer, vertices: Sequence[int]
) -> nx.Graph:
    """Non-private reference projection (true common-neighbor weights)."""
    projected = nx.Graph()
    projected.add_nodes_from(int(v) for v in vertices)
    for a, b in combinations(vertices, 2):
        weight = graph.count_common_neighbors(layer, a, b)
        if weight > 0:
            projected.add_edge(int(a), int(b), weight=float(weight))
    return projected


def ldp_projection(
    graph: BipartiteGraph,
    layer: Layer,
    vertices: Sequence[int],
    epsilon: float,
    method: str = "multir-ds",
    threshold: float = 0.5,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
    **estimator_kwargs,
) -> nx.Graph:
    """Project ``vertices`` onto a weighted graph using estimated counts.

    Edges with estimated weight at or below ``threshold`` are dropped
    (estimates can be negative for pairs with no common neighbors; the
    threshold acts as the usual post-processing cleanup). Batch methods
    answer every pair from one engine workload (one ε-RR upload per
    vertex); per-pair estimator names run one protocol per pair.
    """
    vertices = [int(v) for v in vertices]
    parent = ensure_rng(rng)
    pairs = list(combinations(vertices, 2))

    projected = nx.Graph()
    projected.add_nodes_from(vertices)
    if not pairs:
        return projected

    if method in BATCH_METHODS:
        if estimator_kwargs:
            raise ReproError(
                "batch methods accept no estimator kwargs; got "
                + ", ".join(sorted(estimator_kwargs))
            )
        result = BatchQueryEngine(mode=mode).estimate_pairs(
            graph, layer, [QueryPair(layer, a, b) for a, b in pairs],
            epsilon, rng=parent,
        )
        for (a, b), estimate in zip(pairs, result.values):
            if estimate > threshold:
                projected.add_edge(a, b, weight=float(estimate))
        return projected

    estimator = get_estimator(method, **estimator_kwargs)
    rngs = spawn_rngs(parent, len(pairs))
    for (a, b), child in zip(pairs, rngs):
        estimate = estimator.estimate(
            graph, layer, a, b, epsilon, rng=child, mode=mode
        ).value
        if estimate > threshold:
            projected.add_edge(a, b, weight=float(estimate))
    return projected


def ldp_projection_with_total_budget(
    graph: BipartiteGraph,
    layer: Layer,
    vertices: Sequence[int],
    total_epsilon: float,
    method: str = "batch-oner",
    threshold: float = 0.5,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
    **estimator_kwargs,
) -> nx.Graph:
    """Projection whose whole pairwise workload shares one budget.

    With the default batch method the workload is one shared engine round:
    every vertex perturbs its list once at ``total_epsilon``, which bounds
    its cumulative loss by ``total_epsilon`` with *no* per-query budget
    splitting — the utility win that motivates the batch protocol. With a
    per-pair estimator name, each vertex appears in ``len(vertices) - 1``
    independent queries instead, so ``total_epsilon`` is split uniformly
    across them via :class:`QueryBudgetManager` (conservatively — the
    vertex is only charged in the pairs it joins).
    """
    vertices = [int(v) for v in vertices]
    if len(vertices) < 2:
        raise PrivacyError("projection needs at least two vertices")
    if method in BATCH_METHODS:
        per_query = total_epsilon
    else:
        per_vertex_queries = len(vertices) - 1
        manager = QueryBudgetManager(
            total_epsilon, policy="uniform", num_queries=per_vertex_queries
        )
        per_query = manager.next_budget()
    return ldp_projection(
        graph, layer, vertices, per_query, method, threshold,
        rng=rng, mode=mode, **estimator_kwargs,
    )

"""Privacy-preserving Jaccard similarity (the paper's §1 motivating task).

``J(u, w) = C2(u, w) / (deg(u) + deg(w) - C2(u, w))`` — with ``C2``
estimated by any of the library's edge-LDP algorithms and the degrees
released through the Laplace mechanism (shared plumbing in
:mod:`repro.applications.ingredients`). The total budget is split between
the degree releases and the common-neighborhood estimate; per query
vertex the sequential composition stays within ``epsilon``.

The ratio of unbiased estimates is *not* itself unbiased (a standard
caveat for plug-in ratio estimators); the estimate is clamped to [0, 1]
and the raw value kept for diagnostics. For the other overlap
coefficients (cosine / Dice / overlap) see
:mod:`repro.applications.similarity`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.applications.ingredients import private_pair_ingredients
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.rng import RngLike
from repro.protocol.session import ExecutionMode

__all__ = ["JaccardEstimate", "estimate_jaccard"]


@dataclass(frozen=True)
class JaccardEstimate:
    """A private Jaccard similarity estimate and its ingredients."""

    value: float
    raw_value: float
    c2_estimate: float
    degree_u_estimate: float
    degree_w_estimate: float
    epsilon: float
    epsilon_degrees: float
    epsilon_c2: float


def estimate_jaccard(
    graph: BipartiteGraph,
    layer: Layer,
    u: int,
    w: int,
    epsilon: float,
    method: str = "multir-ds",
    degree_fraction: float = 0.2,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
    **estimator_kwargs,
) -> JaccardEstimate:
    """Estimate the Jaccard similarity of ``u`` and ``w`` under edge LDP.

    ``degree_fraction`` of the budget funds the two noisy degree releases;
    the remainder funds the ``C2`` estimator named by ``method``.
    """
    ingredients = private_pair_ingredients(
        graph, layer, u, w, epsilon, method, degree_fraction,
        rng=rng, mode=mode, **estimator_kwargs,
    )
    c2 = ingredients.c2_estimate
    union = ingredients.noisy_degree_u + ingredients.noisy_degree_w - c2
    raw = c2 / union if union > 0 else (1.0 if c2 > 0 else 0.0)
    return JaccardEstimate(
        value=min(max(raw, 0.0), 1.0),
        raw_value=raw,
        c2_estimate=c2,
        degree_u_estimate=ingredients.noisy_degree_u,
        degree_w_estimate=ingredients.noisy_degree_w,
        epsilon=epsilon,
        epsilon_degrees=ingredients.epsilon_degrees,
        epsilon_c2=ingredients.epsilon_c2,
    )

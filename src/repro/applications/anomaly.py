"""Common-neighborhood anomaly scoring under edge LDP.

Following the neighborhood-formation view of anomaly detection in
bipartite graphs (Sun et al., cited in the paper's §1), a pair of
same-layer vertices is *anomalous* when its common neighborhood is far
larger than the configuration-null expectation
``E[C2 | random] ≈ deg(u)·deg(w) / n_opposite``. This module computes a
standardized score from privately estimated quantities only (degrees via
the Laplace mechanism, C2 via any registered estimator — shared plumbing
in :mod:`repro.applications.ingredients`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.applications.ingredients import private_pair_ingredients
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.protocol.session import ExecutionMode

__all__ = ["AnomalyScore", "expected_null_c2", "score_pair", "rank_pairs"]


@dataclass(frozen=True)
class AnomalyScore:
    """Standardized common-neighborhood surprise for one pair."""

    u: int
    w: int
    c2_estimate: float
    expected_null: float
    score: float


def expected_null_c2(
    degree_u: float, degree_w: float, n_opposite: int
) -> float:
    """Expected common neighbors if both neighborhoods were random."""
    if n_opposite <= 0:
        return 0.0
    return max(degree_u, 0.0) * max(degree_w, 0.0) / n_opposite


def score_pair(
    graph: BipartiteGraph,
    layer: Layer,
    u: int,
    w: int,
    epsilon: float,
    method: str = "multir-ds",
    degree_fraction: float = 0.2,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
) -> AnomalyScore:
    """Score one pair: ``(Ĉ2 - E_null) / sqrt(max(E_null, 1))``.

    Degrees for the null model are released privately (Laplace), the count
    via the chosen estimator; the budget composes to ``epsilon`` per query
    vertex.
    """
    ingredients = private_pair_ingredients(
        graph, layer, u, w, epsilon, method, degree_fraction, rng=rng, mode=mode
    )
    null = expected_null_c2(
        ingredients.noisy_degree_u,
        ingredients.noisy_degree_w,
        graph.layer_size(layer.opposite()),
    )
    score = (ingredients.c2_estimate - null) / math.sqrt(max(null, 1.0))
    return AnomalyScore(
        u=int(u),
        w=int(w),
        c2_estimate=ingredients.c2_estimate,
        expected_null=null,
        score=score,
    )


def rank_pairs(
    graph: BipartiteGraph,
    layer: Layer,
    pairs: Sequence[QueryPair],
    epsilon: float,
    method: str = "multir-ds",
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
) -> list[AnomalyScore]:
    """Score every pair (fresh per-query budget) and sort by surprise."""
    parent = ensure_rng(rng)
    rngs = spawn_rngs(parent, len(pairs))
    scores = [
        score_pair(
            graph, layer, pair.a, pair.b, epsilon, method, rng=child, mode=mode
        )
        for pair, child in zip(pairs, rngs)
    ]
    return sorted(scores, key=lambda s: s.score, reverse=True)

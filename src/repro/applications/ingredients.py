"""Shared plumbing for applications that combine degrees with C2 estimates.

Jaccard / cosine / Dice / overlap similarity and the anomaly score all
need the same three privately released quantities for a pair: noisy
degrees of both query vertices (Laplace) and an estimated common-neighbor
count (any registered estimator). This module releases them under one
budget split so every application composes identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PrivacyError
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.rng import RngLike, ensure_rng
from repro.privacy.sensitivity import degree_sensitivity
from repro.protocol.session import ExecutionMode

__all__ = ["PairIngredients", "private_pair_ingredients"]


@dataclass(frozen=True)
class PairIngredients:
    """Privately released per-pair quantities and their budget split."""

    c2_estimate: float
    noisy_degree_u: float
    noisy_degree_w: float
    epsilon: float
    epsilon_degrees: float
    epsilon_c2: float


def private_pair_ingredients(
    graph: BipartiteGraph,
    layer: Layer,
    u: int,
    w: int,
    epsilon: float,
    method: str = "multir-ds",
    degree_fraction: float = 0.2,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
    **estimator_kwargs,
) -> PairIngredients:
    """Release noisy degrees and a C2 estimate within one budget.

    ``degree_fraction`` of ``epsilon`` funds the two Laplace degree
    releases; the rest funds the C2 estimator. Per query vertex the
    sequential composition is ``epsilon``.
    """
    if not 0.0 < degree_fraction < 1.0:
        raise PrivacyError("degree_fraction must be in (0, 1)")
    rng = ensure_rng(rng)
    eps_deg = epsilon * degree_fraction
    eps_c2 = epsilon - eps_deg

    mech = LaplaceMechanism(eps_deg, degree_sensitivity())
    noisy_du = mech.release(graph.degree(layer, u), rng)
    noisy_dw = mech.release(graph.degree(layer, w), rng)

    estimator = get_estimator(method, **estimator_kwargs)
    c2 = estimator.estimate(graph, layer, u, w, eps_c2, rng=rng, mode=mode).value

    return PairIngredients(
        c2_estimate=c2,
        noisy_degree_u=noisy_du,
        noisy_degree_w=noisy_dw,
        epsilon=epsilon,
        epsilon_degrees=eps_deg,
        epsilon_c2=eps_c2,
    )

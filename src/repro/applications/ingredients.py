"""Shared plumbing for applications that combine degrees with C2 estimates.

Jaccard / cosine / Dice / overlap similarity and the anomaly score all
need the same three privately released quantities for a pair: noisy
degrees of both query vertices (Laplace) and an estimated common-neighbor
count (any registered estimator). This module releases them under one
budget split so every application composes identically.

Two granularities are offered: :func:`private_pair_ingredients` runs one
per-pair protocol (the paper's query model), while
:func:`batch_pair_ingredients` answers a whole same-layer workload through
the :class:`~repro.engine.BatchQueryEngine` — each distinct vertex
releases one noisy degree and one noisy list, so the per-vertex loss is
``epsilon`` for the entire workload (parallel composition across
vertices, sequential across the two rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.core import BatchQueryEngine, workload_party
from repro.errors import PrivacyError
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.rng import RngLike, ensure_rng
from repro.privacy.sensitivity import degree_sensitivity
from repro.protocol.messages import FLOAT_BYTES, CommunicationLog, Direction
from repro.protocol.session import ExecutionMode

__all__ = [
    "PairIngredients",
    "private_pair_ingredients",
    "BatchIngredients",
    "batch_pair_ingredients",
]


@dataclass(frozen=True)
class PairIngredients:
    """Privately released per-pair quantities and their budget split."""

    c2_estimate: float
    noisy_degree_u: float
    noisy_degree_w: float
    epsilon: float
    epsilon_degrees: float
    epsilon_c2: float


def private_pair_ingredients(
    graph: BipartiteGraph,
    layer: Layer,
    u: int,
    w: int,
    epsilon: float,
    method: str = "multir-ds",
    degree_fraction: float = 0.2,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
    **estimator_kwargs,
) -> PairIngredients:
    """Release noisy degrees and a C2 estimate within one budget.

    ``degree_fraction`` of ``epsilon`` funds the two Laplace degree
    releases; the rest funds the C2 estimator. Per query vertex the
    sequential composition is ``epsilon``.
    """
    if not 0.0 < degree_fraction < 1.0:
        raise PrivacyError("degree_fraction must be in (0, 1)")
    rng = ensure_rng(rng)
    eps_deg = epsilon * degree_fraction
    eps_c2 = epsilon - eps_deg

    mech = LaplaceMechanism(eps_deg, degree_sensitivity())
    noisy_du = mech.release(graph.degree(layer, u), rng)
    noisy_dw = mech.release(graph.degree(layer, w), rng)

    estimator = get_estimator(method, **estimator_kwargs)
    c2 = estimator.estimate(graph, layer, u, w, eps_c2, rng=rng, mode=mode).value

    return PairIngredients(
        c2_estimate=c2,
        noisy_degree_u=noisy_du,
        noisy_degree_w=noisy_dw,
        epsilon=epsilon,
        epsilon_degrees=eps_deg,
        epsilon_c2=eps_c2,
    )


@dataclass(frozen=True)
class BatchIngredients:
    """Per-pair released quantities for a whole workload, in arrays."""

    pairs: tuple[QueryPair, ...]
    c2_estimates: np.ndarray
    noisy_degrees_a: np.ndarray  # per pair, endpoint `a`
    noisy_degrees_b: np.ndarray
    epsilon: float
    epsilon_degrees: float
    epsilon_c2: float
    num_query_vertices: int
    upload_bytes: int
    max_epsilon_spent: float


def batch_pair_ingredients(
    graph: BipartiteGraph,
    layer: Layer,
    pairs: Sequence[QueryPair],
    epsilon: float,
    degree_fraction: float = 0.2,
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
) -> BatchIngredients:
    """Release degrees and C2 estimates for a whole workload in two rounds.

    One shared engine batch answers every pair's C2 at
    ``epsilon * (1 - degree_fraction)`` and one bulk Laplace round releases
    every distinct vertex's degree at ``epsilon * degree_fraction``; each
    vertex is charged exactly once per round, so the whole workload costs
    every vertex ``epsilon`` regardless of how many pairs it joins.
    """
    if not 0.0 < degree_fraction < 1.0:
        raise PrivacyError("degree_fraction must be in (0, 1)")
    rng = ensure_rng(rng)
    eps_deg = epsilon * degree_fraction
    eps_c2 = epsilon - eps_deg

    ledger = PrivacyLedger(limit=epsilon)
    comm = CommunicationLog()
    engine = BatchQueryEngine(mode=mode)
    result = engine.estimate_pairs(
        graph, layer, pairs, eps_c2, rng=rng, ledger=ledger, comm=comm
    )

    mech = LaplaceMechanism(eps_deg, degree_sensitivity())
    noisy_degrees = mech.release_many(graph.degrees(layer)[result.vertices], rng)
    ledger.charge_parallel(
        workload_party(layer, result.num_query_vertices),
        eps_deg,
        "laplace-degree",
        "batch-degrees",
        count=result.num_query_vertices,
    )
    comm.record(
        Direction.UPLOAD,
        result.num_query_vertices * FLOAT_BYTES,
        "batch-degrees:reports",
    )
    ledger.assert_within(epsilon)

    return BatchIngredients(
        pairs=result.pairs,
        c2_estimates=result.values,
        noisy_degrees_a=noisy_degrees[result.ia],
        noisy_degrees_b=noisy_degrees[result.ib],
        epsilon=float(epsilon),
        epsilon_degrees=eps_deg,
        epsilon_c2=eps_c2,
        num_query_vertices=result.num_query_vertices,
        upload_bytes=comm.total_bytes(Direction.UPLOAD),
        max_epsilon_spent=ledger.max_spent(),
    )

"""User-based collaborative filtering under edge LDP.

The paper's opening example is an e-commerce user–item graph where common
items between users are sensitive. This module builds the classical
user-based recommender on top of the private primitives:

1. **Neighborhood selection** — the target's most similar users are found
   with :func:`repro.applications.similarity.top_k_similar` (by default a
   single batch-engine round in which every screened vertex is charged the
   analyst budget exactly once).
2. **Preference aggregation** — the selected neighbors' item lists pass
   through one bulk randomized-response draw; the curator de-biases each
   membership bit with ``φ = (bit - p)/(1 - 2p)`` and scores every item by
   the similarity-weighted sum of the neighbors' de-biased bits.

Per-vertex accounting: a neighbor spends its top-k comparison slice plus
``epsilon_lists`` for the one list release; the target spends its
comparison slices only (its own items never leave it — they are used
locally to exclude already-owned items).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.applications.similarity import top_k_similar, top_k_similar_served
from repro.engine.bulkrr import bulk_randomized_response
from repro.errors import PrivacyError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.mechanisms import RandomizedResponse
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving is optional)
    from repro.serving.server import QueryServer

__all__ = ["Recommendation", "recommend_items", "recommend_items_served"]


@dataclass(frozen=True)
class Recommendation:
    """One scored item."""

    item: int
    score: float


def recommend_items(
    graph: BipartiteGraph,
    layer: Layer,
    target: int,
    candidates: Sequence[int],
    epsilon_similarity: float,
    epsilon_lists: float,
    k: int = 5,
    top_items: int = 10,
    exclude_owned: bool = True,
    similarity_kind: str = "jaccard",
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
) -> list[Recommendation]:
    """Recommend opposite-layer items to ``target`` under edge LDP.

    Parameters
    ----------
    epsilon_similarity:
        Total analyst budget for the similarity search (one shared batch
        round over ``candidates`` — each vertex charged once).
    epsilon_lists:
        Budget each selected neighbor spends on its one-shot noisy list.
    k:
        Neighborhood size.
    top_items:
        Number of recommendations returned.
    exclude_owned:
        Drop items the target already has (local, free).
    """
    if epsilon_lists <= 0:
        raise PrivacyError("epsilon_lists must be positive")
    if top_items <= 0:
        raise PrivacyError("top_items must be positive")
    parent = ensure_rng(rng)

    neighbors = top_k_similar(
        graph, layer, target, candidates, k, epsilon_similarity,
        kind=similarity_kind, rng=parent, mode=mode,
    )
    return _aggregate_preferences(
        graph, layer, target, neighbors, epsilon_lists, top_items,
        exclude_owned, parent,
    )


async def recommend_items_served(
    server: "QueryServer",
    target: int,
    candidates: Sequence[int],
    epsilon_lists: float,
    k: int = 5,
    top_items: int = 10,
    exclude_owned: bool = True,
    similarity_kind: str = "jaccard",
    *,
    tenant: str | None = None,
    rng: RngLike = None,
) -> list[Recommendation]:
    """Async recommendation with the neighborhood screen served.

    The similarity phase routes through a running :class:`QueryServer`
    (coalesced ticks, epoch-cached views — screening several targets over
    overlapping candidate pools in one epoch charges each candidate
    once); the preference-aggregation phase is unchanged: each selected
    neighbor releases its item list once at ``epsilon_lists``. The server
    needs ``degree_epsilon`` for the similarity ingredients.
    """
    if epsilon_lists <= 0:
        raise PrivacyError("epsilon_lists must be positive")
    if top_items <= 0:
        raise PrivacyError("top_items must be positive")
    neighbors = await top_k_similar_served(
        server, target, candidates, k, kind=similarity_kind, tenant=tenant
    )
    return _aggregate_preferences(
        server.graph, server.layer, target, neighbors, epsilon_lists,
        top_items, exclude_owned, ensure_rng(rng),
    )


def _aggregate_preferences(
    graph: BipartiteGraph,
    layer: Layer,
    target: int,
    neighbors,
    epsilon_lists: float,
    top_items: int,
    exclude_owned: bool,
    rng: np.random.Generator,
) -> list[Recommendation]:
    """Score items by similarity-weighted de-biased noisy membership bits."""
    if not neighbors:
        # No usable neighborhood: recommending from pure noise would be
        # misleading, so return nothing rather than zero-score items.
        return []
    n_items = graph.layer_size(layer.opposite())
    scores = np.zeros(n_items)
    active = [(n, est.value) for n, est in neighbors if est.value > 0.0]
    if active:
        rr = RandomizedResponse(epsilon_lists)
        p = rr.flip_probability
        phi_zero = -p / (1.0 - 2.0 * p)
        ids = np.array([n for n, _ in active], dtype=np.int64)
        sims = np.array([s for _, s in active])
        # One bulk RR pass over every contributing neighbor, then a single
        # weighted scatter: phi(bit) = phi_zero + bit / (1 - 2p), so the
        # baseline goes to all items and the increment only where a noisy
        # bit is one.
        indptr, noisy_items = bulk_randomized_response(
            graph, layer, ids, epsilon_lists, rng
        )
        scores += phi_zero * sims.sum()
        weights = np.repeat(sims / (1.0 - 2.0 * p), np.diff(indptr))
        scores += np.bincount(noisy_items, weights=weights, minlength=n_items)

    if exclude_owned:
        scores[graph.neighbors(layer, target)] = -np.inf

    order = np.argsort(scores)[::-1][:top_items]
    return [
        Recommendation(item=int(item), score=float(scores[item]))
        for item in order
        if np.isfinite(scores[item])
    ]

"""User-based collaborative filtering under edge LDP.

The paper's opening example is an e-commerce user–item graph where common
items between users are sensitive. This module builds the classical
user-based recommender on top of the private primitives:

1. **Neighborhood selection** — the target's most similar users are found
   with :func:`repro.applications.similarity.top_k_similar` (one analyst
   budget split across the comparisons).
2. **Preference aggregation** — each selected neighbor releases its item
   list once through randomized response; the curator de-biases each
   membership bit with ``φ = (bit - p)/(1 - 2p)`` and scores every item by
   the similarity-weighted sum of the neighbors' de-biased bits.

Per-vertex accounting: a neighbor spends its top-k comparison slice plus
``epsilon_lists`` for the one list release; the target spends its
comparison slices only (its own items never leave it — they are used
locally to exclude already-owned items).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.applications.similarity import top_k_similar
from repro.errors import PrivacyError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.mechanisms import RandomizedResponse
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.protocol.session import ExecutionMode

__all__ = ["Recommendation", "recommend_items"]


@dataclass(frozen=True)
class Recommendation:
    """One scored item."""

    item: int
    score: float


def recommend_items(
    graph: BipartiteGraph,
    layer: Layer,
    target: int,
    candidates: Sequence[int],
    epsilon_similarity: float,
    epsilon_lists: float,
    k: int = 5,
    top_items: int = 10,
    exclude_owned: bool = True,
    similarity_kind: str = "jaccard",
    *,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.AUTO,
) -> list[Recommendation]:
    """Recommend opposite-layer items to ``target`` under edge LDP.

    Parameters
    ----------
    epsilon_similarity:
        Total analyst budget for the similarity search (split uniformly
        across ``candidates``).
    epsilon_lists:
        Budget each selected neighbor spends on its one-shot noisy list.
    k:
        Neighborhood size.
    top_items:
        Number of recommendations returned.
    exclude_owned:
        Drop items the target already has (local, free).
    """
    if epsilon_lists <= 0:
        raise PrivacyError("epsilon_lists must be positive")
    if top_items <= 0:
        raise PrivacyError("top_items must be positive")
    parent = ensure_rng(rng)

    neighbors = top_k_similar(
        graph, layer, target, candidates, k, epsilon_similarity,
        kind=similarity_kind, rng=parent, mode=mode,
    )
    if not neighbors:
        # No usable neighborhood: recommending from pure noise would be
        # misleading, so return nothing rather than zero-score items.
        return []
    n_items = graph.layer_size(layer.opposite())
    scores = np.zeros(n_items)
    if neighbors:
        rr = RandomizedResponse(epsilon_lists)
        p = rr.flip_probability
        phi_zero = -p / (1.0 - 2.0 * p)
        rngs = spawn_rngs(parent, len(neighbors))
        for (neighbor, estimate), child in zip(neighbors, rngs):
            similarity = max(estimate.value, 0.0)
            if similarity == 0.0:
                continue
            noisy_items = rr.perturb_neighbor_list(
                graph.neighbors(layer, neighbor), n_items, child
            )
            # phi(bit) = phi_zero + bit / (1 - 2p): add the baseline to all
            # items, then the increment only where the noisy bit is one.
            scores += similarity * phi_zero
            scores[noisy_items] += similarity / (1.0 - 2.0 * p)

    if exclude_owned:
        scores[graph.neighbors(layer, target)] = -np.inf

    order = np.argsort(scores)[::-1][:top_items]
    return [
        Recommendation(item=int(item), score=float(scores[item]))
        for item in order
        if np.isfinite(scores[item])
    ]

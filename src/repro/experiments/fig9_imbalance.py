"""Fig. 9 — robustness to query pairs with imbalanced degrees.

Pairs are sampled so that ``max(deg) > κ · min(deg)`` for κ ∈ {1, 10, 100,
1000}. Expected shape (the paper's headline robustness result): MultiR-SS
and MultiR-DS-Basic degrade as κ grows (their losses scale with the large
degree), while MultiR-DS stays nearly flat because it shifts weight to the
low-degree source and re-allocates budget accordingly.
"""

from __future__ import annotations

from repro.datasets.cache import load_dataset
from repro.errors import GraphError
from repro.experiments.report import SeriesPanel
from repro.experiments.runner import evaluate_algorithms
from repro.graph.bipartite import Layer
from repro.graph.sampling import heaviest_layer, sample_imbalanced_pairs
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode

__all__ = ["FIG9_DATASETS", "FIG9_ALGORITHMS", "DEFAULT_KAPPAS", "run_fig9"]

FIG9_DATASETS = ("TM", "BX", "DUI", "OG")
FIG9_ALGORITHMS = ("multir-ss", "multir-ds-basic", "multir-ds")
DEFAULT_KAPPAS = (1, 10, 100, 1000)


def run_fig9(
    datasets=FIG9_DATASETS,
    kappas=DEFAULT_KAPPAS,
    algorithms=FIG9_ALGORITHMS,
    epsilon: float = 2.0,
    num_pairs: int = 100,
    layer: Layer | None = None,
    rng: RngLike = 909,
    max_edges: int | None = None,
    mode: ExecutionMode = ExecutionMode.SKETCH,
) -> list[SeriesPanel]:
    """One panel per dataset: MAE against the imbalance factor κ.

    ``layer=None`` (default) hosts the workload on each dataset's
    heavier-tailed layer, which is the only layer where large κ values are
    realizable on the scaled-down analogues.
    """
    parent = ensure_rng(rng)
    panels = []
    for key in datasets:
        graph = load_dataset(key, max_edges)
        query_layer = layer if layer is not None else heaviest_layer(graph)
        panel = SeriesPanel(
            title=f"Fig. 9 — {key}: MAE vs degree imbalance (eps={epsilon:g})",
            x_label="kappa",
            x_values=[int(k) for k in kappas],
        )
        series: dict[str, list[float]] = {name: [] for name in algorithms}
        for kappa in kappas:
            try:
                pairs = sample_imbalanced_pairs(
                    graph, query_layer, num_pairs, float(kappa), rng=parent
                )
            except GraphError:
                # The graph has no pairs this imbalanced (can happen on the
                # heavily scaled-down analogues) — carry the last value.
                for name in algorithms:
                    last = series[name][-1] if series[name] else float("nan")
                    series[name].append(last)
                continue
            stats = evaluate_algorithms(graph, pairs, algorithms, epsilon, parent, mode)
            for name in algorithms:
                series[name].append(stats[name].errors.mae)
        for name, values in series.items():
            panel.add(name, values)
        panels.append(panel)
    return panels

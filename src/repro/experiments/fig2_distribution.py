"""Fig. 2 — estimate distributions on rmwiki for an imbalanced pair, ε = 1.

The paper repeats each algorithm 1000 times on one rmwiki query pair with
degrees (556, 2) and true count 2, showing Naive's heavy rightward bias,
OneR's fat-tailed but unbiased spread, and the tight MultiR-SS / MultiR-DS
distributions. This module reproduces the experiment on the synthetic
rmwiki analogue, picking the most degree-imbalanced pair available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.cache import load_dataset
from repro.estimators.registry import get_estimator
from repro.experiments.report import ascii_histogram, format_table
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.protocol.session import ExecutionMode

__all__ = ["Fig2Result", "select_imbalanced_pair", "run_fig2"]

DEFAULT_ALGORITHMS = ("naive", "oner", "multir-ss", "multir-ds")


def select_imbalanced_pair(
    graph: BipartiteGraph,
    layer: Layer,
    rng: RngLike = None,
    low_degree_target: int = 2,
    heavy_factor: float = 12.0,
) -> QueryPair:
    """Pick a (heavy, low-degree) pair sharing ≥1 common neighbor.

    Mirrors the paper's showcase pair (degrees 556 and 2, C2 = 2): the
    first vertex's degree is about ``heavy_factor`` times the layer
    average (rmwiki's 556 ≈ 12x the mean user degree) — a strong hub but
    not the absolute maximum, whose degree can rival the candidate-pool
    size on the synthetic analogues. The partner is the lowest-degree
    vertex (≥ ``low_degree_target``) that still shares a neighbor with it,
    falling back to the lowest-degree vertex overall.
    """
    rng = ensure_rng(rng)
    degrees = graph.degrees(layer)
    target = heavy_factor * max(graph.average_degree(layer), 1.0)
    heavy = int(np.argmin(np.abs(degrees.astype(float) - target)))
    order = np.argsort(degrees, kind="stable")
    fallback = None
    for candidate in order:
        candidate = int(candidate)
        if candidate == heavy or degrees[candidate] < low_degree_target:
            continue
        if fallback is None:
            fallback = candidate
        if graph.count_common_neighbors(layer, heavy, candidate) > 0:
            return QueryPair(layer, heavy, candidate)
    if fallback is None:
        for candidate in order:
            if int(candidate) != heavy:
                fallback = int(candidate)
                break
    if fallback is None:
        raise ValueError("graph has fewer than two vertices on the layer")
    return QueryPair(layer, heavy, fallback)


@dataclass
class Fig2Result:
    """Sampled estimate distributions for one query pair."""

    dataset: str
    epsilon: float
    trials: int
    pair: QueryPair
    degree_u: int
    degree_w: int
    true_count: int
    samples: dict[str, np.ndarray] = field(default_factory=dict)

    def summary_rows(self) -> list[list]:
        rows = []
        for name, values in self.samples.items():
            rows.append(
                [
                    name,
                    float(values.mean()),
                    float(values.std(ddof=1)),
                    float(values.mean() - self.true_count),
                    float(np.percentile(values, 5)),
                    float(np.percentile(values, 95)),
                ]
            )
        return rows

    def to_text(self, histogram: bool = True) -> str:
        title = (
            f"Fig. 2 — estimate distributions on {self.dataset} "
            f"(eps={self.epsilon:g}, trials={self.trials}, "
            f"deg=({self.degree_u}, {self.degree_w}), "
            f"true C2={self.true_count})"
        )
        table = format_table(
            ["algorithm", "mean", "std", "bias", "p5", "p95"],
            self.summary_rows(),
            title=title,
        )
        if not histogram:
            return table
        blocks = [table]
        for name, values in self.samples.items():
            blocks.append(ascii_histogram(values, title=f"\n{name}:"))
        return "\n".join(blocks)


def run_fig2(
    dataset: str = "RM",
    epsilon: float = 1.0,
    trials: int = 1000,
    algorithms=DEFAULT_ALGORITHMS,
    layer: Layer = Layer.UPPER,
    rng: RngLike = 2024,
    max_edges: int | None = None,
    mode: ExecutionMode = ExecutionMode.SKETCH,
) -> Fig2Result:
    """Reproduce the Fig. 2 experiment; returns per-algorithm samples."""
    graph = load_dataset(dataset, max_edges)
    parent = ensure_rng(rng)
    pair = select_imbalanced_pair(graph, layer, parent)
    result = Fig2Result(
        dataset=dataset,
        epsilon=epsilon,
        trials=trials,
        pair=pair,
        degree_u=graph.degree(layer, pair.a),
        degree_w=graph.degree(layer, pair.b),
        true_count=graph.count_common_neighbors(layer, pair.a, pair.b),
    )
    for name in algorithms:
        estimator = get_estimator(name)
        rngs = spawn_rngs(parent, trials)
        values = np.array(
            [
                estimator.estimate(
                    graph, layer, pair.a, pair.b, epsilon, rng=rngs[t], mode=mode
                ).value
                for t in range(trials)
            ]
        )
        result.samples[name] = values
    return result

"""Exporting experiment results (CSV / JSON) and loading them back.

The benchmark harness renders text tables; downstream analysis (plotting
with an external stack, regression tracking across runs) wants machine-
readable series. :class:`~repro.experiments.report.SeriesPanel` objects
round-trip losslessly through JSON and export cleanly to CSV.
"""

from __future__ import annotations

import csv
import io
import json
import os
from pathlib import Path
from typing import Iterable

from repro.experiments.report import SeriesPanel

__all__ = [
    "panel_to_csv",
    "panel_to_json",
    "panel_from_json",
    "save_panels",
    "load_panel",
]


def panel_to_csv(panel: SeriesPanel) -> str:
    """Render a panel as CSV: one row per x-value, one column per series."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([panel.x_label, *panel.series.keys()])
    for row in panel.to_rows():
        writer.writerow(row)
    return buffer.getvalue()


def panel_to_json(panel: SeriesPanel) -> str:
    """Serialize a panel (metadata + series) as a JSON document."""
    payload = {
        "title": panel.title,
        "x_label": panel.x_label,
        "y_label": panel.y_label,
        "x_values": panel.x_values,
        "series": panel.series,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def panel_from_json(text: str) -> SeriesPanel:
    """Inverse of :func:`panel_to_json`."""
    payload = json.loads(text)
    panel = SeriesPanel(
        title=payload["title"],
        x_label=payload["x_label"],
        x_values=payload["x_values"],
        y_label=payload.get("y_label", "mean absolute error"),
    )
    for name, values in payload["series"].items():
        panel.add(name, values)
    return panel


def save_panels(
    panels: Iterable[SeriesPanel],
    directory: str | os.PathLike,
    stem: str,
    formats: tuple[str, ...] = ("json", "csv", "txt"),
) -> list[Path]:
    """Write each panel under ``directory`` as ``<stem>_<i>.<fmt>``.

    Returns the written paths in order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    renderers = {
        "json": panel_to_json,
        "csv": panel_to_csv,
        "txt": lambda p: p.to_text() + "\n",
    }
    for fmt in formats:
        if fmt not in renderers:
            raise ValueError(f"unknown format {fmt!r}; choose from {sorted(renderers)}")
    for i, panel in enumerate(panels):
        for fmt in formats:
            path = directory / f"{stem}_{i}.{fmt}"
            path.write_text(renderers[fmt](panel), encoding="utf-8")
            written.append(path)
    return written


def load_panel(path: str | os.PathLike) -> SeriesPanel:
    """Load a panel previously saved as JSON."""
    return panel_from_json(Path(path).read_text(encoding="utf-8"))

"""Fig. 10 — communication cost (MB per query) as ε varies.

Byte accounting comes straight from the protocol log: noisy-edge uploads
and downloads at 8 bytes per id, degree reports and estimator releases at
8 bytes per scalar. Expected shape: Naive ≈ OneR (same RR round, full
budget); MultiR-SS above them (extra download, denser lists at ε1 = ε/2);
MultiR-DS highest (degree round + both directions); every curve falls as
ε grows because noisy lists get sparser.
"""

from __future__ import annotations

from repro.datasets.cache import load_dataset
from repro.experiments.report import SeriesPanel
from repro.experiments.runner import evaluate_algorithms
from repro.graph.bipartite import Layer
from repro.graph.sampling import sample_query_pairs
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode

__all__ = ["FIG10_DATASETS", "FIG10_ALGORITHMS", "run_fig10"]

FIG10_DATASETS = ("WC", "ER", "DUI", "OG")
FIG10_ALGORITHMS = ("naive", "oner", "multir-ss", "multir-ds")
DEFAULT_EPSILONS = (1.0, 1.5, 2.0, 2.5, 3.0)


def run_fig10(
    datasets=FIG10_DATASETS,
    epsilons=DEFAULT_EPSILONS,
    algorithms=FIG10_ALGORITHMS,
    num_pairs: int = 20,
    layer: Layer = Layer.UPPER,
    rng: RngLike = 1010,
    max_edges: int | None = None,
    mode: ExecutionMode = ExecutionMode.SKETCH,
) -> list[SeriesPanel]:
    """One panel per dataset: mean MB per query against ε."""
    parent = ensure_rng(rng)
    panels = []
    for key in datasets:
        graph = load_dataset(key, max_edges)
        pairs = sample_query_pairs(graph, layer, num_pairs, rng=parent)
        panel = SeriesPanel(
            title=f"Fig. 10 — {key}: communication cost vs eps",
            x_label="eps",
            x_values=[float(e) for e in epsilons],
            y_label="MB per query",
        )
        series: dict[str, list[float]] = {name: [] for name in algorithms}
        for epsilon in epsilons:
            stats = evaluate_algorithms(
                graph, pairs, algorithms, float(epsilon), parent, mode
            )
            for name in algorithms:
                series[name].append(stats[name].mean_comm_megabytes)
        for name, values in series.items():
            panel.add(name, values)
        panels.append(panel)
    return panels

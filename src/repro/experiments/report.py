"""Plain-text rendering of experiment results.

The environment has no plotting stack, so every figure is rendered as an
aligned text table (one row per x-value, one column per algorithm) plus,
for distribution figures, an ASCII histogram. The same structures feed the
benchmark assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = ["format_value", "format_table", "SeriesPanel", "ascii_histogram"]


def format_value(value: Any, precision: int = 4) -> str:
    """Human-friendly rendering of one table cell."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an aligned monospace table."""
    rendered = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_line(row) for row in rendered)
    return "\n".join(lines)


@dataclass
class SeriesPanel:
    """One figure panel: y-series per algorithm over a shared x-axis."""

    title: str
    x_label: str
    x_values: list[Any]
    series: dict[str, list[float]] = field(default_factory=dict)
    y_label: str = "mean absolute error"

    def add(self, name: str, values: Sequence[float]) -> None:
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(self.x_values)}"
            )
        self.series[name] = values

    def value(self, name: str, x: Any) -> float:
        """The y-value of series ``name`` at x-value ``x``."""
        return self.series[name][self.x_values.index(x)]

    def to_rows(self) -> list[list[Any]]:
        names = list(self.series)
        return [
            [x] + [self.series[name][i] for name in names]
            for i, x in enumerate(self.x_values)
        ]

    def to_text(self, precision: int = 4) -> str:
        headers = [self.x_label] + list(self.series)
        return format_table(
            headers, self.to_rows(), title=f"{self.title}  ({self.y_label})",
            precision=precision,
        )


def ascii_histogram(
    samples: np.ndarray,
    bins: int = 30,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Monospace histogram used for the Fig. 2 distribution plot."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return "(no samples)"
    counts, edges = np.histogram(samples, bins=bins)
    top = counts.max() if counts.max() else 1
    lines = []
    if title:
        lines.append(title)
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / top))
        lines.append(f"{edges[i]:>12.2f} .. {edges[i + 1]:>12.2f} | {bar}")
    return "\n".join(lines)

"""Generic evaluation loop shared by all figure reproductions.

Given a graph, a workload of query pairs, and a set of estimators,
:func:`evaluate_algorithms` executes every (estimator, pair) combination,
timing each call and aggregating error, latency and communication into
:class:`AlgorithmStats` — the cell of every figure in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.metrics import ErrorSummary, summarize_errors
from repro.estimators.base import CommonNeighborEstimator
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import BipartiteGraph
from repro.graph.sampling import QueryPair
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.protocol.session import ExecutionMode

__all__ = ["AlgorithmStats", "resolve_estimators", "evaluate_algorithms"]


@dataclass(frozen=True)
class AlgorithmStats:
    """Aggregated behaviour of one algorithm over a query workload."""

    algorithm: str
    errors: ErrorSummary
    mean_seconds: float
    mean_comm_bytes: float

    @property
    def mean_comm_megabytes(self) -> float:
        return self.mean_comm_bytes / 1e6


def resolve_estimators(
    specs: Iterable[str | CommonNeighborEstimator],
) -> dict[str, CommonNeighborEstimator]:
    """Turn a mix of names and instances into an ordered name → instance map."""
    out: dict[str, CommonNeighborEstimator] = {}
    for spec in specs:
        estimator = get_estimator(spec) if isinstance(spec, str) else spec
        out[estimator.name] = estimator
    return out


def evaluate_algorithms(
    graph: BipartiteGraph,
    pairs: Sequence[QueryPair],
    estimators: Iterable[str | CommonNeighborEstimator],
    epsilon: float,
    rng: RngLike = None,
    mode: ExecutionMode = ExecutionMode.SKETCH,
) -> dict[str, AlgorithmStats]:
    """Run every estimator on every pair; aggregate per algorithm.

    Each (algorithm, pair) run receives an independent child RNG so
    algorithms see identical workloads but independent noise.
    """
    if not pairs:
        raise ValueError("need at least one query pair")
    resolved = resolve_estimators(estimators)
    parent = ensure_rng(rng)
    true_counts = np.array(
        [graph.count_common_neighbors(p.layer, p.a, p.b) for p in pairs],
        dtype=np.float64,
    )

    stats: dict[str, AlgorithmStats] = {}
    for name, estimator in resolved.items():
        child_rngs = spawn_rngs(parent, len(pairs))
        values = np.empty(len(pairs), dtype=np.float64)
        comm = np.zeros(len(pairs), dtype=np.float64)
        started = time.perf_counter()
        for i, pair in enumerate(pairs):
            result = estimator.estimate(
                graph, pair.layer, pair.a, pair.b, epsilon,
                rng=child_rngs[i], mode=mode,
            )
            values[i] = result.value
            comm[i] = result.communication_bytes
        elapsed = time.perf_counter() - started
        stats[name] = AlgorithmStats(
            algorithm=name,
            errors=summarize_errors(true_counts, values),
            mean_seconds=elapsed / len(pairs),
            mean_comm_bytes=float(comm.mean()),
        )
    return stats

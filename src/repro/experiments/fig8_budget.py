"""Fig. 8 — effectiveness of the privacy-budget allocation optimization.

MultiR-DS-Basic is run with fixed splits ε1 ∈ {0.1ε, 0.3ε, 0.5ε, 0.7ε};
MultiR-DS (which optimizes ε1 and α per query from noisy degrees) is drawn
as a horizontal reference. The paper's finding: no fixed split wins
everywhere, and MultiR-DS tracks (or beats) the best fixed split on every
dataset.
"""

from __future__ import annotations

from repro.datasets.cache import load_dataset
from repro.estimators.multir_ds import MultiRoundDoubleSource, MultiRoundDoubleSourceBasic
from repro.experiments.report import SeriesPanel
from repro.experiments.runner import evaluate_algorithms
from repro.graph.bipartite import Layer
from repro.graph.sampling import sample_query_pairs
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode

__all__ = ["FIG8_DATASETS", "DEFAULT_FRACTIONS", "run_fig8"]

FIG8_DATASETS = ("TM", "BX", "DUI", "OG")
DEFAULT_FRACTIONS = (0.1, 0.3, 0.5, 0.7)


def run_fig8(
    datasets=FIG8_DATASETS,
    fractions=DEFAULT_FRACTIONS,
    epsilon: float = 2.0,
    num_pairs: int = 100,
    layer: Layer = Layer.UPPER,
    rng: RngLike = 808,
    max_edges: int | None = None,
    mode: ExecutionMode = ExecutionMode.SKETCH,
) -> list[SeriesPanel]:
    """One panel per dataset: DS-Basic MAE per fixed ε1 vs MultiR-DS."""
    parent = ensure_rng(rng)
    panels = []
    for key in datasets:
        graph = load_dataset(key, max_edges)
        pairs = sample_query_pairs(graph, layer, num_pairs, rng=parent)
        panel = SeriesPanel(
            title=f"Fig. 8 — {key}: budget allocation (eps={epsilon:g})",
            x_label="eps1 / eps",
            x_values=[float(f) for f in fractions],
        )
        basic_mae = []
        for fraction in fractions:
            estimator = MultiRoundDoubleSourceBasic(graph_fraction=float(fraction))
            stats = evaluate_algorithms(
                graph, pairs, [estimator], epsilon, parent, mode
            )
            basic_mae.append(stats[estimator.name].errors.mae)
        panel.add("multir-ds-basic", basic_mae)

        ds_stats = evaluate_algorithms(
            graph, pairs, [MultiRoundDoubleSource()], epsilon, parent, mode
        )
        ds_mae = ds_stats["multir-ds"].errors.mae
        panel.add("multir-ds (optimized)", [ds_mae] * len(basic_mae))
        panels.append(panel)
    return panels

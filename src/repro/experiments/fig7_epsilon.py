"""Fig. 7 — effect of the privacy budget ε on estimation error.

One panel per dataset (the paper shows the eight largest datasets);
ε sweeps {1, 1.5, 2, 2.5, 3}. Expected shape: every curve falls as ε
grows; MultiR algorithms sit orders of magnitude below OneR, which sits
below Naive; CentralDP is the lower envelope.
"""

from __future__ import annotations

from repro.datasets.cache import load_dataset
from repro.experiments.report import SeriesPanel
from repro.experiments.runner import evaluate_algorithms
from repro.graph.bipartite import Layer
from repro.graph.sampling import sample_query_pairs
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode

__all__ = ["FIG7_DATASETS", "FIG7_ALGORITHMS", "run_fig7"]

FIG7_DATASETS = ("SO", "TM", "WC", "ML", "ER", "NX", "DUI", "OG")
FIG7_ALGORITHMS = ("naive", "oner", "multir-ss", "multir-ds", "central-dp")
DEFAULT_EPSILONS = (1.0, 1.5, 2.0, 2.5, 3.0)


def run_fig7(
    datasets=FIG7_DATASETS,
    epsilons=DEFAULT_EPSILONS,
    algorithms=FIG7_ALGORITHMS,
    num_pairs: int = 100,
    layer: Layer = Layer.UPPER,
    rng: RngLike = 707,
    max_edges: int | None = None,
    mode: ExecutionMode = ExecutionMode.SKETCH,
) -> list[SeriesPanel]:
    """One MAE-vs-ε panel per dataset."""
    parent = ensure_rng(rng)
    panels = []
    for key in datasets:
        graph = load_dataset(key, max_edges)
        pairs = sample_query_pairs(graph, layer, num_pairs, rng=parent)
        panel = SeriesPanel(
            title=f"Fig. 7 — {key}: mean absolute error vs eps",
            x_label="eps",
            x_values=[float(e) for e in epsilons],
        )
        series: dict[str, list[float]] = {name: [] for name in algorithms}
        for epsilon in epsilons:
            stats = evaluate_algorithms(
                graph, pairs, algorithms, float(epsilon), parent, mode
            )
            for name in algorithms:
                series[name].append(stats[name].errors.mae)
        for name, values in series.items():
            panel.add(name, values)
        panels.append(panel)
    return panels

"""Fig. 11 — effect of the number of vertices (vertex-sampled subgraphs).

Each dataset is uniformly subsampled to 20%…100% of its vertices and the
error experiment repeats on the induced subgraphs. Expected shape: Naive
and OneR degrade as the graph grows (their losses carry n1² / n1 factors);
MultiR-SS, MultiR-DS and CentralDP stay flat (degree-only dependence).
"""

from __future__ import annotations

from repro.datasets.cache import load_dataset
from repro.experiments.report import SeriesPanel
from repro.experiments.runner import evaluate_algorithms
from repro.graph.bipartite import Layer
from repro.graph.sampling import sample_query_pairs, sample_vertex_fraction
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode

__all__ = ["FIG11_DATASETS", "FIG11_ALGORITHMS", "run_fig11"]

FIG11_DATASETS = ("WC", "ER", "DUI", "OG")
FIG11_ALGORITHMS = ("naive", "oner", "multir-ss", "multir-ds", "central-dp")
DEFAULT_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def run_fig11(
    datasets=FIG11_DATASETS,
    fractions=DEFAULT_FRACTIONS,
    algorithms=FIG11_ALGORITHMS,
    epsilon: float = 2.0,
    num_pairs: int = 100,
    layer: Layer = Layer.UPPER,
    rng: RngLike = 1111,
    max_edges: int | None = None,
    mode: ExecutionMode = ExecutionMode.SKETCH,
) -> list[SeriesPanel]:
    """One panel per dataset: MAE against the vertex-sample fraction."""
    parent = ensure_rng(rng)
    panels = []
    for key in datasets:
        full = load_dataset(key, max_edges)
        panel = SeriesPanel(
            title=f"Fig. 11 — {key}: MAE vs vertex fraction (eps={epsilon:g})",
            x_label="fraction of |V|",
            x_values=[float(f) for f in fractions],
        )
        series: dict[str, list[float]] = {name: [] for name in algorithms}
        for fraction in fractions:
            graph = sample_vertex_fraction(full, float(fraction), rng=parent)
            pairs = sample_query_pairs(graph, layer, num_pairs, rng=parent)
            stats = evaluate_algorithms(graph, pairs, algorithms, epsilon, parent, mode)
            for name in algorithms:
                series[name].append(stats[name].errors.mae)
        for name, values in series.items():
            panel.add(name, values)
        panels.append(panel)
    return panels

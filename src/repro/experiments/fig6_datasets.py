"""Fig. 6 — accuracy (a) and computational time (b) across all datasets.

Fig. 6(a): mean absolute error of every algorithm over 100 uniform query
pairs per dataset at ε = 2, with CentralDP as the utility upper bound.
Fig. 6(b): per-query wall-clock time; run in ``materialize`` mode so the
measured costs reflect the paper's complexities (the O(n1) noisy-graph
round for Naive/OneR/MultiR-SS, plus the O(n2) degree round that makes
MultiR-DS the slowest, with MultiR-DS* in between).
"""

from __future__ import annotations

from repro.datasets.cache import load_dataset
from repro.datasets.registry import dataset_keys
from repro.experiments.report import SeriesPanel
from repro.experiments.runner import evaluate_algorithms
from repro.graph.bipartite import Layer
from repro.graph.sampling import sample_query_pairs
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode

__all__ = ["ACCURACY_ALGORITHMS", "TIME_ALGORITHMS", "run_fig6a", "run_fig6b"]

ACCURACY_ALGORITHMS = (
    "naive",
    "oner",
    "multir-ss",
    "multir-ds",
    "multir-ds-star",
    "central-dp",
)
TIME_ALGORITHMS = ("naive", "oner", "multir-ss", "multir-ds", "multir-ds-star")


_METRICS = ("mae", "mre", "l2")


def _workload(graph, layer, num_pairs, rng):
    return sample_query_pairs(graph, layer, num_pairs, rng=rng)


def _metric_value(summary, metric: str) -> float:
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    return getattr(summary, metric)


def run_fig6a(
    datasets: list[str] | None = None,
    epsilon: float = 2.0,
    num_pairs: int = 100,
    layer: Layer = Layer.UPPER,
    rng: RngLike = 606,
    max_edges: int | None = None,
    mode: ExecutionMode = ExecutionMode.SKETCH,
    algorithms=ACCURACY_ALGORITHMS,
    metric: str = "mae",
) -> SeriesPanel:
    """Error per dataset (Fig. 6a).

    ``metric`` selects the reported error: ``"mae"`` (the figure's axis),
    ``"mre"`` (mean relative error, quoted in the paper's contribution
    list) or ``"l2"`` (the quantity the theory bounds).
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    keys = list(datasets or dataset_keys())
    parent = ensure_rng(rng)
    label = {"mae": "mean absolute error", "mre": "mean relative error",
             "l2": "empirical L2 loss"}[metric]
    panel = SeriesPanel(
        title=f"Fig. 6(a) — {label} per dataset (eps={epsilon:g})",
        x_label="dataset",
        x_values=keys,
        y_label=label,
    )
    series: dict[str, list[float]] = {name: [] for name in algorithms}
    for key in keys:
        graph = load_dataset(key, max_edges)
        pairs = _workload(graph, layer, num_pairs, parent)
        stats = evaluate_algorithms(graph, pairs, algorithms, epsilon, parent, mode)
        for name in algorithms:
            series[name].append(_metric_value(stats[name].errors, metric))
    for name, values in series.items():
        panel.add(name, values)
    return panel


def run_fig6b(
    datasets: list[str] | None = None,
    epsilon: float = 2.0,
    num_pairs: int = 5,
    layer: Layer = Layer.UPPER,
    rng: RngLike = 607,
    max_edges: int | None = None,
    algorithms=TIME_ALGORITHMS,
) -> SeriesPanel:
    """Per-query wall-clock seconds per dataset (Fig. 6b, materialize mode)."""
    keys = list(datasets or dataset_keys())
    parent = ensure_rng(rng)
    panel = SeriesPanel(
        title=f"Fig. 6(b) — time per query in seconds (eps={epsilon:g})",
        x_label="dataset",
        x_values=keys,
        y_label="seconds per query",
    )
    series: dict[str, list[float]] = {name: [] for name in algorithms}
    for key in keys:
        graph = load_dataset(key, max_edges)
        pairs = _workload(graph, layer, num_pairs, parent)
        stats = evaluate_algorithms(
            graph, pairs, algorithms, epsilon, parent, ExecutionMode.MATERIALIZE
        )
        for name in algorithms:
            series[name].append(stats[name].mean_seconds)
    for name, values in series.items():
        panel.add(name, values)
    return panel

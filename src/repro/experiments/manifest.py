"""Run manifests — reproducibility metadata for experiment outputs.

A manifest records everything needed to regenerate a result: library
version, dataset key and realized scale, query workload, privacy budget,
seed, execution mode and algorithm list. Panels saved together with their
manifest can be re-run bit-for-bit (all randomness in the library flows
from the recorded seed).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ReproError

__all__ = ["RunManifest", "save_manifest", "load_manifest"]

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RunManifest:
    """Reproducibility record for one experiment run."""

    experiment: str
    seed: int | None
    epsilon: float
    num_pairs: int
    datasets: tuple[str, ...]
    algorithms: tuple[str, ...]
    max_edges: int | None = None
    mode: str = "sketch"
    workload: str = "uniform"
    library_version: str = ""
    extra: dict = field(default_factory=dict)

    def to_json(self) -> str:
        payload = asdict(self)
        payload["schema_version"] = _SCHEMA_VERSION
        payload["datasets"] = list(self.datasets)
        payload["algorithms"] = list(self.algorithms)
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        payload = json.loads(text)
        version = payload.pop("schema_version", None)
        if version != _SCHEMA_VERSION:
            raise ReproError(
                f"unsupported manifest schema version {version!r} "
                f"(expected {_SCHEMA_VERSION})"
            )
        payload["datasets"] = tuple(payload.get("datasets", ()))
        payload["algorithms"] = tuple(payload.get("algorithms", ()))
        return cls(**payload)

    @classmethod
    def capture(
        cls,
        experiment: str,
        *,
        seed: int | None,
        epsilon: float,
        num_pairs: int,
        datasets,
        algorithms,
        max_edges: int | None = None,
        mode: str = "sketch",
        workload: str = "uniform",
        **extra,
    ) -> "RunManifest":
        """Build a manifest, stamping the installed library version."""
        import repro

        return cls(
            experiment=experiment,
            seed=seed,
            epsilon=float(epsilon),
            num_pairs=int(num_pairs),
            datasets=tuple(datasets),
            algorithms=tuple(algorithms),
            max_edges=max_edges,
            mode=mode,
            workload=workload,
            library_version=repro.__version__,
            extra=dict(extra),
        )


def save_manifest(manifest: RunManifest, path: str | os.PathLike) -> Path:
    """Write a manifest next to its results; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(manifest.to_json(), encoding="utf-8")
    return path


def load_manifest(path: str | os.PathLike) -> RunManifest:
    """Load a manifest previously written by :func:`save_manifest`."""
    return RunManifest.from_json(Path(path).read_text(encoding="utf-8"))

"""Named query-workload builders.

The paper's evaluation uses two workloads (uniform pairs and κ-imbalanced
pairs); extensions and ablations benefit from more refined ones. Each
builder returns a list of :class:`QueryPair` and is registered by name so
experiments can be parameterized with a string.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ReproError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import (
    QueryPair,
    sample_imbalanced_pairs,
    sample_query_pairs,
)
from repro.privacy.rng import RngLike, ensure_rng

__all__ = [
    "WORKLOADS",
    "build_workload",
    "uniform_workload",
    "imbalanced_workload",
    "hub_workload",
    "overlapping_workload",
    "stratified_by_overlap",
]


def uniform_workload(
    graph: BipartiteGraph,
    layer: Layer,
    count: int,
    rng: RngLike = None,
    **_: object,
) -> list[QueryPair]:
    """The paper's default: uniform same-layer pairs."""
    return sample_query_pairs(graph, layer, count, rng=rng)


def imbalanced_workload(
    graph: BipartiteGraph,
    layer: Layer,
    count: int,
    rng: RngLike = None,
    kappa: float = 100.0,
    **_: object,
) -> list[QueryPair]:
    """Fig. 9's workload: degree ratio above ``kappa``."""
    return sample_imbalanced_pairs(graph, layer, count, kappa, rng=rng)


def hub_workload(
    graph: BipartiteGraph,
    layer: Layer,
    count: int,
    rng: RngLike = None,
    pool_fraction: float = 0.02,
    **_: object,
) -> list[QueryPair]:
    """Pairs among the layer's heaviest vertices (worst case for SS/DS)."""
    rng = ensure_rng(rng)
    degrees = graph.degrees(layer)
    pool_size = max(2, int(degrees.size * pool_fraction))
    hubs = np.argsort(degrees)[-pool_size:]
    pairs: list[QueryPair] = []
    while len(pairs) < count:
        a, b = rng.choice(hubs, size=2, replace=False)
        pairs.append(QueryPair(layer, int(a), int(b)))
    return pairs


def overlapping_workload(
    graph: BipartiteGraph,
    layer: Layer,
    count: int,
    rng: RngLike = None,
    min_overlap: int = 1,
    max_attempts: int = 200_000,
    **_: object,
) -> list[QueryPair]:
    """Pairs guaranteed to share at least ``min_overlap`` neighbors.

    Sampled by picking a random wedge center on the opposite layer and two
    of its neighbors, then verifying the overlap — cheap and exact.
    """
    rng = ensure_rng(rng)
    opposite = layer.opposite()
    centers = np.flatnonzero(graph.degrees(opposite) >= 2)
    if centers.size == 0:
        raise ReproError("graph has no wedges on the requested layer")
    pairs: list[QueryPair] = []
    attempts = 0
    while len(pairs) < count:
        attempts += 1
        if attempts > max_attempts:
            raise ReproError(
                f"could not find {count} pairs with overlap >= {min_overlap}"
            )
        center = int(rng.choice(centers))
        endpoints = graph.neighbors(opposite, center)
        a, b = rng.choice(endpoints, size=2, replace=False)
        if graph.count_common_neighbors(layer, int(a), int(b)) >= min_overlap:
            pairs.append(QueryPair(layer, int(a), int(b)))
    return pairs


def stratified_by_overlap(
    graph: BipartiteGraph,
    layer: Layer,
    count: int,
    rng: RngLike = None,
    thresholds: Sequence[int] = (0, 1, 5),
    max_attempts: int = 500_000,
    **_: object,
) -> dict[int, list[QueryPair]]:
    """``count`` pairs per stratum of true overlap (``C2 >= threshold``).

    Returns a mapping ``threshold -> pairs`` used by the extended
    error-vs-overlap experiment.
    """
    rng = ensure_rng(rng)
    strata: dict[int, list[QueryPair]] = {int(t): [] for t in thresholds}
    ordered = sorted(strata, reverse=True)
    attempts = 0
    while any(len(v) < count for v in strata.values()):
        attempts += 1
        if attempts > max_attempts:
            raise ReproError("could not fill all overlap strata")
        if attempts % 3 == 0 or max(ordered) == 0:
            candidates = sample_query_pairs(graph, layer, 1, rng=rng)
        else:
            try:
                candidates = overlapping_workload(
                    graph, layer, 1, rng=rng, max_attempts=1000
                )
            except ReproError:
                candidates = sample_query_pairs(graph, layer, 1, rng=rng)
        pair = candidates[0]
        c2 = graph.count_common_neighbors(layer, pair.a, pair.b)
        for threshold in ordered:
            if c2 >= threshold and len(strata[threshold]) < count:
                strata[threshold].append(pair)
                break
    return strata


WORKLOADS: dict[str, Callable[..., list[QueryPair]]] = {
    "uniform": uniform_workload,
    "imbalanced": imbalanced_workload,
    "hubs": hub_workload,
    "overlapping": overlapping_workload,
}


def build_workload(
    name: str,
    graph: BipartiteGraph,
    layer: Layer,
    count: int,
    rng: RngLike = None,
    **kwargs,
) -> list[QueryPair]:
    """Build a registered workload by name."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ReproError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}"
        ) from None
    return builder(graph, layer, count, rng=rng, **kwargs)

"""Run-everything orchestrator for the paper's evaluation.

:func:`run_experiment` executes one named table/figure and returns its
panels and rendered text (the CLI's ``experiment`` subcommand delegates
here); :func:`run_all` sweeps every experiment and writes a combined
markdown report plus machine-readable series per figure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.experiments.export import save_panels
from repro.experiments.fig2_distribution import run_fig2
from repro.experiments.fig5_loss_landscape import run_fig5
from repro.experiments.fig6_datasets import run_fig6a, run_fig6b
from repro.experiments.fig7_epsilon import run_fig7
from repro.experiments.fig8_budget import run_fig8
from repro.experiments.fig9_imbalance import run_fig9
from repro.experiments.fig10_communication import run_fig10
from repro.experiments.fig11_scalability import run_fig11
from repro.experiments.report import SeriesPanel
from repro.experiments.table2_datasets import run_table2, table2_text
from repro.experiments.table3_summary import run_table3

__all__ = ["EXPERIMENT_NAMES", "ExperimentOutput", "run_experiment", "run_all"]

EXPERIMENT_NAMES = (
    "fig2",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table2",
    "table3",
)


@dataclass
class ExperimentOutput:
    """Rendered text plus (optionally) exportable panels."""

    name: str
    text: str
    panels: list[SeriesPanel] = field(default_factory=list)


def run_experiment(
    name: str,
    quick: bool = False,
    seed: int | None = None,
) -> ExperimentOutput:
    """Execute one table/figure reproduction by name."""
    if name not in EXPERIMENT_NAMES:
        raise ReproError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENT_NAMES)}"
        )
    pairs = 20 if quick else 100
    trials = 200 if quick else 1000

    def _kw(**extra):
        base = dict(extra)
        if seed is not None:
            base["rng"] = seed
        return base

    panels: list[SeriesPanel] = []
    text: str
    if name == "fig2":
        text = run_fig2(**_kw(trials=trials)).to_text()
    elif name == "fig5":
        fig5 = run_fig5()
        panels = [p.panel for p in fig5]
        text = "\n\n".join(p.to_text() for p in fig5)
    elif name == "fig6a":
        panels = [run_fig6a(**_kw(num_pairs=pairs))]
        text = panels[0].to_text()
    elif name == "fig6b":
        panels = [run_fig6b(**_kw(num_pairs=2 if quick else 5))]
        text = panels[0].to_text()
    elif name == "fig7":
        panels = run_fig7(**_kw(num_pairs=pairs))
        text = "\n\n".join(p.to_text() for p in panels)
    elif name == "fig8":
        panels = run_fig8(**_kw(num_pairs=pairs))
        text = "\n\n".join(p.to_text() for p in panels)
    elif name == "fig9":
        panels = run_fig9(**_kw(num_pairs=pairs))
        text = "\n\n".join(p.to_text() for p in panels)
    elif name == "fig10":
        panels = run_fig10(**_kw(num_pairs=5 if quick else 20))
        text = "\n\n".join(p.to_text() for p in panels)
    elif name == "fig11":
        panels = run_fig11(**_kw(num_pairs=pairs))
        text = "\n\n".join(p.to_text() for p in panels)
    elif name == "table2":
        text = table2_text(run_table2())
    else:  # table3
        text = run_table3(trials=500 if quick else 4000).to_text()
    return ExperimentOutput(name=name, text=text, panels=panels)


def run_all(
    out_dir: str | os.PathLike | None = None,
    quick: bool = True,
    seed: int | None = None,
    names: tuple[str, ...] = EXPERIMENT_NAMES,
) -> list[ExperimentOutput]:
    """Run every experiment; optionally persist a combined report.

    When ``out_dir`` is given, writes ``REPORT.md`` (all rendered text)
    plus per-figure JSON/CSV series.
    """
    outputs = [run_experiment(name, quick=quick, seed=seed) for name in names]
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        sections = ["# Reproduction report\n"]
        for output in outputs:
            sections.append(f"## {output.name}\n\n```\n{output.text}\n```\n")
            if output.panels:
                save_panels(output.panels, out_dir, stem=output.name)
        (out_dir / "REPORT.md").write_text("\n".join(sections), encoding="utf-8")
    return outputs

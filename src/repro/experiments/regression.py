"""Regression comparison between saved experiment results.

Experiments are stochastic, so "did anything change?" needs tolerances:
:func:`compare_panels` diffs two :class:`SeriesPanel` objects point by
point and reports deviations beyond a relative tolerance;
:func:`compare_result_dirs` does the same for two directories of exported
JSON panels (as written by :func:`repro.experiments.export.save_panels`),
which is what a CI job tracks across library versions.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.experiments.export import load_panel
from repro.experiments.report import SeriesPanel

__all__ = ["Deviation", "compare_panels", "compare_result_dirs"]


@dataclass(frozen=True)
class Deviation:
    """One point where two results disagree beyond tolerance."""

    panel: str
    series: str
    x_value: object
    baseline: float
    candidate: float

    @property
    def relative_change(self) -> float:
        denom = max(abs(self.baseline), 1e-12)
        return (self.candidate - self.baseline) / denom

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.panel} / {self.series} @ {self.x_value}: "
            f"{self.baseline:.4g} -> {self.candidate:.4g} "
            f"({self.relative_change:+.1%})"
        )


def compare_panels(
    baseline: SeriesPanel,
    candidate: SeriesPanel,
    rel_tol: float = 0.25,
    abs_tol: float = 1e-9,
) -> list[Deviation]:
    """Point-wise comparison; returns the deviations beyond tolerance.

    Structural mismatches (different x-axes or series sets) raise
    :class:`ReproError` — those are schema changes, not regressions.
    """
    if baseline.x_values != candidate.x_values:
        raise ReproError(
            f"x-axis mismatch in {baseline.title!r}: "
            f"{baseline.x_values} vs {candidate.x_values}"
        )
    if set(baseline.series) != set(candidate.series):
        raise ReproError(
            f"series mismatch in {baseline.title!r}: "
            f"{sorted(baseline.series)} vs {sorted(candidate.series)}"
        )
    deviations = []
    for name, base_values in baseline.series.items():
        cand_values = candidate.series[name]
        for x, base, cand in zip(baseline.x_values, base_values, cand_values):
            if math.isnan(base) and math.isnan(cand):
                continue
            if not math.isclose(base, cand, rel_tol=rel_tol, abs_tol=abs_tol):
                deviations.append(
                    Deviation(baseline.title, name, x, float(base), float(cand))
                )
    return deviations


def compare_result_dirs(
    baseline_dir: str | os.PathLike,
    candidate_dir: str | os.PathLike,
    rel_tol: float = 0.25,
) -> list[Deviation]:
    """Compare every JSON panel present in both directories (by filename).

    Panels present on only one side raise :class:`ReproError` (a missing
    experiment is a harness problem, not a numeric drift).
    """
    baseline_dir = Path(baseline_dir)
    candidate_dir = Path(candidate_dir)
    base_files = {p.name: p for p in baseline_dir.glob("*.json")}
    cand_files = {p.name: p for p in candidate_dir.glob("*.json")}
    if not base_files:
        raise ReproError(f"no JSON panels under {baseline_dir}")
    missing = sorted(set(base_files) ^ set(cand_files))
    if missing:
        raise ReproError(f"panels present on only one side: {missing}")

    deviations: list[Deviation] = []
    for name in sorted(base_files):
        deviations.extend(
            compare_panels(
                load_panel(base_files[name]),
                load_panel(cand_files[name]),
                rel_tol=rel_tol,
            )
        )
    return deviations

"""Experiment harness: one module per table/figure of the paper."""

from repro.experiments.fig2_distribution import (
    Fig2Result,
    run_fig2,
    select_imbalanced_pair,
)
from repro.experiments.fig5_loss_landscape import Fig5Panel, run_fig5
from repro.experiments.fig6_datasets import run_fig6a, run_fig6b
from repro.experiments.fig7_epsilon import run_fig7
from repro.experiments.fig8_budget import run_fig8
from repro.experiments.fig9_imbalance import run_fig9
from repro.experiments.fig10_communication import run_fig10
from repro.experiments.fig11_scalability import run_fig11
from repro.experiments.export import (
    load_panel,
    panel_from_json,
    panel_to_csv,
    panel_to_json,
    save_panels,
)
from repro.experiments.ext_overlap import run_ext_overlap
from repro.experiments.manifest import RunManifest, load_manifest, save_manifest
from repro.experiments.regression import (
    Deviation,
    compare_panels,
    compare_result_dirs,
)
from repro.experiments.report import SeriesPanel, ascii_histogram, format_table
from repro.experiments.workloads import WORKLOADS, build_workload
from repro.experiments.suite import (
    EXPERIMENT_NAMES,
    ExperimentOutput,
    run_all,
    run_experiment,
)
from repro.experiments.runner import (
    AlgorithmStats,
    evaluate_algorithms,
    resolve_estimators,
)
from repro.experiments.table2_datasets import Table2Row, run_table2, table2_text
from repro.experiments.table3_summary import Table3Result, Table3Row, run_table3

__all__ = [
    "Fig2Result",
    "run_fig2",
    "select_imbalanced_pair",
    "Fig5Panel",
    "run_fig5",
    "run_fig6a",
    "run_fig6b",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_ext_overlap",
    "RunManifest",
    "load_manifest",
    "save_manifest",
    "WORKLOADS",
    "build_workload",
    "Deviation",
    "compare_panels",
    "compare_result_dirs",
    "SeriesPanel",
    "ascii_histogram",
    "format_table",
    "load_panel",
    "panel_from_json",
    "panel_to_csv",
    "panel_to_json",
    "save_panels",
    "EXPERIMENT_NAMES",
    "ExperimentOutput",
    "run_all",
    "run_experiment",
    "AlgorithmStats",
    "evaluate_algorithms",
    "resolve_estimators",
    "Table2Row",
    "run_table2",
    "table2_text",
    "Table3Result",
    "Table3Row",
    "run_table3",
]

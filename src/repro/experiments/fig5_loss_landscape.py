"""Fig. 5 — the analytic L2-loss landscape of the double-source estimator.

The paper plots ``l2(f*, C2)`` against ε1 for α ∈ {0, 1, 0.5} with
``du = 5`` and ``dw ∈ {10, 100}`` at total ε = 2, plus the global minimum
attained by jointly optimizing (ε1, α). The left panel (mild imbalance)
shows the plain average achieving the optimum; the right panel (strong
imbalance) shows the low-degree single-source estimator winning — the
motivation for MultiR-DS's adaptive weighting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.loss import double_source_variance
from repro.analysis.optimizer import optimize_double_source
from repro.experiments.report import SeriesPanel

__all__ = ["Fig5Panel", "run_fig5"]

#: The α values the paper draws as separate curves.
CURVE_ALPHAS = {
    "alpha=0 (f_w)": 0.0,
    "alpha=1 (f_u)": 1.0,
    "alpha=0.5 (average)": 0.5,
}


@dataclass
class Fig5Panel:
    """One Fig. 5 subplot: loss curves plus the jointly optimized minimum."""

    deg_u: int
    deg_w: int
    epsilon: float
    panel: SeriesPanel
    global_minimum: float
    optimal_eps1: float
    optimal_alpha: float

    def to_text(self) -> str:
        text = self.panel.to_text()
        return (
            f"{text}\n"
            f"global minimum {self.global_minimum:.4f} at "
            f"eps1={self.optimal_eps1:.4f}, alpha={self.optimal_alpha:.4f}"
        )


def run_fig5(
    deg_u: int = 5,
    deg_w_values: tuple[int, ...] = (10, 100),
    epsilon: float = 2.0,
    eps1_range: tuple[float, float] = (0.5, 1.5),
    num_points: int = 21,
) -> list[Fig5Panel]:
    """Compute the Fig. 5 curves analytically (no sampling involved)."""
    eps1_values = np.linspace(eps1_range[0], eps1_range[1], num_points)
    panels = []
    for deg_w in deg_w_values:
        panel = SeriesPanel(
            title=f"Fig. 5 — L2 loss of f* (du={deg_u}, dw={deg_w}, eps={epsilon:g})",
            x_label="eps1",
            x_values=[round(float(e), 6) for e in eps1_values],
            y_label="expected L2 loss",
        )
        for label, alpha in CURVE_ALPHAS.items():
            losses = [
                double_source_variance(float(e1), epsilon - float(e1), alpha, deg_u, deg_w)
                for e1 in eps1_values
            ]
            panel.add(label, losses)
        alloc = optimize_double_source(epsilon, deg_u, deg_w, eps0=0.0)
        panel.add("global minimum", [alloc.predicted_loss] * len(eps1_values))
        panels.append(
            Fig5Panel(
                deg_u=deg_u,
                deg_w=deg_w,
                epsilon=epsilon,
                panel=panel,
                global_minimum=alloc.predicted_loss,
                optimal_eps1=alloc.eps1,
                optimal_alpha=alloc.alpha,
            )
        )
    return panels

"""Extension experiment — error conditioned on the true overlap size.

Not a paper figure: the paper reports errors over uniform pairs, which on
sparse graphs are dominated by zero-overlap queries. This experiment
stratifies the workload by the true ``C2`` (via
:func:`repro.experiments.workloads.stratified_by_overlap`) and reports
each algorithm's MAE per stratum. Expected shape: the unbiased algorithms'
errors are nearly flat in the overlap (their variance depends on degrees
and pool size, not on C2 itself), while Naive's bias grows with the
candidate pool regardless of stratum — so relative error *improves* with
overlap for every algorithm.
"""

from __future__ import annotations

from repro.datasets.cache import load_dataset
from repro.experiments.report import SeriesPanel
from repro.experiments.runner import evaluate_algorithms
from repro.experiments.workloads import stratified_by_overlap
from repro.graph.bipartite import Layer
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode

__all__ = ["EXT_ALGORITHMS", "run_ext_overlap"]

EXT_ALGORITHMS = ("oner", "multir-ss", "multir-ds", "central-dp")
DEFAULT_THRESHOLDS = (0, 1, 5)


def run_ext_overlap(
    dataset: str = "RM",
    thresholds=DEFAULT_THRESHOLDS,
    algorithms=EXT_ALGORITHMS,
    epsilon: float = 2.0,
    num_pairs: int = 50,
    layer: Layer = Layer.UPPER,
    rng: RngLike = 1212,
    max_edges: int | None = None,
    mode: ExecutionMode = ExecutionMode.SKETCH,
) -> SeriesPanel:
    """MAE per overlap stratum on one dataset."""
    parent = ensure_rng(rng)
    graph = load_dataset(dataset, max_edges)
    strata = stratified_by_overlap(
        graph, layer, num_pairs, rng=parent, thresholds=thresholds
    )
    panel = SeriesPanel(
        title=f"Extension — {dataset}: MAE by true-overlap stratum (eps={epsilon:g})",
        x_label="C2 >= threshold",
        x_values=[int(t) for t in sorted(strata)],
    )
    series: dict[str, list[float]] = {name: [] for name in algorithms}
    for threshold in sorted(strata):
        stats = evaluate_algorithms(
            graph, strata[threshold], algorithms, epsilon, parent, mode
        )
        for name in algorithms:
            series[name].append(stats[name].errors.mae)
    for name, values in series.items():
        panel.add(name, values)
    return panel

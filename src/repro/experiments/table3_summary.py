"""Table 3 — analytic loss formulas verified against Monte-Carlo runs.

For one controlled query the module repeats every algorithm many times and
compares the empirical mean (unbiasedness column) and empirical variance /
L2 loss against the closed forms of :mod:`repro.analysis.loss` — the
executable version of the paper's Table 3 summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.loss import (
    central_dp_variance,
    double_source_variance,
    naive_expectation,
    naive_l2_loss,
    oner_variance,
    single_source_variance,
)
from repro.analysis.optimizer import optimize_double_source
from repro.estimators.registry import get_estimator
from repro.experiments.report import format_table
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.protocol.session import ExecutionMode

__all__ = ["Table3Row", "Table3Result", "run_table3"]


@dataclass(frozen=True)
class Table3Row:
    """Empirical vs analytic behaviour of one algorithm."""

    algorithm: str
    unbiased_claim: bool
    empirical_mean: float
    expected_mean: float
    empirical_l2: float
    analytic_l2: float
    mean_comm_bytes: float


@dataclass
class Table3Result:
    epsilon: float
    trials: int
    true_count: int
    deg_u: int
    deg_w: int
    n_opposite: int
    rows: list[Table3Row]

    def to_text(self) -> str:
        table_rows = [
            [
                r.algorithm,
                "yes" if r.unbiased_claim else "no",
                r.empirical_mean,
                r.expected_mean,
                r.empirical_l2,
                r.analytic_l2,
                r.mean_comm_bytes,
            ]
            for r in self.rows
        ]
        title = (
            f"Table 3 — expected vs empirical losses "
            f"(eps={self.epsilon:g}, trials={self.trials}, "
            f"C2={self.true_count}, deg=({self.deg_u},{self.deg_w}), "
            f"n_opposite={self.n_opposite})"
        )
        return format_table(
            [
                "algorithm",
                "unbiased",
                "emp. mean",
                "exp. mean",
                "emp. L2",
                "analytic L2",
                "comm bytes",
            ],
            table_rows,
            title=title,
        )


def _analytic_l2(
    name: str,
    epsilon: float,
    n_opposite: int,
    deg_u: int,
    deg_w: int,
    c2: int,
) -> float:
    half = epsilon / 2.0
    if name == "naive":
        return naive_l2_loss(epsilon, n_opposite, deg_u, deg_w, c2)
    if name == "oner":
        return oner_variance(epsilon, n_opposite, deg_u, deg_w)
    if name == "multir-ss":
        return single_source_variance(half, half, deg_u)
    if name == "multir-ds-basic":
        return double_source_variance(half, half, 0.5, deg_u, deg_w)
    if name == "multir-ds-star":
        alloc = optimize_double_source(epsilon, deg_u, deg_w, eps0=0.0)
        return alloc.predicted_loss
    if name == "multir-ds":
        # The realized allocation depends on the noisy degree round; the
        # analytic column reports the optimizer's prediction under true
        # degrees (a slight underestimate of the realized loss).
        eps0 = 0.05 * epsilon
        alloc = optimize_double_source(epsilon, deg_u, deg_w, eps0=eps0)
        return alloc.predicted_loss
    if name == "central-dp":
        return central_dp_variance(epsilon)
    raise ValueError(f"no analytic loss for {name!r}")


def run_table3(
    epsilon: float = 2.0,
    trials: int = 4000,
    graph: BipartiteGraph | None = None,
    layer: Layer = Layer.UPPER,
    rng: RngLike = 12345,
    mode: ExecutionMode = ExecutionMode.SKETCH,
) -> Table3Result:
    """Monte-Carlo check of every Table 3 formula on one controlled query."""
    parent = ensure_rng(rng)
    if graph is None:
        graph = random_bipartite(260, 200, 2600, rng=parent)
    degrees = graph.degrees(layer)
    order = np.argsort(degrees)
    u = int(order[-1])  # heaviest vertex
    w = int(order[degrees.size // 2])  # median-degree vertex
    if u == w:
        w = int(order[0])
    true_count = graph.count_common_neighbors(layer, u, w)
    deg_u, deg_w = int(degrees[u]), int(degrees[w])
    n_opposite = graph.layer_size(layer.opposite())

    algorithms = (
        "naive",
        "oner",
        "multir-ss",
        "multir-ds-basic",
        "multir-ds",
        "multir-ds-star",
        "central-dp",
    )
    rows = []
    for name in algorithms:
        estimator = get_estimator(name)
        rngs = spawn_rngs(parent, trials)
        values = np.empty(trials)
        comm = np.empty(trials)
        for t in range(trials):
            result = estimator.estimate(
                graph, layer, u, w, epsilon, rng=rngs[t], mode=mode
            )
            values[t] = result.value
            comm[t] = result.communication_bytes
        expected_mean = (
            naive_expectation(epsilon, n_opposite, deg_u, deg_w, true_count)
            if name == "naive"
            else float(true_count)
        )
        rows.append(
            Table3Row(
                algorithm=name,
                unbiased_claim=estimator.unbiased,
                empirical_mean=float(values.mean()),
                expected_mean=expected_mean,
                empirical_l2=float(((values - true_count) ** 2).mean()),
                analytic_l2=_analytic_l2(
                    name, epsilon, n_opposite, deg_u, deg_w, true_count
                ),
                mean_comm_bytes=float(comm.mean()),
            )
        )
    return Table3Result(
        epsilon=epsilon,
        trials=trials,
        true_count=true_count,
        deg_u=deg_u,
        deg_w=deg_w,
        n_opposite=n_opposite,
        rows=rows,
    )

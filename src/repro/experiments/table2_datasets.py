"""Table 2 — dataset statistics: published numbers vs synthetic analogues."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.cache import load_dataset
from repro.datasets.registry import dataset_keys, get_spec, scaled_spec
from repro.experiments.report import format_table
from repro.graph.bipartite import Layer

__all__ = ["Table2Row", "run_table2", "table2_text"]


@dataclass(frozen=True)
class Table2Row:
    """One dataset's published and realized statistics."""

    key: str
    name: str
    upper_entity: str
    lower_entity: str
    paper_edges: int
    paper_upper: int
    paper_lower: int
    synth_edges: int
    synth_upper: int
    synth_lower: int
    vertex_fraction: float
    synth_max_degree_upper: int


def run_table2(
    keys: list[str] | None = None, max_edges: int | None = None
) -> list[Table2Row]:
    """Build (from cache where possible) every dataset and tabulate stats."""
    rows = []
    for key in keys or dataset_keys():
        spec = get_spec(key)
        scaled = scaled_spec(spec, max_edges)
        graph = load_dataset(key, max_edges)
        rows.append(
            Table2Row(
                key=spec.key,
                name=spec.name,
                upper_entity=spec.upper_entity,
                lower_entity=spec.lower_entity,
                paper_edges=spec.paper_edges,
                paper_upper=spec.paper_upper,
                paper_lower=spec.paper_lower,
                synth_edges=graph.num_edges,
                synth_upper=graph.num_upper,
                synth_lower=graph.num_lower,
                vertex_fraction=scaled.vertex_fraction,
                synth_max_degree_upper=graph.max_degree(Layer.UPPER),
            )
        )
    return rows


def table2_text(rows: list[Table2Row]) -> str:
    """Render the Table 2 reproduction."""
    table_rows = [
        [
            r.key,
            r.name,
            f"{r.upper_entity}/{r.lower_entity}",
            r.paper_edges,
            r.paper_upper,
            r.paper_lower,
            r.synth_edges,
            r.synth_upper,
            r.synth_lower,
            f"{r.vertex_fraction:.3f}",
            r.synth_max_degree_upper,
        ]
        for r in rows
    ]
    return format_table(
        [
            "key",
            "dataset",
            "layers",
            "|E| paper",
            "|U| paper",
            "|L| paper",
            "|E| synth",
            "|U| synth",
            "|L| synth",
            "scale",
            "dmax(U)",
        ],
        table_rows,
        title="Table 2 — datasets (paper stats vs synthesized analogues)",
    )

"""Simulated vertex/curator protocol with privacy and message accounting."""

from repro.protocol.messages import (
    FLOAT_BYTES,
    ID_BYTES,
    CommunicationLog,
    Direction,
    Transfer,
)
from repro.protocol.actors import (
    ActorProtocol,
    Channel,
    CuratorActor,
    Message,
    VertexActor,
)
from repro.protocol.noisy import NoisyListHandle
from repro.protocol.release import (
    NoisyGraphRelease,
    release_noisy_graph,
    released_common_neighbors,
    released_degree,
)
from repro.protocol.wire import (
    decode_frame,
    encode_noisy_edges,
    encode_scalar,
    payload_bytes,
)
from repro.protocol.session import (
    DegreeRound,
    ExecutionMode,
    ProtocolSession,
    ProtocolTranscript,
)

__all__ = [
    "FLOAT_BYTES",
    "ID_BYTES",
    "CommunicationLog",
    "Direction",
    "Transfer",
    "NoisyListHandle",
    "ActorProtocol",
    "Channel",
    "CuratorActor",
    "Message",
    "VertexActor",
    "decode_frame",
    "encode_noisy_edges",
    "encode_scalar",
    "payload_bytes",
    "NoisyGraphRelease",
    "release_noisy_graph",
    "released_common_neighbors",
    "released_degree",
    "DegreeRound",
    "ExecutionMode",
    "ProtocolSession",
    "ProtocolTranscript",
]

"""One-shot noisy-graph release (the synthetic-graph paradigm, paper §6).

The paper's related work contrasts two paradigms for graph analysis under
edge LDP: problem-specific protocols (the paper's contribution) and
general-purpose *noisy graph release*, where every vertex perturbs its
whole neighbor list once and all subsequent analyses are free
post-processing. This module implements the release paradigm as a
baseline:

* :func:`release_noisy_graph` — every upper vertex applies randomized
  response to its row once; the release is ε-edge LDP by parallel
  composition across vertices, and supports unlimited queries afterwards.
* :func:`released_common_neighbors` — the OneR de-biasing applied to a
  released graph; works for query pairs on *either* layer because every
  adjacency bit was perturbed independently exactly once.
* :func:`released_degree` — unbiased degree estimate from a released row.

The trade-off the paper observes holds here too: the release costs
O(p·n1·n2) noisy edges up front and its per-query error carries the full
candidate-pool factor, while the multiple-round algorithms pay per query
but answer with degree-bounded error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrivacyError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.mechanisms import RandomizedResponse
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.messages import ID_BYTES

__all__ = [
    "NoisyGraphRelease",
    "release_noisy_graph",
    "released_common_neighbors",
    "released_degree",
]

#: Refuse releases whose expected noisy-edge count exceeds this bound —
#: the release paradigm is only tractable on small/medium graphs, which is
#: one of the paper's arguments for problem-specific protocols.
DEFAULT_MAX_EXPECTED_EDGES = 5_000_000


@dataclass(frozen=True)
class NoisyGraphRelease:
    """A one-shot ε-edge-LDP release of the whole bipartite graph."""

    noisy_graph: BipartiteGraph
    epsilon: float
    flip_probability: float
    upload_bytes: int

    @property
    def num_noisy_edges(self) -> int:
        return self.noisy_graph.num_edges


def release_noisy_graph(
    graph: BipartiteGraph,
    epsilon: float,
    rng: RngLike = None,
    max_expected_edges: int = DEFAULT_MAX_EXPECTED_EDGES,
) -> NoisyGraphRelease:
    """Apply randomized response to every upper vertex's neighbor list.

    Each vertex perturbs only its own row, so the full release satisfies
    ε-edge LDP by parallel composition. Raises :class:`PrivacyError` when
    the expected noisy-edge volume exceeds ``max_expected_edges``.
    """
    rng = ensure_rng(rng)
    rr = RandomizedResponse(epsilon)
    n1, n2 = graph.num_upper, graph.num_lower
    expected = rr.expected_noisy_degree(0, n2) * n1 + graph.num_edges
    if expected > max_expected_edges:
        raise PrivacyError(
            f"expected ~{expected:.0f} noisy edges exceeds the release cap "
            f"{max_expected_edges}; use the per-query estimators instead"
        )

    edges = []
    for u in range(n1):
        noisy_row = rr.perturb_neighbor_list(
            graph.neighbors(Layer.UPPER, u), n2, rng
        )
        for v in noisy_row:
            edges.append((u, int(v)))
    noisy_graph = BipartiteGraph(n1, n2, edges)
    return NoisyGraphRelease(
        noisy_graph=noisy_graph,
        epsilon=float(epsilon),
        flip_probability=rr.flip_probability,
        upload_bytes=noisy_graph.num_edges * ID_BYTES,
    )


def released_common_neighbors(
    release: NoisyGraphRelease, layer: Layer, u: int, w: int
) -> float:
    """Unbiased ``C2(u, w)`` estimate from a released graph (free query).

    Applies the OneR expansion to the released adjacency. Valid on both
    layers: every bit of the adjacency block was perturbed independently
    exactly once, so for lower-layer pairs the relevant bits come from
    distinct upper rows and remain independent.
    """
    if u == w:
        raise PrivacyError("query vertices must be distinct")
    noisy = release.noisy_graph
    p = release.flip_probability
    nu = noisy.neighbors(layer, u)
    nw = noisy.neighbors(layer, w)
    n1 = int(np.intersect1d(nu, nw, assume_unique=True).size)
    n2 = int(nu.size + nw.size - n1)
    pool = noisy.layer_size(layer.opposite())
    denom = (1.0 - 2.0 * p) ** 2
    return (
        n1 * (1.0 - p) ** 2
        - (n2 - n1) * p * (1.0 - p)
        + (pool - n2) * p * p
    ) / denom


def released_degree(release: NoisyGraphRelease, layer: Layer, v: int) -> float:
    """Unbiased degree estimate: ``(noisy_deg - p·n) / (1 - 2p)``."""
    noisy = release.noisy_graph
    p = release.flip_probability
    n = noisy.layer_size(layer.opposite())
    return (noisy.degree(layer, v) - p * n) / (1.0 - 2.0 * p)

"""Message-size accounting for the simulated LDP protocol.

The paper reports communication cost in megabytes (Fig. 10). We model every
transmitted vertex id as :data:`ID_BYTES` and every scalar (degree report,
estimator release) as :data:`FLOAT_BYTES`, and log each transfer with its
direction so upload (vertex → curator) and download (curator → vertex)
costs can be separated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ID_BYTES", "FLOAT_BYTES", "Direction", "Transfer", "CommunicationLog"]

ID_BYTES = 8
FLOAT_BYTES = 8


class Direction(enum.Enum):
    """Direction of a transfer relative to the data curator."""

    UPLOAD = "upload"
    DOWNLOAD = "download"


@dataclass(frozen=True)
class Transfer:
    """One logged message: ``nbytes`` moved in ``direction``."""

    direction: Direction
    nbytes: int
    label: str


@dataclass
class CommunicationLog:
    """Accumulates transfers; exposes totals in bytes and megabytes."""

    transfers: list[Transfer] = field(default_factory=list)

    def record(self, direction: Direction, nbytes: int, label: str) -> None:
        """Log one transfer of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.transfers.append(Transfer(direction, int(nbytes), label))

    # ------------------------------------------------------------------
    def total_bytes(self, direction: Direction | None = None) -> int:
        """Total bytes moved (optionally restricted to one direction)."""
        return sum(
            t.nbytes
            for t in self.transfers
            if direction is None or t.direction is direction
        )

    def total_megabytes(self, direction: Direction | None = None) -> float:
        """Total in MB (decimal, matching the paper's axis units)."""
        return self.total_bytes(direction) / 1e6

    def by_label(self) -> dict[str, int]:
        """Bytes per label, for breakdown tables."""
        out: dict[str, int] = {}
        for t in self.transfers:
            out[t.label] = out.get(t.label, 0) + t.nbytes
        return out

"""Noisy-list handles exchanged between vertices and the curator.

A :class:`NoisyListHandle` represents the randomized-response output of one
vertex's neighbor list. In ``materialize`` mode it carries the actual noisy
neighbor indices; in ``sketch`` mode only the (sampled) size is tracked and
downstream counts are drawn from their exact distributions by the session.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError

__all__ = ["NoisyListHandle"]


@dataclass
class NoisyListHandle:
    """Randomized-response output of one query vertex's neighbor list.

    Attributes
    ----------
    owner:
        Index of the vertex (on the query layer) whose list was perturbed.
    epsilon:
        RR budget used to build the list (determines the flip probability).
    size:
        Number of reported (noisy) edges — drives communication accounting.
    neighbors:
        Sorted noisy neighbor indices, or ``None`` in sketch mode.
    """

    owner: int
    epsilon: float
    size: int
    neighbors: np.ndarray | None = None

    @property
    def materialized(self) -> bool:
        return self.neighbors is not None

    def contains(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean membership of ``vertices`` in the noisy list.

        Only available for materialized handles; sketch-mode membership is
        sampled by the session instead.
        """
        if self.neighbors is None:
            raise ProtocolError("sketch handles do not expose membership")
        idx = np.searchsorted(self.neighbors, vertices)
        idx = np.minimum(idx, max(self.neighbors.size - 1, 0))
        if self.neighbors.size == 0:
            return np.zeros(np.asarray(vertices).shape, dtype=bool)
        return self.neighbors[idx] == vertices

"""Wire format: byte-level encoding of the protocol's messages.

The communication figures (Fig. 10) count 8 bytes per id/scalar; this
module is the encoding those counts describe, so the accounting is backed
by real serialization rather than arithmetic alone. The original three
message kinds are the client↔collector protocol:

* ``noisy-edges`` — a sorted ``uint64`` id array (a vertex's RR output);
* ``noisy-degree`` — one ``float64`` Laplace degree report;
* ``estimate`` — one ``float64`` released estimator value.

The distributed shard transport (``docs/distributed-guide.md``) extends
the same frame idiom with the parent↔worker message kinds:

* ``hello`` — protocol version, capability bits and the graph digest a
  peer holds (the worker advertises what it can do; the parent
  advertises what it is about to serve);
* ``ping`` / ``pong`` — liveness heartbeats carrying an echoed nonce;
* ``graph`` — a full graph install (layer sizes + edge list) keyed by
  its digest, so a worker serves draws for exactly the snapshot the
  parent planned against;
* ``shard-spec`` — one DRAW_SHARD work order: the keyed-draw arguments
  ``(vertices, epsilon, entropy, epoch, versions)`` plus the optional
  in-worker pairwise reduction request (local pair slots + domain);
* ``fragment`` — a shard's CSR noisy rows, integrity-tagged with the
  same CRC32 checksum word the fork transport's shared-memory handoff
  uses;
* ``reduced`` — a shard's row sizes plus locally reduced pairwise
  ``N1`` scalars (the frames that replace fragments on pair-dense
  workloads), under the same checksum word;
* ``worker-error`` — a worker-side failure message;
* ``mutate`` — an edge-delta push (net inserts + net deletes against a
  base snapshot the worker already holds, tagged with the base and
  target digests plus a CRC32 over the op bytes), the frame that lets a
  long-running worker track a mutating graph without re-receiving it;
* ``delta-ack`` — the worker's verdict on a mutate: applied (and the
  digest now installed), unknown base (the parent must fall back to a
  full ``graph`` install), or digest mismatch (the applied result did
  not hash to the promised target).

Every frame is ``[kind: 1 byte][length: 4 bytes LE][payload]``; payloads
round-trip exactly (tests in ``tests/test_protocol_wire.py``), frames
with a declared length beyond :data:`MAX_FRAME_PAYLOAD` are rejected
before any allocation, and fragment/reduced payloads are checksum-
verified at decode time — a flipped byte surfaces as
:class:`~repro.errors.PayloadIntegrityError`, never as silently wrong
counts.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.errors import PayloadIntegrityError, ProtocolError

__all__ = [
    "KIND_NOISY_EDGES",
    "KIND_NOISY_DEGREE",
    "KIND_ESTIMATE",
    "KIND_HELLO",
    "KIND_PING",
    "KIND_PONG",
    "KIND_GRAPH",
    "KIND_SHARD_SPEC",
    "KIND_FRAGMENT",
    "KIND_REDUCED",
    "KIND_WORKER_ERROR",
    "KIND_MUTATE",
    "KIND_DELTA_ACK",
    "WIRE_VERSION",
    "CAP_REDUCE",
    "CAP_VERSIONS",
    "CAP_MUTATE",
    "DELTA_OK",
    "DELTA_UNKNOWN_BASE",
    "DELTA_DIGEST_MISMATCH",
    "MAX_FRAME_PAYLOAD",
    "encode_noisy_edges",
    "encode_scalar",
    "encode_hello",
    "encode_ping",
    "encode_pong",
    "encode_graph",
    "encode_shard_spec",
    "encode_fragment",
    "encode_reduced",
    "encode_worker_error",
    "encode_mutate",
    "encode_delta_ack",
    "decode_frame",
    "payload_bytes",
    "frame_overhead",
    "graph_digest",
    "delta_checksum",
]

KIND_NOISY_EDGES = 1
KIND_NOISY_DEGREE = 2
KIND_ESTIMATE = 3
KIND_HELLO = 4
KIND_PING = 5
KIND_PONG = 6
KIND_GRAPH = 7
KIND_SHARD_SPEC = 8
KIND_FRAGMENT = 9
KIND_REDUCED = 10
KIND_WORKER_ERROR = 11
KIND_MUTATE = 12
KIND_DELTA_ACK = 13

# Shard-transport protocol version, carried in every HELLO. Bumped on any
# incompatible frame-layout change; peers refuse mismatched versions.
WIRE_VERSION = 1

# HELLO capability bits.
CAP_REDUCE = 1  # the worker can reduce pairwise N1 blocks locally
CAP_VERSIONS = 2  # the worker understands per-vertex stream versions
CAP_MUTATE = 4  # the worker can apply MUTATE deltas to its installed graph

# DELTA_ACK statuses.
DELTA_OK = 0  # delta applied; ack digest is the freshly installed target
DELTA_UNKNOWN_BASE = 1  # worker does not hold the base snapshot
DELTA_DIGEST_MISMATCH = 2  # applied result did not hash to the target

# Largest payload a frame may declare. The header's length field is
# unsigned 32-bit; without this cap a single malicious (or corrupt)
# header could demand a 4 GiB allocation before any payload byte is
# read. Decoders and socket readers reject oversized declarations first.
MAX_FRAME_PAYLOAD = 1 << 31

_HEADER = struct.Struct("<BI")  # kind, payload length in bytes
_SCALAR_KINDS = (KIND_NOISY_DEGREE, KIND_ESTIMATE)
_HELLO = struct.Struct("<IIQ")  # version, capability bits, graph digest
_NONCE = struct.Struct("<I")
_GRAPH_HEAD = struct.Struct("<QII")  # digest, n_upper, n_lower
# shard, attempt, epoch, entropy, epsilon, domain, layer, flags,
# n_vertices, n_pairs
_SPEC_HEAD = struct.Struct("<iiQQdQBBII")
_FRAG_HEAD = struct.Struct("<iiII")  # shard, attempt, checksum, n_rows
# shard, attempt, checksum, n_rows, n_pairs, peak_bytes
_REDUCED_HEAD = struct.Struct("<iiIIIQ")
# base digest, target digest, op checksum, n_inserts, n_deletes
_MUTATE_HEAD = struct.Struct("<QQIII")
_DELTA_ACK = struct.Struct("<BQ")  # status, installed digest
_DELTA_STATUSES = (DELTA_OK, DELTA_UNKNOWN_BASE, DELTA_DIGEST_MISMATCH)

_SPEC_HAS_VERSIONS = 1
_SPEC_WANT_FRAGMENT = 2
_SPEC_MEASURE = 4


def frame_overhead() -> int:
    """Header bytes added to every frame (kind + length)."""
    return _HEADER.size


def _frame(kind: int, payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte wire limit"
        )
    return _HEADER.pack(kind, len(payload)) + payload


def encode_noisy_edges(neighbors: np.ndarray) -> bytes:
    """Encode a noisy neighbor list as a frame of little-endian uint64 ids."""
    arr = np.asarray(neighbors, dtype=np.int64)
    if arr.size and arr.min() < 0:
        raise ProtocolError("vertex ids must be non-negative")
    payload = arr.astype("<u8").tobytes()
    return _frame(KIND_NOISY_EDGES, payload)


def encode_scalar(value: float, kind: int) -> bytes:
    """Encode one float64 report (degree or estimate)."""
    if kind not in _SCALAR_KINDS:
        raise ProtocolError(f"kind {kind} is not a scalar message kind")
    payload = struct.pack("<d", float(value))
    return _frame(kind, payload)


# ----------------------------------------------------------------------
# Shard-transport frames
# ----------------------------------------------------------------------
def graph_digest(n_upper: int, n_lower: int, edges: np.ndarray) -> int:
    """Content digest of a graph snapshot (layer sizes + sorted edges).

    The tag workers key their installed-graph cache by: the parent
    re-installs only when the digest it is about to serve differs from
    the one the worker's HELLO advertised (e.g. after an incremental
    rotation swapped the snapshot).
    """
    edges = np.ascontiguousarray(np.asarray(edges, dtype=np.int64))
    crc = zlib.crc32(struct.pack("<QQ", int(n_upper), int(n_lower)))
    crc = zlib.crc32(edges.astype("<i8").tobytes(), crc)
    return int(crc)


def encode_hello(version: int, caps: int, digest: int) -> bytes:
    """Encode a HELLO: protocol version, capability bits, graph digest."""
    return _frame(KIND_HELLO, _HELLO.pack(int(version), int(caps), int(digest)))


def encode_ping(nonce: int) -> bytes:
    """Encode a heartbeat PING carrying a nonce the PONG must echo."""
    return _frame(KIND_PING, _NONCE.pack(int(nonce) & 0xFFFFFFFF))


def encode_pong(nonce: int) -> bytes:
    """Encode the PONG echoing a PING's nonce."""
    return _frame(KIND_PONG, _NONCE.pack(int(nonce) & 0xFFFFFFFF))


def encode_graph(n_upper: int, n_lower: int, edges: np.ndarray) -> bytes:
    """Encode a graph install: digest, layer sizes, and the edge list."""
    edges = np.ascontiguousarray(np.asarray(edges, dtype=np.int64))
    if edges.size and edges.min() < 0:
        raise ProtocolError("edge endpoints must be non-negative")
    digest = graph_digest(n_upper, n_lower, edges)
    payload = (
        _GRAPH_HEAD.pack(digest, int(n_upper), int(n_lower))
        + edges.astype("<u8").tobytes()
    )
    return _frame(KIND_GRAPH, payload)


def encode_shard_spec(
    *,
    shard: int,
    attempt: int,
    epoch: int,
    entropy: int,
    epsilon: float,
    domain: int,
    layer: int,
    vertices: np.ndarray,
    versions: np.ndarray | None = None,
    ia: np.ndarray | None = None,
    ib: np.ndarray | None = None,
    want_fragment: bool = True,
    measure: bool = False,
) -> bytes:
    """Encode one DRAW_SHARD work order.

    ``vertices`` are the shard's global vertex ids; ``versions`` (when
    given) must align with them. ``ia``/``ib`` are *local* pair slots
    into ``vertices`` — the pairs the worker should reduce to ``N1``
    scalars itself; both or neither must be given. ``layer`` is the
    serving layer's wire tag (0 = upper, 1 = lower); ``domain`` the
    opposite-layer size the reduction ranges over.
    """
    vertices = np.ascontiguousarray(np.asarray(vertices, dtype=np.int64))
    if (ia is None) != (ib is None):
        raise ProtocolError("ia and ib must be given together")
    flags = 0
    if versions is not None:
        versions = np.ascontiguousarray(np.asarray(versions, dtype=np.uint64))
        if versions.shape != vertices.shape:
            raise ProtocolError(
                "versions must align with the spec's vertices: "
                f"got {versions.shape} for {vertices.shape}"
            )
        flags |= _SPEC_HAS_VERSIONS
    if want_fragment:
        flags |= _SPEC_WANT_FRAGMENT
    if measure:
        flags |= _SPEC_MEASURE
    n_pairs = 0
    pair_bytes = b""
    if ia is not None:
        ia = np.ascontiguousarray(np.asarray(ia, dtype=np.int64))
        ib = np.ascontiguousarray(np.asarray(ib, dtype=np.int64))
        if ia.shape != ib.shape:
            raise ProtocolError("ia and ib must have the same shape")
        n_pairs = int(ia.size)
        pair_bytes = (
            ia.astype("<u4").tobytes() + ib.astype("<u4").tobytes()
        )
    payload = (
        _SPEC_HEAD.pack(
            int(shard),
            int(attempt),
            int(epoch),
            int(entropy),
            float(epsilon),
            int(domain),
            int(layer),
            flags,
            int(vertices.size),
            n_pairs,
        )
        + vertices.astype("<i8").tobytes()
        + (versions.astype("<u8").tobytes() if versions is not None else b"")
        + pair_bytes
    )
    return _frame(KIND_SHARD_SPEC, payload)


def columns_checksum(columns: np.ndarray) -> int:
    """CRC32 of a fragment's column bytes — the transport integrity tag.

    The same word the fork transport verifies after its shared-memory
    handoff; socket fragments carry it in their frame header.
    """
    return int(
        zlib.crc32(np.ascontiguousarray(columns, dtype=np.int64).tobytes())
    )


def reduced_checksum(sizes: np.ndarray, n1: np.ndarray) -> int:
    """CRC32 over a reduced frame's sizes + N1 payload bytes."""
    crc = zlib.crc32(
        np.ascontiguousarray(sizes, dtype=np.int64).tobytes()
    )
    crc = zlib.crc32(
        np.ascontiguousarray(n1, dtype=np.int64).tobytes(), crc
    )
    return int(crc)


def encode_fragment(
    shard: int,
    attempt: int,
    indptr: np.ndarray,
    columns: np.ndarray,
    *,
    checksum: int | None = None,
) -> bytes:
    """Encode a shard's CSR noisy rows with the CRC32 checksum word.

    ``checksum`` defaults to the true CRC of ``columns``; passing an
    explicit value exists so chaos tests (and the poison fault) can
    construct frames whose payload contradicts their tag.
    """
    indptr = np.ascontiguousarray(np.asarray(indptr, dtype=np.int64))
    columns = np.ascontiguousarray(np.asarray(columns, dtype=np.int64))
    if indptr.size == 0 or int(indptr[0]) != 0:
        raise ProtocolError("fragment indptr must start at 0")
    if int(indptr[-1]) != columns.size:
        raise ProtocolError("fragment indptr does not cover its columns")
    if checksum is None:
        checksum = columns_checksum(columns)
    payload = (
        _FRAG_HEAD.pack(
            int(shard), int(attempt), int(checksum) & 0xFFFFFFFF,
            int(indptr.size - 1),
        )
        + indptr.astype("<i8").tobytes()
        + columns.astype("<i8").tobytes()
    )
    return _frame(KIND_FRAGMENT, payload)


def encode_reduced(
    shard: int,
    attempt: int,
    sizes: np.ndarray,
    n1: np.ndarray,
    *,
    peak_bytes: int = 0,
    checksum: int | None = None,
) -> bytes:
    """Encode a shard's row sizes + locally reduced pairwise N1 scalars.

    The frame that replaces a fragment when the worker holds both
    endpoints of every pair it was asked about: ``sizes`` always travel
    (they are what ``N2`` and the upload accounting need), while the
    noisy columns stay on the worker.
    """
    sizes = np.ascontiguousarray(np.asarray(sizes, dtype=np.int64))
    n1 = np.ascontiguousarray(np.asarray(n1, dtype=np.int64))
    if checksum is None:
        checksum = reduced_checksum(sizes, n1)
    payload = (
        _REDUCED_HEAD.pack(
            int(shard), int(attempt), int(checksum) & 0xFFFFFFFF,
            int(sizes.size), int(n1.size), int(peak_bytes),
        )
        + sizes.astype("<i8").tobytes()
        + n1.astype("<i8").tobytes()
    )
    return _frame(KIND_REDUCED, payload)


def encode_worker_error(message: str) -> bytes:
    """Encode a worker-side failure report (UTF-8 message)."""
    return _frame(KIND_WORKER_ERROR, str(message).encode("utf-8"))


def delta_checksum(inserts: np.ndarray, deletes: np.ndarray) -> int:
    """CRC32 over a mutate frame's insert + delete edge bytes.

    The integrity word a MUTATE carries alongside its digests: a flipped
    op byte surfaces as :class:`~repro.errors.PayloadIntegrityError` at
    decode, before the worker touches its installed graph.
    """
    crc = zlib.crc32(
        np.ascontiguousarray(inserts, dtype=np.int64).tobytes()
    )
    crc = zlib.crc32(
        np.ascontiguousarray(deletes, dtype=np.int64).tobytes(), crc
    )
    return int(crc)


def encode_mutate(
    base_digest: int,
    target_digest: int,
    inserts: np.ndarray,
    deletes: np.ndarray,
    *,
    checksum: int | None = None,
) -> bytes:
    """Encode an edge-delta push against an installed base snapshot.

    ``inserts``/``deletes`` are ``(k, 2)`` net edge arrays (the
    :meth:`DeltaLog.net_inserts` / ``net_deletes`` shape); the worker
    applies them to the graph it holds under ``base_digest`` and must
    end up with a graph whose content digest equals ``target_digest``.
    ``checksum`` defaults to the true CRC of the op bytes; an explicit
    value exists for chaos tests that need contradictory frames.
    """
    inserts = np.ascontiguousarray(
        np.asarray(inserts, dtype=np.int64).reshape(-1, 2)
    )
    deletes = np.ascontiguousarray(
        np.asarray(deletes, dtype=np.int64).reshape(-1, 2)
    )
    if (inserts.size and inserts.min() < 0) or (
        deletes.size and deletes.min() < 0
    ):
        raise ProtocolError("edge endpoints must be non-negative")
    if checksum is None:
        checksum = delta_checksum(inserts, deletes)
    payload = (
        _MUTATE_HEAD.pack(
            int(base_digest),
            int(target_digest),
            int(checksum) & 0xFFFFFFFF,
            int(inserts.shape[0]),
            int(deletes.shape[0]),
        )
        + inserts.astype("<i8").tobytes()
        + deletes.astype("<i8").tobytes()
    )
    return _frame(KIND_MUTATE, payload)


def encode_delta_ack(status: int, digest: int) -> bytes:
    """Encode the worker's verdict on a MUTATE: status + installed digest.

    On :data:`DELTA_OK` the digest is the freshly installed target; on
    :data:`DELTA_UNKNOWN_BASE` / :data:`DELTA_DIGEST_MISMATCH` it is the
    digest the worker still holds, so the parent knows what to re-ship.
    """
    if int(status) not in _DELTA_STATUSES:
        raise ProtocolError(f"unknown delta-ack status {status}")
    return _frame(KIND_DELTA_ACK, _DELTA_ACK.pack(int(status), int(digest)))


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _decode_shard_spec(body: bytes) -> dict:
    if len(body) < _SPEC_HEAD.size:
        raise ProtocolError("truncated shard-spec payload")
    (
        shard, attempt, epoch, entropy, epsilon, domain, layer, flags,
        n_vertices, n_pairs,
    ) = _SPEC_HEAD.unpack_from(body)
    offset = _SPEC_HEAD.size
    expected = n_vertices * 8
    if flags & _SPEC_HAS_VERSIONS:
        expected += n_vertices * 8
    expected += n_pairs * 8
    if len(body) - offset != expected:
        raise ProtocolError("shard-spec payload does not match its header")
    vertices = np.frombuffer(body, dtype="<i8", count=n_vertices, offset=offset)
    offset += n_vertices * 8
    versions = None
    if flags & _SPEC_HAS_VERSIONS:
        versions = np.frombuffer(
            body, dtype="<u8", count=n_vertices, offset=offset
        )
        offset += n_vertices * 8
    ia = ib = None
    if n_pairs:
        ia = np.frombuffer(body, dtype="<u4", count=n_pairs, offset=offset)
        offset += n_pairs * 4
        ib = np.frombuffer(body, dtype="<u4", count=n_pairs, offset=offset)
        ia = ia.astype(np.int64)
        ib = ib.astype(np.int64)
    return {
        "shard": shard,
        "attempt": attempt,
        "epoch": epoch,
        "entropy": entropy,
        "epsilon": epsilon,
        "domain": domain,
        "layer": layer,
        "vertices": vertices.astype(np.int64),
        "versions": None if versions is None else versions.astype(np.uint64),
        "ia": ia,
        "ib": ib,
        "want_fragment": bool(flags & _SPEC_WANT_FRAGMENT),
        "measure": bool(flags & _SPEC_MEASURE),
    }


def _decode_fragment(body: bytes) -> dict:
    if len(body) < _FRAG_HEAD.size:
        raise ProtocolError("truncated fragment payload")
    shard, attempt, checksum, n_rows = _FRAG_HEAD.unpack_from(body)
    offset = _FRAG_HEAD.size
    if len(body) < offset + (n_rows + 1) * 8:
        raise ProtocolError("fragment payload does not cover its indptr")
    indptr = np.frombuffer(
        body, dtype="<i8", count=n_rows + 1, offset=offset
    ).astype(np.int64)
    offset += (n_rows + 1) * 8
    if indptr.size == 0 or indptr[0] != 0 or np.any(np.diff(indptr) < 0):
        raise ProtocolError("fragment indptr is not a valid CSR offset array")
    n_cols = int(indptr[-1])
    if len(body) - offset != n_cols * 8:
        raise ProtocolError("fragment payload does not match its indptr")
    columns = np.frombuffer(
        body, dtype="<i8", count=n_cols, offset=offset
    ).astype(np.int64)
    if columns_checksum(columns) != checksum:
        raise PayloadIntegrityError(
            f"fragment for shard {shard} failed checksum verification "
            f"({n_cols} ids)"
        )
    return {
        "shard": shard,
        "attempt": attempt,
        "checksum": checksum,
        "indptr": indptr,
        "columns": columns,
    }


def _decode_reduced(body: bytes) -> dict:
    if len(body) < _REDUCED_HEAD.size:
        raise ProtocolError("truncated reduced payload")
    shard, attempt, checksum, n_rows, n_pairs, peak = _REDUCED_HEAD.unpack_from(
        body
    )
    offset = _REDUCED_HEAD.size
    if len(body) - offset != (n_rows + n_pairs) * 8:
        raise ProtocolError("reduced payload does not match its header")
    sizes = np.frombuffer(body, dtype="<i8", count=n_rows, offset=offset).astype(
        np.int64
    )
    offset += n_rows * 8
    n1 = np.frombuffer(body, dtype="<i8", count=n_pairs, offset=offset).astype(
        np.int64
    )
    if reduced_checksum(sizes, n1) != checksum:
        raise PayloadIntegrityError(
            f"reduced block for shard {shard} failed checksum verification "
            f"({n_pairs} pairs)"
        )
    return {
        "shard": shard,
        "attempt": attempt,
        "checksum": checksum,
        "sizes": sizes,
        "n1": n1,
        "peak_bytes": int(peak),
    }


def _decode_graph(body: bytes) -> dict:
    if len(body) < _GRAPH_HEAD.size:
        raise ProtocolError("truncated graph payload")
    digest, n_upper, n_lower = _GRAPH_HEAD.unpack_from(body)
    rest = len(body) - _GRAPH_HEAD.size
    if rest % 16:
        raise ProtocolError("graph edge payload must be uint64 pairs")
    edges = (
        np.frombuffer(body, dtype="<u8", offset=_GRAPH_HEAD.size)
        .astype(np.int64)
        .reshape(-1, 2)
    )
    if graph_digest(n_upper, n_lower, edges) != digest:
        raise PayloadIntegrityError("graph payload does not match its digest")
    return {
        "digest": digest,
        "n_upper": n_upper,
        "n_lower": n_lower,
        "edges": edges,
    }


def _decode_mutate(body: bytes) -> dict:
    if len(body) < _MUTATE_HEAD.size:
        raise ProtocolError("truncated mutate payload")
    base, target, checksum, n_ins, n_del = _MUTATE_HEAD.unpack_from(body)
    offset = _MUTATE_HEAD.size
    if len(body) - offset != (n_ins + n_del) * 16:
        raise ProtocolError("mutate payload does not match its header")
    inserts = (
        np.frombuffer(body, dtype="<i8", count=n_ins * 2, offset=offset)
        .astype(np.int64)
        .reshape(-1, 2)
    )
    offset += n_ins * 16
    deletes = (
        np.frombuffer(body, dtype="<i8", count=n_del * 2, offset=offset)
        .astype(np.int64)
        .reshape(-1, 2)
    )
    if (inserts.size and inserts.min() < 0) or (
        deletes.size and deletes.min() < 0
    ):
        raise ProtocolError("mutate edge endpoints must be non-negative")
    if delta_checksum(inserts, deletes) != checksum:
        raise PayloadIntegrityError(
            f"mutate delta against base {base:#x} failed checksum "
            f"verification ({n_ins} inserts, {n_del} deletes)"
        )
    return {
        "base_digest": base,
        "target_digest": target,
        "checksum": checksum,
        "inserts": inserts,
        "deletes": deletes,
    }


def decode_frame(data: bytes) -> tuple[int, object, bytes]:
    """Decode one frame; returns ``(kind, payload, remaining_bytes)``.

    ``payload`` is an id array for noisy-edges frames, a float for the
    scalar kinds, and a dict of decoded fields for the shard-transport
    kinds (hello/ping/pong/graph/shard-spec/fragment/reduced/error).
    Raises :class:`ProtocolError` on truncated or malformed input, on a
    declared payload length beyond :data:`MAX_FRAME_PAYLOAD` (rejected
    before any allocation), and :class:`PayloadIntegrityError` when a
    fragment/reduced/graph payload contradicts its checksum word.
    """
    if len(data) < _HEADER.size:
        raise ProtocolError("truncated frame header")
    kind, length = _HEADER.unpack_from(data)
    if length > MAX_FRAME_PAYLOAD:
        raise ProtocolError(
            f"frame declares a {length}-byte payload beyond the "
            f"{MAX_FRAME_PAYLOAD}-byte wire limit"
        )
    body = data[_HEADER.size : _HEADER.size + length]
    if len(body) != length:
        raise ProtocolError("truncated frame payload")
    rest = data[_HEADER.size + length :]
    if kind == KIND_NOISY_EDGES:
        if length % 8:
            raise ProtocolError("noisy-edges payload must be a uint64 array")
        ids = np.frombuffer(body, dtype="<u8").astype(np.int64)
        return kind, ids, rest
    if kind in _SCALAR_KINDS:
        if length != 8:
            raise ProtocolError("scalar payload must be exactly 8 bytes")
        return kind, struct.unpack("<d", body)[0], rest
    if kind == KIND_HELLO:
        if length != _HELLO.size:
            raise ProtocolError("hello payload must be version+caps+digest")
        version, caps, digest = _HELLO.unpack(body)
        return kind, {"version": version, "caps": caps, "digest": digest}, rest
    if kind in (KIND_PING, KIND_PONG):
        if length != _NONCE.size:
            raise ProtocolError("ping/pong payload must be a 4-byte nonce")
        return kind, {"nonce": _NONCE.unpack(body)[0]}, rest
    if kind == KIND_GRAPH:
        return kind, _decode_graph(body), rest
    if kind == KIND_SHARD_SPEC:
        return kind, _decode_shard_spec(body), rest
    if kind == KIND_FRAGMENT:
        return kind, _decode_fragment(body), rest
    if kind == KIND_REDUCED:
        return kind, _decode_reduced(body), rest
    if kind == KIND_WORKER_ERROR:
        return kind, {"message": body.decode("utf-8", "replace")}, rest
    if kind == KIND_MUTATE:
        return kind, _decode_mutate(body), rest
    if kind == KIND_DELTA_ACK:
        if length != _DELTA_ACK.size:
            raise ProtocolError("delta-ack payload must be status+digest")
        status, digest = _DELTA_ACK.unpack(body)
        if status not in _DELTA_STATUSES:
            raise ProtocolError(f"unknown delta-ack status {status}")
        return kind, {"status": status, "digest": digest}, rest
    raise ProtocolError(f"unknown frame kind {kind}")


def payload_bytes(frame: bytes) -> int:
    """Payload size of an encoded frame — the quantity Fig. 10 counts."""
    if len(frame) < _HEADER.size:
        raise ProtocolError("truncated frame header")
    _, length = _HEADER.unpack_from(frame)
    return length

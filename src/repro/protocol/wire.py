"""Wire format: byte-level encoding of the protocol's messages.

The communication figures (Fig. 10) count 8 bytes per id/scalar; this
module is the encoding those counts describe, so the accounting is backed
by real serialization rather than arithmetic alone. Three message kinds
exist on the wire:

* ``noisy-edges`` — a sorted ``uint64`` id array (a vertex's RR output);
* ``noisy-degree`` — one ``float64`` Laplace degree report;
* ``estimate`` — one ``float64`` released estimator value.

Every frame is ``[kind: 1 byte][length: 4 bytes LE][payload]``; payloads
round-trip exactly (tests in ``tests/test_protocol_wire.py``), and
:func:`frame_overhead`-free payload sizes equal the byte counts used by
the accounting layer.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "KIND_NOISY_EDGES",
    "KIND_NOISY_DEGREE",
    "KIND_ESTIMATE",
    "encode_noisy_edges",
    "encode_scalar",
    "decode_frame",
    "payload_bytes",
    "frame_overhead",
]

KIND_NOISY_EDGES = 1
KIND_NOISY_DEGREE = 2
KIND_ESTIMATE = 3

_HEADER = struct.Struct("<BI")  # kind, payload length in bytes
_SCALAR_KINDS = (KIND_NOISY_DEGREE, KIND_ESTIMATE)


def frame_overhead() -> int:
    """Header bytes added to every frame (kind + length)."""
    return _HEADER.size


def encode_noisy_edges(neighbors: np.ndarray) -> bytes:
    """Encode a noisy neighbor list as a frame of little-endian uint64 ids."""
    arr = np.asarray(neighbors, dtype=np.int64)
    if arr.size and arr.min() < 0:
        raise ProtocolError("vertex ids must be non-negative")
    payload = arr.astype("<u8").tobytes()
    return _HEADER.pack(KIND_NOISY_EDGES, len(payload)) + payload


def encode_scalar(value: float, kind: int) -> bytes:
    """Encode one float64 report (degree or estimate)."""
    if kind not in _SCALAR_KINDS:
        raise ProtocolError(f"kind {kind} is not a scalar message kind")
    payload = struct.pack("<d", float(value))
    return _HEADER.pack(kind, len(payload)) + payload


def decode_frame(data: bytes) -> tuple[int, np.ndarray | float, bytes]:
    """Decode one frame; returns ``(kind, payload, remaining_bytes)``.

    ``payload`` is an id array for noisy-edges frames and a float for the
    scalar kinds. Raises :class:`ProtocolError` on truncated or malformed
    input.
    """
    if len(data) < _HEADER.size:
        raise ProtocolError("truncated frame header")
    kind, length = _HEADER.unpack_from(data)
    body = data[_HEADER.size : _HEADER.size + length]
    if len(body) != length:
        raise ProtocolError("truncated frame payload")
    rest = data[_HEADER.size + length :]
    if kind == KIND_NOISY_EDGES:
        if length % 8:
            raise ProtocolError("noisy-edges payload must be a uint64 array")
        ids = np.frombuffer(body, dtype="<u8").astype(np.int64)
        return kind, ids, rest
    if kind in _SCALAR_KINDS:
        if length != 8:
            raise ProtocolError("scalar payload must be exactly 8 bytes")
        return kind, struct.unpack("<d", body)[0], rest
    raise ProtocolError(f"unknown frame kind {kind}")


def payload_bytes(frame: bytes) -> int:
    """Payload size of an encoded frame — the quantity Fig. 10 counts."""
    if len(frame) < _HEADER.size:
        raise ProtocolError("truncated frame header")
    _, length = _HEADER.unpack_from(frame)
    return length

"""The simulated vertex ↔ data-curator protocol.

A :class:`ProtocolSession` binds one common-neighborhood query
``(layer, u, w)`` on a graph to a privacy budget and provides the rounds the
paper's algorithms are built from:

* :meth:`randomized_response` — a query vertex perturbs its neighbor list
  (Warner RR) and uploads the noisy edges;
* :meth:`download` — a query vertex downloads another vertex's noisy list
  from the curator (multiple-round framework);
* :meth:`degree_round` — every vertex on the query layer reports a noisy
  degree via the Laplace mechanism (MultiR-DS round 1);
* :meth:`release_scalar` — a vertex releases a locally computed statistic
  with calibrated Laplace noise (single-source estimators);
* :meth:`ss_counts` / :meth:`naive_counts` — local/curator-side counting on
  noisy lists (post-processing; free of privacy cost).

Privacy accounting is enforced structurally: every data-dependent message
charges the owning vertex's ledger, and the ledger refuses charges beyond
the session budget. Communication is logged per message so Fig. 10 can be
reproduced.

Two execution modes are supported (see DESIGN.md §6): ``materialize``
perturbs real adjacency rows (complexity-faithful, used for timing and
fidelity tests); ``sketch`` draws the protocol's sufficient statistics
(S1/S2, N1/N2, noisy sizes) from their exact distributions, which is
distribution-equivalent and lets error experiments run at full scale. In
sketch mode the *joint* distribution between a handle's logged size and the
counts later drawn from it is not preserved (each is marginally exact);
communication and error statistics are aggregated separately so this does
not affect any reproduced figure.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import PrivacyError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.debias import joint_report_probs
from repro.privacy.mechanisms import (
    LaplaceMechanism,
    RandomizedResponse,
    flip_probability,
)
from repro.privacy.rng import RngLike, ensure_rng
from repro.privacy.sensitivity import degree_sensitivity
from repro.protocol.messages import (
    FLOAT_BYTES,
    ID_BYTES,
    CommunicationLog,
    Direction,
)
from repro.protocol.noisy import NoisyListHandle

__all__ = [
    "ExecutionMode",
    "DegreeRound",
    "ProtocolTranscript",
    "ProtocolSession",
    "resolve_mode",
]

# Graphs whose opposite layer is at most this size are materialized under AUTO.
_AUTO_MATERIALIZE_LIMIT = 20_000
# Below this many residual reporters the degree round draws exact Laplace
# noise even in sketch mode (CLT not yet reliable).
_CLT_MIN_REPORTERS = 64


class ExecutionMode(enum.Enum):
    """How the session realizes randomized-response outputs.

    ``SKETCH_VIEW`` is the engine-level sublinear-memory mode (each vertex
    releases a fixed-size private sketch — see
    :mod:`repro.engine.sketches`); it has no per-round session protocol,
    so :class:`ProtocolSession` rejects it and ``AUTO`` never resolves to
    it.
    """

    MATERIALIZE = "materialize"
    SKETCH = "sketch"
    SKETCH_VIEW = "sketch-view"
    AUTO = "auto"


def resolve_mode(graph, layer, mode: "ExecutionMode") -> "ExecutionMode":
    """Resolve ``AUTO`` by candidate-pool size (the one shared rule).

    Every ``AUTO`` consumer — session, engine, cache, server — must
    agree on the resolution, so they all call this helper: materialize
    while the opposite layer fits ``_AUTO_MATERIALIZE_LIMIT``, sketch
    beyond it. Non-``AUTO`` modes pass through unchanged.
    """
    if mode is not ExecutionMode.AUTO:
        return mode
    small = graph.layer_size(layer.opposite()) <= _AUTO_MATERIALIZE_LIMIT
    return ExecutionMode.MATERIALIZE if small else ExecutionMode.SKETCH


@dataclass(frozen=True)
class DegreeRound:
    """Result of the layer-wide noisy degree round (MultiR-DS round 1)."""

    noisy_degree_u: float
    noisy_degree_w: float
    noisy_average_degree: float


@dataclass(frozen=True)
class ProtocolTranscript:
    """Summary of one protocol run: rounds, bytes moved, budget spent."""

    rounds: int
    upload_bytes: int
    download_bytes: int
    max_epsilon_spent: float
    mode: ExecutionMode

    @property
    def total_bytes(self) -> int:
        return self.upload_bytes + self.download_bytes

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / 1e6


class ProtocolSession:
    """One common-neighborhood query executed under edge LDP.

    Parameters
    ----------
    graph:
        The private bipartite graph (each vertex only ever touches its own
        row; the session holds the full graph because it simulates all
        parties).
    layer:
        Layer holding both query vertices.
    u, w:
        The two distinct query vertices.
    epsilon:
        Total privacy budget granted to the query; the ledger refuses any
        vertex exceeding it.
    rng:
        Generator / seed / None.
    mode:
        Execution mode; ``AUTO`` materializes small graphs and sketches
        large ones.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        u: int,
        w: int,
        epsilon: float,
        rng: RngLike = None,
        mode: ExecutionMode = ExecutionMode.AUTO,
    ):
        if not math.isfinite(epsilon) or epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if mode is ExecutionMode.SKETCH_VIEW:
            raise ProtocolError(
                "sketch-view is an engine-level mode; sessions have no "
                "per-round protocol for it (use BatchQueryEngine or the "
                "*-view estimators)"
            )
        if u == w:
            raise ProtocolError("query vertices must be distinct")
        graph.degree(layer, u)  # validates the vertex indices
        graph.degree(layer, w)

        self.graph = graph
        self.layer = layer
        self.opposite = layer.opposite()
        self.u = int(u)
        self.w = int(w)
        self.epsilon = float(epsilon)
        self.rng = ensure_rng(rng)
        self.mode = resolve_mode(graph, layer, mode)
        self.ledger = PrivacyLedger(limit=self.epsilon)
        self.comm = CommunicationLog()
        self.rounds = 0

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    @property
    def n_opposite(self) -> int:
        """Size of the opposite layer — the common-neighbor candidate pool."""
        return self.graph.layer_size(self.opposite)

    def party(self, vertex: int) -> str:
        """Ledger label for a query-layer vertex."""
        return f"{self.layer.value}:{vertex}"

    def begin_round(self, name: str) -> str:
        """Mark the start of a protocol round; returns its label."""
        self.rounds += 1
        return f"round{self.rounds}:{name}"

    def _check_query_vertex(self, vertex: int) -> int:
        if vertex not in (self.u, self.w):
            raise ProtocolError(
                f"vertex {vertex} is not a query vertex of this session"
            )
        return int(vertex)

    # ------------------------------------------------------------------
    # Round primitives
    # ------------------------------------------------------------------
    def randomized_response(
        self, vertex: int, eps_rr: float, round_label: str = "rr"
    ) -> NoisyListHandle:
        """Perturb ``vertex``'s neighbor list with RR(eps_rr) and upload it."""
        vertex = self._check_query_vertex(vertex)
        rr = RandomizedResponse(eps_rr)
        neighbors = self.graph.neighbors(self.layer, vertex)
        degree = neighbors.size
        domain = self.n_opposite

        if self.mode is ExecutionMode.MATERIALIZE:
            # Sparse sampling of the perturbed row: distribution-equivalent
            # to flipping the dense 0/1 row but O(d + expected noisy edges)
            # instead of O(n_opposite).
            noisy = rr.perturb_neighbor_list(neighbors, domain, self.rng)
            handle = NoisyListHandle(vertex, eps_rr, int(noisy.size), noisy)
        else:
            kept = int(self.rng.binomial(degree, 1.0 - rr.flip_probability))
            flipped = int(self.rng.binomial(domain - degree, rr.flip_probability))
            handle = NoisyListHandle(vertex, eps_rr, kept + flipped, None)

        self.ledger.charge(self.party(vertex), eps_rr, "randomized-response", round_label)
        self.comm.record(Direction.UPLOAD, handle.size * ID_BYTES, f"{round_label}:edges")
        return handle

    def download(self, handle: NoisyListHandle, to_vertex: int) -> NoisyListHandle:
        """A query vertex downloads a noisy list from the curator.

        Downloads are post-processing of already-released data, so no
        privacy charge applies — only communication is logged.
        """
        self._check_query_vertex(to_vertex)
        if handle.owner == to_vertex:
            raise ProtocolError("a vertex does not download its own noisy list")
        self.comm.record(
            Direction.DOWNLOAD, handle.size * ID_BYTES, "download:edges"
        )
        return handle

    def degree_round(self, eps0: float, round_label: str = "degrees") -> DegreeRound:
        """Layer-wide noisy degree reports (MultiR-DS round 1).

        Every vertex on the query layer releases ``deg + Lap(1/eps0)``; the
        curator keeps the query vertices' reports and the layer average
        (used to correct non-positive reports). Parallel composition across
        disjoint neighbor lists makes the round eps0-edge LDP.
        """
        mech = LaplaceMechanism(eps0, degree_sensitivity())
        deg_u = self.graph.degree(self.layer, self.u)
        deg_w = self.graph.degree(self.layer, self.w)
        noisy_u = mech.release(deg_u, self.rng)
        noisy_w = mech.release(deg_w, self.rng)

        layer_n = self.graph.layer_size(self.layer)
        rest = layer_n - 2
        degree_sum = float(self.graph.num_edges)
        if self.mode is ExecutionMode.MATERIALIZE or rest < _CLT_MIN_REPORTERS:
            rest_noise = float(self.rng.laplace(0.0, mech.scale, size=rest).sum())
        else:
            # Sum of `rest` iid Laplace(b) ≈ Normal(0, rest * 2b^2) — exact
            # enough for the averaging use and O(1) instead of O(n2).
            rest_noise = float(self.rng.normal(0.0, math.sqrt(rest * 2.0) * mech.scale))
        noisy_sum = noisy_u + noisy_w + (degree_sum - deg_u - deg_w) + rest_noise
        noisy_avg = noisy_sum / layer_n if layer_n else 0.0

        self.ledger.charge(self.party(self.u), eps0, "laplace-degree", round_label)
        self.ledger.charge(self.party(self.w), eps0, "laplace-degree", round_label)
        # All remaining layer vertices report once with the same budget;
        # they are represented by one virtual party (their spends are equal).
        self.ledger.charge(
            f"{self.layer.value}:rest", eps0, "laplace-degree", round_label
        )
        self.comm.record(Direction.UPLOAD, layer_n * FLOAT_BYTES, f"{round_label}:reports")
        return DegreeRound(noisy_u, noisy_w, noisy_avg)

    def release_scalar(
        self,
        vertex: int,
        value: float,
        eps: float,
        sensitivity: float,
        round_label: str = "estimator",
    ) -> float:
        """A query vertex releases ``value`` via Laplace(sensitivity/eps)."""
        vertex = self._check_query_vertex(vertex)
        mech = LaplaceMechanism(eps, sensitivity)
        noisy = mech.release(value, self.rng)
        self.ledger.charge(self.party(vertex), eps, "laplace-release", round_label)
        self.comm.record(Direction.UPLOAD, FLOAT_BYTES, f"{round_label}:scalar")
        return noisy

    # ------------------------------------------------------------------
    # Local / curator-side counting (post-processing, no privacy cost)
    # ------------------------------------------------------------------
    def ss_counts(self, observer: int, handle: NoisyListHandle) -> tuple[int, int]:
        """``(S1, S2)`` for the single-source estimator (Alg. 3, lines 8-12).

        ``S1 = |N(observer, G) ∩ N(owner, G')|`` and ``S2 = deg(observer) - S1``,
        computed locally by ``observer`` from its true neighbors and the
        downloaded noisy list.
        """
        observer = self._check_query_vertex(observer)
        if handle.owner == observer:
            raise ProtocolError("observer must differ from the noisy list owner")
        true_neighbors = self.graph.neighbors(self.layer, observer)
        degree = true_neighbors.size
        if handle.materialized:
            s1 = int(np.count_nonzero(handle.contains(true_neighbors)))
        else:
            p = flip_probability(handle.epsilon)
            c2 = self.graph.count_common_neighbors(self.layer, observer, handle.owner)
            s1 = int(self.rng.binomial(c2, 1.0 - p)) + int(
                self.rng.binomial(degree - c2, p)
            )
        return s1, degree - s1

    def naive_counts(
        self, handle_u: NoisyListHandle, handle_w: NoisyListHandle
    ) -> tuple[int, int]:
        """``(N1, N2)`` on the noisy graph: intersection and union sizes.

        Used by Naive (N1 alone) and OneR (N1 and N2) on the curator side.
        """
        if handle_u.epsilon != handle_w.epsilon:
            raise ProtocolError("naive counts require a common RR budget")
        if handle_u.owner == handle_w.owner:
            raise ProtocolError("need noisy lists of two distinct vertices")
        if handle_u.materialized != handle_w.materialized:
            raise ProtocolError("handles must share an execution mode")

        if handle_u.materialized:
            n1 = int(
                np.intersect1d(
                    handle_u.neighbors, handle_w.neighbors, assume_unique=True
                ).size
            )
            n2 = int(handle_u.size + handle_w.size - n1)
            return n1, n2

        # Sketch mode: draw the contingency counts of each candidate class.
        p = flip_probability(handle_u.epsilon)
        a, b = handle_u.owner, handle_w.owner
        c2 = self.graph.count_common_neighbors(self.layer, a, b)
        deg_a = self.graph.degree(self.layer, a)
        deg_b = self.graph.degree(self.layer, b)
        categories = (
            (c2, 1.0 - p, 1.0 - p),  # true common neighbors
            (deg_a - c2, 1.0 - p, p),  # neighbors of a only
            (deg_b - c2, p, 1.0 - p),  # neighbors of b only
            (self.n_opposite - deg_a - deg_b + c2, p, p),  # neither
        )
        n1 = 0
        union = 0
        for count, q_a, q_b in categories:
            if count <= 0:
                continue
            both, only_a, only_b, _ = self.rng.multinomial(
                count, joint_report_probs(q_a, q_b)
            )
            n1 += int(both)
            union += int(both + only_a + only_b)
        return n1, union

    # ------------------------------------------------------------------
    def finalize(self) -> ProtocolTranscript:
        """Close the session: verify the budget and summarize the run."""
        self.ledger.assert_within(self.epsilon)
        return ProtocolTranscript(
            rounds=self.rounds,
            upload_bytes=self.comm.total_bytes(Direction.UPLOAD),
            download_bytes=self.comm.total_bytes(Direction.DOWNLOAD),
            max_epsilon_spent=self.ledger.max_spent(),
            mode=self.mode,
        )

"""Actor-based distributed execution of the paper's protocols.

:class:`ProtocolSession` simulates all parties inside one object for
speed; this module is the fidelity-first alternative: explicit
:class:`VertexActor` and :class:`CuratorActor` objects that communicate
only through :class:`Message` values on a :class:`Channel`. A vertex actor
is constructed from a :class:`~repro.graph.views.LocalView` — it *cannot*
read any other vertex's edges — and every message carries its byte size,
so the engine independently reproduces both the privacy accounting and
the communication accounting of the session-based path.
`tests/test_protocol_actors.py` checks the two engines are
distribution-equivalent.

The engine implements the paper's four LDP algorithms:
``naive``, ``oner``, ``multir-ss``, ``multir-ds-basic`` (the optimized
MultiR-DS differs from DS-Basic only in how (ε1, α) are chosen, which is
curator-side arithmetic already covered by the session engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.views import LocalView
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.mechanisms import LaplaceMechanism, RandomizedResponse
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.privacy.sensitivity import single_source_sensitivity
from repro.protocol.messages import FLOAT_BYTES, ID_BYTES

__all__ = ["Message", "Channel", "VertexActor", "CuratorActor", "ActorProtocol"]


@dataclass(frozen=True)
class Message:
    """One transmission between a vertex and the curator."""

    sender: str
    recipient: str
    kind: str
    payload: Any
    nbytes: int


@dataclass
class Channel:
    """Delivers messages and accumulates traffic statistics."""

    log: list[Message] = field(default_factory=list)

    def send(self, message: Message) -> Message:
        if message.nbytes < 0:
            raise ProtocolError("message size cannot be negative")
        self.log.append(message)
        return message

    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self.log)

    def bytes_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for m in self.log:
            out[m.kind] = out.get(m.kind, 0) + m.nbytes
        return out


class VertexActor:
    """A vertex: owns exactly its local view and its randomness."""

    def __init__(
        self,
        view: LocalView,
        channel: Channel,
        ledger: PrivacyLedger,
        rng: np.random.Generator,
    ):
        self.view = view
        self.channel = channel
        self.ledger = ledger
        self.rng = rng
        self.name = f"{view.layer.value}:{view.vertex}"

    # ------------------------------------------------------------------
    def send_noisy_list(self, epsilon: float) -> Message:
        """Apply RR(ε) to the own row and upload the noisy edges."""
        rr = RandomizedResponse(epsilon)
        noisy = rr.perturb_neighbor_list(
            self.view.neighbors, self.view.domain_size, self.rng
        )
        self.ledger.charge(self.name, epsilon, "randomized-response", "rr")
        return self.channel.send(
            Message(self.name, "curator", "noisy-edges", noisy, noisy.size * ID_BYTES)
        )

    def send_noisy_degree(self, epsilon: float) -> Message:
        """Release the own degree through the Laplace mechanism."""
        mech = LaplaceMechanism(epsilon, 1.0)
        value = mech.release(self.view.degree, self.rng)
        self.ledger.charge(self.name, epsilon, "laplace-degree", "degrees")
        return self.channel.send(
            Message(self.name, "curator", "noisy-degree", value, FLOAT_BYTES)
        )

    def send_single_source_estimate(
        self, other_noisy_list: Message, eps_rr: float, eps_release: float
    ) -> Message:
        """Round 2 of MultiR-SS: combine own edges with a downloaded list.

        ``other_noisy_list`` must be a noisy-edges message from another
        vertex (already public); the estimate is computed from the local
        view only and released with calibrated Laplace noise.
        """
        if other_noisy_list.kind != "noisy-edges":
            raise ProtocolError("expected a noisy-edges message")
        if other_noisy_list.sender == self.name:
            raise ProtocolError("cannot build an estimator from the own list")
        # The download leg: curator -> this vertex.
        self.channel.send(
            Message(
                "curator", self.name, "noisy-edges-download",
                other_noisy_list.payload, other_noisy_list.nbytes,
            )
        )
        noisy = np.asarray(other_noisy_list.payload, dtype=np.int64)
        s1 = int(np.isin(self.view.neighbors, noisy).sum())
        s2 = self.view.degree - s1
        rr = RandomizedResponse(eps_rr)
        p = rr.flip_probability
        raw = s1 * (1.0 - p) / (1.0 - 2.0 * p) - s2 * p / (1.0 - 2.0 * p)
        mech = LaplaceMechanism(eps_release, single_source_sensitivity(eps_rr))
        value = mech.release(raw, self.rng)
        self.ledger.charge(self.name, eps_release, "laplace-release", "estimate")
        return self.channel.send(
            Message(self.name, "curator", "estimate", value, FLOAT_BYTES)
        )


class CuratorActor:
    """The untrusted aggregator: sees only what the channel delivered."""

    def __init__(self, channel: Channel):
        self.channel = channel
        self._noisy_lists: dict[str, np.ndarray] = {}

    def receive_noisy_list(self, message: Message) -> None:
        if message.kind != "noisy-edges":
            raise ProtocolError(f"cannot ingest a {message.kind!r} message")
        self._noisy_lists[message.sender] = np.asarray(
            message.payload, dtype=np.int64
        )

    def noisy_list_of(self, vertex_name: str) -> np.ndarray:
        try:
            return self._noisy_lists[vertex_name]
        except KeyError:
            raise ProtocolError(f"no noisy list received from {vertex_name}") from None

    def count_intersection_union(self, a: str, b: str) -> tuple[int, int]:
        la, lb = self.noisy_list_of(a), self.noisy_list_of(b)
        n1 = int(np.intersect1d(la, lb, assume_unique=True).size)
        return n1, int(la.size + lb.size - n1)


class ActorProtocol:
    """Orchestrates one query through explicit actors and messages."""

    SUPPORTED = ("naive", "oner", "multir-ss", "multir-ds-basic")

    def __init__(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        u: int,
        w: int,
        epsilon: float,
        rng: RngLike = None,
    ):
        if u == w:
            raise ProtocolError("query vertices must be distinct")
        self.layer = layer
        self.epsilon = float(epsilon)
        self.channel = Channel()
        self.ledger = PrivacyLedger(limit=self.epsilon)
        rngs = spawn_rngs(ensure_rng(rng), 2)
        self.vertex_u = VertexActor(
            LocalView.from_graph(graph, layer, u), self.channel, self.ledger, rngs[0]
        )
        self.vertex_w = VertexActor(
            LocalView.from_graph(graph, layer, w), self.channel, self.ledger, rngs[1]
        )
        self.curator = CuratorActor(self.channel)
        self.domain = graph.layer_size(layer.opposite())

    # ------------------------------------------------------------------
    def _shared_rr_round(self, eps_rr: float) -> tuple[Message, Message]:
        msg_u = self.vertex_u.send_noisy_list(eps_rr)
        msg_w = self.vertex_w.send_noisy_list(eps_rr)
        self.curator.receive_noisy_list(msg_u)
        self.curator.receive_noisy_list(msg_w)
        return msg_u, msg_w

    def run(self, algorithm: str) -> float:
        """Execute ``algorithm`` end to end; returns the curator's answer."""
        if algorithm not in self.SUPPORTED:
            raise ProtocolError(
                f"actor engine supports {self.SUPPORTED}, got {algorithm!r}"
            )
        if algorithm == "naive":
            self._shared_rr_round(self.epsilon)
            n1, _ = self.curator.count_intersection_union(
                self.vertex_u.name, self.vertex_w.name
            )
            value = float(n1)
        elif algorithm == "oner":
            self._shared_rr_round(self.epsilon)
            n1, n2 = self.curator.count_intersection_union(
                self.vertex_u.name, self.vertex_w.name
            )
            p = RandomizedResponse(self.epsilon).flip_probability
            value = (
                n1 * (1.0 - p) ** 2
                - (n2 - n1) * p * (1.0 - p)
                + (self.domain - n2) * p * p
            ) / (1.0 - 2.0 * p) ** 2
        elif algorithm == "multir-ss":
            eps1 = eps2 = self.epsilon / 2.0
            _, msg_w = self._shared_rr_round(eps1)
            estimate = self.vertex_u.send_single_source_estimate(msg_w, eps1, eps2)
            value = float(estimate.payload)
        else:  # multir-ds-basic
            eps1 = eps2 = self.epsilon / 2.0
            msg_u, msg_w = self._shared_rr_round(eps1)
            est_u = self.vertex_u.send_single_source_estimate(msg_w, eps1, eps2)
            est_w = self.vertex_w.send_single_source_estimate(msg_u, eps1, eps2)
            value = 0.5 * float(est_u.payload) + 0.5 * float(est_w.payload)

        self.ledger.assert_within(self.epsilon)
        return value

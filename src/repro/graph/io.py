"""Reading and writing bipartite graphs.

Two interchange formats are supported:

* **Edge-list TSV** in the KONECT ``out.*`` style: comment lines start with
  ``%`` or ``#``; each data line holds ``upper lower`` (1-based or 0-based,
  whitespace-separated; extra columns such as weights/timestamps ignored).
* **NPZ** — a compact binary round-trip format used by the dataset cache.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builder import GraphBuilder

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
]

_COMMENT_PREFIXES = ("%", "#")


def read_edge_list(path: str | os.PathLike) -> BipartiteGraph:
    """Parse a KONECT-style TSV edge list into a :class:`BipartiteGraph`.

    Vertex names on each line are interned per layer in first-seen order,
    so arbitrary (even sparse / 1-based) ids are accepted.
    """
    builder = GraphBuilder()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise GraphError(f"{path}:{lineno}: expected at least two columns")
            builder.add_edge(fields[0], fields[1])
    return builder.build()


def write_edge_list(graph: BipartiteGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` as a TSV edge list (0-based ids, ``%`` header)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("% bip unweighted\n")
        handle.write(
            f"% {graph.num_edges} {graph.num_upper} {graph.num_lower}\n"
        )
        for upper, lower in graph.edges:
            handle.write(f"{int(upper)}\t{int(lower)}\n")


def save_npz(graph: BipartiteGraph, path: str | os.PathLike) -> None:
    """Serialize ``graph`` to a compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        n_upper=np.int64(graph.num_upper),
        n_lower=np.int64(graph.num_lower),
        edges=graph.edges,
    )


def load_npz(path: str | os.PathLike) -> BipartiteGraph:
    """Load a graph previously written by :func:`save_npz`."""
    path = Path(path)
    try:
        with np.load(path) as payload:
            return BipartiteGraph(
                int(payload["n_upper"]),
                int(payload["n_lower"]),
                payload["edges"],
            )
    except (KeyError, ValueError, OSError) as exc:
        raise GraphError(f"cannot load graph from {path}: {exc}") from exc

"""Bipartite graph substrate: structure, construction, I/O, generation."""

from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.builder import GraphBuilder
from repro.graph.delta import DeltaLog
from repro.graph.generators import (
    chung_lu_bipartite,
    configuration_bipartite,
    power_law_degrees,
    random_bipartite,
)
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list
from repro.graph.motifs import (
    butterflies_between,
    butterfly_degree,
    choose2,
    count_butterflies,
    count_wedges,
)
from repro.graph.sampling import (
    QueryPair,
    heaviest_layer,
    sample_imbalanced_pairs,
    sample_query_pairs,
    sample_vertex_fraction,
)
from repro.graph.views import LocalView
from repro.graph.stats import (
    GraphSummary,
    LayerSummary,
    degree_ccdf,
    degree_histogram,
    gini_coefficient,
    hill_tail_exponent,
    summarize_graph,
)

__all__ = [
    "BipartiteGraph",
    "Layer",
    "GraphBuilder",
    "DeltaLog",
    "random_bipartite",
    "chung_lu_bipartite",
    "configuration_bipartite",
    "power_law_degrees",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "butterflies_between",
    "butterfly_degree",
    "choose2",
    "count_butterflies",
    "count_wedges",
    "QueryPair",
    "heaviest_layer",
    "sample_query_pairs",
    "sample_imbalanced_pairs",
    "sample_vertex_fraction",
    "LocalView",
    "GraphSummary",
    "LayerSummary",
    "degree_ccdf",
    "degree_histogram",
    "gini_coefficient",
    "hill_tail_exponent",
    "summarize_graph",
]

"""Descriptive statistics of bipartite graphs.

Used to validate the synthetic dataset analogues against the published
KONECT statistics (heavy tails, skew) and generally useful for workload
characterization: degree histograms/CCDFs, the Gini coefficient of the
degree distribution, a Hill tail-exponent estimate, and a one-call
summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, Layer

__all__ = [
    "degree_histogram",
    "degree_ccdf",
    "gini_coefficient",
    "hill_tail_exponent",
    "LayerSummary",
    "GraphSummary",
    "summarize_graph",
]


def degree_histogram(graph: BipartiteGraph, layer: Layer) -> tuple[np.ndarray, np.ndarray]:
    """``(degrees, counts)`` — how many vertices have each degree."""
    degrees = graph.degrees(layer)
    if degrees.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    values, counts = np.unique(degrees, return_counts=True)
    return values.astype(np.int64), counts.astype(np.int64)


def degree_ccdf(graph: BipartiteGraph, layer: Layer) -> tuple[np.ndarray, np.ndarray]:
    """``(degrees, P(D >= degree))`` — the complementary CDF."""
    values, counts = degree_histogram(graph, layer)
    if values.size == 0:
        return values, np.empty(0, dtype=np.float64)
    total = counts.sum()
    tail = np.cumsum(counts[::-1])[::-1]
    return values, tail / total


def gini_coefficient(degrees: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed)."""
    degrees = np.sort(np.asarray(degrees, dtype=np.float64))
    if degrees.size == 0:
        raise GraphError("need at least one value for the Gini coefficient")
    if (degrees < 0).any():
        raise GraphError("Gini coefficient requires non-negative values")
    total = degrees.sum()
    if total == 0:
        return 0.0
    n = degrees.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * degrees).sum()) / (n * total) - (n + 1) / n)


def hill_tail_exponent(degrees: np.ndarray, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the power-law tail exponent ``alpha``.

    Uses the top ``tail_fraction`` of the sample; returns the exponent of
    ``P(D >= d) ∝ d^(1 - alpha)`` (so pure Zipfian degrees give ~2-3).
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise GraphError("tail_fraction must be in (0, 1]")
    degrees = np.sort(np.asarray(degrees, dtype=np.float64))
    degrees = degrees[degrees > 0]
    if degrees.size < 10:
        raise GraphError("need at least 10 positive degrees for a tail fit")
    k = max(2, int(degrees.size * tail_fraction))
    tail = degrees[-k:]
    threshold = tail[0]
    hill = np.mean(np.log(tail / threshold))
    if hill <= 0:
        raise GraphError("degenerate tail (all tail degrees equal)")
    return 1.0 + 1.0 / float(hill)


@dataclass(frozen=True)
class LayerSummary:
    """Degree statistics of one layer."""

    size: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    gini: float


@dataclass(frozen=True)
class GraphSummary:
    """One-call description of a bipartite graph."""

    num_upper: int
    num_lower: int
    num_edges: int
    density: float
    upper: LayerSummary
    lower: LayerSummary


def _layer_summary(graph: BipartiteGraph, layer: Layer) -> LayerSummary:
    degrees = graph.degrees(layer)
    if degrees.size == 0:
        return LayerSummary(0, 0, 0, 0.0, 0.0, 0.0)
    return LayerSummary(
        size=int(degrees.size),
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        mean_degree=float(degrees.mean()),
        median_degree=float(np.median(degrees)),
        gini=gini_coefficient(degrees),
    )


def summarize_graph(graph: BipartiteGraph) -> GraphSummary:
    """Compute the full summary (both layers)."""
    return GraphSummary(
        num_upper=graph.num_upper,
        num_lower=graph.num_lower,
        num_edges=graph.num_edges,
        density=graph.density(),
        upper=_layer_summary(graph, Layer.UPPER),
        lower=_layer_summary(graph, Layer.LOWER),
    )

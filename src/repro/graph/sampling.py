"""Sampling utilities for experiments.

Three samplers back the paper's evaluation protocol:

* :func:`sample_vertex_fraction` — vertex-induced subgraphs at a fraction
  of ``|V|`` (Fig. 11 scalability study).
* :func:`sample_query_pairs` — uniform same-layer query pairs (all error
  figures; the paper samples 100 pairs per dataset).
* :func:`sample_imbalanced_pairs` — pairs whose degree ratio exceeds a
  factor κ (Fig. 9 robustness study).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.rng import ensure_rng

__all__ = [
    "QueryPair",
    "sample_vertex_fraction",
    "sample_query_pairs",
    "sample_imbalanced_pairs",
    "heaviest_layer",
]


class QueryPair(tuple):
    """A ``(layer, a, b)`` query: two distinct vertices on the same layer."""

    __slots__ = ()

    def __new__(cls, layer: Layer, a: int, b: int):
        if a == b:
            raise GraphError("query vertices must be distinct")
        return super().__new__(cls, (layer, int(a), int(b)))

    @property
    def layer(self) -> Layer:
        return self[0]

    @property
    def a(self) -> int:
        return self[1]

    @property
    def b(self) -> int:
        return self[2]


def sample_vertex_fraction(
    graph: BipartiteGraph,
    fraction: float,
    rng: np.random.Generator | int | None = None,
) -> BipartiteGraph:
    """Uniformly keep ``fraction`` of the vertices on each layer (Fig. 11).

    Mirrors the paper: sample vertices uniformly, take the induced
    subgraph. Both layers are subsampled at the same rate; at least one
    vertex per non-empty layer is kept.
    """
    if not 0.0 < fraction <= 1.0:
        raise GraphError(f"fraction must be in (0, 1], got {fraction}")
    rng = ensure_rng(rng)
    if fraction == 1.0:
        return graph

    def _pick(size: int) -> np.ndarray:
        if size == 0:
            return np.empty(0, dtype=np.int64)
        keep = max(1, int(round(size * fraction)))
        return rng.choice(size, size=keep, replace=False)

    return graph.induced_subgraph(_pick(graph.num_upper), _pick(graph.num_lower))


def heaviest_layer(graph: BipartiteGraph) -> Layer:
    """The layer with the larger maximum degree.

    Degree-imbalance workloads (Fig. 9) need a layer whose tail actually
    contains vertices κ times heavier than the lightest ones; on bipartite
    graphs that is the layer with the heavier hub (users in user–item
    graphs, teams in athlete–team graphs, ...).
    """
    upper = graph.max_degree(Layer.UPPER)
    lower = graph.max_degree(Layer.LOWER)
    return Layer.UPPER if upper >= lower else Layer.LOWER


def _eligible_vertices(graph: BipartiteGraph, layer: Layer, min_degree: int) -> np.ndarray:
    degrees = graph.degrees(layer)
    eligible = np.flatnonzero(degrees >= min_degree)
    if eligible.size < 2:
        raise GraphError(
            f"layer {layer} has fewer than two vertices with degree >= {min_degree}"
        )
    return eligible


def sample_query_pairs(
    graph: BipartiteGraph,
    layer: Layer,
    count: int,
    rng: np.random.Generator | int | None = None,
    min_degree: int = 1,
) -> list[QueryPair]:
    """Uniformly sample ``count`` distinct-vertex query pairs on ``layer``.

    ``min_degree`` excludes isolated vertices by default (a common-neighbor
    query against an isolated vertex is trivially zero and the paper's
    query workload is drawn from active vertices).
    """
    if count <= 0:
        return []
    rng = ensure_rng(rng)
    eligible = _eligible_vertices(graph, layer, min_degree)
    pairs: list[QueryPair] = []
    while len(pairs) < count:
        a, b = rng.choice(eligible, size=2, replace=False)
        pairs.append(QueryPair(layer, int(a), int(b)))
    return pairs


def sample_imbalanced_pairs(
    graph: BipartiteGraph,
    layer: Layer,
    count: int,
    kappa: float,
    rng: np.random.Generator | int | None = None,
    min_degree: int = 1,
    max_attempts: int = 200_000,
) -> list[QueryPair]:
    """Sample pairs with ``max(deg) > kappa * min(deg)`` (Fig. 9 workload).

    Rejection-samples uniform pairs first; if the constraint is too rare it
    falls back to stratified construction (one endpoint from the lowest
    degree decile, the other from vertices whose degree satisfies the
    ratio). Raises :class:`GraphError` when the graph simply has no
    qualifying pair.
    """
    if kappa < 1.0:
        raise GraphError(f"kappa must be >= 1, got {kappa}")
    if count <= 0:
        return []
    rng = ensure_rng(rng)
    eligible = _eligible_vertices(graph, layer, min_degree)
    degrees = graph.degrees(layer)

    pairs: list[QueryPair] = []
    attempts = 0
    while len(pairs) < count and attempts < max_attempts:
        attempts += 1
        a, b = rng.choice(eligible, size=2, replace=False)
        da, db = degrees[a], degrees[b]
        if max(da, db) > kappa * min(da, db):
            pairs.append(QueryPair(layer, int(a), int(b)))

    if len(pairs) < count:
        # Stratified fallback: pair low-degree anchors with heavy vertices,
        # cycling through the anchors (ascending degree) until the quota is
        # met. Anchors are sorted ascending, so once one anchor has no
        # sufficiently heavy partner, no later anchor can have one either.
        order = eligible[np.argsort(degrees[eligible], kind="stable")]
        while len(pairs) < count:
            added = False
            for low in order:
                if len(pairs) >= count:
                    break
                threshold = kappa * degrees[low]
                heavy = eligible[degrees[eligible] > threshold]
                heavy = heavy[heavy != low]
                if heavy.size == 0:
                    break
                partner = int(rng.choice(heavy))
                # Randomize slot order so neither pair position is biased
                # toward the low-degree endpoint (MultiR-SS's error depends
                # on which one plays the source role).
                if rng.random() < 0.5:
                    pairs.append(QueryPair(layer, int(low), partner))
                else:
                    pairs.append(QueryPair(layer, partner, int(low)))
                added = True
            if not added:
                raise GraphError(
                    f"could not find {count} pairs with degree imbalance "
                    f"kappa={kappa}"
                )
    return pairs

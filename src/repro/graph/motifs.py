"""Exact motif counting on bipartite graphs (wedges and butterflies).

The paper motivates common-neighbor counting as the primitive behind
(p,q)-biclique counting; the smallest interesting case is the *butterfly*
(the 2x2 biclique), whose count between two same-layer vertices is
``C(C2(u,w), 2)``. This module provides the exact counts — the ground
truth for the LDP butterfly estimators in
:mod:`repro.applications.butterfly`.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.graph.bipartite import BipartiteGraph, Layer

__all__ = [
    "choose2",
    "count_wedges",
    "butterflies_between",
    "butterfly_degree",
    "count_butterflies",
]


def choose2(n: int | float) -> float:
    """``C(n, 2)`` extended to real arguments (used by the estimators)."""
    return n * (n - 1) / 2.0


def count_wedges(graph: BipartiteGraph, layer: Layer) -> int:
    """Number of wedges whose endpoints lie on ``layer``.

    A wedge is a path ``u - v - w`` with ``u, w`` on ``layer`` and ``v``
    on the opposite layer; each opposite vertex of degree ``d``
    contributes ``C(d, 2)``.
    """
    degrees = graph.degrees(layer.opposite())
    return int(sum(d * (d - 1) // 2 for d in map(int, degrees)))


def butterflies_between(graph: BipartiteGraph, layer: Layer, u: int, w: int) -> int:
    """Butterflies containing both ``u`` and ``w``: ``C(C2(u,w), 2)``."""
    c2 = graph.count_common_neighbors(layer, u, w)
    return c2 * (c2 - 1) // 2


def butterfly_degree(graph: BipartiteGraph, layer: Layer, u: int) -> int:
    """Number of butterflies containing vertex ``u``.

    Enumerates ``u``'s two-hop neighborhood, counting the wedges to each
    co-vertex ``w``; every pair of wedges to the same ``w`` closes a
    butterfly.
    """
    wedge_counts: dict[int, int] = defaultdict(int)
    for v in map(int, graph.neighbors(layer, u)):
        for w in map(int, graph.neighbors(layer.opposite(), v)):
            if w != u:
                wedge_counts[w] += 1
    return sum(c * (c - 1) // 2 for c in wedge_counts.values())


def count_butterflies(graph: BipartiteGraph) -> int:
    """Exact global butterfly count.

    Standard wedge-aggregation algorithm: for every vertex on the smaller
    side, count wedges per same-layer endpoint pair and sum ``C(cnt, 2)``.
    Runs in O(Σ deg(v)²) time — fine for the test-scale graphs this
    substrate targets.
    """
    # Aggregate wedges through the layer with the cheaper sum of squared
    # degrees (the wedge "centers").
    cost_upper = float((graph.degrees(Layer.UPPER).astype(np.float64) ** 2).sum())
    cost_lower = float((graph.degrees(Layer.LOWER).astype(np.float64) ** 2).sum())
    center_layer = Layer.UPPER if cost_upper <= cost_lower else Layer.LOWER
    endpoint_layer = center_layer.opposite()

    n_endpoint = graph.layer_size(endpoint_layer)
    wedge_counts: dict[int, int] = defaultdict(int)
    for center in range(graph.layer_size(center_layer)):
        nbrs = graph.neighbors(center_layer, center)
        for i in range(nbrs.size):
            base = int(nbrs[i]) * n_endpoint
            for j in range(i + 1, nbrs.size):
                wedge_counts[base + int(nbrs[j])] += 1
    return sum(c * (c - 1) // 2 for c in wedge_counts.values())

"""Incremental construction of :class:`~repro.graph.bipartite.BipartiteGraph`.

:class:`BipartiteGraph` itself is immutable; :class:`GraphBuilder` collects
edges (optionally with string vertex names, as found in raw KONECT files)
and produces the final relabelled graph in one shot.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and builds an immutable :class:`BipartiteGraph`.

    Vertices may be referred to by arbitrary hashable names; names are
    assigned dense integer ids per layer in first-seen order. Integer names
    are kept as-is only in the sense that they are hashable names like any
    other — use :meth:`upper_id` / :meth:`lower_id` to recover the mapping.
    """

    def __init__(self):
        self._upper_ids: dict[Hashable, int] = {}
        self._lower_ids: dict[Hashable, int] = {}
        self._edges: list[tuple[int, int]] = []
        self._built = False

    # ------------------------------------------------------------------
    def _intern(self, table: dict[Hashable, int], name: Hashable) -> int:
        if name not in table:
            table[name] = len(table)
        return table[name]

    def add_upper(self, name: Hashable) -> int:
        """Ensure an upper vertex named ``name`` exists; return its id."""
        return self._intern(self._upper_ids, name)

    def add_lower(self, name: Hashable) -> int:
        """Ensure a lower vertex named ``name`` exists; return its id."""
        return self._intern(self._lower_ids, name)

    def add_edge(self, upper_name: Hashable, lower_name: Hashable) -> "GraphBuilder":
        """Add an edge between the named upper and lower vertices."""
        u = self.add_upper(upper_name)
        l = self.add_lower(lower_name)
        self._edges.append((u, l))
        return self

    def add_edges(self, pairs) -> "GraphBuilder":
        """Add many ``(upper_name, lower_name)`` pairs."""
        for upper_name, lower_name in pairs:
            self.add_edge(upper_name, lower_name)
        return self

    # ------------------------------------------------------------------
    @property
    def num_upper(self) -> int:
        return len(self._upper_ids)

    @property
    def num_lower(self) -> int:
        return len(self._lower_ids)

    @property
    def num_edges(self) -> int:
        """Number of edge insertions so far (duplicates not collapsed yet)."""
        return len(self._edges)

    def upper_id(self, name: Hashable) -> int:
        """Dense id assigned to the upper vertex ``name``."""
        try:
            return self._upper_ids[name]
        except KeyError:
            raise GraphError(f"unknown upper vertex {name!r}") from None

    def lower_id(self, name: Hashable) -> int:
        """Dense id assigned to the lower vertex ``name``."""
        try:
            return self._lower_ids[name]
        except KeyError:
            raise GraphError(f"unknown lower vertex {name!r}") from None

    def upper_names(self) -> list[Hashable]:
        """Upper vertex names in id order."""
        return list(self._upper_ids)

    def lower_names(self) -> list[Hashable]:
        """Lower vertex names in id order."""
        return list(self._lower_ids)

    # ------------------------------------------------------------------
    def build(self) -> BipartiteGraph:
        """Produce the immutable graph (duplicate edges collapse)."""
        edges = np.asarray(self._edges, dtype=np.int64).reshape(-1, 2)
        return BipartiteGraph(self.num_upper, self.num_lower, edges)

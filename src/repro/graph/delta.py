"""Out-of-place edge mutation log for streaming bipartite graphs.

A :class:`DeltaLog` records edge inserts and deletes against an immutable
base :class:`~repro.graph.bipartite.BipartiteGraph` without touching it.
The log keeps *net* semantics:

* inserting an edge the base already has is a no-op;
* deleting an edge the base does not have is a no-op;
* the **last** operation on an ``(upper, lower)`` key wins, so an
  insert-then-delete of the same absent edge (or delete-then-insert of a
  present one) cancels to nothing.

Net semantics are what the incremental epoch machinery needs: a vertex
is *dirty* only if its realized neighborhood actually changed, and only
dirty vertices redraw (and recharge) at the next rotation. The
metamorphic suite pins this down — a cancelled mutation leaves the next
rotation's byte stream identical to never having touched the graph.

``apply()`` materializes the mutated graph through
:meth:`BipartiteGraph.apply_edge_delta`, which splices only the dirty
CSR rows instead of re-sorting the whole edge list, so applying a small
delta to a huge graph is O(m) memcpy plus O(dirty) merge work.

Long-running ingest adds two more needs (``docs/streaming-guide.md``):

* :meth:`DeltaLog.compact` shrinks a log to its *net* entries — the
  edges whose membership actually changes — so a log that absorbed a
  million churning ops over many epochs holds memory bounded by the
  dirty edge set, not the op count;
* :meth:`DeltaLog.compose` overlays a later log (recorded against the
  earlier log's applied graph) onto an earlier one, last-op-wins, so a
  parent can keep one compacted delta chain per historical snapshot and
  resync a worker that is several epochs behind with a single push.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, Layer

__all__ = ["DeltaLog"]

_INSERT = True
_DELETE = False


class DeltaLog:
    """Ordered edge-mutation log with net-effect queries.

    Parameters
    ----------
    base:
        The immutable graph the mutations are recorded against.
    """

    def __init__(self, base: BipartiteGraph):
        self._base = base
        # (upper, lower) -> last requested op; insertion order preserved.
        self._last: dict[tuple[int, int], bool] = {}
        self._recorded = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _check(self, upper: int, lower: int) -> tuple[int, int]:
        upper, lower = int(upper), int(lower)
        if not 0 <= upper < self._base.num_upper:
            raise GraphError(
                f"upper endpoint {upper} out of range for layer of size "
                f"{self._base.num_upper}"
            )
        if not 0 <= lower < self._base.num_lower:
            raise GraphError(
                f"lower endpoint {lower} out of range for layer of size "
                f"{self._base.num_lower}"
            )
        return upper, lower

    def insert(self, upper: int, lower: int) -> None:
        """Record an edge insert (no-op if the base already has it and
        no delete was logged in between)."""
        self._last[self._check(upper, lower)] = _INSERT
        self._recorded += 1

    def delete(self, upper: int, lower: int) -> None:
        """Record an edge delete (no-op if the base never had it and no
        insert was logged in between)."""
        self._last[self._check(upper, lower)] = _DELETE
        self._recorded += 1

    def insert_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        for upper, lower in edges:
            self.insert(upper, lower)

    def delete_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        for upper, lower in edges:
            self.delete(upper, lower)

    # ------------------------------------------------------------------
    # Net-effect queries
    # ------------------------------------------------------------------
    @property
    def base(self) -> BipartiteGraph:
        return self._base

    def __len__(self) -> int:
        """Number of operations recorded (including cancelled ones)."""
        return self._recorded

    def _net(self, want_insert: bool) -> np.ndarray:
        """Edges whose last op is ``want_insert`` and actually changes
        membership relative to the base graph."""
        out = [
            (u, v)
            for (u, v), op in self._last.items()
            if op is want_insert and self._base.has_edge(u, v) is not want_insert
        ]
        if not out:
            return np.empty((0, 2), dtype=np.int64)
        arr = np.array(sorted(out), dtype=np.int64)
        return arr

    def net_inserts(self) -> np.ndarray:
        """``(k, 2)`` array of edges the delta genuinely adds."""
        return self._net(_INSERT)

    def net_deletes(self) -> np.ndarray:
        """``(k, 2)`` array of edges the delta genuinely removes."""
        return self._net(_DELETE)

    @property
    def is_net_empty(self) -> bool:
        """True when the log's net effect on the base graph is nothing."""
        return not (self.net_inserts().size or self.net_deletes().size)

    def dirty_vertices(self, layer: Layer) -> np.ndarray:
        """Sorted vertices on ``layer`` whose neighborhood the net delta
        changes — exactly the set that must redraw at the next rotation."""
        column = 0 if layer is Layer.UPPER else 1
        touched = np.concatenate(
            [self.net_inserts()[:, column], self.net_deletes()[:, column]]
        )
        return np.unique(touched)

    def net_ops(self) -> dict[tuple[int, int], bool]:
        """Net edge → final-membership map (True = present after apply).

        Only membership-changing entries appear; the transport layer
        ships exactly these as a MUTATE frame's insert/delete lists.
        """
        return {
            (u, v): op
            for (u, v), op in self._last.items()
            if self._base.has_edge(u, v) is not op
        }

    # ------------------------------------------------------------------
    # Compaction and cross-epoch composition
    # ------------------------------------------------------------------
    def compact(self) -> "DeltaLog":
        """A new log holding only this log's net effect.

        Cancelled churn (insert-then-delete of an absent edge, repeated
        flips that land back on the base's membership) is dropped, so
        the compacted log's memory is bounded by the number of edges —
        and hence vertices — actually dirtied, never by how many ops the
        stream recorded. ``len()`` of the compacted log counts the kept
        entries.
        """
        out = DeltaLog(self._base)
        out._last = self.net_ops()
        out._recorded = len(out._last)
        return out

    @classmethod
    def compose(cls, earlier: "DeltaLog", later: "DeltaLog") -> "DeltaLog":
        """Overlay ``later`` (recorded against ``earlier.apply()``) onto
        ``earlier``, producing one log against ``earlier.base``.

        Last-op-wins across the epoch boundary: an edge the later log
        touches takes the later verdict; everything else keeps the
        earlier one. Ops that net out against the original base (e.g.
        a later re-insert of an earlier delete) simply vanish from
        ``net_inserts()``/``net_deletes()``, so composing a chain and
        applying it lands on the same graph as applying each hop.
        """
        if (
            later.base.num_upper != earlier.base.num_upper
            or later.base.num_lower != earlier.base.num_lower
        ):
            raise GraphError(
                "cannot compose delta logs across different layer sizes"
            )
        out = cls(earlier.base)
        out._last = {**earlier._last, **later._last}
        out._recorded = earlier._recorded + later._recorded
        return out

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def apply(self) -> BipartiteGraph:
        """Materialize the mutated graph (the base itself if net-empty)."""
        inserts, deletes = self.net_inserts(), self.net_deletes()
        if not (inserts.size or deletes.size):
            return self._base
        return self._base.apply_edge_delta(inserts, deletes)

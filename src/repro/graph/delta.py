"""Out-of-place edge mutation log for streaming bipartite graphs.

A :class:`DeltaLog` records edge inserts and deletes against an immutable
base :class:`~repro.graph.bipartite.BipartiteGraph` without touching it.
The log keeps *net* semantics:

* inserting an edge the base already has is a no-op;
* deleting an edge the base does not have is a no-op;
* the **last** operation on an ``(upper, lower)`` key wins, so an
  insert-then-delete of the same absent edge (or delete-then-insert of a
  present one) cancels to nothing.

Net semantics are what the incremental epoch machinery needs: a vertex
is *dirty* only if its realized neighborhood actually changed, and only
dirty vertices redraw (and recharge) at the next rotation. The
metamorphic suite pins this down — a cancelled mutation leaves the next
rotation's byte stream identical to never having touched the graph.

``apply()`` materializes the mutated graph through
:meth:`BipartiteGraph.apply_edge_delta`, which splices only the dirty
CSR rows instead of re-sorting the whole edge list, so applying a small
delta to a huge graph is O(m) memcpy plus O(dirty) merge work.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, Layer

__all__ = ["DeltaLog"]

_INSERT = True
_DELETE = False


class DeltaLog:
    """Ordered edge-mutation log with net-effect queries.

    Parameters
    ----------
    base:
        The immutable graph the mutations are recorded against.
    """

    def __init__(self, base: BipartiteGraph):
        self._base = base
        # (upper, lower) -> last requested op; insertion order preserved.
        self._last: dict[tuple[int, int], bool] = {}
        self._recorded = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _check(self, upper: int, lower: int) -> tuple[int, int]:
        upper, lower = int(upper), int(lower)
        if not 0 <= upper < self._base.num_upper:
            raise GraphError(
                f"upper endpoint {upper} out of range for layer of size "
                f"{self._base.num_upper}"
            )
        if not 0 <= lower < self._base.num_lower:
            raise GraphError(
                f"lower endpoint {lower} out of range for layer of size "
                f"{self._base.num_lower}"
            )
        return upper, lower

    def insert(self, upper: int, lower: int) -> None:
        """Record an edge insert (no-op if the base already has it and
        no delete was logged in between)."""
        self._last[self._check(upper, lower)] = _INSERT
        self._recorded += 1

    def delete(self, upper: int, lower: int) -> None:
        """Record an edge delete (no-op if the base never had it and no
        insert was logged in between)."""
        self._last[self._check(upper, lower)] = _DELETE
        self._recorded += 1

    def insert_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        for upper, lower in edges:
            self.insert(upper, lower)

    def delete_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        for upper, lower in edges:
            self.delete(upper, lower)

    # ------------------------------------------------------------------
    # Net-effect queries
    # ------------------------------------------------------------------
    @property
    def base(self) -> BipartiteGraph:
        return self._base

    def __len__(self) -> int:
        """Number of operations recorded (including cancelled ones)."""
        return self._recorded

    def _net(self, want_insert: bool) -> np.ndarray:
        """Edges whose last op is ``want_insert`` and actually changes
        membership relative to the base graph."""
        out = [
            (u, v)
            for (u, v), op in self._last.items()
            if op is want_insert and self._base.has_edge(u, v) is not want_insert
        ]
        if not out:
            return np.empty((0, 2), dtype=np.int64)
        arr = np.array(sorted(out), dtype=np.int64)
        return arr

    def net_inserts(self) -> np.ndarray:
        """``(k, 2)`` array of edges the delta genuinely adds."""
        return self._net(_INSERT)

    def net_deletes(self) -> np.ndarray:
        """``(k, 2)`` array of edges the delta genuinely removes."""
        return self._net(_DELETE)

    @property
    def is_net_empty(self) -> bool:
        """True when the log's net effect on the base graph is nothing."""
        return not (self.net_inserts().size or self.net_deletes().size)

    def dirty_vertices(self, layer: Layer) -> np.ndarray:
        """Sorted vertices on ``layer`` whose neighborhood the net delta
        changes — exactly the set that must redraw at the next rotation."""
        column = 0 if layer is Layer.UPPER else 1
        touched = np.concatenate(
            [self.net_inserts()[:, column], self.net_deletes()[:, column]]
        )
        return np.unique(touched)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def apply(self) -> BipartiteGraph:
        """Materialize the mutated graph (the base itself if net-empty)."""
        inserts, deletes = self.net_inserts(), self.net_deletes()
        if not (inserts.size or deletes.size):
            return self._base
        return self._base.apply_edge_delta(inserts, deletes)

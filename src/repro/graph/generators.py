"""Random bipartite graph generators.

These provide the synthetic substrate used to reproduce the paper's 15
KONECT datasets offline (see :mod:`repro.datasets`). Three families are
implemented:

* :func:`random_bipartite` — the bipartite analogue of G(n, m): ``m``
  distinct edges sampled uniformly from the ``n1 x n2`` grid.
* :func:`chung_lu_bipartite` — expected-degree (Chung–Lu) model driven by
  per-vertex weights; the work-horse for skewed real-world-like graphs.
* :func:`configuration_bipartite` — stub-matching on two degree sequences
  (parallel edges collapsed, so realized degrees are approximate).

plus :func:`power_law_degrees`, a discrete bounded Pareto sampler used to
produce heavy-tailed weight sequences.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.privacy.rng import ensure_rng

__all__ = [
    "random_bipartite",
    "chung_lu_bipartite",
    "configuration_bipartite",
    "power_law_degrees",
]


def _sample_distinct_cells(
    n_upper: int, n_lower: int, m: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``m`` distinct cells of an ``n_upper x n_lower`` grid.

    Uses flat-index rejection sampling: efficient while ``m`` is well below
    the grid size (enforced by callers).
    """
    total = n_upper * n_lower
    chosen: np.ndarray = np.empty(0, dtype=np.int64)
    # Oversample slightly each round to amortize the dedup passes.
    while chosen.size < m:
        need = m - chosen.size
        draw = rng.integers(0, total, size=int(need * 1.2) + 8, dtype=np.int64)
        chosen = np.unique(np.concatenate([chosen, draw]))
    if chosen.size > m:
        chosen = rng.choice(chosen, size=m, replace=False)
    return np.column_stack([chosen // n_lower, chosen % n_lower])


def random_bipartite(
    n_upper: int,
    n_lower: int,
    num_edges: int,
    rng: np.random.Generator | int | None = None,
) -> BipartiteGraph:
    """Uniform bipartite G(n1, n2, m): ``num_edges`` distinct random edges."""
    rng = ensure_rng(rng)
    if n_upper <= 0 or n_lower <= 0:
        if num_edges > 0:
            raise GraphError("cannot place edges on an empty layer")
        return BipartiteGraph(max(n_upper, 0), max(n_lower, 0))
    total = n_upper * n_lower
    if num_edges < 0 or num_edges > total:
        raise GraphError(f"num_edges={num_edges} outside [0, {total}]")
    if num_edges > total // 2:
        # Dense regime: permute all cells instead of rejection sampling.
        cells = rng.permutation(total)[:num_edges]
        edges = np.column_stack([cells // n_lower, cells % n_lower])
    else:
        edges = _sample_distinct_cells(n_upper, n_lower, num_edges, rng)
    return BipartiteGraph(n_upper, n_lower, edges)


def power_law_degrees(
    n: int,
    exponent: float = 2.5,
    d_min: int = 1,
    d_max: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample ``n`` degrees from a bounded discrete power law.

    ``P(d) ∝ d^(-exponent)`` on ``[d_min, d_max]`` via inverse-CDF sampling
    of the continuous bounded Pareto, floored to integers.
    """
    rng = ensure_rng(rng)
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    if d_min < 1:
        raise GraphError("d_min must be >= 1")
    if d_max is None:
        d_max = max(d_min, int(round(n ** 0.5)) * 4)
    if d_max < d_min:
        raise GraphError("d_max must be >= d_min")
    if exponent <= 1.0:
        raise GraphError("exponent must exceed 1")
    u = rng.random(n)
    a = 1.0 - exponent
    lo, hi = float(d_min), float(d_max) + 1.0
    samples = (lo**a + u * (hi**a - lo**a)) ** (1.0 / a)
    return np.minimum(np.floor(samples).astype(np.int64), d_max)


def chung_lu_bipartite(
    upper_weights: np.ndarray,
    lower_weights: np.ndarray,
    num_edges: int | None = None,
    rng: np.random.Generator | int | None = None,
    max_rounds: int = 200,
) -> BipartiteGraph:
    """Expected-degree bipartite graph from per-vertex weight sequences.

    Edges are drawn with endpoint probabilities proportional to the weights
    (the "fast Chung–Lu" construction): repeatedly sample endpoint pairs,
    deduplicate, and top up until ``num_edges`` distinct edges exist. The
    realized degree of a vertex is then approximately proportional to its
    weight, reproducing heavy-tailed degree profiles.

    ``num_edges`` defaults to ``round(sum(upper_weights))``.
    """
    rng = ensure_rng(rng)
    upper_weights = np.asarray(upper_weights, dtype=np.float64)
    lower_weights = np.asarray(lower_weights, dtype=np.float64)
    if upper_weights.ndim != 1 or lower_weights.ndim != 1:
        raise GraphError("weights must be one-dimensional")
    if (upper_weights < 0).any() or (lower_weights < 0).any():
        raise GraphError("weights must be non-negative")
    n_upper, n_lower = upper_weights.size, lower_weights.size
    if n_upper == 0 or n_lower == 0:
        raise GraphError("both layers must be non-empty")

    if num_edges is None:
        num_edges = int(round(upper_weights.sum()))
    total = n_upper * n_lower
    if not 0 <= num_edges <= total:
        raise GraphError(f"num_edges={num_edges} outside [0, {total}]")
    if num_edges == 0:
        return BipartiteGraph(n_upper, n_lower)

    p_upper = upper_weights / upper_weights.sum()
    p_lower = lower_weights / lower_weights.sum()
    # Flat (upper * n_lower + lower) keys support fast dedup via np.unique.
    keys: np.ndarray = np.empty(0, dtype=np.int64)
    for _ in range(max_rounds):
        need = num_edges - keys.size
        if need <= 0:
            break
        batch = int(need * 1.3) + 16
        src = rng.choice(n_upper, size=batch, p=p_upper)
        dst = rng.choice(n_lower, size=batch, p=p_lower)
        keys = np.unique(np.concatenate([keys, src * n_lower + dst]))
    if keys.size < num_edges:
        # Weight mass too concentrated to reach the target by resampling;
        # fill the remainder with uniform edges so |E| is exact.
        missing = num_edges - keys.size
        extra = _sample_distinct_cells(n_upper, n_lower, min(total, keys.size + missing), rng)
        keys = np.unique(
            np.concatenate([keys, extra[:, 0] * n_lower + extra[:, 1]])
        )
    if keys.size > num_edges:
        keys = rng.choice(keys, size=num_edges, replace=False)
    edges = np.column_stack([keys // n_lower, keys % n_lower])
    return BipartiteGraph(n_upper, n_lower, edges)


def configuration_bipartite(
    upper_degrees: np.ndarray,
    lower_degrees: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> BipartiteGraph:
    """Stub-matching configuration model (simple graph; duplicates collapse).

    Both degree sequences must sum to the same stub count. Because parallel
    edges are collapsed, realized degrees can fall slightly below targets on
    skewed sequences.
    """
    rng = ensure_rng(rng)
    upper_degrees = np.asarray(upper_degrees, dtype=np.int64)
    lower_degrees = np.asarray(lower_degrees, dtype=np.int64)
    if (upper_degrees < 0).any() or (lower_degrees < 0).any():
        raise GraphError("degrees must be non-negative")
    if upper_degrees.sum() != lower_degrees.sum():
        raise GraphError(
            "degree sequences must have equal sums "
            f"({upper_degrees.sum()} != {lower_degrees.sum()})"
        )
    upper_stubs = np.repeat(np.arange(upper_degrees.size), upper_degrees)
    lower_stubs = np.repeat(np.arange(lower_degrees.size), lower_degrees)
    rng.shuffle(lower_stubs)
    edges = np.column_stack([upper_stubs, lower_stubs])
    return BipartiteGraph(upper_degrees.size, lower_degrees.size, edges)

"""Local views — the only graph data a vertex may see under edge LDP.

The LDP threat model assumes each vertex knows its own neighbor list and
nothing else. :class:`LocalView` materializes exactly that: a frozen copy
of one row plus the (public) domain size. The actor-based protocol engine
(:mod:`repro.protocol.actors`) is built exclusively on local views, so
"vertex-side" code provably cannot touch anyone else's edges — the
type system enforces the data-minimization the simulation otherwise only
promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, Layer

__all__ = ["LocalView"]


@dataclass(frozen=True)
class LocalView:
    """One vertex's private neighborhood plus public domain metadata."""

    layer: Layer
    vertex: int
    domain_size: int
    neighbors: np.ndarray = field(repr=False)

    def __post_init__(self):
        neighbors = np.asarray(self.neighbors, dtype=np.int64)
        if neighbors.size:
            if neighbors.min() < 0 or neighbors.max() >= self.domain_size:
                raise GraphError("neighbor index outside the declared domain")
            if (np.diff(neighbors) <= 0).any():
                raise GraphError("neighbors must be sorted and unique")
        neighbors.setflags(write=False)
        object.__setattr__(self, "neighbors", neighbors)

    @classmethod
    def from_graph(cls, graph: BipartiteGraph, layer: Layer, vertex: int) -> "LocalView":
        """Extract the view a vertex legitimately holds."""
        return cls(
            layer=layer,
            vertex=int(vertex),
            domain_size=graph.layer_size(layer.opposite()),
            neighbors=graph.neighbors(layer, vertex).copy(),
        )

    @property
    def degree(self) -> int:
        return int(self.neighbors.size)

    def contains(self, candidates: np.ndarray) -> np.ndarray:
        """Membership of opposite-layer indices in this neighborhood."""
        candidates = np.asarray(candidates, dtype=np.int64)
        return np.isin(candidates, self.neighbors, assume_unique=False)

"""Core bipartite-graph data structure.

A :class:`BipartiteGraph` stores an unweighted bipartite graph
``G(V = (U, L), E)`` with ``n1 = |U|`` upper vertices, ``n2 = |L|`` lower
vertices, and ``m = |E|`` edges. Vertices on each layer are integers
``0 .. n-1`` within that layer; an edge is a pair ``(upper, lower)``.

Adjacency is kept in CSR form in *both* directions so that neighbor lookups,
degrees and common-neighbor intersections are O(degree) with sorted
neighbor arrays. The structure is immutable after construction, which makes
it safe to share between the simulated vertices and the data curator.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

import numpy as np

from repro.errors import GraphError

__all__ = ["Layer", "BipartiteGraph"]


class Layer(enum.Enum):
    """One of the two vertex layers of a bipartite graph."""

    UPPER = "upper"
    LOWER = "lower"

    def opposite(self) -> "Layer":
        """Return the other layer."""
        return Layer.LOWER if self is Layer.UPPER else Layer.UPPER

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _as_edge_array(edges: Iterable[tuple[int, int]] | np.ndarray) -> np.ndarray:
    """Normalize ``edges`` into an ``(m, 2)`` int64 array (possibly empty)."""
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"edges must have shape (m, 2), got {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        float_arr = np.asarray(arr, dtype=np.float64)
        if not np.all(float_arr == np.floor(float_arr)):
            raise GraphError("edge endpoints must be integers")
        arr = float_arr.astype(np.int64)
    return arr.astype(np.int64, copy=False)


def _build_csr(src: np.ndarray, dst: np.ndarray, n_src: int) -> tuple[np.ndarray, np.ndarray]:
    """Build a CSR (indptr, indices) for ``src -> dst`` with sorted rows."""
    order = np.lexsort((dst, src))
    counts = np.bincount(src, minlength=n_src)
    indptr = np.zeros(n_src + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst[order]


def _splice_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    n_src: int,
    n_dst: int,
    ins_src: np.ndarray,
    ins_dst: np.ndarray,
    del_src: np.ndarray,
    del_dst: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Rebuild a sorted-row CSR under an edge delta without a global sort.

    A sorted-row CSR's ``(src, dst)`` entries, encoded as
    ``src * n_dst + dst``, form one globally sorted code sequence — so
    the delta reduces to array-level sorted-set operations: drop the
    delete codes with one ``searchsorted`` membership pass, merge the
    insert codes at their ``searchsorted`` positions, and decode. Total
    cost is O(m + k log k) with pure-numpy constants — no per-row
    Python loop, no O(m log m) re-sort.
    """
    src = np.repeat(np.arange(n_src, dtype=np.int64), np.diff(indptr))
    codes = src * n_dst + indices
    if del_src.size:
        del_codes = np.sort(del_src * n_dst + del_dst)
        slots = np.searchsorted(del_codes, codes).clip(max=del_codes.size - 1)
        codes = codes[del_codes[slots] != codes]
    if ins_src.size:
        ins_codes = np.sort(ins_src * n_dst + ins_dst)
        codes = np.insert(codes, np.searchsorted(codes, ins_codes), ins_codes)
    counts = np.bincount(codes // n_dst, minlength=n_src)
    new_indptr = np.zeros(n_src + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    return new_indptr, codes % n_dst


class BipartiteGraph:
    """Immutable unweighted bipartite graph with two-directional CSR adjacency.

    Parameters
    ----------
    n_upper, n_lower:
        Number of vertices on the upper / lower layer. Both must be >= 0.
    edges:
        Iterable or ``(m, 2)`` array of ``(upper_index, lower_index)`` pairs.
        Duplicates are removed; endpoints must lie in range.
    """

    def __init__(
        self,
        n_upper: int,
        n_lower: int,
        edges: Iterable[tuple[int, int]] | np.ndarray = (),
    ):
        if n_upper < 0 or n_lower < 0:
            raise GraphError("layer sizes must be non-negative")
        self._n_upper = int(n_upper)
        self._n_lower = int(n_lower)

        arr = _as_edge_array(edges)
        if arr.shape[0]:
            if arr[:, 0].min() < 0 or arr[:, 0].max() >= self._n_upper:
                raise GraphError("upper endpoint out of range")
            if arr[:, 1].min() < 0 or arr[:, 1].max() >= self._n_lower:
                raise GraphError("lower endpoint out of range")
            arr = np.unique(arr, axis=0)
        self._edges = arr
        self._u_indptr, self._u_indices = _build_csr(
            arr[:, 0], arr[:, 1], self._n_upper
        )
        self._l_indptr, self._l_indices = _build_csr(
            arr[:, 1], arr[:, 0], self._n_lower
        )
        for a in (self._edges, self._u_indptr, self._u_indices, self._l_indptr, self._l_indices):
            a.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_upper(self) -> int:
        """Number of upper-layer vertices (``n1`` in the paper)."""
        return self._n_upper

    @property
    def num_lower(self) -> int:
        """Number of lower-layer vertices (``n2`` in the paper)."""
        return self._n_lower

    @property
    def num_vertices(self) -> int:
        """Total number of vertices ``n = n1 + n2``."""
        return self._n_upper + self._n_lower

    @property
    def num_edges(self) -> int:
        """Number of (distinct) edges ``m``."""
        return int(self._edges.shape[0])

    @property
    def edges(self) -> np.ndarray:
        """Read-only ``(m, 2)`` array of ``(upper, lower)`` edges."""
        return self._edges

    def layer_size(self, layer: Layer) -> int:
        """Number of vertices on ``layer``."""
        return self._n_upper if layer is Layer.UPPER else self._n_lower

    def density(self) -> float:
        """Edge density ``m / (n1 * n2)`` (0 for degenerate layers)."""
        cells = self._n_upper * self._n_lower
        return self.num_edges / cells if cells else 0.0

    # ------------------------------------------------------------------
    # Adjacency queries
    # ------------------------------------------------------------------
    def _check_vertex(self, layer: Layer, v: int) -> int:
        v = int(v)
        size = self.layer_size(layer)
        if not 0 <= v < size:
            raise GraphError(f"vertex {v} out of range for {layer} layer of size {size}")
        return v

    def neighbors(self, layer: Layer, v: int) -> np.ndarray:
        """Sorted array of neighbors (indices on the opposite layer) of ``v``."""
        v = self._check_vertex(layer, v)
        if layer is Layer.UPPER:
            return self._u_indices[self._u_indptr[v] : self._u_indptr[v + 1]]
        return self._l_indices[self._l_indptr[v] : self._l_indptr[v + 1]]

    def degree(self, layer: Layer, v: int) -> int:
        """Degree of vertex ``v`` on ``layer``."""
        v = self._check_vertex(layer, v)
        ptr = self._u_indptr if layer is Layer.UPPER else self._l_indptr
        return int(ptr[v + 1] - ptr[v])

    def degrees(self, layer: Layer) -> np.ndarray:
        """Degree array for all vertices on ``layer``."""
        ptr = self._u_indptr if layer is Layer.UPPER else self._l_indptr
        return np.diff(ptr)

    def adjacency_csr(self, layer: Layer) -> tuple[np.ndarray, np.ndarray]:
        """The read-only ``(indptr, indices)`` CSR adjacency of ``layer``.

        Row ``v`` of the CSR pair is ``v``'s sorted neighbor list on the
        opposite layer — the zero-copy bulk view the batch query engine
        vectorizes over instead of slicing :meth:`neighbors` per vertex.
        """
        if layer is Layer.UPPER:
            return self._u_indptr, self._u_indices
        return self._l_indptr, self._l_indices

    def max_degree(self, layer: Layer) -> int:
        """Maximum degree on ``layer`` (0 for an empty layer)."""
        deg = self.degrees(layer)
        return int(deg.max()) if deg.size else 0

    def average_degree(self, layer: Layer) -> float:
        """Mean degree on ``layer`` (0.0 for an empty layer)."""
        size = self.layer_size(layer)
        return self.num_edges / size if size else 0.0

    def has_edge(self, upper: int, lower: int) -> bool:
        """Whether the edge ``(upper, lower)`` exists."""
        upper = self._check_vertex(Layer.UPPER, upper)
        lower = self._check_vertex(Layer.LOWER, lower)
        row = self.neighbors(Layer.UPPER, upper)
        i = np.searchsorted(row, lower)
        return bool(i < row.size and row[i] == lower)

    # ------------------------------------------------------------------
    # Common-neighborhood queries (the paper's C2)
    # ------------------------------------------------------------------
    def common_neighbors(self, layer: Layer, a: int, b: int) -> np.ndarray:
        """Vertices adjacent to both ``a`` and ``b`` (both on ``layer``)."""
        na = self.neighbors(layer, a)
        nb = self.neighbors(layer, b)
        return np.intersect1d(na, nb, assume_unique=True)

    def count_common_neighbors(self, layer: Layer, a: int, b: int) -> int:
        """``C2(a, b)`` — the number of common neighbors of ``a`` and ``b``."""
        return int(self.common_neighbors(layer, a, b).size)

    def neighborhood_union_size(self, layer: Layer, a: int, b: int) -> int:
        """``|N(a) ∪ N(b)|`` for two vertices on the same layer."""
        c2 = self.count_common_neighbors(layer, a, b)
        return self.degree(layer, a) + self.degree(layer, b) - c2

    def jaccard(self, layer: Layer, a: int, b: int) -> float:
        """Exact (non-private) Jaccard similarity of ``a`` and ``b``."""
        c2 = self.count_common_neighbors(layer, a, b)
        union = self.degree(layer, a) + self.degree(layer, b) - c2
        return c2 / union if union else 0.0

    # ------------------------------------------------------------------
    # Out-of-place mutation (streaming support)
    # ------------------------------------------------------------------
    def _membership(self, arr: np.ndarray) -> np.ndarray:
        """Boolean mask: does each ``(upper, lower)`` row exist as an edge?"""
        out = np.empty(arr.shape[0], dtype=bool)
        for i, (upper, lower) in enumerate(arr):
            row = self._u_indices[
                self._u_indptr[upper] : self._u_indptr[upper + 1]
            ]
            j = np.searchsorted(row, lower)
            out[i] = bool(j < row.size and row[j] == lower)
        return out

    def _check_edge_array(self, edges, what: str) -> np.ndarray:
        arr = _as_edge_array(edges)
        if arr.shape[0]:
            if arr[:, 0].min() < 0 or arr[:, 0].max() >= self._n_upper:
                raise GraphError(f"{what}: upper endpoint out of range")
            if arr[:, 1].min() < 0 or arr[:, 1].max() >= self._n_lower:
                raise GraphError(f"{what}: lower endpoint out of range")
            arr = np.unique(arr, axis=0)
        return arr

    def insert_edges(
        self, edges: Iterable[tuple[int, int]] | np.ndarray
    ) -> "BipartiteGraph":
        """A new graph with ``edges`` added (set semantics: inserting an
        existing edge is a no-op). ``self`` is untouched."""
        return self.apply_edge_delta(edges, ())

    def delete_edges(
        self, edges: Iterable[tuple[int, int]] | np.ndarray
    ) -> "BipartiteGraph":
        """A new graph with ``edges`` removed (set semantics: deleting an
        absent edge is a no-op). ``self`` is untouched."""
        return self.apply_edge_delta((), edges)

    def apply_edge_delta(
        self,
        inserts: Iterable[tuple[int, int]] | np.ndarray,
        deletes: Iterable[tuple[int, int]] | np.ndarray,
    ) -> "BipartiteGraph":
        """A new graph with ``inserts`` added and ``deletes`` removed.

        Already-present inserts and already-absent deletes are dropped
        (set semantics); an edge named in both lists is a conflict and
        raises — :class:`~repro.graph.delta.DeltaLog` resolves ordering
        before it gets here. When the net delta is empty, ``self`` is
        returned (the graph is immutable, so sharing is safe).

        The construction splices only the dirty rows of both directional
        CSRs instead of re-sorting all ``m`` edges, so small deltas on
        large graphs cost an O(m) copy, not an O(m log m) rebuild.
        """
        ins = self._check_edge_array(inserts, "insert")
        dels = self._check_edge_array(deletes, "delete")
        if ins.shape[0] and dels.shape[0]:
            ins_codes = ins[:, 0] * self._n_lower + ins[:, 1]
            del_codes = dels[:, 0] * self._n_lower + dels[:, 1]
            if np.intersect1d(ins_codes, del_codes).size:
                raise GraphError(
                    "edge named in both inserts and deletes; resolve "
                    "ordering through DeltaLog"
                )
        if ins.shape[0]:
            ins = ins[~self._membership(ins)]
        if dels.shape[0]:
            dels = dels[self._membership(dels)]
        if not (ins.shape[0] or dels.shape[0]):
            return self

        empty = np.empty(0, dtype=np.int64)
        ins_u, ins_l = (ins[:, 0], ins[:, 1]) if ins.shape[0] else (empty, empty)
        del_u, del_l = (dels[:, 0], dels[:, 1]) if dels.shape[0] else (empty, empty)

        u_indptr, u_indices = _splice_csr(
            self._u_indptr, self._u_indices, self._n_upper, self._n_lower,
            ins_u, ins_l, del_u, del_l,
        )
        l_indptr, l_indices = _splice_csr(
            self._l_indptr, self._l_indices, self._n_lower, self._n_upper,
            ins_l, ins_u, del_l, del_u,
        )
        # The upper CSR's (row, neighbor) pairs are exactly the edge list
        # in lexicographic order — rebuild it without sorting.
        src = np.repeat(
            np.arange(self._n_upper, dtype=np.int64), np.diff(u_indptr)
        )
        new_edges = np.column_stack([src, u_indices])

        graph = object.__new__(BipartiteGraph)
        graph._n_upper = self._n_upper
        graph._n_lower = self._n_lower
        graph._edges = new_edges
        graph._u_indptr, graph._u_indices = u_indptr, u_indices
        graph._l_indptr, graph._l_indices = l_indptr, l_indices
        for a in (
            graph._edges,
            graph._u_indptr,
            graph._u_indices,
            graph._l_indptr,
            graph._l_indices,
        ):
            a.setflags(write=False)
        return graph

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(
        self,
        upper_keep: np.ndarray,
        lower_keep: np.ndarray,
    ) -> "BipartiteGraph":
        """Vertex-induced subgraph, relabelling kept vertices contiguously.

        ``upper_keep`` / ``lower_keep`` are sorted index arrays (or anything
        ``np.asarray`` accepts) of the vertices to retain on each layer.
        """
        upper_keep = np.unique(np.asarray(upper_keep, dtype=np.int64))
        lower_keep = np.unique(np.asarray(lower_keep, dtype=np.int64))
        if upper_keep.size and (upper_keep[0] < 0 or upper_keep[-1] >= self._n_upper):
            raise GraphError("upper_keep index out of range")
        if lower_keep.size and (lower_keep[0] < 0 or lower_keep[-1] >= self._n_lower):
            raise GraphError("lower_keep index out of range")

        upper_map = np.full(self._n_upper, -1, dtype=np.int64)
        upper_map[upper_keep] = np.arange(upper_keep.size)
        lower_map = np.full(self._n_lower, -1, dtype=np.int64)
        lower_map[lower_keep] = np.arange(lower_keep.size)

        if self.num_edges:
            src = upper_map[self._edges[:, 0]]
            dst = lower_map[self._edges[:, 1]]
            mask = (src >= 0) & (dst >= 0)
            new_edges = np.column_stack([src[mask], dst[mask]])
        else:
            new_edges = np.empty((0, 2), dtype=np.int64)
        return BipartiteGraph(upper_keep.size, lower_keep.size, new_edges)

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with ``bipartite`` node labels.

        Upper vertices become ``("u", i)`` and lower vertices ``("l", j)``.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from((("u", i) for i in range(self._n_upper)), bipartite=0)
        g.add_nodes_from((("l", j) for j in range(self._n_lower)), bipartite=1)
        g.add_edges_from((("u", int(a)), ("l", int(b))) for a, b in self._edges)
        return g

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self._n_upper == other._n_upper
            and self._n_lower == other._n_lower
            and self._edges.shape == other._edges.shape
            and bool(np.all(self._edges == other._edges))
        )

    def __hash__(self) -> int:
        return hash((self._n_upper, self._n_lower, self.num_edges))

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(upper, lower)`` tuples."""
        return iter(map(tuple, self._edges))

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(n_upper={self._n_upper}, "
            f"n_lower={self._n_lower}, m={self.num_edges})"
        )

"""Epoch-scoped noisy views: perturb once per epoch, serve the rest free.

Both the source paper and the Imola et al. line of graph-LDP protocols
build on *reusable* per-user randomized reports: once a vertex's neighbor
list has passed through ε-RR, the released report is data-independent
noise plus signal and can answer any number of queries without further
privacy loss. :class:`NoisyViewCache` formalizes that as an epoch-scoped
store keyed by the serving layer's fixed ``(graph, layer, epsilon,
mode)``:

* **Materialize mode** caches each vertex's noisy neighbor list (and,
  lazily, its packed bitset row). A tick only perturbs — and only
  charges — vertices without a cached view; every later query touching a
  cached vertex in the same epoch reuses the identical draw, bit for bit.
* **Sketch mode** never materializes lists, so per-vertex reuse has no
  state to reuse; the cache is pair-granular instead: a repeated pair is
  served from its cached ``(N1, N2)`` draw for free, while a *new* pair
  honestly recharges its endpoints (a fresh marginal draw simulates a
  fresh release — the :class:`~repro.privacy.epoch.EpochAccountant`
  records the accumulated loss instead of hiding it).

``rotate()`` starts a new epoch: views are dropped, so the next query
re-draws and recharges each vertex it touches. The paired accountant
rotates in lockstep.

Bounded memory (``max_bytes`` / ``max_entries``)
------------------------------------------------
An unbounded cache holds every view until rotation; a long epoch over a
large graph therefore holds the whole noisy graph in memory. Passing a
byte and/or entry budget turns on LRU eviction: whenever a store pushes
the cache over budget, the least-recently-touched views are dropped
until it fits again.

Eviction is **privacy-free**. A bounded cache draws every view from a
deterministic per-``(epoch, vertex)`` (or per-``(epoch, pair)``) random
stream — the serving analogue of RAPPOR's *memoized* permanent
randomized response — so the next touch of an evicted entry reconstructs
the **bit-identical** report instead of drawing fresh noise. The
reconstruction re-runs the perturbation (CPU) and re-uploads the report
(bytes, counted in the tick's communication log) but releases nothing
new, so the :class:`EpochAccountant` is charged exactly once per vertex
per epoch no matter how many evict/redraw cycles happen. The tunable
tradeoff is therefore memory versus recharge latency/communication —
never privacy — and :class:`CacheStats` counts ``evictions`` and
``recharges`` so the tradeoff is observable.

The bounded mode's keyed streams are *counter-based*: every draw comes
from ``np.random.Philox`` with the fixed counter layout defined in
:mod:`repro.engine.bulkrr` (key ``[entropy, domain-tag]``, counter
``[block, stage, vertex, epoch]``; pairs use ``[block, b, a, epoch]``).
Because each vertex owns a private counter range, a whole miss block is
drawn through one vectorized pass
(:func:`~repro.engine.bulkrr.keyed_bulk_randomized_response`) that is
bit-identical to drawing each vertex alone — bounded caches keep the
bulk-RR speed of the unbounded path, paying only the generator's keying
overhead.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.engine.bulkrr import (
    bulk_randomized_response,
    keyed_bulk_randomized_response,
    keyed_laplace_noise,
    keyed_pair_generator,
    lengths_to_indptr,
)
from repro.engine.pairwise import pack_bitset_row
from repro.engine.planner import plan_shards
from repro.engine.sharded import ShardedRunner
from repro.engine.transport import ShardTransport
from repro.engine.sketch import sketch_pair_counts
from repro.engine.sketches import SketchConfig, check_sketch_epsilon, sketch_family
from repro.errors import ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.delta import DeltaLog
from repro.privacy.epoch import EpochAccountant
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.rng import RngLike, ensure_rng
from repro.protocol.session import ExecutionMode, resolve_mode

__all__ = ["CacheStats", "NoisyViewCache"]

# Bookkeeping cost of one sketch-mode pair entry: the (min, max) key and
# the (N1, N2) counts, as four 8-byte integers.
_PAIR_ENTRY_BYTES = 32
# Bookkeeping cost of one noisy-degree entry: the vertex key and the
# released float, as two 8-byte words.
_DEGREE_ENTRY_BYTES = 16


@dataclass
class CacheStats:
    """Hit/miss/eviction counters accumulated across the cache's lifetime."""

    vertex_hits: int = 0
    vertex_misses: int = 0
    pair_hits: int = 0
    pair_misses: int = 0
    degree_hits: int = 0
    degree_misses: int = 0
    rotations: int = 0
    evictions: int = 0  # entries dropped by the LRU budget
    eviction_batches: int = 0  # victim selections (a shard range = 1 batch)
    recharges: int = 0  # evicted entries reconstructed on a later touch
    warm_draws: int = 0  # views pre-drawn at rotation (server warming)
    mutations: int = 0  # edge ops recorded through mutate()
    incremental_rotations: int = 0  # rotations that only redrew dirty vertices

    def hit_rate(self) -> float:
        """Fraction of vertex/pair lookups served from cache."""
        hits = self.vertex_hits + self.pair_hits
        total = hits + self.vertex_misses + self.pair_misses
        return hits / total if total else 0.0


class NoisyViewCache:
    """Per-vertex (materialize) / per-pair (sketch) noisy views for one epoch.

    Parameters
    ----------
    graph, layer, epsilon:
        The serving context the views are bound to. Epsilon is pinned:
        reusing a draw at a different budget would mis-debias, so the
        engine refuses mismatched requests.
    mode:
        ``AUTO`` resolves exactly like the engine (materialize while the
        opposite layer fits the materialization limit, sketch beyond it).
    epsilon_per_epoch:
        Forwarded to the paired :class:`EpochAccountant`; ``None`` records
        without enforcing.
    max_bytes, max_entries:
        Optional LRU budget (see the module docs). Either bound — or both
        — turns on the *bounded* cache: stores evict least-recently-used
        entries past the budget, and every draw becomes deterministic per
        ``(epoch, vertex)`` / ``(epoch, pair)`` so evicted entries can be
        reconstructed bit-identically without a fresh privacy charge.
        The budget is a soft cap, enforced at tick boundaries: a tick
        stores its fresh draws first and evicts afterwards, so one
        tick's working set may transiently overshoot. Note that the
        *charge memory* (which keys were drawn this epoch) survives
        eviction by design and is not part of the byte accounting; it
        is O(distinct keys per epoch) — bounded by the layer size in
        materialize mode, by rotation cadence in sketch mode.
    rng:
        Entropy source for the keyed deterministic streams (one integer
        is drawn at construction; pass the server's generator for
        reproducible serving runs). Unused — and never consumed — when
        the cache is unbounded and unsharded.
    shard_runner, shard_mem_bytes:
        A :class:`~repro.engine.sharded.ShardedRunner` — or a bare
        :class:`~repro.engine.transport.ShardTransport` (inline, fork, or
        socket), which the cache wraps in a runner bound to its own
        graph/layer — turns every
        materialize-mode miss block into a sharded draw: the block is
        split into contiguous ranges (sized by ``shard_mem_bytes``
        expected noisy payload per shard, or byte-balanced over the
        runner's workers when ``None``) and fanned out to the runner's
        forked workers. A sharded cache always draws from the keyed
        Philox streams — the contract that makes shard boundaries
        invisible in the bits — even when it has no LRU budget, so
        attaching a runner to an unbounded cache changes *which* (still
        distribution-identical) bits are drawn. The last sharded draw's
        per-shard log is kept in :attr:`last_shard_draw` and its
        resilience log (retries, degraded ranges, reclaimed segments) in
        :attr:`last_shard_faults`. A *sharded bounded* cache also evicts
        at shard-range granularity: victims leave with their whole last
        drawn range in one batch (``stats.eviction_batches`` counts the
        scans), so trimming a big over-budget working set costs one LRU
        scan per range instead of one per vertex.
    warm_decay:
        EWMA coefficient for the cross-epoch warm set (``0 < alpha <=
        1``): at every rotation each vertex's heat becomes ``alpha *
        this_epoch_touches + (1 - alpha) * previous_heat``, and
        :meth:`hottest_last_epoch` ranks by that heat. ``1.0`` recovers
        the old last-epoch-only ordering; the 0.5 default keeps a stable
        hot set warm through one-epoch blips while still tracking a
        drifted hot set within about two epochs.

    Raises
    ------
    ProtocolError
        If ``max_bytes`` or ``max_entries`` is not positive.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        epsilon: float,
        *,
        mode: ExecutionMode = ExecutionMode.AUTO,
        epsilon_per_epoch: float | None = None,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        rng: RngLike = None,
        shard_runner: "ShardedRunner | ShardTransport | None" = None,
        shard_mem_bytes: int | None = None,
        sketch: "SketchConfig | None" = None,
        warm_decay: float = 0.5,
    ):
        mode = resolve_mode(graph, layer, mode)
        if mode is ExecutionMode.SKETCH_VIEW and sketch is None:
            raise ProtocolError(
                "a sketch-view cache needs a SketchConfig (pass sketch=)"
            )
        if sketch is not None:
            # Surface the hll stability floor at construction time, before
            # any budget is spent on views the estimator cannot invert.
            check_sketch_epsilon(sketch, epsilon)
        if max_bytes is not None and max_bytes <= 0:
            raise ProtocolError(f"max_bytes must be positive, got {max_bytes}")
        if max_entries is not None and max_entries <= 0:
            raise ProtocolError(f"max_entries must be positive, got {max_entries}")
        if not 0.0 < warm_decay <= 1.0:
            raise ProtocolError(
                f"warm_decay must be in (0, 1], got {warm_decay}"
            )
        self.graph = graph
        self.layer = layer
        self.epsilon = float(epsilon)
        self.mode = mode
        self.domain = graph.layer_size(layer.opposite())
        self.epoch = 0
        # The epoch word baked into keyed counters. Full rotations move it
        # in lockstep with the logical epoch; *incremental* rotations leave
        # it pinned and bump per-vertex version words instead, so clean
        # vertices keep replaying the identical stream across rotations.
        self.draw_epoch = 0
        self._versions = np.zeros(graph.layer_size(layer), dtype=np.uint64)
        self._pending: DeltaLog | None = None
        self.last_rotation: dict = {}
        self.stats = CacheStats()
        self.accountant = EpochAccountant(epsilon_per_epoch)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.bounded = max_bytes is not None or max_entries is not None
        if isinstance(shard_runner, ShardTransport):
            # A bare transport says *where* shard work runs; the cache
            # supplies the what (its own graph/layer) by wrapping it in
            # a runner it then owns like any other.
            shard_runner = ShardedRunner(graph, layer, transport=shard_runner)
        if shard_runner is not None and (
            shard_runner.graph is not graph or shard_runner.layer is not layer
        ):
            # A mismatched runner would draw rows from *its* graph while
            # the plan sizes ranges from ours — silently wrong estimates.
            raise ProtocolError(
                "shard_runner is bound to a different graph/layer than "
                "this cache"
            )
        self.shard_runner = shard_runner
        self.shard_mem_bytes = shard_mem_bytes
        # Keyed caches (bounded, or sharded) draw deterministically per
        # (entropy, epoch, key); a plain unbounded cache keeps the shared
        # rng stream. Entropy is only drawn when keyed so a plain cache
        # never consumes caller randomness.
        self.keyed = self.bounded or shard_runner is not None
        self._entropy = (
            int(ensure_rng(rng).integers(1 << 62)) if self.keyed else 0
        )
        self.last_shard_draw: list[dict] = []
        self.last_shard_faults: dict = {}
        self._bytes = 0
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self._packed: dict[int, np.ndarray] = {}
        self._pair_counts: OrderedDict[tuple[int, int], tuple[int, int]] = (
            OrderedDict()
        )
        # Per-vertex released sketch views (sketch-view mode): one fixed
        # size array per vertex, under the same byte budget as rows.
        self.sketch = sketch
        self._family = sketch_family(sketch) if sketch is not None else None
        self._sketch_views: OrderedDict[int, np.ndarray] = OrderedDict()
        self._degrees: OrderedDict[int, float] = OrderedDict()
        # Epoch-scoped charge memory: which vertices/pairs/degrees have
        # already been drawn (and charged) this epoch, surviving eviction.
        self._drawn_vertices: set[int] = set()
        self._drawn_pairs: set[tuple[int, int]] = set()
        self._drawn_degrees: set[int] = set()
        # Touch counts feed the warm pre-draw at rotation, smoothed
        # across epochs by an EWMA so one quiet (or bursty) epoch does
        # not wipe out — or hijack — the warm set.
        self.warm_decay = float(warm_decay)
        self._touches: Counter[int] = Counter()
        self._touch_ewma: dict[int, float] = {}
        self._hot_last_epoch: list[int] = []
        # Last drawn shard range per vertex (sharded caches only): the
        # eviction batch key for shard-aware trimming.
        self._shard_group: dict[int, int] = {}
        self._shard_group_seq = 0

    # ------------------------------------------------------------------
    # Materialize mode: per-vertex noisy neighbor lists
    # ------------------------------------------------------------------
    def has_view(self, vertex: int) -> bool:
        """True when ``vertex`` holds a resident noisy view this epoch."""
        return int(vertex) in self._rows

    def view(self, vertex: int) -> np.ndarray:
        """The cached noisy neighbor list (sorted column ids).

        Raises
        ------
        KeyError
            If the vertex holds no resident view (check :meth:`has_view`).
        """
        return self._rows[int(vertex)]

    def vertex_cached_mask(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean per entry: does a resident epoch view already exist?"""
        return np.fromiter(
            (int(v) in self._rows for v in vertices),
            dtype=bool,
            count=len(vertices),
        )

    def uncharged(self, vertices: np.ndarray) -> np.ndarray:
        """The subset of ``vertices`` not yet drawn (= charged) this epoch.

        In an unbounded cache every uncached vertex is uncharged; in a
        bounded cache an evicted vertex stays *charged* — its next draw
        is a free deterministic reconstruction, so it must not be charged
        again.
        """
        return np.array(
            [int(v) for v in vertices if int(v) not in self._drawn_vertices],
            dtype=np.int64,
        )

    def store_views(
        self, vertices: np.ndarray, indptr: np.ndarray, columns: np.ndarray
    ) -> None:
        """Adopt freshly drawn CSR rows as this epoch's views."""
        for i, vertex in enumerate(vertices):
            row = np.array(columns[indptr[i] : indptr[i + 1]], dtype=np.int64)
            self._store_row(int(vertex), row)

    def _store_row(self, vertex: int, row: np.ndarray) -> None:
        old = self._rows.pop(vertex, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._rows[vertex] = row
        self._bytes += row.nbytes
        self._drawn_vertices.add(vertex)

    def materialize_fresh(self, vertices: np.ndarray, rng: RngLike = None) -> int:
        """Draw and store noisy views for every listed (uncached) vertex.

        Returns the number of column ids drawn — the upload size of the
        (re-)released reports. Unbounded caches draw the whole block
        through the vectorized bulk-RR pass using ``rng``; bounded caches
        draw the block through the *keyed* vectorized pass (``rng`` is
        ignored): every vertex's bits come from its own deterministic
        ``(entropy, epoch, vertex)`` Philox stream, so a redraw of an
        evicted vertex reproduces the original report bit for bit whether
        it is drawn alone or inside any block. Evicted-vertex redraws are
        counted in ``stats.recharges``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return 0
        if self.bounded:
            self.stats.recharges += sum(
                1 for v in vertices if int(v) in self._drawn_vertices
            )
        if self.shard_runner is not None:
            # Sharded draw: the miss block fans out over the runner's
            # workers, each range from the same keyed streams — the
            # reassembled rows are byte-identical to the unsharded keyed
            # pass (and to any earlier draw of the same vertices).
            shard_plan = plan_shards(
                self.graph, self.layer, vertices, self.epsilon,
                shards=(
                    None
                    if self.shard_mem_bytes is not None
                    else self.shard_runner.max_workers
                ),
                mem_bytes=self.shard_mem_bytes,
            )
            drawn = self.shard_runner.draw(
                shard_plan, self.epsilon,
                entropy=self._entropy, epoch=self.draw_epoch,
                versions=self._versions[vertices],
            )
            self.last_shard_draw = drawn.shards
            self.last_shard_faults = drawn.faults
            indptr, columns = drawn.indptr, drawn.columns
            # Remember which shard range each vertex last arrived in:
            # bounded eviction drops whole ranges at once (see
            # evict_to_budget), so co-drawn vertices leave together and
            # their recharge comes back as one vectorized sharded draw.
            for lo, hi in shard_plan.ranges():
                self._shard_group_seq += 1
                group = self._shard_group_seq
                for v in vertices[lo:hi]:
                    self._shard_group[int(v)] = group
        elif not self.keyed:
            indptr, columns = bulk_randomized_response(
                self.graph, self.layer, vertices, self.epsilon, ensure_rng(rng)
            )
        else:
            indptr, columns = keyed_bulk_randomized_response(
                self.graph, self.layer, vertices, self.epsilon,
                entropy=self._entropy, epoch=self.draw_epoch,
                versions=self._versions[vertices],
            )
        self.store_views(vertices, indptr, columns)
        return int(columns.size)

    def _draw_row(self, vertex: int) -> np.ndarray:
        """Deterministic noisy row for ``(epoch, vertex)`` (bounded mode).

        The solo form of the keyed pass — bit-identical to the same
        vertex's row inside any :meth:`materialize_fresh` block.
        """
        _, columns = keyed_bulk_randomized_response(
            self.graph,
            self.layer,
            np.array([vertex], dtype=np.int64),
            self.epsilon,
            entropy=self._entropy,
            epoch=self.draw_epoch,
            versions=self._versions[[vertex]],
        )
        return np.asarray(columns, dtype=np.int64)

    def gather_views(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Stack the cached rows of ``vertices`` into one CSR block.

        Also the cache's read barrier: every gathered vertex counts one
        touch (feeding the hottest-vertex snapshot) and moves to the
        LRU tail.
        """
        rows = []
        for v in vertices:
            v = int(v)
            self._touches[v] += 1
            self._rows.move_to_end(v)
            rows.append(self._rows[v])
        lengths = np.fromiter((r.size for r in rows), dtype=np.int64, count=len(rows))
        columns = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        return lengths_to_indptr(lengths), columns

    def packed_matrix(self, vertices: np.ndarray) -> np.ndarray:
        """The bitset backend's pre-packed row block for ``vertices``.

        Rows are packed once per vertex per epoch and reused by every
        later tick (the ``packed=`` fast path of
        :func:`~repro.engine.pairwise.pairwise_intersections`).
        """
        packed = []
        for v in vertices:
            v = int(v)
            row = self._packed.get(v)
            if row is None:
                row = pack_bitset_row(self._rows[v], self.domain)
                self._packed[v] = row
                self._bytes += row.nbytes
            packed.append(row)
        return np.vstack(packed)

    # ------------------------------------------------------------------
    # Sketch mode: per-pair sufficient statistics
    # ------------------------------------------------------------------
    def has_pair(self, a: int, b: int) -> bool:
        """True when the pair holds a resident ``(N1, N2)`` draw this epoch."""
        return self._key(a, b) in self._pair_counts

    def pair_counts(self, a: int, b: int) -> tuple[int, int]:
        """The cached ``(N1, N2)`` draw for a pair (touches its LRU slot).

        Raises
        ------
        KeyError
            If the pair holds no resident entry (check :meth:`has_pair`).
        """
        key = self._key(a, b)
        self._pair_counts.move_to_end(key)
        self._touches[key[0]] += 1
        self._touches[key[1]] += 1
        return self._pair_counts[key]

    def unseen_pairs(self, keys: np.ndarray) -> np.ndarray:
        """The subset of pair ``keys`` never drawn (= charged) this epoch.

        Mirrors :meth:`uncharged` at pair granularity: an evicted pair's
        redraw is deterministic and free, so only genuinely new pairs
        recharge their endpoints.
        """
        fresh = [
            (int(k[0]), int(k[1]))
            for k in keys
            if (int(k[0]), int(k[1])) not in self._drawn_pairs
        ]
        return (
            np.array(fresh, dtype=np.int64)
            if fresh
            else np.empty((0, 2), dtype=np.int64)
        )

    def store_pair_counts(
        self, keys: np.ndarray, n1: np.ndarray, n2: np.ndarray
    ) -> None:
        """Adopt freshly drawn per-pair counts (keys from ``pair_keys``)."""
        for i in range(len(keys)):
            key = (int(keys[i][0]), int(keys[i][1]))
            self._store_pair(key, (int(n1[i]), int(n2[i])))

    def _store_pair(self, key: tuple[int, int], counts: tuple[int, int]) -> None:
        if key not in self._pair_counts:
            self._bytes += _PAIR_ENTRY_BYTES
        self._pair_counts[key] = counts
        self._pair_counts.move_to_end(key)
        self._drawn_pairs.add(key)

    def sketch_fresh(
        self, keys: np.ndarray, rng: RngLike = None
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Draw and store ``(N1, N2)`` for every listed (uncached) pair key.

        Returns ``(n1, n2, upload_ids)`` aligned with ``keys``. Unbounded
        caches draw the whole block at once with ``rng``; bounded caches
        draw each pair from its deterministic keyed Philox stream
        (counter ``[block, b, a, epoch]``, see
        :func:`~repro.engine.bulkrr.keyed_pair_generator`) so an evicted
        pair's redraw replays the original draw (counted in
        ``stats.recharges``).
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                0,
            )
        if not self.keyed:
            verts, inverse = np.unique(keys, return_inverse=True)
            inverse = inverse.reshape(keys.shape)
            n1, n2, sizes = sketch_pair_counts(
                self.graph, self.layer, verts,
                inverse[:, 0], inverse[:, 1], self.epsilon, ensure_rng(rng),
            )
            self.store_pair_counts(keys, n1, n2)
            return n1, n2, int(sizes.sum())
        n1 = np.empty(len(keys), dtype=np.int64)
        n2 = np.empty(len(keys), dtype=np.int64)
        total = 0
        for i, key in enumerate(keys):
            key = (int(key[0]), int(key[1]))
            if self.bounded and key in self._drawn_pairs:
                self.stats.recharges += 1
            keyed = keyed_pair_generator(
                self._entropy, self.draw_epoch, *key,
                version=int(self._versions[key[0]] + self._versions[key[1]]),
            )
            pair_n1, pair_n2, sizes = sketch_pair_counts(
                self.graph,
                self.layer,
                np.array(key, dtype=np.int64),
                np.array([0]),
                np.array([1]),
                self.epsilon,
                keyed,
            )
            n1[i], n2[i] = int(pair_n1[0]), int(pair_n2[0])
            self._store_pair(key, (n1[i], n2[i]))
            total += int(sizes.sum())
        return n1, n2, total

    # ------------------------------------------------------------------
    # Sketch-view mode: per-vertex fixed-size private sketches
    # ------------------------------------------------------------------
    def has_sketch_view(self, vertex: int) -> bool:
        """True when ``vertex`` holds a resident sketch view this epoch."""
        return int(vertex) in self._sketch_views

    def sketch_view(self, vertex: int) -> np.ndarray:
        """The cached released sketch view of one vertex.

        Raises
        ------
        KeyError
            If the vertex holds no resident sketch view (check
            :meth:`has_sketch_view`).
        """
        return self._sketch_views[int(vertex)]

    def sketch_view_cached_mask(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean per entry: does a resident sketch view already exist?"""
        return np.fromiter(
            (int(v) in self._sketch_views for v in vertices),
            dtype=bool,
            count=len(vertices),
        )

    def store_sketch_views(self, vertices: np.ndarray, views: np.ndarray) -> None:
        """Adopt freshly released sketch views (rows aligned with vertices)."""
        for i, vertex in enumerate(vertices):
            vertex = int(vertex)
            old = self._sketch_views.pop(vertex, None)
            if old is not None:
                self._bytes -= old.nbytes
            row = np.ascontiguousarray(views[i])
            self._sketch_views[vertex] = row
            self._bytes += row.nbytes
            self._drawn_vertices.add(vertex)

    def sketch_view_fresh(self, vertices: np.ndarray, rng: RngLike = None) -> int:
        """Release and store sketch views for every listed (uncached) vertex.

        Returns the upload bytes of the (re-)released views. The same
        determinism contract as :meth:`materialize_fresh`: keyed caches
        (bounded or sharded) draw each vertex's blip/noise from its
        deterministic ``(entropy, epoch, vertex)`` Philox stream — an
        evicted view's redraw reproduces the original bits exactly
        (counted in ``stats.recharges``) — while a plain unbounded cache
        draws from ``rng`` (it never evicts, so reuse is by residency).
        """
        if self._family is None:
            raise ProtocolError("cache was built without a sketch config")
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return 0
        if self.bounded:
            self.stats.recharges += sum(
                1 for v in vertices if int(v) in self._drawn_vertices
            )
        if self.keyed:
            views = self._family.encode_release(
                self.graph, self.layer, vertices, self.epsilon,
                entropy=self._entropy, epoch=self.draw_epoch,
                versions=self._versions[vertices],
            )
        else:
            views = self._family.encode_release(
                self.graph, self.layer, vertices, self.epsilon,
                rng=ensure_rng(rng),
            )
        self.store_sketch_views(vertices, views)
        return int(views.nbytes)

    def gather_sketch_views(self, vertices: np.ndarray) -> np.ndarray:
        """Stack the cached sketch views of ``vertices`` into one block.

        The sketch-view read barrier: every gathered vertex counts one
        touch and moves to the LRU tail (mirrors :meth:`gather_views`).
        """
        rows = []
        for v in vertices:
            v = int(v)
            self._touches[v] += 1
            self._sketch_views.move_to_end(v)
            rows.append(self._sketch_views[v])
        if not rows:
            return np.empty((0, 0))
        return np.stack(rows)

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        a, b = int(a), int(b)
        return (a, b) if a <= b else (b, a)

    def pair_key(self, a: int, b: int) -> tuple[int, int]:
        """Order-normalized cache key of a (symmetric) pair."""
        return self._key(a, b)

    def pair_charge_free(self, a: int, b: int) -> bool:
        """True when serving this pair will charge no privacy budget.

        Resident pairs replay their stored draw; in a bounded cache an
        evicted-but-drawn pair reconstructs it deterministically. Either
        way the accountant sees nothing.
        """
        return self._key(a, b) in self._drawn_pairs or self.has_pair(a, b)

    def vertex_charge_free(self, vertex: int) -> bool:
        """True when serving this vertex will charge no privacy budget."""
        return int(vertex) in self._drawn_vertices or self.has_view(vertex)

    # ------------------------------------------------------------------
    # Noisy degrees (either mode; used by the serving degree option)
    # ------------------------------------------------------------------
    def has_degree(self, vertex: int) -> bool:
        """True when ``vertex`` holds a *resident* epoch-cached noisy degree."""
        return int(vertex) in self._degrees

    def degree(self, vertex: int) -> float:
        """The epoch-cached noisy Laplace degree of ``vertex``.

        Touches the entry's LRU slot (degrees are evictable in a bounded
        cache, like every other store).

        Raises
        ------
        KeyError
            If no degree is resident for the vertex (check
            :meth:`has_degree`).
        """
        vertex = int(vertex)
        self._degrees.move_to_end(vertex)
        return self._degrees[vertex]

    def degree_charge_free(self, vertex: int) -> bool:
        """True when releasing this vertex's degree charges no budget.

        Resident degrees replay their stored release; in a bounded cache
        an evicted-but-drawn degree reconstructs it deterministically.
        """
        return int(vertex) in self._drawn_degrees or self.has_degree(vertex)

    def uncharged_degrees(self, vertices: np.ndarray) -> np.ndarray:
        """The subset of ``vertices`` with no degree drawn (= charged)
        this epoch — :meth:`uncharged` at degree granularity."""
        return np.array(
            [int(v) for v in vertices if int(v) not in self._drawn_degrees],
            dtype=np.int64,
        )

    def store_degrees(self, vertices: np.ndarray, values: np.ndarray) -> None:
        """Adopt freshly released noisy degrees as this epoch's entries."""
        for vertex, value in zip(vertices, values):
            vertex = int(vertex)
            if vertex not in self._degrees:
                self._bytes += _DEGREE_ENTRY_BYTES
            self._degrees[vertex] = float(value)
            self._degrees.move_to_end(vertex)
            self._drawn_degrees.add(vertex)

    def degree_fresh(
        self,
        vertices: np.ndarray,
        mechanism: LaplaceMechanism,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Draw and store noisy degrees for every listed (non-resident) vertex.

        Returns the released values aligned with ``vertices``. Unbounded
        caches add independent Laplace noise from ``rng``; bounded caches
        draw each vertex's noise from its deterministic keyed stream
        (:func:`~repro.engine.bulkrr.keyed_laplace_noise`; ``rng`` is
        ignored), so an evicted degree's redraw replays the identical
        release — counted in ``stats.recharges`` — and eviction stays
        privacy-free at degree granularity too.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.empty(0, dtype=np.float64)
        true = self.graph.degrees(self.layer)[vertices].astype(np.float64)
        if not self.keyed:
            values = mechanism.release_many(true, ensure_rng(rng))
        else:
            if self.bounded:
                self.stats.recharges += sum(
                    1 for v in vertices if int(v) in self._drawn_degrees
                )
            values = true + keyed_laplace_noise(
                self._entropy, self.draw_epoch, vertices, mechanism.scale,
                versions=self._versions[vertices],
            )
        self.store_degrees(vertices, values)
        return values

    # ------------------------------------------------------------------
    # Memory budget
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Approximate resident payload bytes.

        Counts every store the budget governs: noisy rows, their packed
        bitset mirrors, sketch-mode pair draws, and noisy-degree entries
        (``_DEGREE_ENTRY_BYTES`` each — degrees are part of the budget,
        not free riders).
        """
        return self._bytes

    def entries(self) -> int:
        """Resident cache entries (vertex views, pair draws, and degrees)."""
        return (
            len(self._rows)
            + len(self._pair_counts)
            + len(self._sketch_views)
            + len(self._degrees)
        )

    def over_budget(self) -> bool:
        """True when either configured bound is currently exceeded."""
        if self.max_bytes is not None and self._bytes > self.max_bytes:
            return True
        if self.max_entries is not None and self.entries() > self.max_entries:
            return True
        return False

    def evict_to_budget(self, pin: frozenset | set = frozenset()) -> int:
        """Evict least-recently-used entries until the budget fits.

        ``pin`` names vertices (materialize) or pair keys (sketch) to
        skip — for callers that must keep part of the working set
        resident while trimming (the engine itself evicts at the end of
        each tick with nothing pinned). Degree entries are evicted LRU
        *first* (they are the cheapest to reconstruct: one keyed Philox
        block), then the mode's primary store; a pinned vertex also pins
        its degree. A fully pinned cache can stay over budget: the bound
        is a soft cap. Returns the number of entries evicted. No-op on
        an unbounded cache.

        A *sharded* cache evicts rows at shard-range granularity: the
        LRU victim takes every unpinned resident vertex of its last
        drawn shard range with it in one batch. Co-drawn vertices age
        together (they arrived in one draw and are typically re-touched
        together), and their eventual recharge is one vectorized sharded
        draw instead of per-vertex dribble; trimming a large over-budget
        working set costs one LRU scan per *range* instead of one per
        vertex (``stats.eviction_batches`` counts the scans).
        """
        if not self.bounded:
            return 0
        evicted = 0
        # Vertices named by the pin, either directly or via pair keys.
        pinned_vertices = {
            v for key in pin for v in (key if isinstance(key, tuple) else (key,))
        }
        if self.mode is ExecutionMode.MATERIALIZE:
            store = self._rows
        elif self.mode is ExecutionMode.SKETCH_VIEW:
            store = self._sketch_views
        else:
            store = self._pair_counts
        while self.over_budget():
            self.stats.eviction_batches += 1
            victim = next(
                (v for v in self._degrees if v not in pinned_vertices), None
            )
            if victim is not None:
                self._degrees.pop(victim)
                self._bytes -= _DEGREE_ENTRY_BYTES
                evicted += 1
                continue
            victim = next((k for k in store if k not in pin), None)
            if victim is None:
                break
            if store is self._rows:
                group = self._shard_group.get(victim)
                batch = (
                    [victim]
                    if group is None
                    else [
                        v for v in store
                        if v not in pin and self._shard_group.get(v) == group
                    ]
                )
                for v in batch:
                    row = store.pop(v)
                    self._bytes -= row.nbytes
                    packed = self._packed.pop(v, None)
                    if packed is not None:
                        self._bytes -= packed.nbytes
                evicted += len(batch)
                continue
            if store is self._sketch_views:
                view = store.pop(victim)
                self._bytes -= view.nbytes
            else:
                store.pop(victim)
                self._bytes -= _PAIR_ENTRY_BYTES
            evicted += 1
        self.stats.evictions += evicted
        return evicted

    # ------------------------------------------------------------------
    def check_compatible(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        epsilon: float,
        mode: ExecutionMode,
        sketch: "SketchConfig | None" = None,
    ) -> None:
        """Refuse to serve a request the cached draws were not made for.

        Raises
        ------
        ProtocolError
            If ``graph``, ``layer``, ``epsilon``, ``mode`` — or, for
            sketch views, the :class:`SketchConfig` — differs from the
            serving context the cache is bound to.
        """
        if graph is not self.graph:
            raise ProtocolError("epoch cache is bound to a different graph")
        if layer is not self.layer:
            raise ProtocolError(
                f"epoch cache is bound to the {self.layer} layer, not {layer}"
            )
        if abs(float(epsilon) - self.epsilon) > 1e-12:
            raise ProtocolError(
                f"epoch cache draws are at epsilon={self.epsilon:g}; "
                f"cannot serve epsilon={epsilon:g} from them"
            )
        if mode is not self.mode:
            raise ProtocolError(
                f"epoch cache holds {self.mode.value} views; cannot serve "
                f"{mode.value} requests from them"
            )
        if sketch is not None and sketch != self.sketch:
            raise ProtocolError(
                f"epoch cache holds {self.sketch} views; cannot serve "
                f"{sketch} requests from them"
            )

    def cached_vertices(self) -> int:
        """Vertices holding a view (materialize/sketch-view) or degree-only
        entries."""
        if self._rows:
            return len(self._rows)
        if self._sketch_views:
            return len(self._sketch_views)
        return len(self._degrees)

    def cached_pairs(self) -> int:
        """Resident sketch-mode pair entries."""
        return len(self._pair_counts)

    def hottest_last_epoch(self, k: int) -> list[int]:
        """The ``k`` hottest vertices as of the latest :meth:`rotate`
        call (hottest first), by the cross-epoch EWMA of touch counts.

        Feeds the server's warm pre-draw: re-drawing these immediately
        after rotation keeps the first post-rotation tick from stampeding
        on the hot pool. Heat is ``warm_decay * last_epoch_touches +
        (1 - warm_decay) * previous_heat``, so one anomalous epoch can
        neither evict a stable hot set from the warm list nor park a
        one-off burst in it — while a genuinely drifted hot set takes
        over within about two epochs. Empty before the first rotation.
        """
        return self._hot_last_epoch[: max(0, int(k))]

    # ------------------------------------------------------------------
    # Streaming mutations and epoch rotation
    # ------------------------------------------------------------------
    def mutate(
        self,
        inserts: np.ndarray | list | tuple = (),
        deletes: np.ndarray | list | tuple = (),
    ) -> int:
        """Record edge mutations against the bound graph (applied at rotate).

        Mutations accumulate in an out-of-place :class:`DeltaLog` — the
        served graph snapshot is untouched until the next :meth:`rotate`,
        which applies the log's *net* effect (last op per edge wins, so an
        insert cancelled by a delete inside one epoch leaves no trace) and
        redraws only the vertices the net delta actually touched. Inserts
        are recorded before deletes within one call. Returns the number of
        ops recorded by this call.

        Raises
        ------
        GraphError
            If an edge endpoint is out of range for the bound graph.
        """
        if self._pending is None:
            self._pending = DeltaLog(self.graph)
        before = len(self._pending)
        self._pending.insert_edges(inserts)
        self._pending.delete_edges(deletes)
        recorded = len(self._pending) - before
        self.stats.mutations += recorded
        return recorded

    @property
    def pending_delta(self) -> DeltaLog | None:
        """The delta log accumulating since the last rotation (or None)."""
        return self._pending

    def pending_dirty(self) -> np.ndarray:
        """Serving-layer vertices the pending net delta would redraw."""
        if self._pending is None:
            return np.empty(0, dtype=np.int64)
        return self._pending.dirty_vertices(self.layer)

    def vertex_version(self, vertex: int) -> int:
        """The vertex's current stream version (bumped per dirty rotation)."""
        return int(self._versions[int(vertex)])

    def rotate(self) -> int:
        """Start the next epoch (accountant in lockstep).

        Without pending mutations this is the classic *full* rotation:
        every view drops, and both the logical epoch and the keyed
        ``draw_epoch`` advance, so the next query re-draws and recharges
        whatever it touches. With a pending net-nonempty delta the
        rotation is *incremental*: the mutated snapshot is swapped in,
        only the net delta's dirty vertices drop their views (and bump
        their keyed version word — their next draw is a fresh stream and
        a fresh charge), while every clean vertex keeps its resident view
        and its bit-identical keyed stream, charge-free. A pending delta
        whose ops cancelled out entirely falls back to the full path —
        indistinguishable, draws included, from never having mutated.

        Returns the new epoch id. Also snapshots the closed epoch's
        hottest vertices for :meth:`hottest_last_epoch`.
        """
        pending = self._pending
        self._pending = None
        # Fold the closed epoch's touch counts into the cross-epoch EWMA
        # and rank the warm set by the smoothed heat. Iterating the old
        # heat first, then most_common() (count-desc, first-touch order
        # on ties), keeps the ranking stable and deterministic: Python's
        # sort preserves that insertion order among equal heats.
        alpha = self.warm_decay
        heat: dict[int, float] = {
            v: (1.0 - alpha) * h for v, h in self._touch_ewma.items()
        }
        for v, count in self._touches.most_common():
            heat[v] = heat.get(v, 0.0) + alpha * count
        # Drop vertices whose heat decayed to noise so the EWMA map does
        # not grow without bound across many epochs.
        self._touch_ewma = {v: h for v, h in heat.items() if h > 1e-9}
        self._hot_last_epoch = [
            v for v, _ in sorted(
                self._touch_ewma.items(), key=lambda item: -item[1]
            )
        ]
        self._touches.clear()
        if pending is not None and not pending.is_net_empty:
            return self._rotate_incremental(pending)
        self._rows.clear()
        self._packed.clear()
        self._pair_counts.clear()
        self._sketch_views.clear()
        self._degrees.clear()
        self._drawn_vertices.clear()
        self._drawn_pairs.clear()
        self._drawn_degrees.clear()
        self._shard_group.clear()
        self._bytes = 0
        self.stats.rotations += 1
        self.epoch = self.accountant.rotate()
        self.draw_epoch = self.epoch
        self.last_rotation = {"incremental": False, "dirty": 0}
        return self.epoch

    def _rotate_incremental(self, pending: DeltaLog) -> int:
        """Apply a net-nonempty delta and drop only its dirty vertices."""
        new_graph = pending.apply()
        dirty = pending.dirty_vertices(self.layer)
        dirty_set = {int(v) for v in dirty}
        self._versions[dirty] += np.uint64(1)
        for v in dirty_set:
            row = self._rows.pop(v, None)
            if row is not None:
                self._bytes -= row.nbytes
            packed = self._packed.pop(v, None)
            if packed is not None:
                self._bytes -= packed.nbytes
            view = self._sketch_views.pop(v, None)
            if view is not None:
                self._bytes -= view.nbytes
            if self._degrees.pop(v, None) is not None:
                self._bytes -= _DEGREE_ENTRY_BYTES
        stale_pairs = [
            k for k in self._pair_counts
            if k[0] in dirty_set or k[1] in dirty_set
        ]
        for key in stale_pairs:
            self._pair_counts.pop(key)
            self._bytes -= _PAIR_ENTRY_BYTES
        self._drawn_vertices -= dirty_set
        self._drawn_degrees -= dirty_set
        self._drawn_pairs = {
            k for k in self._drawn_pairs
            if k[0] not in dirty_set and k[1] not in dirty_set
        }
        self.graph = new_graph
        if self.shard_runner is not None:
            # The delta rides along so a socket transport can resync its
            # workers with one MUTATE push instead of re-shipping the
            # whole snapshot (compacted: net ops only).
            self.shard_runner.rebind(new_graph, delta=pending.compact())

        self.stats.rotations += 1
        self.stats.incremental_rotations += 1
        self.epoch = self.accountant.rotate()
        # draw_epoch stays pinned: clean vertices replay their streams.
        self.last_rotation = {
            "incremental": True,
            "dirty": len(dirty_set),
            "dirty_vertices": np.asarray(sorted(dirty_set), dtype=np.int64),
            "inserts": int(len(pending.net_inserts())),
            "deletes": int(len(pending.net_deletes())),
            "recorded": len(pending),
        }
        return self.epoch

    def __repr__(self) -> str:
        return (
            f"NoisyViewCache(layer={self.layer.value}, mode={self.mode.value}, "
            f"epsilon={self.epsilon:g}, epoch={self.epoch}, "
            f"views={len(self._rows)}, pairs={len(self._pair_counts)}, "
            f"bytes={self._bytes}"
            + (
                f"/{self.max_bytes}" if self.max_bytes is not None else ""
            )
            + ")"
        )

"""Epoch-scoped noisy views: perturb once per epoch, serve the rest free.

Both the source paper and the Imola et al. line of graph-LDP protocols
build on *reusable* per-user randomized reports: once a vertex's neighbor
list has passed through ε-RR, the released report is data-independent
noise plus signal and can answer any number of queries without further
privacy loss. :class:`NoisyViewCache` formalizes that as an epoch-scoped
store keyed by the serving layer's fixed ``(graph, layer, epsilon,
mode)``:

* **Materialize mode** caches each vertex's noisy neighbor list (and,
  lazily, its packed bitset row). A tick only perturbs — and only
  charges — vertices without a cached view; every later query touching a
  cached vertex in the same epoch reuses the identical draw, bit for bit.
* **Sketch mode** never materializes lists, so per-vertex reuse has no
  state to reuse; the cache is pair-granular instead: a repeated pair is
  served from its cached ``(N1, N2)`` draw for free, while a *new* pair
  honestly recharges its endpoints (a fresh marginal draw simulates a
  fresh release — the :class:`~repro.privacy.epoch.EpochAccountant`
  records the accumulated loss instead of hiding it).

``rotate()`` starts a new epoch: views are dropped, so the next query
re-draws and recharges each vertex it touches. The paired accountant
rotates in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.bulkrr import lengths_to_indptr
from repro.engine.pairwise import pack_bitset_row
from repro.errors import ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.epoch import EpochAccountant
from repro.protocol.session import _AUTO_MATERIALIZE_LIMIT, ExecutionMode

__all__ = ["CacheStats", "NoisyViewCache"]


@dataclass
class CacheStats:
    """Hit/miss counters accumulated across the cache's lifetime."""

    vertex_hits: int = 0
    vertex_misses: int = 0
    pair_hits: int = 0
    pair_misses: int = 0
    degree_hits: int = 0
    degree_misses: int = 0
    rotations: int = 0

    def hit_rate(self) -> float:
        """Fraction of vertex/pair lookups served from cache."""
        hits = self.vertex_hits + self.pair_hits
        total = hits + self.vertex_misses + self.pair_misses
        return hits / total if total else 0.0


class NoisyViewCache:
    """Per-vertex (materialize) / per-pair (sketch) noisy views for one epoch.

    Parameters
    ----------
    graph, layer, epsilon:
        The serving context the views are bound to. Epsilon is pinned:
        reusing a draw at a different budget would mis-debias, so the
        engine refuses mismatched requests.
    mode:
        ``AUTO`` resolves exactly like the engine (materialize while the
        opposite layer fits the materialization limit, sketch beyond it).
    epsilon_per_epoch:
        Forwarded to the paired :class:`EpochAccountant`; ``None`` records
        without enforcing.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        epsilon: float,
        *,
        mode: ExecutionMode = ExecutionMode.AUTO,
        epsilon_per_epoch: float | None = None,
    ):
        if mode is ExecutionMode.AUTO:
            small = graph.layer_size(layer.opposite()) <= _AUTO_MATERIALIZE_LIMIT
            mode = ExecutionMode.MATERIALIZE if small else ExecutionMode.SKETCH
        self.graph = graph
        self.layer = layer
        self.epsilon = float(epsilon)
        self.mode = mode
        self.domain = graph.layer_size(layer.opposite())
        self.epoch = 0
        self.stats = CacheStats()
        self.accountant = EpochAccountant(epsilon_per_epoch)
        self._rows: dict[int, np.ndarray] = {}
        self._packed: dict[int, np.ndarray] = {}
        self._pair_counts: dict[tuple[int, int], tuple[int, int]] = {}
        self._degrees: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Materialize mode: per-vertex noisy neighbor lists
    # ------------------------------------------------------------------
    def has_view(self, vertex: int) -> bool:
        return int(vertex) in self._rows

    def view(self, vertex: int) -> np.ndarray:
        """The cached noisy neighbor list (sorted column ids)."""
        return self._rows[int(vertex)]

    def vertex_cached_mask(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean per entry: does an epoch view already exist?"""
        return np.fromiter(
            (int(v) in self._rows for v in vertices),
            dtype=bool,
            count=len(vertices),
        )

    def store_views(
        self, vertices: np.ndarray, indptr: np.ndarray, columns: np.ndarray
    ) -> None:
        """Adopt freshly drawn CSR rows as this epoch's views."""
        for i, vertex in enumerate(vertices):
            self._rows[int(vertex)] = np.array(
                columns[indptr[i] : indptr[i + 1]], dtype=np.int64
            )

    def gather_views(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Stack the cached rows of ``vertices`` into one CSR block."""
        rows = [self._rows[int(v)] for v in vertices]
        lengths = np.fromiter((r.size for r in rows), dtype=np.int64, count=len(rows))
        columns = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        return lengths_to_indptr(lengths), columns

    def packed_matrix(self, vertices: np.ndarray) -> np.ndarray:
        """The bitset backend's pre-packed row block for ``vertices``.

        Rows are packed once per vertex per epoch and reused by every
        later tick (the ``packed=`` fast path of
        :func:`~repro.engine.pairwise.pairwise_intersections`).
        """
        packed = []
        for v in vertices:
            v = int(v)
            row = self._packed.get(v)
            if row is None:
                row = pack_bitset_row(self._rows[v], self.domain)
                self._packed[v] = row
            packed.append(row)
        return np.vstack(packed)

    # ------------------------------------------------------------------
    # Sketch mode: per-pair sufficient statistics
    # ------------------------------------------------------------------
    def has_pair(self, a: int, b: int) -> bool:
        return self._key(a, b) in self._pair_counts

    def pair_counts(self, a: int, b: int) -> tuple[int, int]:
        """The cached ``(N1, N2)`` draw for a pair."""
        return self._pair_counts[self._key(a, b)]

    def store_pair_counts(
        self, keys: np.ndarray, n1: np.ndarray, n2: np.ndarray
    ) -> None:
        """Adopt freshly drawn per-pair counts (keys from ``pair_keys``)."""
        for i in range(len(keys)):
            key = (int(keys[i][0]), int(keys[i][1]))
            self._pair_counts[key] = (int(n1[i]), int(n2[i]))

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        a, b = int(a), int(b)
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # Noisy degrees (either mode; used by the serving degree option)
    # ------------------------------------------------------------------
    def has_degree(self, vertex: int) -> bool:
        return int(vertex) in self._degrees

    def degree(self, vertex: int) -> float:
        return self._degrees[int(vertex)]

    def store_degrees(self, vertices: np.ndarray, values: np.ndarray) -> None:
        for vertex, value in zip(vertices, values):
            self._degrees[int(vertex)] = float(value)

    # ------------------------------------------------------------------
    def check_compatible(
        self, graph: BipartiteGraph, layer: Layer, epsilon: float, mode: ExecutionMode
    ) -> None:
        """Refuse to serve a request the cached draws were not made for."""
        if graph is not self.graph:
            raise ProtocolError("epoch cache is bound to a different graph")
        if layer is not self.layer:
            raise ProtocolError(
                f"epoch cache is bound to the {self.layer} layer, not {layer}"
            )
        if abs(float(epsilon) - self.epsilon) > 1e-12:
            raise ProtocolError(
                f"epoch cache draws are at epsilon={self.epsilon:g}; "
                f"cannot serve epsilon={epsilon:g} from them"
            )
        if mode is not self.mode:
            raise ProtocolError(
                f"epoch cache holds {self.mode.value} views; cannot serve "
                f"{mode.value} requests from them"
            )

    def cached_vertices(self) -> int:
        """Vertices holding a view (materialize) or degree-only entries."""
        return len(self._rows) if self._rows else len(self._degrees)

    def cached_pairs(self) -> int:
        return len(self._pair_counts)

    def rotate(self) -> int:
        """Drop every view and start the next epoch (accountant in lockstep)."""
        self._rows.clear()
        self._packed.clear()
        self._pair_counts.clear()
        self._degrees.clear()
        self.stats.rotations += 1
        self.epoch = self.accountant.rotate()
        return self.epoch

    def __repr__(self) -> str:
        return (
            f"NoisyViewCache(layer={self.layer.value}, mode={self.mode.value}, "
            f"epsilon={self.epsilon:g}, epoch={self.epoch}, "
            f"views={len(self._rows)}, pairs={len(self._pair_counts)})"
        )

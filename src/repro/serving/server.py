"""Asyncio front end: coalesce concurrent pair queries into engine ticks.

:class:`QueryServer` accepts single ``C2(a, b)`` queries from any number
of concurrent callers, gathers everything that arrives within one *tick*
into a single :class:`~repro.engine.BatchQueryEngine` workload, and
resolves each caller's future with its own estimate. The per-tick batch
runs against the server's epoch-scoped
:class:`~repro.serving.cache.NoisyViewCache`, so:

* the bulk RR draw (the expensive, budget-charging step) is amortized
  across every caller in the tick;
* a vertex perturbed earlier in the epoch serves later queries from its
  cached noisy view at **zero** additional budget — replaying a workload
  within one epoch costs exactly the one-shot batch spend;
* ``rotate_epoch`` (manual, or automatic every ``epoch_ticks`` ticks)
  drops the views: the next queries re-draw and recharge.

The tick loop runs on the event loop itself (the engine's array work is
fast and releasing the GIL would not help a single-process server); with
``tick_interval=0`` a tick fires as soon as the loop drains the currently
runnable callers, which coalesces any burst issued in one scheduling
round into one batch.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.engine.core import BatchQueryEngine
from repro.errors import GraphError, ProtocolError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.rng import RngLike, ensure_rng
from repro.privacy.sensitivity import degree_sensitivity
from repro.protocol.messages import FLOAT_BYTES, CommunicationLog, Direction
from repro.protocol.session import ExecutionMode
from repro.serving.cache import NoisyViewCache

__all__ = ["ServedEstimate", "ServerStats", "QueryServer"]


@dataclass(frozen=True)
class ServedEstimate:
    """One caller's answer: the estimate plus its serving provenance."""

    pair: QueryPair
    value: float
    noisy_intersection: int
    noisy_union: int
    epoch: int
    tick: int
    cache_hit: bool  # True when the query triggered no fresh charge
    epsilon: float
    noisy_degree_a: float | None = None
    noisy_degree_b: float | None = None


@dataclass
class ServerStats:
    """Lifetime serving counters (cache counters live on the cache)."""

    ticks: int = 0
    queries_served: int = 0
    max_coalesced: int = 0
    ticks_in_epoch: int = 0
    epochs_completed: int = 0
    errors: int = 0

    def mean_coalesced(self) -> float:
        return self.queries_served / self.ticks if self.ticks else 0.0


class QueryServer:
    """Serve single-pair C2 queries from coalesced, epoch-cached batches.

    Parameters
    ----------
    graph, layer, epsilon:
        The serving context; every query runs at the same pinned epsilon
        (the epoch cache's draws are only valid at their own budget).
    mode:
        Engine execution mode; ``AUTO`` resolves by candidate-pool size.
    tick_interval:
        Seconds to linger before closing a tick (``0`` coalesces exactly
        the burst that is runnable when the first query lands).
    epoch_ticks:
        Rotate the epoch automatically after this many ticks (``None`` =
        manual rotation only).
    degree_epsilon:
        When set, every answer also carries epoch-cached noisy Laplace
        degrees for both endpoints (first release per vertex per epoch is
        charged, later ones are free) — the ingredients similarity-style
        applications need.
    epsilon_per_epoch:
        Per-vertex epoch allowance enforced by the accountant. The
        default (``"auto"``) caps materialize-mode serving at
        ``epsilon + degree_epsilon`` — which cache-hit accounting never
        exceeds — and leaves sketch mode unenforced, since new
        overlapping pairs legitimately recharge there. Pass ``None`` to
        disable enforcement entirely, or a float to cap explicitly.
    ledger, rng:
        Optional long-lived ledger (default: a fresh unlimited one) and
        the server's random stream.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        epsilon: float,
        *,
        mode: ExecutionMode = ExecutionMode.AUTO,
        tick_interval: float = 0.0,
        epoch_ticks: int | None = None,
        degree_epsilon: float | None = None,
        epsilon_per_epoch: float | str | None = "auto",
        ledger: PrivacyLedger | None = None,
        rng: RngLike = None,
    ):
        if epoch_ticks is not None and epoch_ticks <= 0:
            raise ProtocolError(f"epoch_ticks must be positive, got {epoch_ticks}")
        if degree_epsilon is not None and degree_epsilon <= 0:
            raise ProtocolError("degree_epsilon must be positive when given")
        cache = NoisyViewCache(graph, layer, epsilon, mode=mode)
        if epsilon_per_epoch == "auto":
            if cache.mode is ExecutionMode.MATERIALIZE:
                epsilon_per_epoch = float(epsilon) + (degree_epsilon or 0.0)
            else:
                epsilon_per_epoch = None
        cache.accountant.epsilon_per_epoch = epsilon_per_epoch

        self.graph = graph
        self.layer = layer
        self.epsilon = float(epsilon)
        self.cache = cache
        self.mode = cache.mode
        self.tick_interval = float(tick_interval)
        self.epoch_ticks = epoch_ticks
        self.degree_epsilon = degree_epsilon
        self.ledger = ledger if ledger is not None else PrivacyLedger()
        self.comm = CommunicationLog()
        self.engine = BatchQueryEngine(mode=self.mode)
        self.rng = ensure_rng(rng)
        self.stats = ServerStats()
        self._pending: list[tuple[QueryPair, asyncio.Future]] = []
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closing = False

    # ------------------------------------------------------------------
    @property
    def accountant(self):
        """The cache's per-vertex epoch accountant."""
        return self.cache.accountant

    @property
    def epoch(self) -> int:
        return self.cache.epoch

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._task is not None:
            raise ProtocolError("server is already running")
        self._closing = False
        self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        """Serve whatever is still pending, then shut the tick loop down."""
        if self._task is None:
            return
        self._closing = True
        self._wake.set()
        await self._task
        self._task = None

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def query(self, a: int, b: int) -> ServedEstimate:
        """Estimate ``C2(a, b)``; resolves after the coalescing tick runs."""
        pair = QueryPair(self.layer, a, b)  # validates distinctness
        n_layer = self.graph.layer_size(self.layer)
        if not (0 <= pair.a < n_layer and 0 <= pair.b < n_layer):
            raise GraphError(
                f"query vertex out of range for {self.layer} layer of size {n_layer}"
            )
        if self._task is None or self._closing:
            raise ProtocolError("server is not running (use `async with` or start())")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append((pair, future))
        self._wake.set()
        return await future

    async def query_pair(self, pair: QueryPair) -> ServedEstimate:
        return await self.query(pair.a, pair.b)

    def rotate_epoch(self) -> int:
        """Start a new epoch: views dropped, next queries re-draw and recharge."""
        epoch = self.cache.rotate()
        self.stats.epochs_completed += 1
        self.stats.ticks_in_epoch = 0
        return epoch

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            await self._wake.wait()
            if self.tick_interval > 0:
                await asyncio.sleep(self.tick_interval)
            else:
                # One extra scheduling round so every caller made runnable
                # by the same burst lands in this tick.
                await asyncio.sleep(0)
            batch, self._pending = self._pending, []
            self._wake.clear()
            if batch:
                self._serve_tick(batch)
            if self._closing and not self._pending:
                return

    def _serve_tick(self, batch: list[tuple[QueryPair, asyncio.Future]]) -> None:
        pairs = [pair for pair, _ in batch]
        epoch = self.cache.epoch
        self.stats.ticks += 1
        self.stats.ticks_in_epoch += 1
        self.stats.max_coalesced = max(self.stats.max_coalesced, len(batch))
        tick = self.stats.ticks
        hits = self._pre_tick_hits(pairs)
        try:
            result = self.engine.estimate_pairs(
                self.graph, self.layer, pairs, self.epsilon,
                rng=self.rng, mode=self.mode,
                ledger=self.ledger, comm=self.comm, cache=self.cache,
            )
            degrees = self._release_degrees(result.vertices)
        except Exception as exc:  # noqa: BLE001 - routed to the callers
            self.stats.errors += 1
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for j, (pair, future) in enumerate(batch):
            estimate = ServedEstimate(
                pair=pair,
                value=float(result.values[j]),
                noisy_intersection=int(result.noisy_intersections[j]),
                noisy_union=int(result.noisy_unions[j]),
                epoch=epoch,
                tick=tick,
                cache_hit=hits[j],
                epsilon=self.epsilon,
                noisy_degree_a=None if degrees is None else degrees[pair.a],
                noisy_degree_b=None if degrees is None else degrees[pair.b],
            )
            if not future.done():
                future.set_result(estimate)
        self.stats.queries_served += len(batch)
        if self.epoch_ticks is not None and self.stats.ticks_in_epoch >= self.epoch_ticks:
            self.rotate_epoch()

    def _pre_tick_hits(self, pairs: list[QueryPair]) -> list[bool]:
        """Per-caller hit flags, taken before the tick mutates the cache."""
        if self.mode is ExecutionMode.MATERIALIZE:
            return [
                self.cache.has_view(p.a) and self.cache.has_view(p.b) for p in pairs
            ]
        return [self.cache.has_pair(p.a, p.b) for p in pairs]

    def _release_degrees(self, vertices: np.ndarray) -> dict[int, float] | None:
        """Epoch-cached noisy degrees for the tick's distinct vertices."""
        if self.degree_epsilon is None:
            return None
        fresh = np.array(
            [v for v in vertices if not self.cache.has_degree(v)], dtype=np.int64
        )
        if fresh.size:
            # Charge first: a refused charge must not leave cached degrees
            # behind to be served free (and unaccounted) on later ticks.
            self.accountant.charge_vertices(
                self.layer, fresh, self.degree_epsilon,
                "laplace-degree", "serve-degrees", ledger=self.ledger,
            )
            mech = LaplaceMechanism(self.degree_epsilon, degree_sensitivity())
            values = mech.release_many(
                self.graph.degrees(self.layer)[fresh], self.rng
            )
            self.cache.store_degrees(fresh, values)
            self.comm.record(
                Direction.UPLOAD, int(fresh.size) * FLOAT_BYTES, "serve:degrees"
            )
            self.cache.stats.degree_misses += int(fresh.size)
        self.cache.stats.degree_hits += int(len(vertices) - fresh.size)
        return {int(v): self.cache.degree(v) for v in vertices}

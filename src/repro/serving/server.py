"""Asyncio front end: coalesce concurrent pair queries into engine ticks.

:class:`QueryServer` accepts single ``C2(a, b)`` queries from any number
of concurrent callers, gathers everything that arrives within one *tick*
into a single :class:`~repro.engine.BatchQueryEngine` workload, and
resolves each caller's future with its own estimate. The per-tick batch
runs against the server's epoch-scoped
:class:`~repro.serving.cache.NoisyViewCache`, so:

* the bulk RR draw (the expensive, budget-charging step) is amortized
  across every caller in the tick;
* a vertex perturbed earlier in the epoch serves later queries from its
  cached noisy view at **zero** additional budget — replaying a workload
  within one epoch costs exactly the one-shot batch spend;
* ``rotate_epoch`` (manual, automatic every ``epoch_ticks`` ticks, or on
  a wall clock every ``epoch_seconds``) drops the views: the next
  queries re-draw and recharge. A rotation can *warm* the new epoch by
  pre-drawing the previous epoch's hottest vertices so the first
  post-rotation tick doesn't stampede on the hot pool.

Multi-tenant serving hands the server a
:class:`~repro.serving.tenants.TenantRegistry`: every query is tagged
with its tenant, cache hits stay free for everyone, and a tick's fresh
vertices are paid for by the first tenant that needs them — a tenant out
of quota gets :class:`~repro.errors.BudgetExceededError` on its own
queries while the rest of the tick proceeds.

The tick loop runs on the event loop itself (the engine's array work is
fast and releasing the GIL would not help a single-process server); with
``tick_interval=0`` a tick fires as soon as the loop drains the currently
runnable callers, which coalesces any burst issued in one scheduling
round into one batch.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.engine.core import BatchQueryEngine
from repro.engine.sharded import ShardedRunner
from repro.engine.transport import ShardTransport, make_transport
from repro.engine.sketches import SketchConfig
from repro.errors import (
    GraphError,
    ProtocolError,
    QueryDeadlineError,
    ServerOverloadedError,
    ServerStalledError,
)
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.rng import RngLike, ensure_rng
from repro.privacy.sensitivity import degree_sensitivity
from repro.protocol.messages import (
    FLOAT_BYTES,
    ID_BYTES,
    CommunicationLog,
    Direction,
)
from repro.protocol.session import ExecutionMode, resolve_mode
from repro.serving.cache import NoisyViewCache
from repro.serving.tenants import TenantRegistry

__all__ = ["ServedEstimate", "ServerStats", "Subscription", "QueryServer"]

# Bounded grace stop() gives a tick the watchdog abandoned: the zombie
# engine call still holds the cache and shard runner, so shutdown waits
# this long for it to drain before freeing them (then proceeds anyway —
# shutdown must stay bounded even under a permanently wedged engine).
_STOP_GRACE_S = 5.0


@dataclass(frozen=True)
class ServedEstimate:
    """One caller's answer: the estimate plus its serving provenance."""

    pair: QueryPair
    value: float
    noisy_intersection: int
    noisy_union: int
    epoch: int
    tick: int
    cache_hit: bool  # True when the query triggered no fresh charge
    epsilon: float
    noisy_degree_a: float | None = None
    noisy_degree_b: float | None = None
    tenant: str | None = None


@dataclass
class Subscription:
    """A standing ``C2(a, b)`` query registered with :meth:`QueryServer.subscribe`.

    The server keeps the latest estimate in ``last`` and refreshes it
    after every rotation that could have changed it: a *full* rotation
    refreshes every subscription (all streams redrew), an *incremental*
    rotation refreshes only subscriptions touching a dirty vertex —
    clean pairs keep their bit-identical answer, so re-serving them
    would be a no-op. ``stale`` is True from the rotation until the
    refresh estimate lands.
    """

    id: int
    pair: QueryPair
    tenant: str | None = None
    last: ServedEstimate | None = None
    stale: bool = False
    refreshes: int = 0


@dataclass
class ServerStats:
    """Lifetime serving counters (cache counters live on the cache)."""

    ticks: int = 0
    queries_served: int = 0
    queries_rejected: int = 0  # tenant-budget refusals
    queries_shed: int = 0  # admission-queue overflow refusals (no debit)
    deadline_expired: int = 0  # queries whose deadline passed pre-tick
    stalled_ticks: int = 0  # ticks abandoned by the watchdog
    deferred_rotations: int = 0  # timed rotations skipped mid-tick
    max_coalesced: int = 0
    ticks_in_epoch: int = 0
    epochs_completed: int = 0
    timed_rotations: int = 0  # rotations fired by the wall-clock timer
    warmed_vertices: int = 0  # views pre-drawn across all rotations
    mutations: int = 0  # edge ops recorded through mutate()
    subscription_refreshes: int = 0  # standing queries re-served post-rotation
    errors: int = 0

    def mean_coalesced(self) -> float:
        """Mean queries per tick across the server's lifetime."""
        return self.queries_served / self.ticks if self.ticks else 0.0


class QueryServer:
    """Serve single-pair C2 queries from coalesced, epoch-cached batches.

    Parameters
    ----------
    graph, layer, epsilon:
        The serving context; every query runs at the same pinned epsilon
        (the epoch cache's draws are only valid at their own budget).
    mode:
        Engine execution mode; ``AUTO`` resolves by candidate-pool size.
        ``SKETCH_VIEW`` serves every query from fixed-size per-vertex
        sketch views (requires ``sketch_bits``).
    sketch_bits:
        Serve sublinear-memory *sketch views*: every vertex releases one
        blipped Bloom filter of this many bits (a positive multiple of
        8) instead of a noisy neighbor list, so
        resident view memory is ``sketch_bits / 8`` bytes per vertex
        regardless of degree. Implies ``SKETCH_VIEW`` mode (and refuses
        any other explicit ``mode``). Cached views keep the same reuse,
        eviction and deterministic-redraw contract as materialized rows.
    tick_interval:
        Seconds to linger before closing a tick (``0`` coalesces exactly
        the burst that is runnable when the first query lands).
    epoch_ticks:
        Rotate the epoch automatically after this many ticks (``None`` =
        no tick-based rotation).
    epoch_seconds:
        Rotate the epoch on a wall clock, every this many seconds, from
        a background task that runs for the server's lifetime (``None``
        = no timed rotation). Composes with ``epoch_ticks``; whichever
        fires first rotates.
    warm_vertices:
        At every rotation, pre-draw (and charge) the closed epoch's this
        many hottest vertices into the fresh epoch, so the first
        post-rotation tick over the hot pool doesn't stampede into one
        giant miss batch. Materialize and sketch-view modes only; ``0``
        disables warming.
    cache_bytes, cache_entries:
        Optional LRU budget for the noisy-view cache (see
        :class:`~repro.serving.cache.NoisyViewCache`): stores evict
        least-recently-used views past the budget, and evicted views are
        reconstructed deterministically — privacy-free — on their next
        touch.
    shards, shard_mem_bytes:
        Shard every materialize-mode miss draw across forked worker
        processes (``shards`` worker cap and range count, or
        ``shard_mem_bytes`` per-shard noisy-payload budget with a
        cpu-count worker cap). Sharded serving draws from the keyed
        Philox streams, so the served bits are identical whatever the
        shard boundaries; the server owns the
        :class:`~repro.engine.sharded.ShardedRunner` and frees its
        workers on :meth:`stop`. Ignored in sketch mode (there are no
        rows to shard). See ``docs/sharding-guide.md``.
    shard_timeout_s, shard_retries:
        Resilience knobs forwarded to the sharded runner: the per-task
        deadline and the re-dispatch budget before a failed range
        degrades to inline execution (see ``docs/resilience-guide.md``).
    shard_transport, shard_workers:
        *Where* sharded serving runs: a
        :class:`~repro.engine.transport.ShardTransport` instance, or a
        kind name (``"inline"``, ``"fork"``, ``"socket"``);
        ``shard_workers`` lists the socket cluster's ``host:port``
        addresses. Defaults to the fork pool. Giving a transport alone
        turns sharding on with one range per transport worker. See
        ``docs/distributed-guide.md``.
    warm_decay:
        EWMA coefficient of the cross-epoch warm set (forwarded to the
        cache): each rotation folds the closed epoch's touch counts into
        a smoothed heat, so the warmed vertices track the *persistent*
        hot set instead of whatever the last epoch happened to touch.
        ``1.0`` recovers last-epoch-only warming.
    max_pending:
        Bound on the admission queue. When a new query would push the
        queue past the bound, the query with the *oldest deadline* is
        refused with :class:`~repro.errors.ServerOverloadedError`
        (queries without deadlines are never preferred as victims; if no
        queued query carries an earlier deadline, the newcomer itself is
        refused). Shedding happens before tenant admission, so a shed
        query never debits any tenant. ``None`` = unbounded.
    query_deadline_s:
        Default per-query deadline. A query still pending when its
        deadline passes is failed with
        :class:`~repro.errors.QueryDeadlineError` at the next tick
        *before* tenant admission — its untouched budget stays with the
        tenant. :meth:`query` accepts a per-call ``deadline_s``
        override. ``None`` = no deadline.
    tick_watchdog_s:
        When set, each tick's engine call runs on a dedicated worker
        thread under this deadline; a stuck tick is abandoned — its
        callers get :class:`~repro.errors.ServerStalledError` and
        admission debits are refunded — instead of hanging every client
        forever. The abandoned call keeps the tick thread until it
        actually finishes, and timed rotations *and later ticks* wait
        for it (a later tick stalls in turn if the zombie outlives its
        own watchdog window), so an abandoned call can never race an
        epoch swap or another engine call on the shared cache.
    tenants:
        A :class:`~repro.serving.tenants.TenantRegistry` turns on
        multi-tenant serving: every :meth:`query` must then carry a
        registered ``tenant`` name, cache misses debit that tenant's
        budget, and over-quota queries are refused individually.
    degree_epsilon:
        When set, every answer also carries epoch-cached noisy Laplace
        degrees for both endpoints (first release per vertex per epoch is
        charged, later ones are free) — the ingredients similarity-style
        applications need.
    epsilon_per_epoch:
        Per-vertex epoch allowance enforced by the accountant. The
        default (``"auto"``) caps materialize- and sketch-view-mode
        serving at ``epsilon + degree_epsilon`` — which cache-hit
        accounting never exceeds, even through evict/redraw cycles and
        warm pre-draws — and leaves sketch mode unenforced, since new
        overlapping pairs legitimately recharge there. Pass ``None`` to disable
        enforcement entirely, or a float to cap explicitly.
    ledger, rng:
        Optional long-lived ledger (default: a fresh unlimited one) and
        the server's random stream.

    Raises
    ------
    ProtocolError
        If ``epoch_ticks``/``epoch_seconds`` are not positive,
        ``warm_vertices`` is negative, ``degree_epsilon`` is not
        positive when given, or the cache bounds are invalid.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        layer: Layer,
        epsilon: float,
        *,
        mode: ExecutionMode = ExecutionMode.AUTO,
        sketch_bits: int | None = None,
        tick_interval: float = 0.0,
        epoch_ticks: int | None = None,
        epoch_seconds: float | None = None,
        warm_vertices: int = 0,
        cache_bytes: int | None = None,
        cache_entries: int | None = None,
        shards: int | None = None,
        shard_mem_bytes: int | None = None,
        shard_timeout_s: float | None = None,
        shard_retries: int = 2,
        shard_transport: "ShardTransport | str | None" = None,
        shard_workers: list[str] | tuple[str, ...] | None = None,
        warm_decay: float = 0.5,
        max_pending: int | None = None,
        query_deadline_s: float | None = None,
        tick_watchdog_s: float | None = None,
        tenants: TenantRegistry | None = None,
        degree_epsilon: float | None = None,
        epsilon_per_epoch: float | str | None = "auto",
        ledger: PrivacyLedger | None = None,
        rng: RngLike = None,
    ):
        if epoch_ticks is not None and epoch_ticks <= 0:
            raise ProtocolError(f"epoch_ticks must be positive, got {epoch_ticks}")
        if epoch_seconds is not None and epoch_seconds <= 0:
            raise ProtocolError(
                f"epoch_seconds must be positive, got {epoch_seconds}"
            )
        if warm_vertices < 0:
            raise ProtocolError(f"warm_vertices must be >= 0, got {warm_vertices}")
        if degree_epsilon is not None and degree_epsilon <= 0:
            raise ProtocolError("degree_epsilon must be positive when given")
        if shards is not None and shards <= 0:
            raise ProtocolError(f"shards must be positive, got {shards}")
        if shard_mem_bytes is not None and shard_mem_bytes <= 0:
            raise ProtocolError(
                f"shard_mem_bytes must be positive, got {shard_mem_bytes}"
            )
        if max_pending is not None and max_pending <= 0:
            raise ProtocolError(f"max_pending must be positive, got {max_pending}")
        if query_deadline_s is not None and query_deadline_s <= 0:
            raise ProtocolError(
                f"query_deadline_s must be positive, got {query_deadline_s}"
            )
        if tick_watchdog_s is not None and tick_watchdog_s <= 0:
            raise ProtocolError(
                f"tick_watchdog_s must be positive, got {tick_watchdog_s}"
            )
        sketch = None
        if sketch_bits is not None:
            sketch = SketchConfig("bloom", int(sketch_bits))
            if mode is ExecutionMode.AUTO:
                mode = ExecutionMode.SKETCH_VIEW
            elif mode is not ExecutionMode.SKETCH_VIEW:
                raise ProtocolError(
                    f"sketch_bits implies sketch-view mode, got {mode.value}"
                )
        elif mode is ExecutionMode.SKETCH_VIEW:
            raise ProtocolError("sketch-view serving needs sketch_bits")
        self.rng = ensure_rng(rng)
        runner = None
        if (
            shards is not None
            or shard_mem_bytes is not None
            or shard_transport is not None
        ):
            if resolve_mode(graph, layer, mode) is ExecutionMode.MATERIALIZE:
                transport = shard_transport
                if isinstance(transport, str):
                    transport = make_transport(
                        transport,
                        max_workers=shards,
                        workers=shard_workers,
                    )
                runner = ShardedRunner(
                    graph,
                    layer,
                    max_workers=shards,
                    timeout_s=shard_timeout_s,
                    max_retries=shard_retries,
                    transport=transport,
                )
        self._shard_runner = runner
        cache = NoisyViewCache(
            graph, layer, epsilon,
            mode=mode,
            max_bytes=cache_bytes,
            max_entries=cache_entries,
            rng=self.rng,
            shard_runner=runner,
            shard_mem_bytes=shard_mem_bytes,
            sketch=sketch,
            warm_decay=warm_decay,
        )
        if epsilon_per_epoch == "auto":
            # Vertex-granular modes never exceed one release per vertex
            # per epoch; only pair-granular sketch mode recharges.
            if cache.mode in (
                ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH_VIEW
            ):
                epsilon_per_epoch = float(epsilon) + (degree_epsilon or 0.0)
            else:
                epsilon_per_epoch = None
        cache.accountant.epsilon_per_epoch = epsilon_per_epoch

        self.layer = layer
        self.epsilon = float(epsilon)
        self.cache = cache
        self.mode = cache.mode
        self.tick_interval = float(tick_interval)
        self.epoch_ticks = epoch_ticks
        self.epoch_seconds = None if epoch_seconds is None else float(epoch_seconds)
        self.warm_vertices = int(warm_vertices)
        self.max_pending = max_pending
        self.query_deadline_s = (
            None if query_deadline_s is None else float(query_deadline_s)
        )
        self.tick_watchdog_s = (
            None if tick_watchdog_s is None else float(tick_watchdog_s)
        )
        self.tenants = tenants
        self.degree_epsilon = degree_epsilon
        self.ledger = ledger if ledger is not None else PrivacyLedger()
        self.comm = CommunicationLog()
        self.engine = BatchQueryEngine(mode=self.mode, sketch=sketch)
        self.stats = ServerStats()
        # Pending entries carry an absolute loop-clock deadline (None =
        # no deadline) used by load shedding and pre-tick pruning.
        self._pending: list[
            tuple[QueryPair, str | None, asyncio.Future, float | None]
        ] = []
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._rotator: asyncio.Task | None = None
        self._closing = False
        # True while an engine call — live *or* abandoned by the
        # watchdog — is running on the tick thread; cleared only when
        # the call actually finishes. Rotations and later ticks gate on
        # it so a zombie call can never race them on the shared cache,
        # ledger and rng. `_tick_idle` is the awaitable complement.
        self._tick_busy = False
        self._tick_idle = asyncio.Event()
        self._tick_idle.set()
        self._tick_pool: ThreadPoolExecutor | None = None
        self._subscriptions: dict[int, Subscription] = {}
        self._next_sub_id = 1
        self._refresh_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        """The served graph snapshot (swapped by incremental rotations)."""
        return self.cache.graph

    @property
    def accountant(self):
        """The cache's per-vertex epoch accountant."""
        return self.cache.accountant

    @property
    def epoch(self) -> int:
        """The current serving epoch (starts at 0)."""
        return self.cache.epoch

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the tick loop (and the wall-clock rotator, if configured).

        Raises
        ------
        ProtocolError
            If the server is already running.
        """
        if self._task is not None:
            raise ProtocolError("server is already running")
        self._closing = False
        self._task = asyncio.create_task(self._run())
        if self.epoch_seconds is not None:
            self._rotator = asyncio.create_task(self._rotate_loop())

    async def stop(self) -> None:
        """Serve whatever is still pending, then shut the tick loop down."""
        if self._task is None:
            return
        self._closing = True
        if self._rotator is not None:
            self._rotator.cancel()
            try:
                await self._rotator
            except asyncio.CancelledError:
                pass
            self._rotator = None
        self._wake.set()
        await self._task
        self._task = None
        if self._refresh_tasks:
            # Subscription refreshes scheduled by a late rotation; the
            # tick loop is gone, so they can only error — drop them.
            for task in list(self._refresh_tasks):
                task.cancel()
            await asyncio.gather(*self._refresh_tasks, return_exceptions=True)
            self._refresh_tasks.clear()
        if self._tick_busy:
            # A tick the watchdog abandoned may still be running on the
            # tick thread; give it a bounded grace to drain before the
            # shard runner and cache underneath it are freed.
            try:
                await asyncio.wait_for(
                    self._tick_idle.wait(), timeout=_STOP_GRACE_S
                )
            except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
                pass
        if self._tick_pool is not None:
            self._tick_pool.shutdown(wait=False, cancel_futures=True)
            self._tick_pool = None
        if self._shard_runner is not None:
            self._shard_runner.close()

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def query(
        self,
        a: int,
        b: int,
        *,
        tenant: str | None = None,
        deadline_s: float | None = None,
    ) -> ServedEstimate:
        """Estimate ``C2(a, b)``; resolves after the coalescing tick runs.

        Parameters
        ----------
        a, b:
            Distinct query vertices on the server's layer.
        tenant:
            The requesting analyst's registered name. Required when the
            server has a :class:`TenantRegistry`; forbidden otherwise.
        deadline_s:
            Per-call deadline override (seconds from now); defaults to
            the server's ``query_deadline_s``.

        Returns
        -------
        ServedEstimate
            The caller's answer with its serving provenance (epoch, tick,
            cache-hit flag, optional noisy degrees).

        Raises
        ------
        GraphError
            If a vertex id is out of range for the serving layer.
        ProtocolError
            If the server is not running, the pair is degenerate, the
            tenant tag is missing/unknown/unexpected, or ``deadline_s``
            is not positive.
        BudgetExceededError
            If the requesting tenant cannot cover the query's marginal
            cost, or (enforced accountants) a vertex would exceed its
            epoch allowance.
        ServerOverloadedError
            If the admission queue is full and this query holds the
            oldest deadline among the shedding candidates. Nothing was
            charged.
        QueryDeadlineError
            If the query's deadline passed before its tick ran. Nothing
            was charged.
        """
        pair = QueryPair(self.layer, a, b)  # validates distinctness
        n_layer = self.graph.layer_size(self.layer)
        if not (0 <= pair.a < n_layer and 0 <= pair.b < n_layer):
            raise GraphError(
                f"query vertex out of range for {self.layer} layer of size {n_layer}"
            )
        if self.tenants is not None:
            if tenant is None:
                raise ProtocolError(
                    "this server is multi-tenant: pass tenant=<registered name>"
                )
            self.tenants.get(tenant)  # raises ProtocolError when unknown
        elif tenant is not None:
            raise ProtocolError(
                "tenant tags need a TenantRegistry (pass tenants= to the server)"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ProtocolError(f"deadline_s must be positive, got {deadline_s}")
        if self._task is None or self._closing:
            raise ProtocolError("server is not running (use `async with` or start())")
        loop = asyncio.get_running_loop()
        if deadline_s is None:
            deadline_s = self.query_deadline_s
        deadline = None if deadline_s is None else loop.time() + float(deadline_s)
        if (
            self.max_pending is not None
            and len(self._pending) >= self.max_pending
        ):
            self._shed_for(pair, deadline)
        future: asyncio.Future = loop.create_future()
        self._pending.append((pair, tenant, future, deadline))
        self._wake.set()
        return await future

    def _shed_for(self, pair: QueryPair, deadline: float | None) -> None:
        """Make room for a new query by refusing the oldest-deadline one.

        The victim is the queued query with the earliest deadline, unless
        the newcomer's own deadline is at least as early (or nothing
        queued carries one) — then the newcomer is refused instead, by
        raising out of :meth:`query` before its future exists. Either
        way the refusal precedes tenant admission, so no budget moves.
        """
        victim = None
        victim_deadline = deadline  # the newcomer's; None sorts last
        for i, (_, _, _, d) in enumerate(self._pending):
            if d is not None and (victim_deadline is None or d < victim_deadline):
                victim, victim_deadline = i, d
        self.stats.queries_shed += 1
        if victim is None:
            raise ServerOverloadedError(
                f"admission queue is full ({self.max_pending} pending); "
                f"query {(pair.a, pair.b)} shed unserved (nothing charged)"
            )
        vpair, _, vfuture, _ = self._pending.pop(victim)
        if not vfuture.done():
            vfuture.set_exception(
                ServerOverloadedError(
                    f"admission queue is full ({self.max_pending} pending); "
                    f"query {(vpair.a, vpair.b)} shed unserved "
                    "(nothing charged)"
                )
            )

    async def query_pair(
        self,
        pair: QueryPair,
        *,
        tenant: str | None = None,
        deadline_s: float | None = None,
    ) -> ServedEstimate:
        """:meth:`query` for an existing :class:`QueryPair`."""
        return await self.query(
            pair.a, pair.b, tenant=tenant, deadline_s=deadline_s
        )

    def mutate(
        self,
        inserts: np.ndarray | list | tuple = (),
        deletes: np.ndarray | list | tuple = (),
    ) -> int:
        """Record streaming edge mutations, applied at the next rotation.

        The served snapshot is immutable between epochs: mutations land
        in the cache's out-of-place delta log, and the next
        :meth:`rotate_epoch` swaps in the mutated graph *incrementally* —
        only the net delta's dirty vertices redraw (and recharge); clean
        vertices keep serving their existing bit-identical views for
        free. Returns the number of ops recorded.

        Raises
        ------
        GraphError
            If an edge endpoint is out of range.
        """
        recorded = self.cache.mutate(inserts, deletes)
        self.stats.mutations += recorded
        return recorded

    def ingest_ledger(self) -> dict | None:
        """The shard transport's streaming-ingest traffic ledger, if any.

        A socket cluster absorbing :meth:`mutate` rotations reports what
        each resync cost: MUTATE delta pushes (and the bytes they saved
        against re-shipping the snapshot), full GRAPH installs, and
        pushes workers refused because their delta chain diverged.
        ``None`` when the server is not sharded or its transport keeps
        no such ledger (inline / fork).
        """
        if self._shard_runner is None:
            return None
        return self._shard_runner.transport.describe().get("ingest")

    async def subscribe(
        self, a: int, b: int, *, tenant: str | None = None
    ) -> Subscription:
        """Register a standing ``C2(a, b)`` query and serve its first estimate.

        The returned :class:`Subscription` is live: after every rotation
        that could change the answer — any full rotation, or an
        incremental rotation that dirtied ``a`` or ``b`` — the server
        re-queries the pair and replaces ``last``. Rotations that leave
        both endpoints clean do not refresh (the cached answer is still
        bit-identical). Raises exactly like :meth:`query`.
        """
        estimate = await self.query(a, b, tenant=tenant)
        sub = Subscription(
            id=self._next_sub_id,
            pair=QueryPair(self.layer, a, b),
            tenant=tenant,
            last=estimate,
        )
        self._next_sub_id += 1
        self._subscriptions[sub.id] = sub
        return sub

    def unsubscribe(self, sub_id: int) -> bool:
        """Drop a standing query; True when it existed."""
        return self._subscriptions.pop(int(sub_id), None) is not None

    @property
    def subscriptions(self) -> list[Subscription]:
        """The live standing queries (registration order)."""
        return list(self._subscriptions.values())

    def rotate_epoch(self) -> int:
        """Start a new epoch: views dropped, next queries re-draw and recharge.

        With pending :meth:`mutate` ops whose net effect is nonempty, the
        rotation is *incremental* (see :meth:`NoisyViewCache.rotate`):
        the mutated snapshot is swapped in and only dirty vertices drop
        their views; clean vertices keep serving charge-free.

        When ``warm_vertices > 0`` (materialize mode), the closed epoch's
        hottest vertices are immediately re-drawn — and charged — into
        the fresh epoch, server-funded: tenants see them as cache hits.

        Standing subscriptions touched by the rotation (all of them on a
        full rotation, dirty-endpoint ones on an incremental rotation)
        are marked stale and re-queried on the event loop.

        Returns the new epoch id.
        """
        epoch = self.cache.rotate()
        self.stats.epochs_completed += 1
        self.stats.ticks_in_epoch = 0
        # No warming during shutdown: the pre-draw may fan out to the
        # shard runner, which stop() is about to free.
        if (
            self.warm_vertices
            and self.mode
            in (ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH_VIEW)
            and not self._closing
        ):
            self._prewarm(self.cache.hottest_last_epoch(self.warm_vertices))
        self._refresh_subscriptions(self.cache.last_rotation)
        return epoch

    def _refresh_subscriptions(self, rotation: dict) -> None:
        """Mark rotation-affected subscriptions stale and re-query them.

        Outside a running event loop the subscriptions are only marked
        stale — the next in-loop rotation (or a manual re-query) clears
        them; refreshing needs the tick loop.
        """
        if not self._subscriptions:
            return
        if rotation.get("incremental"):
            dirty = {int(v) for v in rotation.get("dirty_vertices", ())}
            affected = [
                s for s in self._subscriptions.values()
                if s.pair.a in dirty or s.pair.b in dirty
            ]
        else:
            affected = list(self._subscriptions.values())
        if not affected:
            return
        for sub in affected:
            sub.stale = True
        if self._closing or self._task is None:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        for sub in affected:
            task = loop.create_task(self._refresh_one(sub))
            self._refresh_tasks.add(task)
            task.add_done_callback(self._refresh_tasks.discard)

    async def _refresh_one(self, sub: Subscription) -> None:
        if self._closing or sub.id not in self._subscriptions:
            return
        try:
            estimate = await self.query_pair(sub.pair, tenant=sub.tenant)
        except ProtocolError:
            return  # server stopped under the refresh
        except Exception:  # noqa: BLE001 - a standing query must not crash
            self.stats.errors += 1
            return
        if sub.id in self._subscriptions:
            sub.last = estimate
            sub.stale = False
            sub.refreshes += 1
            self.stats.subscription_refreshes += 1

    def _prewarm(self, hot: list[int]) -> None:
        """Charge and pre-draw the given vertices into the fresh epoch."""
        if not hot:
            return
        vertices = np.asarray(hot, dtype=np.int64)
        self.accountant.charge_vertices(
            self.layer, self.cache.uncharged(vertices), self.epsilon,
            "randomized-response", "warm-rr", ledger=self.ledger,
        )
        if self.mode is ExecutionMode.SKETCH_VIEW:
            drawn_bytes = self.cache.sketch_view_fresh(vertices, self.rng)
        else:
            drawn_bytes = (
                self.cache.materialize_fresh(vertices, self.rng) * ID_BYTES
            )
        if drawn_bytes:
            self.comm.record(Direction.UPLOAD, drawn_bytes, "serve:warm")
        self.cache.stats.warm_draws += int(vertices.size)
        self.stats.warmed_vertices += int(vertices.size)
        self.cache.evict_to_budget()

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            await self._wake.wait()
            if self.tick_interval > 0:
                await asyncio.sleep(self.tick_interval)
            else:
                # One extra scheduling round so every caller made runnable
                # by the same burst lands in this tick.
                await asyncio.sleep(0)
            batch, self._pending = self._pending, []
            self._wake.clear()
            batch = self._prune_expired(batch)
            if batch:
                await self._serve_tick(batch)
            if self._closing and not self._pending:
                return

    def _prune_expired(
        self,
        batch: list[tuple[QueryPair, str | None, asyncio.Future, float | None]],
    ) -> list[tuple[QueryPair, str | None, asyncio.Future, float | None]]:
        """Fail queries whose deadline passed before their tick ran.

        Pruning happens *before* tenant admission, so an expired query's
        budget is untouched — the "refund" is that nothing was ever
        debited for it.
        """
        if all(deadline is None for _, _, _, deadline in batch):
            return batch
        now = asyncio.get_running_loop().time()
        live = []
        for entry in batch:
            pair, _, future, deadline = entry
            if deadline is not None and deadline <= now:
                self.stats.deadline_expired += 1
                if not future.done():
                    future.set_exception(
                        QueryDeadlineError(
                            f"deadline expired before the tick for query "
                            f"{(pair.a, pair.b)} (nothing charged)"
                        )
                    )
            else:
                live.append(entry)
        return live

    async def _rotate_loop(self) -> None:
        """Wall-clock epoch rotation, cancelled on :meth:`stop`.

        A failed warm pre-draw (e.g. a capped ledger refusing the warm
        charge) must not kill the timer: the rotation itself has already
        happened by then, so the error is counted and the clock keeps
        running — silently stopping rotation would stretch epochs
        indefinitely, which is privacy-relevant. Only successful
        rotations count toward ``stats.timed_rotations``.

        Deadlines are absolute: each rotation is scheduled
        ``epoch_seconds`` after the *previous deadline*, not after the
        previous rotation finished, so rotation/warm-draw time does not
        drift the epoch clock (a tardy loop catches up instead of
        compounding the delay).
        """
        assert self.epoch_seconds is not None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.epoch_seconds
        while True:
            delay = deadline - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            # Shutdown check *after* the sleep: stop() takes the closing
            # flag before anything is freed, so a rotation that wakes
            # inside the shutdown window must not touch the cache or the
            # shard runner it is about to lose.
            if self._closing:
                return
            deadline += self.epoch_seconds
            if self._tick_busy:
                # A watched tick — possibly one the watchdog already
                # abandoned — is still running on the tick thread;
                # rotating under it would swap the cache epoch mid-draw.
                # Skip — the absolute deadline already advanced, so the
                # next window rotates on schedule.
                self.stats.deferred_rotations += 1
                continue
            try:
                self.rotate_epoch()
            except Exception:  # noqa: BLE001 - keep the clock alive
                self.stats.errors += 1
            else:
                self.stats.timed_rotations += 1

    async def _serve_tick(
        self,
        batch: list[tuple[QueryPair, str | None, asyncio.Future, float | None]],
    ) -> None:
        admission = tagged = None
        if self.tenants is not None:
            tagged = [(pair, tenant) for pair, tenant, _, _ in batch]
            admission = self.tenants.admit(
                tagged, self.cache, degree_epsilon=self.degree_epsilon
            )
            for position, exc in admission.rejected:
                future = batch[position][2]
                if not future.done():
                    future.set_exception(exc)
            self.stats.queries_rejected += len(admission.rejected)
            batch = [batch[position] for position in admission.admitted]
            if not batch:
                return
        pairs = [pair for pair, _, _, _ in batch]
        epoch = self.cache.epoch
        self.stats.ticks += 1
        self.stats.ticks_in_epoch += 1
        self.stats.max_coalesced = max(self.stats.max_coalesced, len(batch))
        tick = self.stats.ticks
        hits = self._pre_tick_hits(pairs)
        try:
            result = await self._run_engine(pairs)
            degrees = self._release_degrees(result.vertices)
        except Exception as exc:  # noqa: BLE001 - routed to the callers
            self.stats.errors += 1
            if self.tenants is not None:
                # Nobody was answered and nothing was released: undo the
                # admission debits so quotas track real spend only.
                self.tenants.refund(tagged, admission)
            for _, _, future, _ in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        if self.tenants is not None:
            self.tenants.settle(
                [(pair, tenant) for pair, tenant, _, _ in batch], hits
            )
        for j, (pair, tenant, future, _) in enumerate(batch):
            estimate = ServedEstimate(
                pair=pair,
                value=float(result.values[j]),
                noisy_intersection=int(result.noisy_intersections[j]),
                noisy_union=int(result.noisy_unions[j]),
                epoch=epoch,
                tick=tick,
                cache_hit=hits[j],
                epsilon=self.epsilon,
                noisy_degree_a=None if degrees is None else degrees[pair.a],
                noisy_degree_b=None if degrees is None else degrees[pair.b],
                tenant=tenant,
            )
            if not future.done():
                future.set_result(estimate)
        self.stats.queries_served += len(batch)
        if self.epoch_ticks is not None and self.stats.ticks_in_epoch >= self.epoch_ticks:
            self.rotate_epoch()

    async def _run_engine(self, pairs: list[QueryPair]):
        """The tick's engine call, watched when ``tick_watchdog_s`` is set.

        The default path runs the engine inline on the event loop — the
        array work is fast and a single-process server gains nothing
        from a thread. With a watchdog the call moves to a dedicated
        single-thread executor under ``asyncio.wait_for``: a tick stuck
        past the deadline is abandoned (its callers get
        :class:`~repro.errors.ServerStalledError` and the tick's
        admission debits are refunded by the caller's error path) rather
        than hanging every client. ``_tick_busy`` stays set until the
        abandoned call *actually finishes* — a done-callback on the
        executor future clears it — so timed rotations stay deferred and
        later ticks wait for the zombie instead of racing it on the
        shared cache, ledger and rng; a later tick whose wait outlives
        its own watchdog window is stalled in turn. A zombie that
        eventually completes has still charged the cache accountant for
        the views it drew; its tick's admission debits were refunded, so
        those views are server-funded — later queries see them as free
        cache hits, exactly like epoch warming.
        """

        def call():
            return self.engine.estimate_pairs(
                self.graph, self.layer, pairs, self.epsilon,
                rng=self.rng, mode=self.mode,
                ledger=self.ledger, comm=self.comm, cache=self.cache,
            )

        if self.tick_watchdog_s is None:
            return call()
        if self._tick_busy:
            # An abandoned tick's engine call is still running; starting
            # another beside it would corrupt shared state.
            try:
                await asyncio.wait_for(
                    self._tick_idle.wait(), timeout=self.tick_watchdog_s
                )
            except (asyncio.TimeoutError, TimeoutError) as exc:
                self.stats.stalled_ticks += 1
                raise ServerStalledError(
                    f"a previous tick is still stuck past the "
                    f"{self.tick_watchdog_s}s watchdog; this tick failed "
                    "instead of racing it"
                ) from exc
        loop = asyncio.get_running_loop()
        if self._tick_pool is None:
            self._tick_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-tick"
            )
        self._tick_busy = True
        self._tick_idle.clear()
        tick_future = self._tick_pool.submit(call)

        def finished(_future) -> None:
            # Runs on the tick thread when the call truly completes —
            # including long after the watchdog abandoned it.
            try:
                loop.call_soon_threadsafe(self._tick_finished)
            except RuntimeError:  # pragma: no cover - loop already closed
                self._tick_busy = False

        tick_future.add_done_callback(finished)
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(tick_future, loop=loop),
                timeout=self.tick_watchdog_s,
            )
        except (asyncio.TimeoutError, TimeoutError) as exc:
            self.stats.stalled_ticks += 1
            raise ServerStalledError(
                f"tick stuck past the {self.tick_watchdog_s}s watchdog; "
                "pending queries failed instead of hanging"
            ) from exc

    def _tick_finished(self) -> None:
        self._tick_busy = False
        self._tick_idle.set()

    def _pre_tick_hits(self, pairs: list[QueryPair]) -> list[bool]:
        """Per-caller hit flags, taken before the tick mutates the cache."""
        if self.mode is ExecutionMode.MATERIALIZE:
            return [
                self.cache.has_view(p.a) and self.cache.has_view(p.b) for p in pairs
            ]
        if self.mode is ExecutionMode.SKETCH_VIEW:
            return [
                self.cache.has_sketch_view(p.a) and self.cache.has_sketch_view(p.b)
                for p in pairs
            ]
        return [self.cache.has_pair(p.a, p.b) for p in pairs]

    def _release_degrees(self, vertices: np.ndarray) -> dict[int, float] | None:
        """Epoch-cached noisy degrees for the tick's distinct vertices.

        Only degrees never *drawn* this epoch are charged: a bounded
        cache reconstructs an evicted degree from its keyed stream —
        privacy-free, like evicted rows — so the redraw re-uploads but
        must not recharge (or trip the epoch allowance).
        """
        if self.degree_epsilon is None:
            return None
        fresh = np.array(
            [v for v in vertices if not self.cache.has_degree(v)], dtype=np.int64
        )
        if fresh.size:
            # Charge first: a refused charge must not leave cached degrees
            # behind to be served free (and unaccounted) on later ticks.
            charged = self.cache.uncharged_degrees(fresh)
            self.accountant.charge_vertices(
                self.layer, charged, self.degree_epsilon,
                "laplace-degree", "serve-degrees", ledger=self.ledger,
            )
            mech = LaplaceMechanism(self.degree_epsilon, degree_sensitivity())
            self.cache.degree_fresh(fresh, mech, self.rng)
            self.comm.record(
                Direction.UPLOAD, int(fresh.size) * FLOAT_BYTES, "serve:degrees"
            )
            self.cache.stats.degree_misses += int(fresh.size)
        self.cache.stats.degree_hits += int(len(vertices) - fresh.size)
        released = {int(v): self.cache.degree(v) for v in vertices}
        if fresh.size:
            # Degrees count against the LRU budget like everything else;
            # the engine's end-of-tick eviction ran before they landed.
            self.cache.evict_to_budget()
        return released

"""Multi-tenant serving: per-analyst budgets in front of one shared cache.

The epoch cache makes noisy views *shared-report* releases: once a
vertex's report exists, answering another analyst's query from it costs
no additional privacy (the report is already public to the curator side).
What is **not** shared is the analysts' query quota — each tenant brings
its own :class:`~repro.privacy.composition.QueryBudgetManager`, and the
serving contract is:

* **cache hits are free for every tenant** — replaying an existing view
  releases nothing, so nobody's quota moves;
* **misses draw from the requesting tenant's budget** — the tick's fresh
  vertices are attributed to the *first* query (arrival order) that
  needs them, and that query's tenant pays ``epsilon`` per fresh vertex
  (plus ``degree_epsilon`` per fresh degree release when the server
  serves degrees);
* the :class:`~repro.privacy.epoch.EpochAccountant` keeps tracking the
  *true per-vertex* spend regardless of which tenant paid — tenant
  budgets are an analyst-side quota, not the privacy ledger.

A query whose tenant cannot cover its marginal cost is refused with
:class:`~repro.errors.BudgetExceededError` before anything is drawn; the
rest of the tick proceeds, and a vertex the refused query would have
paid for falls to the next query that needs it. Warm pre-draws at epoch
rotation are server-funded: the vertices they materialize are cache hits
for every tenant afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import BudgetExceededError, ProtocolError
from repro.graph.sampling import QueryPair
from repro.privacy.composition import QueryBudgetManager
from repro.protocol.session import ExecutionMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.cache import NoisyViewCache

__all__ = ["TenantStats", "Tenant", "TenantRegistry", "Admission"]


@dataclass
class TenantStats:
    """Lifetime serving counters for one tenant."""

    queries: int = 0
    hits: int = 0
    misses: int = 0
    rejected: int = 0
    epsilon_charged: float = 0.0
    vertices_paid: int = 0

    def hit_rate(self) -> float:
        """Fraction of this tenant's served queries answered from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class Tenant:
    """One registered analyst: a name, a budget, and its counters."""

    name: str
    budget: QueryBudgetManager
    stats: TenantStats = field(default_factory=TenantStats)

    @property
    def remaining(self) -> float:
        """Quota still available to this tenant."""
        return self.budget.remaining


@dataclass(frozen=True)
class Admission:
    """One tick's admission decision over tenant-tagged queries."""

    admitted: tuple[int, ...]  # positions admitted, arrival order
    rejected: tuple[tuple[int, BudgetExceededError], ...]
    cost_by_query: tuple[float, ...]  # marginal cost debited per position
    vertices_by_query: tuple[int, ...]  # fresh vertices paid per position


class TenantRegistry:
    """Per-analyst budgets fronting a shared :class:`NoisyViewCache`.

    Register tenants before (or while) serving; hand the registry to
    :class:`~repro.serving.QueryServer` and tag every query with its
    tenant name. The registry owns nothing but quotas and counters — all
    privacy accounting stays with the cache's
    :class:`~repro.privacy.epoch.EpochAccountant`.
    """

    def __init__(self):
        self._tenants: dict[str, Tenant] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        total_epsilon: float,
        *,
        policy: str = "metered",
        **policy_kwargs,
    ) -> Tenant:
        """Add a tenant with a fresh budget manager and return it.

        Parameters
        ----------
        name:
            Unique tenant label (the tag queries carry).
        total_epsilon:
            The tenant's overall quota across all of its cache misses.
        policy, **policy_kwargs:
            Forwarded to :class:`QueryBudgetManager`. The default
            ``metered`` policy is the serving-native one: costs are
            debited as misses materialize.

        Raises
        ------
        ProtocolError
            If the name is empty or already registered.
        PrivacyError
            Propagated from :class:`QueryBudgetManager` for an invalid
            budget or policy.
        """
        if not name:
            raise ProtocolError("tenant name must be non-empty")
        if name in self._tenants:
            raise ProtocolError(f"tenant {name!r} is already registered")
        tenant = Tenant(
            name=name,
            budget=QueryBudgetManager(total_epsilon, policy=policy, **policy_kwargs),
        )
        self._tenants[name] = tenant
        return tenant

    def adopt(self, name: str, budget: QueryBudgetManager) -> Tenant:
        """Register a tenant around an existing budget manager.

        Raises
        ------
        ProtocolError
            If the name is empty or already registered.
        """
        if not name:
            raise ProtocolError("tenant name must be non-empty")
        if name in self._tenants:
            raise ProtocolError(f"tenant {name!r} is already registered")
        tenant = Tenant(name=name, budget=budget)
        self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        """Look a tenant up by name.

        Raises
        ------
        ProtocolError
            If no tenant with that name is registered.
        """
        try:
            return self._tenants[name]
        except KeyError:
            known = ", ".join(self._tenants) or "<none>"
            raise ProtocolError(
                f"unknown tenant {name!r}; registered: {known}"
            ) from None

    def names(self) -> list[str]:
        """Registered tenant names in registration order."""
        return list(self._tenants)

    def tenants(self) -> Iterable[Tenant]:
        """Registered tenants in registration order."""
        return self._tenants.values()

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    # ------------------------------------------------------------------
    def admit(
        self,
        queries: Sequence[tuple[QueryPair, str]],
        cache: "NoisyViewCache",
        *,
        degree_epsilon: float | None = None,
    ) -> Admission:
        """Decide one tick: who is served, who pays for what, who is refused.

        ``queries`` is the tick's batch in arrival order, each entry a
        ``(pair, tenant_name)`` tag. The marginal cost of a query is the
        serving epsilon for every *fresh* vertex it is the first to need
        this tick (pair-granular in sketch mode), plus ``degree_epsilon``
        for every fresh degree release — exactly the set the engine will
        charge, so the per-tenant debits sum to the tick's true spend.
        Queries whose tenant cannot pay are rejected (their cost falls to
        the next query that needs the same vertices); everything else is
        debited immediately.

        Returns the :class:`Admission`; tenant ``stats`` are updated for
        queries and rejections (hit/miss counts land post-serve via
        :meth:`settle`).

        Raises
        ------
        ProtocolError
            If a query names an unregistered tenant.
        """
        epsilon = cache.epsilon
        covered_vertices: set[int] = set()
        covered_pairs: set[tuple[int, int]] = set()
        covered_degrees: set[int] = set()
        admitted: list[int] = []
        rejected: list[tuple[int, BudgetExceededError]] = []
        costs: list[float] = []
        vertex_counts: list[int] = []
        for i, (pair, name) in enumerate(queries):
            tenant = self.get(name)
            tenant.stats.queries += 1
            fresh_vertices: list[int] = []
            if cache.mode is ExecutionMode.MATERIALIZE:
                for v in (int(pair.a), int(pair.b)):
                    if v in covered_vertices or cache.vertex_charge_free(v):
                        continue
                    fresh_vertices.append(v)
                fresh_pair = None
            else:
                key = cache.pair_key(pair.a, pair.b)
                fresh_pair = None
                if key not in covered_pairs and not cache.pair_charge_free(
                    pair.a, pair.b
                ):
                    fresh_pair = key
                    for v in key:
                        if v not in covered_vertices:
                            fresh_vertices.append(v)
            fresh_degrees: list[int] = []
            if degree_epsilon is not None:
                # degree_charge_free, not has_degree: an evicted-but-drawn
                # degree reconstructs privacy-free, so no tenant pays for
                # it (keeping tenant debits == accountant charges).
                for v in (int(pair.a), int(pair.b)):
                    if v in covered_degrees or cache.degree_charge_free(v):
                        continue
                    fresh_degrees.append(v)
            cost = epsilon * len(fresh_vertices) + (degree_epsilon or 0.0) * len(
                fresh_degrees
            )
            try:
                tenant.budget.debit(cost, party=f"tenant:{tenant.name}")
            except BudgetExceededError as exc:
                tenant.stats.rejected += 1
                rejected.append((i, exc))
                costs.append(0.0)
                vertex_counts.append(0)
                continue
            covered_vertices.update(fresh_vertices)
            covered_degrees.update(fresh_degrees)
            if fresh_pair is not None:
                covered_pairs.add(fresh_pair)
            tenant.stats.epsilon_charged += cost
            tenant.stats.vertices_paid += len(fresh_vertices)
            admitted.append(i)
            costs.append(cost)
            vertex_counts.append(len(fresh_vertices))
        return Admission(
            admitted=tuple(admitted),
            rejected=tuple(rejected),
            cost_by_query=tuple(costs),
            vertices_by_query=tuple(vertex_counts),
        )

    def refund(
        self,
        queries: Sequence[tuple[QueryPair, str]],
        admission: Admission,
    ) -> None:
        """Roll back a tick's admitted debits after the tick failed.

        When the engine refuses the tick *after* admission (an enforced
        epoch allowance, a capped ledger), nothing was released and no
        caller got an answer — so the reservations are undone: budgets
        are credited and the metering counters reversed, keeping the
        "tenant debits sum to accountant charges" invariant intact.
        """
        for position in admission.admitted:
            cost = admission.cost_by_query[position]
            if cost == 0.0 and admission.vertices_by_query[position] == 0:
                continue
            tenant = self.get(queries[position][1])
            tenant.budget.credit(cost)
            tenant.stats.epsilon_charged -= cost
            tenant.stats.vertices_paid -= admission.vertices_by_query[position]

    def settle(
        self, queries: Sequence[tuple[QueryPair, str]], hits: Sequence[bool]
    ) -> None:
        """Record post-serve hit/miss outcomes for the served queries."""
        for (_, name), hit in zip(queries, hits):
            stats = self.get(name).stats
            if hit:
                stats.hits += 1
            else:
                stats.misses += 1

    # ------------------------------------------------------------------
    def report(self) -> str:
        """One line per tenant: quota, spend, traffic and hit rate."""
        if not self._tenants:
            return "no tenants registered"
        lines = []
        width = max(len(name) for name in self._tenants)
        for tenant in self._tenants.values():
            s = tenant.stats
            lines.append(
                f"{tenant.name:<{width}}  "
                f"charged {s.epsilon_charged:7.3f} / {tenant.budget.total_epsilon:g} eps  "
                f"({s.vertices_paid} vertices)  "
                f"queries {s.queries} "
                f"(hits {s.hits}, misses {s.misses}, rejected {s.rejected}, "
                f"hit rate {s.hit_rate():.0%})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TenantRegistry({', '.join(self._tenants) or 'empty'})"

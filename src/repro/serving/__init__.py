"""Async serving layer: coalesced ticks over epoch-cached noisy views.

:class:`QueryServer` turns the batch query engine into a traffic-serving
system: concurrent single-pair queries coalesce into one engine workload
per tick, an epoch-scoped :class:`NoisyViewCache` makes repeat touches of
a vertex (materialize mode) or pair (sketch mode) budget-free within an
epoch, and an :class:`~repro.privacy.epoch.EpochAccountant` keeps the
honest per-vertex spend across ticks and epoch rotations. On top of
that, a :class:`TenantRegistry` meters many analysts against one shared
cache (hits free for everyone, misses debiting the requesting tenant),
the cache takes an optional LRU byte/entry budget (eviction is
privacy-free: evicted views reconstruct deterministically), and epochs
can rotate on a wall clock with warm pre-drawing of the hottest
vertices. See ``docs/serving-guide.md`` for the tutorial.
"""

from repro.serving.cache import CacheStats, NoisyViewCache
from repro.serving.driver import (
    SimulationResult,
    sample_mutation_batch,
    serving_report,
    simulate_clients,
    simulate_streaming,
)
from repro.serving.server import (
    QueryServer,
    ServedEstimate,
    ServerStats,
    Subscription,
)
from repro.serving.tenants import Tenant, TenantRegistry, TenantStats

__all__ = [
    "CacheStats",
    "NoisyViewCache",
    "QueryServer",
    "ServedEstimate",
    "ServerStats",
    "SimulationResult",
    "Subscription",
    "Tenant",
    "TenantRegistry",
    "TenantStats",
    "sample_mutation_batch",
    "simulate_clients",
    "simulate_streaming",
    "serving_report",
]

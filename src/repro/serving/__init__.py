"""Async serving layer: coalesced ticks over epoch-cached noisy views.

:class:`QueryServer` turns the batch query engine into a traffic-serving
system: concurrent single-pair queries coalesce into one engine workload
per tick, an epoch-scoped :class:`NoisyViewCache` makes repeat touches of
a vertex (materialize mode) or pair (sketch mode) budget-free within an
epoch, and an :class:`~repro.privacy.epoch.EpochAccountant` keeps the
honest per-vertex spend across ticks and epoch rotations.
"""

from repro.serving.cache import CacheStats, NoisyViewCache
from repro.serving.driver import SimulationResult, serving_report, simulate_clients
from repro.serving.server import QueryServer, ServedEstimate, ServerStats

__all__ = [
    "CacheStats",
    "NoisyViewCache",
    "QueryServer",
    "ServedEstimate",
    "ServerStats",
    "SimulationResult",
    "simulate_clients",
    "serving_report",
]

"""Simulated client workloads against a :class:`QueryServer`.

The CLI's ``serve`` subcommand and the serving benchmarks both need the
same thing: many concurrent clients issuing single-pair queries with
optional think time, against one server, with summary statistics at the
end. :func:`simulate_clients` provides that driver and
:func:`serving_report` renders the outcome (coalescing, cache hit rate,
eviction pressure, per-epoch budget spend, per-tenant metering) as text.

On a multi-tenant server, clients are assigned round-robin to the
registry's tenants and a client whose tenant runs out of quota simply
has that query refused — the refusal is counted, the client carries on,
exactly like an analyst whose API key hit its cap.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import (
    BudgetExceededError,
    QueryDeadlineError,
    ServerOverloadedError,
)
from repro.graph.sampling import QueryPair, sample_query_pairs
from repro.privacy.rng import RngLike, ensure_rng, spawn_rngs
from repro.serving.server import QueryServer, ServedEstimate

__all__ = [
    "SimulationResult",
    "sample_mutation_batch",
    "simulate_clients",
    "simulate_streaming",
    "serving_report",
]


@dataclass(frozen=True)
class SimulationResult:
    """Everything a driver run produced."""

    estimates: list[ServedEstimate]
    elapsed_seconds: float
    num_clients: int
    queries_per_client: int
    rejected: int = 0  # tenant-budget refusals absorbed by the clients
    shed: int = 0  # admission-queue refusals (ServerOverloadedError)
    expired: int = 0  # per-query deadline expiries (QueryDeadlineError)

    @property
    def throughput(self) -> float:
        """Served queries per second of wall-clock."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.estimates) / self.elapsed_seconds


def _pool_pairs(server: QueryServer, pool, count: int, rng) -> list[QueryPair]:
    """Uniform distinct-endpoint pairs drawn from a hot vertex pool."""
    pool = np.asarray(pool, dtype=np.int64)
    picks = [rng.choice(pool.size, size=2, replace=False) for _ in range(count)]
    return [QueryPair(server.layer, pool[a], pool[b]) for a, b in picks]


async def simulate_clients(
    server: QueryServer,
    num_clients: int,
    queries_per_client: int,
    *,
    rng: RngLike = None,
    think_time: float = 0.0,
    replays: int = 1,
    pool: Sequence[int] | None = None,
) -> SimulationResult:
    """Run ``num_clients`` concurrent clients against a started server.

    Each client draws its own query-pair workload (uniform same-layer
    pairs over active vertices), then issues it sequentially — so
    concurrency, and therefore coalescing, comes from clients racing each
    other, exactly like independent analysts would. ``replays > 1``
    repeats every client's workload within the current epoch, which
    exercises the cache-hit path (replays are budget-free by
    construction). ``think_time`` adds a uniform 0..think_time pause
    between a client's queries. ``pool`` restricts every client's pairs
    to a hot vertex subset — the skewed traffic shape where the epoch
    cache pays off even before any replay.

    When the server carries a :class:`~repro.serving.TenantRegistry`,
    clients are assigned round-robin to its tenants and tag every query;
    per-query :class:`~repro.errors.BudgetExceededError` refusals are
    swallowed and counted in ``SimulationResult.rejected``. Resilience
    refusals behave the same way: a query shed by the admission queue
    (:class:`~repro.errors.ServerOverloadedError`) or expired past its
    deadline (:class:`~repro.errors.QueryDeadlineError`) is counted in
    ``shed`` / ``expired`` and the client carries on — neither refusal
    charges anyone anything.
    """
    parent = ensure_rng(rng)
    workloads = [
        sample_query_pairs(server.graph, server.layer, queries_per_client, rng=child)
        if pool is None
        else _pool_pairs(server, pool, queries_per_client, child)
        for child in spawn_rngs(parent, num_clients)
    ]
    pause_rngs = spawn_rngs(parent, num_clients)
    tenant_names = server.tenants.names() if server.tenants is not None else None

    async def one_client(
        index: int,
    ) -> tuple[list[ServedEstimate], int, int, int]:
        tenant = (
            tenant_names[index % len(tenant_names)] if tenant_names else None
        )
        out: list[ServedEstimate] = []
        refused = shed = expired = 0
        for _ in range(max(1, replays)):
            for pair in workloads[index]:
                if think_time > 0:
                    await asyncio.sleep(think_time * pause_rngs[index].random())
                try:
                    out.append(await server.query_pair(pair, tenant=tenant))
                except BudgetExceededError:
                    refused += 1
                except ServerOverloadedError:
                    shed += 1
                except QueryDeadlineError:
                    expired += 1
        return out, refused, shed, expired

    start = time.perf_counter()
    per_client = await asyncio.gather(
        *(one_client(i) for i in range(num_clients))
    )
    elapsed = time.perf_counter() - start
    estimates = [estimate for client, _, _, _ in per_client for estimate in client]
    return SimulationResult(
        estimates=estimates,
        elapsed_seconds=elapsed,
        num_clients=num_clients,
        queries_per_client=queries_per_client,
        rejected=sum(refused for _, refused, _, _ in per_client),
        shed=sum(shed for _, _, shed, _ in per_client),
        expired=sum(expired for _, _, _, expired in per_client),
    )


def sample_mutation_batch(
    graph, rng: RngLike = None, ops: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """A random streaming burst: ~half edge deletes, ~half fresh inserts.

    Deletes are sampled uniformly from the graph's current edges; inserts
    are uniform absent pairs (rejection-sampled against membership), so
    the burst is always applicable to ``graph`` as-is. Returns
    ``(inserts, deletes)`` edge arrays, either possibly empty.
    """
    rng = ensure_rng(rng)
    ops = max(1, int(ops))
    n_del = min(ops // 2, graph.num_edges)
    deletes = (
        graph.edges[rng.choice(graph.num_edges, size=n_del, replace=False)]
        if n_del
        else np.empty((0, 2), dtype=np.int64)
    )
    n_ins = ops - n_del
    found: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    attempts = 0
    while len(found) < n_ins and attempts < 50 * ops:
        u = int(rng.integers(graph.num_upper))
        l = int(rng.integers(graph.num_lower))
        attempts += 1
        if (u, l) in seen or graph.has_edge(u, l):
            continue
        seen.add((u, l))
        found.append((u, l))
    inserts = (
        np.array(found, dtype=np.int64)
        if found
        else np.empty((0, 2), dtype=np.int64)
    )
    return inserts, deletes


async def simulate_streaming(
    server: QueryServer,
    num_clients: int,
    queries_per_client: int,
    *,
    rng: RngLike = None,
    replays: int = 1,
    bursts: int = 1,
    edges_per_burst: int = 8,
    pool: Sequence[int] | None = None,
) -> SimulationResult:
    """Client waves interleaved with streaming mutation bursts.

    Runs one :func:`simulate_clients` wave, then ``bursts`` times: record
    a random mutation batch (:func:`sample_mutation_batch`) against the
    server, rotate the epoch — incrementally, so only the dirty vertices
    redraw — and run another client wave over the mutated snapshot.
    Results aggregate across every wave; ``elapsed_seconds`` covers the
    whole run including rotations.
    """
    parent = ensure_rng(rng)
    start = time.perf_counter()
    waves = [
        await simulate_clients(
            server, num_clients, queries_per_client,
            rng=parent, replays=replays, pool=pool,
        )
    ]
    for _ in range(max(0, int(bursts))):
        inserts, deletes = sample_mutation_batch(
            server.graph, parent, edges_per_burst
        )
        server.mutate(inserts=inserts, deletes=deletes)
        server.rotate_epoch()
        waves.append(
            await simulate_clients(
                server, num_clients, queries_per_client,
                rng=parent, replays=replays, pool=pool,
            )
        )
    elapsed = time.perf_counter() - start
    return SimulationResult(
        estimates=[e for wave in waves for e in wave.estimates],
        elapsed_seconds=elapsed,
        num_clients=num_clients,
        queries_per_client=queries_per_client * len(waves),
        rejected=sum(w.rejected for w in waves),
        shed=sum(w.shed for w in waves),
        expired=sum(w.expired for w in waves),
    )


def serving_report(server: QueryServer, result: SimulationResult) -> str:
    """Human-readable summary of a driver run."""
    stats, cache = server.stats, server.cache
    accountant = server.accountant
    lines = [
        f"mode            : {server.mode.value} (epsilon={server.epsilon:g})",
        f"queries served  : {stats.queries_served} "
        f"({result.num_clients} clients x {result.queries_per_client} queries"
        + (f", {result.rejected} refused" if result.rejected else "")
        + ")",
        f"ticks           : {stats.ticks} "
        f"(mean {stats.mean_coalesced():.1f} queries/tick, "
        f"max {stats.max_coalesced})",
        f"throughput      : {result.throughput:,.0f} queries/s "
        f"({result.elapsed_seconds * 1e3:.1f} ms total)",
        f"cache           : {cache.stats.vertex_hits + cache.stats.pair_hits} hits / "
        f"{cache.stats.vertex_misses + cache.stats.pair_misses} misses "
        f"(hit rate {cache.stats.hit_rate():.1%})",
    ]
    if cache.bounded:
        budget = (
            f"{cache.max_bytes:,} B" if cache.max_bytes is not None
            else f"{cache.max_entries} entries"
        )
        lines.append(
            f"memory          : {cache.nbytes():,} B resident "
            f"({cache.entries()} entries, budget {budget}, "
            f"{cache.stats.evictions} evictions, "
            f"{cache.stats.recharges} recharges)"
        )
    lines += [
        f"epochs          : {cache.epoch + 1} "
        f"(rotations: {cache.stats.rotations}"
        + (f", timed: {stats.timed_rotations}" if stats.timed_rotations else "")
        + (f", warmed: {stats.warmed_vertices} views" if stats.warmed_vertices else "")
        + ")",
        f"budget (epoch)  : max per-vertex spend {accountant.max_epoch_spent():.4f}",
        f"budget (total)  : max per-vertex spend {accountant.max_lifetime_spent():.4f}",
        f"ledger          : max party spend {server.ledger.max_spent():.4f} "
        f"across {len(server.ledger.charges)} aggregated charges",
        f"upload          : {server.comm.total_bytes():,} bytes",
    ]
    if stats.mutations or cache.stats.incremental_rotations:
        last = (
            cache.last_rotation
            if cache.last_rotation.get("incremental")
            else {}
        )
        lines.append(
            f"streaming       : {stats.mutations} edge ops, "
            f"{cache.stats.incremental_rotations} incremental rotations"
            + (
                f" (last: {last['dirty']} dirty, "
                f"+{last['inserts']}/-{last['deletes']})"
                if last
                else ""
            )
            + (
                f", {stats.subscription_refreshes} subscription refreshes"
                if stats.subscription_refreshes
                else ""
            )
        )
    ingest = server.ingest_ledger()
    if ingest and (ingest["delta_pushes"] or ingest["graph_installs"]):
        lines.append(
            f"ingest          : {ingest['delta_pushes']} delta pushes "
            f"({ingest['delta_bytes']:,} B, saved "
            f"{ingest['delta_saved_bytes']:,} B vs graph re-ship), "
            f"{ingest['graph_installs']} full installs, "
            f"{ingest['diverged']} diverged"
        )
    # Degraded behavior must be visible from the demo: refusals the
    # clients absorbed, plus whatever the shard resilience layer did.
    if result.shed or result.expired or stats.stalled_ticks:
        lines.append(
            f"resilience      : {result.shed} shed, "
            f"{result.expired} expired, {stats.stalled_ticks} stalled ticks"
        )
    runner = server._shard_runner
    if runner is not None and any(runner.fault_totals.values()):
        totals = runner.fault_totals
        lines.append(
            f"shard faults    : {totals['retries']} retries "
            f"({totals['worker_deaths']} worker deaths, "
            f"{totals['timeouts']} timeouts, "
            f"{totals['payload_errors']} payload errors), "
            f"{totals['degraded_ranges']} degraded ranges, "
            f"{totals['reclaimed_segments']} segments reclaimed"
        )
    if server.tenants is not None:
        lines.append("tenants         :")
        for line in server.tenants.report().splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)

"""repro — Common Neighborhood Estimation over Bipartite Graphs under Edge LDP.

A full reproduction of the SIGMOD paper "Common Neighborhood Estimation
over Bipartite Graphs under Local Differential Privacy": the bipartite
substrate, the edge-LDP protocol, all estimation algorithms (Naive, OneR,
MultiR-SS, MultiR-DS and variants, CentralDP), the analytic loss models
and budget optimizer, the 15-dataset registry, and the experiment harness
that regenerates every table and figure of the paper's evaluation.

Quickstart::

    import repro

    graph = repro.load_dataset("RM")
    result = repro.estimate_common_neighbors(
        graph, repro.Layer.UPPER, u=3, w=7, epsilon=2.0, method="multir-ds",
        rng=42,
    )
    print(result.value, result.transcript.rounds)
"""

from __future__ import annotations

from repro.analysis import (
    Allocation,
    confidence_interval,
    double_source_variance,
    mean_absolute_error,
    naive_l2_loss,
    oner_variance,
    optimize_double_source,
    single_source_variance,
    summarize_errors,
)
from repro.datasets import dataset_keys, load_dataset, synthesize
from repro.errors import (
    BudgetExceededError,
    DatasetError,
    GraphError,
    OptimizationError,
    PayloadIntegrityError,
    PrivacyError,
    ProtocolError,
    QueryDeadlineError,
    ReproError,
    ServerOverloadedError,
    ServerStalledError,
    ShardExecutionError,
)
from repro.estimators import (
    CentralDPEstimator,
    CommonNeighborEstimator,
    EstimateResult,
    ExactCounter,
    MultiRoundDoubleSource,
    MultiRoundDoubleSourceBasic,
    MultiRoundDoubleSourceStar,
    MultiRoundSingleSource,
    NaiveEstimator,
    OneRoundEstimator,
    available_estimators,
    get_estimator,
)
from repro.graph import (
    BipartiteGraph,
    DeltaLog,
    GraphBuilder,
    Layer,
    QueryPair,
    chung_lu_bipartite,
    random_bipartite,
    read_edge_list,
    sample_imbalanced_pairs,
    sample_query_pairs,
)
from repro.engine import BatchQueryEngine, EngineResult
from repro.privacy import BudgetSplit, LaplaceMechanism, RandomizedResponse
from repro.protocol import ExecutionMode, ProtocolSession, ProtocolTranscript
from repro.serving import (
    NoisyViewCache,
    QueryServer,
    ServedEstimate,
    TenantRegistry,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph
    "BipartiteGraph",
    "DeltaLog",
    "Layer",
    "GraphBuilder",
    "QueryPair",
    "random_bipartite",
    "chung_lu_bipartite",
    "read_edge_list",
    "sample_query_pairs",
    "sample_imbalanced_pairs",
    # privacy / protocol
    "BudgetSplit",
    "RandomizedResponse",
    "LaplaceMechanism",
    "ExecutionMode",
    "ProtocolSession",
    "BatchQueryEngine",
    "EngineResult",
    "ProtocolTranscript",
    # serving
    "QueryServer",
    "ServedEstimate",
    "NoisyViewCache",
    "TenantRegistry",
    # estimators
    "CommonNeighborEstimator",
    "EstimateResult",
    "ExactCounter",
    "NaiveEstimator",
    "OneRoundEstimator",
    "MultiRoundSingleSource",
    "MultiRoundDoubleSourceBasic",
    "MultiRoundDoubleSource",
    "MultiRoundDoubleSourceStar",
    "CentralDPEstimator",
    "available_estimators",
    "get_estimator",
    "estimate_common_neighbors",
    # analysis
    "Allocation",
    "optimize_double_source",
    "single_source_variance",
    "double_source_variance",
    "oner_variance",
    "naive_l2_loss",
    "mean_absolute_error",
    "summarize_errors",
    "confidence_interval",
    # datasets
    "dataset_keys",
    "load_dataset",
    "synthesize",
    # errors
    "ReproError",
    "GraphError",
    "DatasetError",
    "PrivacyError",
    "BudgetExceededError",
    "ProtocolError",
    "OptimizationError",
    "ShardExecutionError",
    "PayloadIntegrityError",
    "ServerOverloadedError",
    "QueryDeadlineError",
    "ServerStalledError",
]


def estimate_common_neighbors(
    graph: BipartiteGraph,
    layer: Layer,
    u: int,
    w: int,
    epsilon: float,
    method: str = "multir-ds",
    *,
    rng=None,
    mode: ExecutionMode = ExecutionMode.AUTO,
    **estimator_kwargs,
) -> EstimateResult:
    """One-call front door: estimate ``C2(u, w)`` under ``epsilon``-edge LDP.

    ``method`` is any registered estimator name (see
    :func:`available_estimators`); extra keyword arguments configure the
    estimator (e.g. ``graph_fraction=0.3`` for ``"multir-ss"``).
    """
    estimator = get_estimator(method, **estimator_kwargs)
    return estimator.estimate(graph, layer, u, w, epsilon, rng=rng, mode=mode)

"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Specific subclasses signal the broad failure category:
graph construction problems, privacy-budget violations, and protocol misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Invalid graph construction or graph query (bad vertex, bad edge)."""


class DatasetError(ReproError):
    """Unknown dataset name or invalid dataset specification."""


class PrivacyError(ReproError):
    """Invalid privacy parameters (non-positive epsilon, bad split)."""


class BudgetExceededError(PrivacyError):
    """A party attempted to spend more privacy budget than it was granted."""

    def __init__(self, party: str, requested: float, available: float):
        self.party = party
        self.requested = requested
        self.available = available
        super().__init__(
            f"party {party!r} requested eps={requested:.6g} "
            f"but only eps={available:.6g} remains"
        )


class ProtocolError(ReproError):
    """Protocol misuse (wrong round order, wrong layer, unknown vertex)."""


class OptimizationError(ReproError):
    """The budget-allocation optimizer failed to produce a feasible point."""

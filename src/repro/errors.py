"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Specific subclasses signal the broad failure category:
graph construction problems, privacy-budget violations, and protocol misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Invalid graph construction or graph query (bad vertex, bad edge)."""


class DatasetError(ReproError):
    """Unknown dataset name or invalid dataset specification."""


class PrivacyError(ReproError):
    """Invalid privacy parameters (non-positive epsilon, bad split)."""


class BudgetExceededError(PrivacyError):
    """A party attempted to spend more privacy budget than it was granted."""

    def __init__(self, party: str, requested: float, available: float):
        self.party = party
        self.requested = requested
        self.available = available
        super().__init__(
            f"party {party!r} requested eps={requested:.6g} "
            f"but only eps={available:.6g} remains"
        )


class ProtocolError(ReproError):
    """Protocol misuse (wrong round order, wrong layer, unknown vertex)."""


class OptimizationError(ReproError):
    """The budget-allocation optimizer failed to produce a feasible point."""


class ShardExecutionError(ReproError):
    """A shard task failed in a way the resilience layer could not mask."""


class PayloadIntegrityError(ShardExecutionError):
    """A shard fragment's checksum did not match after the shm handoff.

    Raised parent-side when the columns copied out of a worker's
    ``SharedMemory`` block fail checksum verification (a torn write, a
    worker that died mid-copy, or an injected poison fault). The runner
    treats it like any other worker fault: the range is re-dispatched —
    the keyed draw makes the retry byte-identical — so this error only
    escapes if corruption outlives every retry *and* the inline fallback,
    which never computes a checksum because nothing crosses a process
    boundary.
    """


class ServerOverloadedError(ReproError):
    """The serving admission queue is full; this query was shed unserved.

    Load shedding happens *before* tenant admission, so a shed query
    never debits any tenant's budget.
    """


class QueryDeadlineError(ReproError):
    """A query's deadline expired before its tick ran; nothing was charged."""


class ServerStalledError(ReproError):
    """The tick watchdog abandoned a stuck tick; this query was failed."""

"""Command-line interface: ``repro-cne`` (or ``python -m repro.cli``).

Subcommands:

* ``datasets`` — list the registry (optionally synthesizing to show
  realized sizes).
* ``estimate`` — run one estimator on one query pair of a dataset.
* ``jaccard`` — private similarity (jaccard/cosine/dice/overlap) of a pair.
* ``optimize`` — print the MultiR-DS budget allocation for given degrees.
* ``experiment`` — regenerate a paper table/figure as text (``--out`` to
  also save machine-readable series).
* ``generate`` — synthesize a dataset analogue and write it as a TSV
  edge list.
* ``summary`` — degree statistics of a dataset (both layers).
* ``serve`` — run the async serving layer under a simulated concurrent
  client workload and report coalescing / cache / budget statistics.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.optimizer import optimize_double_source
from repro.datasets.registry import dataset_keys, get_spec, scaled_spec
from repro.estimators.registry import available_estimators, get_estimator
from repro.graph.bipartite import Layer

__all__ = ["build_parser", "main"]

_EXPERIMENTS = (
    "fig2",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table2",
    "table3",
    "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cne",
        description=(
            "Common neighborhood estimation over bipartite graphs under "
            "edge local differential privacy (SIGMOD reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="list the dataset registry")
    p_datasets.add_argument(
        "--max-edges", type=int, default=None, help="edge budget for scaling"
    )

    p_est = sub.add_parser("estimate", help="estimate C2 for one query pair")
    p_est.add_argument("--dataset", required=True, help="dataset key or name")
    p_est.add_argument("-u", type=int, required=True, help="first query vertex")
    p_est.add_argument("-w", type=int, required=True, help="second query vertex")
    p_est.add_argument(
        "--layer", choices=("upper", "lower"), default="upper",
        help="layer holding the query vertices",
    )
    p_est.add_argument("--eps", type=float, default=2.0, help="privacy budget")
    p_est.add_argument(
        "--method", default="multir-ds", choices=available_estimators(),
    )
    p_est.add_argument("--seed", type=int, default=None)
    p_est.add_argument("--max-edges", type=int, default=None)
    p_est.add_argument(
        "--show-true", action="store_true",
        help="also print the true count (breaks privacy; for evaluation)",
    )

    p_jac = sub.add_parser("jaccard", help="private pairwise similarity")
    p_jac.add_argument("--dataset", required=True)
    p_jac.add_argument("-u", type=int, required=True)
    p_jac.add_argument("-w", type=int, required=True)
    p_jac.add_argument(
        "--layer", choices=("upper", "lower"), default="upper",
    )
    p_jac.add_argument("--eps", type=float, default=2.0)
    p_jac.add_argument(
        "--kind", choices=("jaccard", "cosine", "dice", "overlap"),
        default="jaccard",
    )
    p_jac.add_argument("--seed", type=int, default=None)
    p_jac.add_argument("--max-edges", type=int, default=None)
    p_jac.add_argument("--show-true", action="store_true")

    p_opt = sub.add_parser("optimize", help="show the MultiR-DS allocation")
    p_opt.add_argument("--eps", type=float, default=2.0)
    p_opt.add_argument("--du", type=float, required=True)
    p_opt.add_argument("--dw", type=float, required=True)
    p_opt.add_argument("--eps0-fraction", type=float, default=0.05)

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("name", choices=_EXPERIMENTS)
    p_exp.add_argument(
        "--quick", action="store_true",
        help="smaller workloads (fewer pairs/trials, smaller graphs)",
    )
    p_exp.add_argument("--seed", type=int, default=None)
    p_exp.add_argument(
        "--out", default=None, metavar="DIR",
        help="also save the series as JSON/CSV under DIR",
    )

    p_gen = sub.add_parser(
        "generate", help="synthesize a dataset analogue as a TSV edge list"
    )
    p_gen.add_argument("--dataset", required=True)
    p_gen.add_argument("--out", required=True, metavar="FILE")
    p_gen.add_argument("--max-edges", type=int, default=None)

    p_sum = sub.add_parser("summary", help="degree statistics of a dataset")
    p_sum.add_argument("--dataset", required=True)
    p_sum.add_argument("--max-edges", type=int, default=None)

    p_plan = sub.add_parser(
        "plan", help="budget needed for a target accuracy (inverse loss model)"
    )
    p_plan.add_argument("--target-mae", type=float, required=True)
    p_plan.add_argument("--du", type=float, required=True)
    p_plan.add_argument("--dw", type=float, required=True)
    p_plan.add_argument("--pool", type=int, required=True,
                        help="opposite-layer size n1")
    p_plan.add_argument(
        "--method", default="multir-ds",
        choices=("oner", "multir-ss", "multir-ds", "central-dp"),
    )
    p_plan.add_argument(
        "--shard-mem", type=int, default=None, metavar="BYTES",
        help="also size a shard plan: per-worker budget for the expected "
             "noisy payload at the required epsilon",
    )
    p_plan.add_argument(
        "--vertices", type=int, default=None,
        help="workload vertices to shard (default: the full --pool layer)",
    )
    p_plan.add_argument(
        "--sketch", choices=("bloom", "voc", "hll"), default=None,
        help="also plan sublinear sketch views: compare the expected "
             "noisy-row bytes against a fixed per-vertex sketch",
    )
    p_plan.add_argument(
        "--sketch-bytes", type=int, default=64, metavar="BYTES",
        help="per-vertex sketch view budget (default 64)",
    )

    p_srv = sub.add_parser(
        "serve",
        help="simulate concurrent clients against the async serving layer",
    )
    p_srv.add_argument("--dataset", required=True)
    p_srv.add_argument(
        "--layer", choices=("upper", "lower"), default="upper",
        help="layer the query pairs live on",
    )
    p_srv.add_argument("--eps", type=float, default=2.0, help="per-epoch RR budget")
    p_srv.add_argument(
        "--clients", type=int, default=20, help="concurrent simulated clients"
    )
    p_srv.add_argument(
        "--queries", type=int, default=25, help="queries issued per client"
    )
    p_srv.add_argument(
        "--replays", type=int, default=2,
        help="times each client replays its workload (replays hit the cache)",
    )
    p_srv.add_argument(
        "--epoch-ticks", type=int, default=None,
        help="rotate the epoch cache every N ticks (default: never)",
    )
    p_srv.add_argument(
        "--epoch-seconds", type=float, default=None,
        help="rotate the epoch cache on a wall clock every T seconds",
    )
    p_srv.add_argument(
        "--warm", type=int, default=0, metavar="K",
        help="pre-draw the K hottest vertices at every rotation",
    )
    p_srv.add_argument(
        "--tenants", type=int, default=0, metavar="N",
        help="register N metered tenants; clients are assigned round-robin",
    )
    p_srv.add_argument(
        "--tenant-eps", type=float, default=50.0,
        help="total budget per tenant (misses debit it; hits are free)",
    )
    p_srv.add_argument(
        "--cache-budget", type=int, default=None, metavar="BYTES",
        help="LRU byte budget for the noisy-view cache (eviction on)",
    )
    p_srv.add_argument(
        "--cache-entries", type=int, default=None, metavar="N",
        help="LRU entry budget for the noisy-view cache (eviction on)",
    )
    p_srv.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard miss draws across N forked worker processes "
             "(bit-identical output; materialize mode only)",
    )
    p_srv.add_argument(
        "--shard-mem", type=int, default=None, metavar="BYTES",
        help="per-shard noisy-payload budget for sharded miss draws "
             "(workers capped at the cpu count)",
    )
    p_srv.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard-task deadline; a late fragment is re-dispatched "
             "(byte-identical retry under the keyed streams)",
    )
    p_srv.add_argument(
        "--shard-retries", type=int, default=2, metavar="N",
        help="re-dispatch rounds against a rebuilt pool before a failed "
             "range degrades to inline execution (default: 2)",
    )
    p_srv.add_argument(
        "--transport", choices=("inline", "fork", "socket"), default=None,
        help="where sharded miss draws run: in-process, the forked pool "
             "(default when sharding), or a socket worker cluster "
             "(requires --workers; byte-identical output either way)",
    )
    p_srv.add_argument(
        "--workers", default=None, metavar="HOST:PORT,...",
        help="comma-separated addresses of running "
             "`python -m repro.engine.worker --listen` processes "
             "(socket transport only)",
    )
    p_srv.add_argument(
        "--warm-decay", type=float, default=0.5, metavar="ALPHA",
        help="EWMA coefficient of the cross-epoch warm set "
             "(1.0 = last-epoch-only; default: 0.5)",
    )
    p_srv.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="bound the admission queue; overflow sheds the "
             "oldest-deadline query without charging any tenant",
    )
    p_srv.add_argument(
        "--query-deadline", type=float, default=None, metavar="SECONDS",
        help="per-query deadline; queries still pending past it fail "
             "without being charged",
    )
    p_srv.add_argument(
        "--degree-eps", type=float, default=None,
        help="also serve epoch-cached noisy degrees at this budget",
    )
    p_srv.add_argument(
        "--sketch-bits", type=int, default=None, metavar="BITS",
        help="serve fixed-size blipped-Bloom sketch views of this many "
             "bits per vertex (implies --mode sketch-view)",
    )
    p_srv.add_argument(
        "--mode",
        choices=("auto", "materialize", "sketch", "sketch-view"),
        default="auto",
    )
    p_srv.add_argument(
        "--mutations", type=int, default=0, metavar="BURSTS",
        help="interleave this many streaming mutation bursts: each burst "
             "records random edge inserts/deletes, rotates the epoch "
             "incrementally (only dirty vertices redraw), and runs "
             "another client wave over the mutated snapshot",
    )
    p_srv.add_argument(
        "--mutation-edges", type=int, default=8, metavar="OPS",
        help="edge ops per mutation burst (~half deletes, half inserts; "
             "default: 8)",
    )
    p_srv.add_argument("--seed", type=int, default=None)
    p_srv.add_argument("--max-edges", type=int, default=None)
    return parser


def _cmd_datasets(args) -> int:
    rows = []
    for key in dataset_keys():
        spec = get_spec(key)
        scaled = scaled_spec(spec, args.max_edges)
        rows.append(
            f"{spec.key:>4}  {spec.name:<14} {spec.upper_entity}/{spec.lower_entity:<11} "
            f"paper |E|={spec.paper_edges:>11,}  synth |E|={scaled.num_edges:>9,} "
            f"|U|={scaled.n_upper:>9,} |L|={scaled.n_lower:>9,}"
        )
    print("\n".join(rows))
    return 0


def _cmd_estimate(args) -> int:
    from repro.datasets.cache import load_dataset

    graph = load_dataset(args.dataset, args.max_edges)
    layer = Layer.UPPER if args.layer == "upper" else Layer.LOWER
    estimator = get_estimator(args.method)
    result = estimator.estimate(graph, layer, args.u, args.w, args.eps, rng=args.seed)
    print(f"estimate  : {result.value:.4f}")
    print(f"algorithm : {result.algorithm}")
    print(f"epsilon   : {result.epsilon:g}")
    if result.transcript:
        print(f"rounds    : {result.transcript.rounds}")
        print(f"comm      : {result.transcript.total_bytes:,} bytes")
        print(f"eps spent : {result.transcript.max_epsilon_spent:.4f} (max per vertex)")
    if args.show_true:
        true = graph.count_common_neighbors(layer, args.u, args.w)
        print(f"true C2   : {true}")
    return 0


def _cmd_jaccard(args) -> int:
    from repro.applications.similarity import estimate_similarity
    from repro.datasets.cache import load_dataset

    graph = load_dataset(args.dataset, args.max_edges)
    layer = Layer.UPPER if args.layer == "upper" else Layer.LOWER
    estimate = estimate_similarity(
        graph, layer, args.u, args.w, args.eps, kind=args.kind, rng=args.seed
    )
    print(f"{args.kind:<9}: {estimate.value:.4f}")
    print(f"C2 est.  : {estimate.ingredients.c2_estimate:.3f}")
    print(
        f"deg est. : ({estimate.ingredients.noisy_degree_u:.1f}, "
        f"{estimate.ingredients.noisy_degree_w:.1f})"
    )
    if args.show_true:
        exact = {
            "jaccard": graph.jaccard(layer, args.u, args.w),
        }.get(args.kind)
        if exact is None:
            from repro.applications.similarity import SIMILARITY_KINDS

            c2 = graph.count_common_neighbors(layer, args.u, args.w)
            exact = SIMILARITY_KINDS[args.kind](
                c2, graph.degree(layer, args.u), graph.degree(layer, args.w)
            )
        print(f"true     : {exact:.4f}")
    return 0


def _cmd_generate(args) -> int:
    from repro.datasets.cache import load_dataset
    from repro.graph.io import write_edge_list

    graph = load_dataset(args.dataset, args.max_edges)
    write_edge_list(graph, args.out)
    print(
        f"wrote {graph.num_edges} edges "
        f"(|U|={graph.num_upper}, |L|={graph.num_lower}) to {args.out}"
    )
    return 0


def _cmd_summary(args) -> int:
    from repro.datasets.cache import load_dataset
    from repro.graph.stats import summarize_graph

    graph = load_dataset(args.dataset, args.max_edges)
    summary = summarize_graph(graph)
    print(f"dataset  : {args.dataset}")
    print(f"|U|, |L| : {summary.num_upper:,}, {summary.num_lower:,}")
    print(f"|E|      : {summary.num_edges:,}")
    print(f"density  : {summary.density:.6f}")
    for name, layer in (("upper", summary.upper), ("lower", summary.lower)):
        print(
            f"{name:<6} deg: min={layer.min_degree} max={layer.max_degree} "
            f"mean={layer.mean_degree:.2f} median={layer.median_degree:.1f} "
            f"gini={layer.gini:.3f}"
        )
    return 0


def _cmd_plan(args) -> int:
    from repro.analysis.planner import epsilon_for_target_mae, predicted_loss_at
    from repro.errors import OptimizationError

    try:
        eps = epsilon_for_target_mae(
            args.target_mae, args.method, args.du, args.dw, args.pool
        )
    except OptimizationError as exc:
        print(f"infeasible: {exc}")
        return 1
    loss = predicted_loss_at(eps, args.method, args.du, args.dw, args.pool)
    print(f"method          : {args.method}")
    print(f"target MAE      : {args.target_mae:g}")
    print(f"required epsilon: {eps:.4f}")
    print(f"predicted L2    : {loss:.4f}")
    if args.shard_mem is not None:
        import math as _math

        import numpy as np

        from repro.engine.planner import estimate_noisy_row_bytes

        vertices = args.vertices if args.vertices is not None else args.pool
        mean_deg = (args.du + args.dw) / 2.0
        per_vertex = float(
            estimate_noisy_row_bytes(np.array([mean_deg]), args.pool, eps)[0]
        )
        total = per_vertex * vertices
        shards = max(1, _math.ceil(total / args.shard_mem))
        print(f"noisy bytes/row : {per_vertex:,.0f} (expected, at required eps)")
        print(f"workload payload: {total:,.0f} bytes over {vertices:,} vertices")
        print(f"shards needed   : {shards} x {args.shard_mem:,}-byte budget"
              f" (serve --shards {shards})")
    if args.sketch is not None:
        import numpy as np

        from repro.engine.planner import estimate_noisy_row_bytes
        from repro.engine.sketches import HLL_EPSILON_FLOOR, SketchConfig

        config = SketchConfig.for_budget(args.sketch, args.sketch_bytes)
        if config.kind == "hll" and eps < HLL_EPSILON_FLOOR:
            print(f"caution         : hll is unstable below "
                  f"epsilon={HLL_EPSILON_FLOOR:g} (required eps is "
                  f"{eps:.4f}); prefer bloom/voc at this budget")
        mean_deg = (args.du + args.dw) / 2.0
        row = float(
            estimate_noisy_row_bytes(np.array([mean_deg]), args.pool, eps)[0]
        )
        verdict = "sketch" if row > config.bytes_per_vertex else "list"
        print(f"sketch view     : {config.kind} m={config.m} "
              f"({config.bytes_per_vertex} B/vertex vs {row:,.0f} B noisy row)")
        print(f"view decision   : {verdict} "
              f"(planner sketches when the row is larger)")
        if verdict == "sketch":
            if config.kind == "bloom":
                print(f"serve with      : serve --sketch-bits {config.m}")
            else:
                print("serve with      : BatchQueryEngine(sketch=...)")
    return 0


def _cmd_optimize(args) -> int:
    eps0 = args.eps * args.eps0_fraction
    alloc = optimize_double_source(args.eps, args.du, args.dw, eps0)
    print(f"eps0 (degrees)   : {alloc.eps0:.4f}")
    print(f"eps1 (RR)        : {alloc.eps1:.4f}")
    print(f"eps2 (Laplace)   : {alloc.eps2:.4f}")
    print(f"alpha (weight fu): {alloc.alpha:.4f}")
    print(f"predicted L2     : {alloc.predicted_loss:.4f}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.export import save_panels
    from repro.experiments.suite import run_all, run_experiment

    if args.name == "all":
        outputs = run_all(out_dir=args.out, quick=args.quick, seed=args.seed)
        for output in outputs:
            print(f"== {output.name} ==")
            print(output.text)
            print()
        if args.out:
            print(f"report written under {args.out}")
        return 0

    output = run_experiment(args.name, quick=args.quick, seed=args.seed)
    print(output.text)
    if args.out and output.panels:
        written = save_panels(output.panels, args.out, stem=output.name)
        print(f"saved {len(written)} files under {args.out}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.datasets.cache import load_dataset
    from repro.privacy.rng import ensure_rng, spawn_rngs
    from repro.protocol.session import ExecutionMode
    from repro.serving import (
        QueryServer,
        TenantRegistry,
        serving_report,
        simulate_clients,
        simulate_streaming,
    )

    graph = load_dataset(args.dataset, args.max_edges)
    layer = Layer.UPPER if args.layer == "upper" else Layer.LOWER
    mode = {
        "auto": ExecutionMode.AUTO,
        "materialize": ExecutionMode.MATERIALIZE,
        "sketch": ExecutionMode.SKETCH,
        "sketch-view": ExecutionMode.SKETCH_VIEW,
    }[args.mode]
    server_rng, client_rng = spawn_rngs(ensure_rng(args.seed), 2)
    registry = None
    if args.tenants > 0:
        registry = TenantRegistry()
        for i in range(args.tenants):
            registry.register(f"tenant-{i}", args.tenant_eps)

    async def _drive():
        async with QueryServer(
            graph, layer, args.eps,
            mode=mode,
            sketch_bits=args.sketch_bits,
            epoch_ticks=args.epoch_ticks,
            epoch_seconds=args.epoch_seconds,
            warm_vertices=args.warm,
            cache_bytes=args.cache_budget,
            cache_entries=args.cache_entries,
            shards=args.shards,
            shard_mem_bytes=args.shard_mem,
            shard_timeout_s=args.shard_timeout,
            shard_retries=args.shard_retries,
            shard_transport=args.transport,
            shard_workers=(
                [w.strip() for w in args.workers.split(",") if w.strip()]
                if args.workers
                else None
            ),
            warm_decay=args.warm_decay,
            max_pending=args.max_pending,
            query_deadline_s=args.query_deadline,
            tenants=registry,
            degree_epsilon=args.degree_eps,
            rng=server_rng,
        ) as server:
            if args.mutations > 0:
                result = await simulate_streaming(
                    server, args.clients, args.queries,
                    rng=client_rng, replays=args.replays,
                    bursts=args.mutations,
                    edges_per_burst=args.mutation_edges,
                )
            else:
                result = await simulate_clients(
                    server, args.clients, args.queries,
                    rng=client_rng, replays=args.replays,
                )
            return serving_report(server, result)

    print(f"dataset         : {args.dataset} "
          f"(|E|={graph.num_edges:,}, layer={args.layer})")
    print(asyncio.run(_drive()))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "jaccard":
        return _cmd_jaccard(args)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "summary":
        return _cmd_summary(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Dataset registry, synthesis, and caching (paper Table 2 analogues)."""

from repro.datasets.cache import cache_dir, clear_memory_cache, load_dataset
from repro.datasets.registry import (
    PAPER_DATASETS,
    DatasetSpec,
    ScaledSpec,
    dataset_keys,
    default_max_edges,
    get_spec,
    scaled_spec,
)
from repro.datasets.synthesis import POWER_LAW_EXPONENT, synthesize, synthesize_scaled

__all__ = [
    "cache_dir",
    "clear_memory_cache",
    "load_dataset",
    "PAPER_DATASETS",
    "DatasetSpec",
    "ScaledSpec",
    "dataset_keys",
    "default_max_edges",
    "get_spec",
    "scaled_spec",
    "POWER_LAW_EXPONENT",
    "synthesize",
    "synthesize_scaled",
]

"""The paper's 15 KONECT datasets (Table 2) and their synthetic analogues.

The original graphs are fetched from http://konect.cc in the paper; this
environment is offline, so each dataset is synthesized as a Chung–Lu
bipartite graph with power-law weights matched to the published
``|U|, |L|, |E|`` (see DESIGN.md §2 for why this preserves the evaluated
behaviour). Synthesis is deterministic per dataset.

Datasets larger than the configured edge budget are **vertex-scaled**: both
layers shrink by a factor ``s`` and edges by ``s²``, exactly the operation
of the paper's own Fig. 11 scalability protocol (uniform vertex sampling),
which preserves graph density and degree-distribution shape.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.errors import DatasetError

__all__ = [
    "DatasetSpec",
    "ScaledSpec",
    "PAPER_DATASETS",
    "dataset_keys",
    "get_spec",
    "scaled_spec",
    "default_max_edges",
]

#: Edge budget applied when synthesizing unless overridden (env or arg).
_DEFAULT_MAX_EDGES = 400_000
_ENV_MAX_EDGES = "REPRO_MAX_EDGES"

#: Safety cap: never ask the generator for more than this grid fill.
_MAX_DENSITY = 0.30


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one KONECT dataset (paper Table 2)."""

    key: str
    name: str
    upper_entity: str
    lower_entity: str
    paper_upper: int
    paper_lower: int
    paper_edges: int
    seed: int

    @property
    def paper_average_upper_degree(self) -> float:
        return self.paper_edges / self.paper_upper

    @property
    def paper_average_lower_degree(self) -> float:
        return self.paper_edges / self.paper_lower


@dataclass(frozen=True)
class ScaledSpec:
    """Concrete synthesis parameters after applying the edge budget."""

    spec: DatasetSpec
    n_upper: int
    n_lower: int
    num_edges: int
    vertex_fraction: float


def _spec(
    key: str,
    name: str,
    upper_entity: str,
    lower_entity: str,
    edges: int,
    upper: int,
    lower: int,
    seed: int,
) -> DatasetSpec:
    return DatasetSpec(
        key=key,
        name=name,
        upper_entity=upper_entity,
        lower_entity=lower_entity,
        paper_upper=upper,
        paper_lower=lower,
        paper_edges=edges,
        seed=seed,
    )


#: Table 2 of the paper, in presentation order.
PAPER_DATASETS: dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in (
        _spec("RM", "rmwiki", "User", "Article", 58_000, 1_200, 8_100, 1001),
        _spec("AC", "collaboration", "Author", "Paper", 58_600, 16_700, 22_000, 1002),
        _spec("OC", "occupation", "Person", "Occupation", 250_900, 127_600, 101_700, 1003),
        _spec("DA", "bag-kos", "Document", "Word", 353_200, 3_400, 6_900, 1004),
        _spec("BP", "bpywiki", "User", "Article", 399_700, 1_300, 57_900, 1005),
        _spec("MT", "tewiktionary", "User", "Article", 529_600, 495, 121_500, 1006),
        _spec("BX", "bookcrossing", "User", "Book", 1_100_000, 105_300, 340_500, 1007),
        _spec("SO", "stackoverflow", "User", "Post", 1_300_000, 545_200, 96_700, 1008),
        _spec("TM", "team", "Athlete", "Team", 1_400_000, 901_200, 34_500, 1009),
        _spec("WC", "wiki-en-cat", "Article", "Category", 3_800_000, 1_900_000, 182_900, 1010),
        _spec("ML", "movielens", "User", "Movie", 10_000_000, 69_900, 10_700, 1011),
        _spec("ER", "epinions", "User", "Product", 13_700_000, 120_500, 755_800, 1012),
        _spec("NX", "netflix", "User", "Movie", 100_500_000, 480_200, 17_800, 1013),
        _spec("DUI", "delicious-ui", "User", "Url", 101_800_000, 833_100, 33_800_000, 1014),
        _spec("OG", "orkut", "User", "Group", 327_000_000, 2_800_000, 8_700_000, 1015),
    )
}


def dataset_keys() -> list[str]:
    """All dataset keys in the paper's presentation order."""
    return list(PAPER_DATASETS)


def get_spec(key: str) -> DatasetSpec:
    """Look up a dataset by key (``"RM"``) or by name (``"rmwiki"``)."""
    if key in PAPER_DATASETS:
        return PAPER_DATASETS[key]
    for spec in PAPER_DATASETS.values():
        if spec.name == key:
            return spec
    raise DatasetError(
        f"unknown dataset {key!r}; known keys: {', '.join(dataset_keys())}"
    )


def default_max_edges() -> int:
    """Edge budget for synthesis (env ``REPRO_MAX_EDGES`` overrides)."""
    raw = os.environ.get(_ENV_MAX_EDGES)
    if raw is None:
        return _DEFAULT_MAX_EDGES
    try:
        value = int(raw)
    except ValueError as exc:
        raise DatasetError(f"{_ENV_MAX_EDGES}={raw!r} is not an integer") from exc
    if value <= 0:
        raise DatasetError(f"{_ENV_MAX_EDGES} must be positive, got {value}")
    return value


def scaled_spec(spec: DatasetSpec, max_edges: int | None = None) -> ScaledSpec:
    """Apply the edge budget: vertex-scale by ``s``, edges by ``s²``.

    Scaling both layers by the same fraction and edges quadratically is the
    distributional effect of the paper's uniform vertex sampling (Fig. 11),
    so density and degree-shape are preserved.
    """
    if max_edges is None:
        max_edges = default_max_edges()
    if max_edges <= 0:
        raise DatasetError(f"max_edges must be positive, got {max_edges}")
    fraction = min(1.0, math.sqrt(max_edges / spec.paper_edges))
    n_upper = max(4, int(round(spec.paper_upper * fraction)))
    n_lower = max(4, int(round(spec.paper_lower * fraction)))
    num_edges = max(8, int(round(spec.paper_edges * fraction * fraction)))
    num_edges = min(num_edges, int(_MAX_DENSITY * n_upper * n_lower))
    return ScaledSpec(
        spec=spec,
        n_upper=n_upper,
        n_lower=n_lower,
        num_edges=num_edges,
        vertex_fraction=fraction,
    )

"""On-disk cache for synthesized datasets.

Synthesis of the larger graphs takes seconds; experiments touch the same
graphs dozens of times. :func:`load_dataset` memoizes each (dataset, scale)
combination both in-process and as an ``.npz`` file under the cache
directory (``REPRO_CACHE_DIR`` or ``<cwd>/.repro-cache``).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.datasets.registry import (
    ScaledSpec,
    default_max_edges,
    get_spec,
    scaled_spec,
)
from repro.datasets.synthesis import synthesize_scaled
from repro.graph.bipartite import BipartiteGraph
from repro.graph.io import load_npz, save_npz

__all__ = ["cache_dir", "load_dataset", "clear_memory_cache"]

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_memory_cache: dict[tuple[str, int, int, int], BipartiteGraph] = {}


def cache_dir() -> Path:
    """Directory holding cached dataset files (created on demand)."""
    root = os.environ.get(_ENV_CACHE_DIR)
    path = Path(root) if root else Path.cwd() / ".repro-cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def clear_memory_cache() -> None:
    """Drop the in-process cache (tests use this to control memory)."""
    _memory_cache.clear()


def _cache_key(scaled: ScaledSpec) -> tuple[str, int, int, int]:
    return (scaled.spec.key, scaled.n_upper, scaled.n_lower, scaled.num_edges)


def load_dataset(
    key: str,
    max_edges: int | None = None,
    use_disk: bool = True,
) -> BipartiteGraph:
    """Load (synthesizing and caching as needed) a registry dataset.

    Parameters
    ----------
    key:
        Dataset key (``"RM"``) or name (``"rmwiki"``).
    max_edges:
        Edge budget; defaults to ``REPRO_MAX_EDGES`` or the library default.
    use_disk:
        Set False to bypass the on-disk cache (in-process cache still used).
    """
    if max_edges is None:
        max_edges = default_max_edges()
    scaled = scaled_spec(get_spec(key), max_edges)
    mem_key = _cache_key(scaled)
    if mem_key in _memory_cache:
        return _memory_cache[mem_key]

    graph: BipartiteGraph | None = None
    path = cache_dir() / (
        f"{scaled.spec.key}_{scaled.n_upper}_{scaled.n_lower}_{scaled.num_edges}.npz"
    )
    if use_disk and path.exists():
        try:
            graph = load_npz(path)
        except Exception:
            graph = None  # corrupt cache entry; regenerate below
    if graph is None:
        graph = synthesize_scaled(scaled)
        if use_disk:
            save_npz(graph, path)
    _memory_cache[mem_key] = graph
    return graph

"""Deterministic synthesis of the registry's bipartite graphs.

Each dataset becomes a Chung–Lu bipartite graph whose layer weights follow
a bounded power law — the standard model for the heavy-tailed degree
distributions of the KONECT user–item / user–page graphs the paper
evaluates on. The per-dataset seed makes every synthesis reproducible
across processes, which the on-disk cache relies on.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry import DatasetSpec, ScaledSpec, get_spec, scaled_spec
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import chung_lu_bipartite, power_law_degrees

__all__ = ["POWER_LAW_EXPONENT", "synthesize", "synthesize_scaled"]

#: Degree-weight tail exponent; 2.2 is typical of the KONECT bipartite
#: graphs (most vertices touch a few items, a few touch thousands).
POWER_LAW_EXPONENT = 2.2


def _layer_weights(
    n: int, opposite_size: int, average_degree: float, rng: np.random.Generator
) -> np.ndarray:
    """Power-law weights for one layer, bounded by the opposite layer size."""
    d_max = max(2, min(opposite_size, int(average_degree * 200)))
    weights = power_law_degrees(
        n, exponent=POWER_LAW_EXPONENT, d_min=1, d_max=d_max, rng=rng
    ).astype(np.float64)
    # Rescale so the weight mass matches the target edge budget; Chung–Lu
    # realized degrees are then proportional to the published averages.
    target_sum = average_degree * n
    weights *= target_sum / weights.sum()
    return weights


def synthesize_scaled(scaled: ScaledSpec) -> BipartiteGraph:
    """Build the graph for an already-scaled specification."""
    rng = np.random.default_rng(scaled.spec.seed)
    avg_upper = scaled.num_edges / scaled.n_upper
    avg_lower = scaled.num_edges / scaled.n_lower
    upper_weights = _layer_weights(scaled.n_upper, scaled.n_lower, avg_upper, rng)
    lower_weights = _layer_weights(scaled.n_lower, scaled.n_upper, avg_lower, rng)
    return chung_lu_bipartite(
        upper_weights, lower_weights, num_edges=scaled.num_edges, rng=rng
    )


def synthesize(key_or_spec: str | DatasetSpec, max_edges: int | None = None) -> BipartiteGraph:
    """Synthesize a dataset by key/name, applying the edge budget."""
    spec = get_spec(key_or_spec) if isinstance(key_or_spec, str) else key_or_spec
    return synthesize_scaled(scaled_spec(spec, max_edges))

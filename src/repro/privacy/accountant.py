"""Per-party privacy accounting with sequential and parallel composition.

Edge LDP composes per *vertex*: each vertex's cumulative loss is the sum of
the budgets of the mechanisms applied to its own neighbor list (sequential
composition), while mechanisms applied to disjoint vertices compose in
parallel (the overall protocol loss is the maximum per-vertex loss).

:class:`PrivacyLedger` records every charge; the protocol layer charges it
on each mechanism invocation and the estimators assert, per run, that no
vertex exceeded the granted budget. This turns the paper's composition
proofs (Theorems 2, 5, 7, 10) into executable checks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import BudgetExceededError, PrivacyError

__all__ = ["Charge", "PrivacyLedger"]

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Charge:
    """One mechanism invocation against one party's data."""

    party: str
    epsilon: float
    mechanism: str
    round_label: str


@dataclass
class PrivacyLedger:
    """Tracks cumulative privacy loss per party (vertex).

    Parameters
    ----------
    limit:
        Optional per-party ceiling. When set, any charge pushing a party
        beyond ``limit`` raises :class:`BudgetExceededError` — the protocol
        refuses to leak more than the granted budget.
    """

    limit: float | None = None
    charges: list[Charge] = field(default_factory=list)
    _spent: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def charge(
        self,
        party: str,
        epsilon: float,
        mechanism: str = "unknown",
        round_label: str = "",
    ) -> None:
        """Record that ``mechanism`` consumed ``epsilon`` of ``party``'s data."""
        if epsilon < 0:
            raise PrivacyError(f"cannot charge negative epsilon {epsilon}")
        if epsilon == 0:
            return
        if self.limit is not None:
            remaining = self.limit - self._spent[party]
            if epsilon > remaining + _TOLERANCE:
                raise BudgetExceededError(party, epsilon, max(remaining, 0.0))
        self._spent[party] += epsilon
        self.charges.append(Charge(party, epsilon, mechanism, round_label))

    def charge_many(
        self,
        parties,
        epsilon: float,
        mechanism: str = "unknown",
        round_label: str = "",
    ) -> None:
        """Charge the same ``epsilon`` to each party (parallel composition).

        Used for rounds where every vertex of a layer perturbs its own
        disjoint data (e.g. the degree-report round): the round-level loss
        is ``max_i eps_i = epsilon`` even though many parties are charged.
        """
        for party in parties:
            self.charge(party, epsilon, mechanism, round_label)

    def charge_parallel(
        self,
        group: str,
        epsilon: float,
        mechanism: str = "unknown",
        round_label: str = "",
        *,
        count: int = 1,
    ) -> None:
        """One aggregated charge for ``count`` disjoint parties under ``group``.

        Parallel composition: when every member of the group perturbs its
        own disjoint neighbor list once at ``epsilon``, the round-level
        loss is ``epsilon`` no matter how many members there are — so a
        single ledger entry suffices and million-vertex batch rounds avoid
        a Python-level charge per vertex. Sequential charges against the
        same ``group`` label still add up, preserving per-vertex accounting
        across the rounds of one batch.
        """
        if count < 0:
            raise PrivacyError(f"cannot charge a group of {count} parties")
        if count == 0:
            return
        self.charge(group, epsilon, mechanism, round_label)

    # ------------------------------------------------------------------
    def spent(self, party: str) -> float:
        """Sequential-composition total spent by ``party``."""
        return self._spent.get(party, 0.0)

    def max_spent(self) -> float:
        """Protocol-level privacy loss: the maximum across parties."""
        return max(self._spent.values(), default=0.0)

    def parties(self) -> list[str]:
        """All parties with non-zero spend."""
        return sorted(self._spent)

    def assert_within(self, epsilon: float) -> None:
        """Raise unless every party's total is within ``epsilon``."""
        worst = self.max_spent()
        if worst > epsilon + _TOLERANCE:
            offender = max(self._spent, key=self._spent.get)  # type: ignore[arg-type]
            raise BudgetExceededError(offender, self._spent[offender], epsilon)

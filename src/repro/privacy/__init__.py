"""Edge-LDP primitives: mechanisms, budgets, sensitivity, accounting."""

from repro.privacy.accountant import Charge, PrivacyLedger
from repro.privacy.budget import BudgetSplit
from repro.privacy.composition import QueryBudgetManager
from repro.privacy.epoch import EpochAccountant, EpochCharge
from repro.privacy.mechanisms import (
    LaplaceMechanism,
    RandomizedResponse,
    flip_probability,
)
from repro.privacy.rng import ensure_rng, spawn_rngs
from repro.privacy.sensitivity import (
    central_c2_sensitivity,
    degree_sensitivity,
    single_source_sensitivity,
)

__all__ = [
    "Charge",
    "PrivacyLedger",
    "BudgetSplit",
    "QueryBudgetManager",
    "EpochAccountant",
    "EpochCharge",
    "LaplaceMechanism",
    "RandomizedResponse",
    "flip_probability",
    "ensure_rng",
    "spawn_rngs",
    "degree_sensitivity",
    "single_source_sensitivity",
    "central_c2_sensitivity",
]

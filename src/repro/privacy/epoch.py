"""Per-vertex, per-epoch privacy accounting for the serving layer.

The batch engine's :meth:`~repro.privacy.accountant.PrivacyLedger.charge_parallel`
path records one aggregated entry per round; that is exact as long as every
round touches each vertex at most once. A *serving* system breaks that
assumption: ticks arrive continuously, a vertex may appear in many ticks,
and within one epoch its cached noisy view must make all but the first
appearance free. :class:`EpochAccountant` tracks the honest per-vertex
spend at epoch granularity:

* ``charge_vertices`` records ``epsilon`` against each listed vertex for
  the current epoch (and its lifetime total), mirrors the round into a
  :class:`~repro.privacy.accountant.PrivacyLedger` as one epoch-scoped
  ``charge_parallel`` group, and — when ``epsilon_per_epoch`` is set —
  refuses any charge that would push a vertex beyond its epoch allowance.
* ``rotate`` closes the epoch: per-epoch spends reset (views are re-drawn
  and recharged by the cache layer), lifetime spends keep accumulating.

The ledger thus keeps its group-level parallel-composition view (each
tick's fresh vertices are disjoint from each other), while the accountant
holds the exact per-vertex sequential composition across ticks and epochs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import BudgetExceededError, PrivacyError
from repro.graph.bipartite import Layer
from repro.privacy.accountant import PrivacyLedger

__all__ = ["EpochCharge", "EpochAccountant"]

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class EpochCharge:
    """One serving round: ``count`` disjoint vertices charged ``epsilon``."""

    epoch: int
    party: str
    count: int
    epsilon: float
    mechanism: str
    stage: str


class EpochAccountant:
    """Tracks per-vertex privacy spend within and across serving epochs.

    Parameters
    ----------
    epsilon_per_epoch:
        Optional per-vertex allowance for one epoch. ``None`` (default)
        records without enforcing — the sketch-mode cache legitimately
        recharges a vertex when a *new* pair involving it arrives, and the
        accountant then reports the accumulated loss honestly instead of
        refusing to serve.
    """

    def __init__(self, epsilon_per_epoch: float | None = None):
        if epsilon_per_epoch is not None and epsilon_per_epoch <= 0:
            raise PrivacyError(
                f"epsilon_per_epoch must be positive, got {epsilon_per_epoch}"
            )
        self.epsilon_per_epoch = epsilon_per_epoch
        self.epoch = 0
        self.rounds: list[EpochCharge] = []  # current epoch only (see rotate)
        self.rounds_completed = 0  # rounds of already-closed epochs
        self._round_counter = 0
        self._epoch_spend: dict[tuple[str, int], float] = defaultdict(float)
        self._lifetime_spend: dict[tuple[str, int], float] = defaultdict(float)
        self._epoch_peaks: list[float] = []

    # ------------------------------------------------------------------
    def charge_vertices(
        self,
        layer: Layer,
        vertices,
        epsilon: float,
        mechanism: str = "unknown",
        stage: str = "",
        *,
        ledger: PrivacyLedger | None = None,
    ) -> str | None:
        """Charge every listed vertex ``epsilon`` for the current epoch.

        Parameters
        ----------
        layer:
            The layer the vertices live on (spend is keyed per
            ``(layer, vertex)``).
        vertices:
            Vertex ids (scalar or array-like); each is charged the full
            ``epsilon``. An empty list is a no-op.
        epsilon:
            Per-vertex charge for this round; ``0`` is a recorded no-op.
        mechanism, stage:
            Labels carried into the round log and the ledger entry.
        ledger:
            Optional :class:`PrivacyLedger` that receives one aggregated
            ``charge_parallel`` entry for the round — the cache-miss
            accounting path: cache hits never reach this method, so they
            are free by construction.

        Returns
        -------
        str | None
            The epoch-scoped ledger party label, or ``None`` when the
            charge was empty (no vertices, or zero epsilon).

        Raises
        ------
        PrivacyError
            If ``epsilon`` is negative.
        BudgetExceededError
            When ``epsilon_per_epoch`` is set and the charge would push
            any listed vertex past its allowance for the current epoch.
            Nothing is recorded in that case — callers rely on charges
            being all-or-nothing to keep cache state and spend in sync.
        """
        if epsilon < 0:
            raise PrivacyError(f"cannot charge negative epsilon {epsilon}")
        vertices = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        if vertices.size == 0 or epsilon == 0:
            return None
        keys = [(layer.value, int(v)) for v in vertices]
        if self.epsilon_per_epoch is not None:
            for key in keys:
                spent = self._epoch_spend[key]
                if epsilon > self.epsilon_per_epoch - spent + _TOLERANCE:
                    raise BudgetExceededError(
                        f"epoch[{self.epoch}]:{key[0]}:{key[1]}",
                        epsilon,
                        max(self.epsilon_per_epoch - spent, 0.0),
                    )
        for key in keys:
            self._epoch_spend[key] += epsilon
            self._lifetime_spend[key] += epsilon
        stage_label = stage or mechanism
        party = (
            f"epoch[{self.epoch}]:{layer.value}:"
            f"{stage_label}[{vertices.size}v]#{self._round_counter}"
        )
        self._round_counter += 1
        charge = EpochCharge(
            epoch=self.epoch,
            party=party,
            count=int(vertices.size),
            epsilon=float(epsilon),
            mechanism=mechanism,
            stage=stage_label,
        )
        self.rounds.append(charge)
        if ledger is not None:
            ledger.charge_parallel(
                party, epsilon, mechanism, stage_label, count=int(vertices.size)
            )
        return party

    # ------------------------------------------------------------------
    def epoch_spent(self, layer: Layer, vertex: int) -> float:
        """``vertex``'s spend within the current epoch."""
        return self._epoch_spend.get((layer.value, int(vertex)), 0.0)

    def lifetime_spent(self, layer: Layer, vertex: int) -> float:
        """``vertex``'s spend across all epochs so far."""
        return self._lifetime_spend.get((layer.value, int(vertex)), 0.0)

    def max_epoch_spent(self) -> float:
        """The worst per-vertex spend of the current epoch."""
        return max(self._epoch_spend.values(), default=0.0)

    def max_lifetime_spent(self) -> float:
        """The worst per-vertex spend across every epoch (the honest total)."""
        return max(self._lifetime_spend.values(), default=0.0)

    def charged_vertices(self) -> int:
        """Distinct vertices charged during the current epoch."""
        return sum(1 for spend in self._epoch_spend.values() if spend > 0)

    def epoch_peaks(self) -> list[float]:
        """Closed epochs' worst per-vertex spends, in rotation order."""
        return list(self._epoch_peaks)

    # ------------------------------------------------------------------
    def rotate(self) -> int:
        """Close the current epoch and return the new epoch id.

        Per-epoch spends reset (the next view drawn for any vertex is a
        fresh release and recharges it); lifetime spends persist. The
        closed epoch's round log is compacted to a counter so a
        long-lived server's memory stays bounded by one epoch of rounds
        (the mirrored :class:`PrivacyLedger`, if any, remains the
        append-only audit log — hand the server a fresh one per epoch if
        that matters).
        """
        self._epoch_peaks.append(self.max_epoch_spent())
        self._epoch_spend.clear()
        self.rounds_completed += len(self.rounds)
        self.rounds.clear()
        self.epoch += 1
        return self.epoch

    def __repr__(self) -> str:
        return (
            f"EpochAccountant(epoch={self.epoch}, "
            f"max_epoch={self.max_epoch_spent():.4g}, "
            f"max_lifetime={self.max_lifetime_spent():.4g})"
        )

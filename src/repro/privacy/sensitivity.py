"""Global-sensitivity derivations used by the paper's Laplace releases.

The two releases in the multiple-round framework are:

* a vertex degree (one bit added to / removed from a neighbor list changes
  the degree by at most one → sensitivity 1);
* the single-source estimator ``f_u = Σ_{v in N(u)} phi(v, w)`` (one bit
  change adds or removes a single ``phi`` term whose magnitude is at most
  ``(1 - p) / (1 - 2p)`` → that is the sensitivity, paper §4.1).
"""

from __future__ import annotations

from repro.privacy.mechanisms import flip_probability

__all__ = [
    "degree_sensitivity",
    "single_source_sensitivity",
    "central_c2_sensitivity",
]


def degree_sensitivity() -> float:
    """Global sensitivity of ``deg(u)`` under one-bit neighbor-list change."""
    return 1.0


def single_source_sensitivity(epsilon_rr: float) -> float:
    """Global sensitivity of the single-source estimator ``f_u``.

    ``max |phi| = (1 - p) / (1 - 2p)`` where ``p = 1/(1+e^eps_rr)`` is the
    flip probability used to build the noisy graph the estimator reads.
    """
    p = flip_probability(epsilon_rr)
    return (1.0 - p) / (1.0 - 2.0 * p)


def central_c2_sensitivity() -> float:
    """Sensitivity of ``C2(u, w)`` for the central-model baseline.

    In the central model a neighboring graph differs by one edge, which
    changes the common-neighbor count by at most one.
    """
    return 1.0

"""Edge-LDP mechanisms: Warner randomized response and the Laplace mechanism.

Randomized response (Warner 1965) flips each bit of a neighbor list with
probability ``p = 1 / (1 + e^eps)``; it is the building block of every
noisy-graph round in the paper. The Laplace mechanism releases a scalar
``f + Lap(sensitivity / eps)`` and backs the estimator/degree rounds.

Both classes are deterministic given a Generator, carry their analytic
moments (used by :mod:`repro.analysis.loss`), and validate privacy
parameters eagerly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import PrivacyError
from repro.privacy.debias import debias_bit, debias_bit_variance
from repro.privacy.rng import RngLike, ensure_rng

__all__ = [
    "flip_probability",
    "complement_positions_to_indices",
    "RandomizedResponse",
    "LaplaceMechanism",
]


def _check_epsilon(epsilon: float) -> float:
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise PrivacyError(f"epsilon must be a positive finite number, got {epsilon}")
    return epsilon


def flip_probability(epsilon: float) -> float:
    """Warner flip probability ``p = 1 / (1 + e^eps)`` (always < 1/2)."""
    epsilon = _check_epsilon(epsilon)
    return 1.0 / (1.0 + math.exp(epsilon))


class RandomizedResponse:
    """Warner randomized response over {0, 1} entries with budget ``eps``.

    Satisfies ``eps``-edge LDP for neighbor lists differing in one bit:
    each bit is reported truthfully with probability ``e^eps / (1 + e^eps)``
    and flipped with probability ``p = 1 / (1 + e^eps)``.
    """

    def __init__(self, epsilon: float):
        self.epsilon = _check_epsilon(epsilon)
        self.flip_probability = flip_probability(self.epsilon)

    # ------------------------------------------------------------------
    # Perturbation primitives
    # ------------------------------------------------------------------
    def perturb_bits(self, bits: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Flip each entry of a 0/1 array independently with probability p."""
        rng = ensure_rng(rng)
        bits = np.asarray(bits)
        if bits.size and (~np.isin(bits, (0, 1))).any():
            raise PrivacyError("randomized response input must be 0/1 valued")
        flips = rng.random(bits.shape) < self.flip_probability
        return np.where(flips, 1 - bits, bits).astype(np.int8)

    def perturb_neighbor_list(
        self,
        neighbors: np.ndarray,
        domain_size: int,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Apply RR to a whole neighbor list without materializing the row.

        ``neighbors`` holds the sorted indices of the 1-bits within a domain
        of ``domain_size`` possible neighbors. Equivalent to perturbing the
        dense 0/1 row, but runs in O(d + expected noisy edges): true
        neighbors are kept with probability ``1 - p`` and the number of
        flipped zeros is drawn from Binomial(domain - d, p), then placed on
        uniformly random non-neighbors.
        """
        rng = ensure_rng(rng)
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if neighbors.size:
            if neighbors.min() < 0 or neighbors.max() >= domain_size:
                raise PrivacyError("neighbor index out of domain")
            if np.unique(neighbors).size != neighbors.size:
                raise PrivacyError("neighbor list must not contain duplicates")
        d = neighbors.size
        p = self.flip_probability

        kept = neighbors[rng.random(d) >= p]
        num_flipped_zeros = int(rng.binomial(domain_size - d, p)) if domain_size > d else 0
        if num_flipped_zeros:
            flipped = _sample_complement(neighbors, domain_size, num_flipped_zeros, rng)
            noisy = np.concatenate([kept, flipped])
        else:
            noisy = kept
        noisy.sort()
        return noisy

    # ------------------------------------------------------------------
    # Analytic helpers (used by the unbiased estimators)
    # ------------------------------------------------------------------
    def phi(self, noisy_bit: float | np.ndarray) -> float | np.ndarray:
        """Unbiased de-bias transform ``phi = (A' - p) / (1 - 2p)``."""
        return debias_bit(noisy_bit, self.flip_probability)

    def phi_variance(self) -> float:
        """``Var(phi) = p (1 - p) / (1 - 2p)^2`` (same for 0- and 1-bits)."""
        return debias_bit_variance(self.flip_probability)

    def expected_noisy_degree(self, degree: int, domain_size: int) -> float:
        """Expected number of reported edges after RR on one list."""
        p = self.flip_probability
        return degree * (1.0 - p) + (domain_size - degree) * p

    def __repr__(self) -> str:
        return f"RandomizedResponse(epsilon={self.epsilon:g}, p={self.flip_probability:.4f})"


def complement_positions_to_indices(
    exclude: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Map ranks in the complement of sorted ``exclude`` to domain indices.

    The ``x``-th smallest non-excluded value equals ``x`` plus the number
    of excluded values at or below it, which is ``#{j : exclude[j] - j <= x}``
    — one ``searchsorted`` against the shifted (still sorted) exclude array.
    """
    positions = np.asarray(positions, dtype=np.int64)
    exclude = np.asarray(exclude, dtype=np.int64)
    if exclude.size == 0 or positions.size == 0:
        return positions
    shifted = exclude - np.arange(exclude.size, dtype=np.int64)
    return positions + np.searchsorted(shifted, positions, side="right")


def _sample_complement(
    exclude: np.ndarray, domain_size: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``count`` distinct indices from ``range(domain_size)`` avoiding
    ``exclude`` (sorted array).

    Works in complement-*position* space: ranks are drawn from
    ``range(domain_size - len(exclude))`` (so the excluded values never need
    filtering) and mapped back through
    :func:`complement_positions_to_indices`. Rejection only has to fight
    duplicate ranks; each chunk is deduped locally and merged into the
    sorted accepted array with a ``searchsorted`` membership test.
    """
    available = domain_size - exclude.size
    if count > available:
        raise PrivacyError("cannot sample more zeros than available")
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    # The rank mapping needs a sorted exclude array; callers usually pass
    # CSR rows (already sorted) but the contract is not enforced upstream.
    exclude = np.asarray(exclude, dtype=np.int64)
    if exclude.size > 1 and not (np.diff(exclude) > 0).all():
        exclude = np.sort(exclude)
    if count > available // 2:
        # Dense request: a permutation of the (position) range is cheaper
        # than rejection once more than half the range is needed.
        positions = rng.permutation(available)[:count].astype(np.int64)
    else:
        chosen: np.ndarray = np.empty(0, dtype=np.int64)
        while chosen.size < count:
            need = count - chosen.size
            draw = rng.integers(0, available, size=int(need * 1.5) + 8, dtype=np.int64)
            draw = np.unique(draw)  # dedupe within the chunk only
            if chosen.size:
                at = np.searchsorted(chosen, draw)
                at = np.minimum(at, chosen.size - 1)
                draw = draw[chosen[at] != draw]
                # fresh ranks are disjoint from the accepted ones, so a
                # plain sorted merge keeps `chosen` sorted and unique
                chosen = np.sort(np.concatenate([chosen, draw]))
            else:
                chosen = draw
        if chosen.size > count:
            chosen = rng.choice(chosen, size=count, replace=False)
        positions = chosen
    return complement_positions_to_indices(exclude, positions)


class LaplaceMechanism:
    """Laplace mechanism: release ``f + Lap(sensitivity / eps)``."""

    def __init__(self, epsilon: float, sensitivity: float):
        self.epsilon = _check_epsilon(epsilon)
        sensitivity = float(sensitivity)
        if not math.isfinite(sensitivity) or sensitivity <= 0.0:
            raise PrivacyError(f"sensitivity must be positive, got {sensitivity}")
        self.sensitivity = sensitivity

    @property
    def scale(self) -> float:
        """Laplace scale ``b = sensitivity / eps``."""
        return self.sensitivity / self.epsilon

    def variance(self) -> float:
        """``Var(Lap(b)) = 2 b^2``."""
        return 2.0 * self.scale**2

    def release(self, value: float, rng: RngLike = None) -> float:
        """Return a noisy version of ``value``."""
        rng = ensure_rng(rng)
        return float(value) + float(rng.laplace(0.0, self.scale))

    def release_many(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Vectorized release (independent noise per entry)."""
        rng = ensure_rng(rng)
        values = np.asarray(values, dtype=np.float64)
        return values + rng.laplace(0.0, self.scale, size=values.shape)

    def __repr__(self) -> str:
        return (
            f"LaplaceMechanism(epsilon={self.epsilon:g}, "
            f"sensitivity={self.sensitivity:g})"
        )

"""Budget management across a *sequence* of queries.

The paper's evaluation grants each query its own budget ε. When one
analyst issues many queries against the same graph (e.g. building an LDP
projection over k vertices, or a top-k similarity search), sequential
composition says the per-vertex privacy loss is the sum of the budgets of
the queries that touched it. :class:`QueryBudgetManager` makes that
explicit: it owns a total budget and hands out per-query slices under a
chosen policy, refusing to exceed the total.

Policies
--------
* ``uniform`` — ``total / num_queries`` each (requires ``num_queries``).
* ``fixed`` — a constant ``per_query`` slice until the total runs out.
* ``geometric`` — slices decay by ``ratio`` so that *any* number of
  queries stays within the total (``eps_i = total·(1-r)·r^i``); useful
  when the query count is unknown up front and early queries matter most.
* ``metered`` — no slice schedule at all: the owner debits arbitrary
  amounts via :meth:`QueryBudgetManager.debit` as costs materialize.
  This is the multi-tenant serving policy, where a query's cost depends
  on the shared epoch cache (hits are free, misses cost the tick's
  epsilon per fresh vertex) and cannot be known when the budget is set
  up.
"""

from __future__ import annotations

import math

from repro.errors import BudgetExceededError, PrivacyError

__all__ = ["QueryBudgetManager"]

_POLICIES = ("uniform", "fixed", "geometric", "metered")


class QueryBudgetManager:
    """Hands out per-query budget slices from a fixed total.

    Parameters
    ----------
    total_epsilon:
        The overall budget available across all queries.
    policy:
        ``"uniform"``, ``"fixed"`` or ``"geometric"`` (see module docs).
    num_queries:
        Required for ``uniform``: how many queries the total is split over.
    per_query:
        Required for ``fixed``: the constant slice size.
    ratio:
        Decay factor for ``geometric`` (0 < ratio < 1, default 0.7).
    """

    def __init__(
        self,
        total_epsilon: float,
        policy: str = "uniform",
        num_queries: int | None = None,
        per_query: float | None = None,
        ratio: float = 0.7,
    ):
        if not math.isfinite(total_epsilon) or total_epsilon <= 0:
            raise PrivacyError(f"total_epsilon must be positive, got {total_epsilon}")
        if policy not in _POLICIES:
            raise PrivacyError(f"unknown policy {policy!r}; choose from {_POLICIES}")
        if policy == "uniform":
            if num_queries is None or num_queries <= 0:
                raise PrivacyError("uniform policy requires num_queries > 0")
        if policy == "fixed":
            if per_query is None or per_query <= 0:
                raise PrivacyError("fixed policy requires per_query > 0")
            if per_query > total_epsilon:
                raise PrivacyError("per_query exceeds the total budget")
        if policy == "geometric" and not 0.0 < ratio < 1.0:
            raise PrivacyError(f"ratio must be in (0, 1), got {ratio}")

        self.total_epsilon = float(total_epsilon)
        self.policy = policy
        self.num_queries = num_queries
        self.per_query = per_query
        self.ratio = float(ratio)
        self._spent = 0.0
        self._issued = 0

    # ------------------------------------------------------------------
    @property
    def spent(self) -> float:
        """Budget handed out so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return max(self.total_epsilon - self._spent, 0.0)

    @property
    def queries_issued(self) -> int:
        return self._issued

    # ------------------------------------------------------------------
    def _slice(self) -> float:
        if self.policy == "uniform":
            assert self.num_queries is not None
            return self.total_epsilon / self.num_queries
        if self.policy == "fixed":
            assert self.per_query is not None
            return self.per_query
        # geometric: eps_i = total * (1 - r) * r^i sums to total over i >= 0.
        return self.total_epsilon * (1.0 - self.ratio) * self.ratio**self._issued

    def debit(self, epsilon: float, party: str = "analyst") -> float:
        """Reserve an arbitrary ``epsilon`` amount against the total.

        The metered counterpart of :meth:`next_budget`, for costs that
        only materialize at serving time (a cache miss's fresh vertices).
        Works under every policy; a zero debit is free and always allowed.

        Returns the amount debited. Raises
        :class:`~repro.errors.BudgetExceededError` (tagged with
        ``party``) when ``epsilon`` exceeds the remaining budget, and
        :class:`~repro.errors.PrivacyError` for a negative amount.
        """
        if epsilon < 0:
            raise PrivacyError(f"cannot debit negative epsilon {epsilon}")
        if epsilon == 0:
            return 0.0
        if epsilon > self.remaining + 1e-12:
            raise BudgetExceededError(party, epsilon, self.remaining)
        self._spent += epsilon
        self._issued += 1
        return epsilon

    def credit(self, epsilon: float) -> None:
        """Return a previously debited amount to the budget.

        Only for rolling back a :meth:`debit` whose query was never
        answered (e.g. the serving tick failed after admission): nothing
        was released, so the reservation is undone. Never credit spend
        that produced an answer.

        Raises :class:`PrivacyError` if ``epsilon`` is negative or
        exceeds what was spent.
        """
        if epsilon < 0:
            raise PrivacyError(f"cannot credit negative epsilon {epsilon}")
        if epsilon > self._spent + 1e-12:
            raise PrivacyError(
                f"cannot credit eps={epsilon:g}: only {self._spent:g} was spent"
            )
        self._spent = max(self._spent - epsilon, 0.0)

    def next_budget(self) -> float:
        """Reserve and return the next query's budget slice.

        Raises :class:`BudgetExceededError` once the total is exhausted
        (for ``uniform``: after ``num_queries`` slices; for ``fixed``:
        when the next slice would not fit; ``geometric`` never exhausts
        but slices shrink toward zero) and :class:`PrivacyError` under
        the ``metered`` policy, which has no slice schedule — use
        :meth:`debit`.
        """
        if self.policy == "metered":
            raise PrivacyError(
                "the metered policy hands out no slices; debit() actual costs"
            )
        slice_eps = self._slice()
        if self.policy == "uniform" and self._issued >= (self.num_queries or 0):
            raise BudgetExceededError("analyst", slice_eps, 0.0)
        if slice_eps > self.remaining + 1e-12:
            raise BudgetExceededError("analyst", slice_eps, self.remaining)
        self._spent += slice_eps
        self._issued += 1
        return slice_eps

    def __repr__(self) -> str:
        return (
            f"QueryBudgetManager(total={self.total_epsilon:g}, "
            f"policy={self.policy!r}, spent={self._spent:.4g})"
        )

"""Shared randomized-response debiasing algebra.

Every RR consumer in the repo needs the same three pieces of flip-
probability algebra: the per-bit unbiased inverse ``φ(y) = (y - p)/(1-2p)``,
the joint report law of two independently perturbed bits, and the paper's
Theorem-3 intersection debias built from them. Before this module each
piece lived in two or three copies (``engine/sketch.py``,
``protocol/session.py``, ``engine/pairwise.py``, ``estimators/oner.py``,
``mechanisms.RandomizedResponse.phi``) that could drift independently;
they now all route through here. The sketch-view family
(:mod:`repro.engine.sketches`) adds a fourth consumer — its blip debias
and k-ary RR inversion live here too, so the materialized and sketched
paths share one source of algebra by construction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import PrivacyError

__all__ = [
    "debias_bit",
    "debias_bit_variance",
    "debias_joint",
    "joint_report_probs",
    "debias_intersection_counts",
    "krr_probabilities",
    "krr_debias_cdf",
    "krr_cdf_variance",
]


def _check_flip(p: float) -> float:
    p = float(p)
    if not 0.0 <= p < 0.5:
        raise PrivacyError(f"flip probability must be in [0, 0.5), got {p}")
    return p


def debias_bit(noisy, p: float):
    """Unbiased inverse of one RR bit: ``φ(y) = (y - p) / (1 - 2p)``.

    ``E[φ(y)] = x`` for a true bit ``x`` flipped with probability ``p``.
    Vectorized over arrays; the estimate of the *zero* indicator is
    ``1 - debias_bit(y, p)``.
    """
    p = _check_flip(p)
    return (np.asarray(noisy, dtype=np.float64) - p) / (1.0 - 2.0 * p)


def debias_bit_variance(p: float) -> float:
    """``Var(φ) = p(1-p)/(1-2p)²`` — identical for true 0- and 1-bits."""
    p = _check_flip(p)
    return p * (1.0 - p) / (1.0 - 2.0 * p) ** 2


def debias_joint(noisy_a, noisy_b, p: float):
    """Unbiased estimate of ``x_a · x_b`` from two independent RR bits.

    ``E[φ(y_a) φ(y_b)] = x_a x_b`` because the flips are independent;
    this is the two-party product the pairwise sketch estimators are
    built on.
    """
    return debias_bit(noisy_a, p) * debias_bit(noisy_b, p)


def joint_report_probs(keep_a: float, keep_b: float) -> list[float]:
    """Joint law of two independently reported bits.

    ``keep_a``/``keep_b`` are the probabilities each party reports a 1
    for the cell; the return is the 4-outcome distribution
    ``[both, only a, only b, neither]`` consumed by the sketch-mode
    multinomial draws (:func:`repro.engine.sketch.sketch_pair_counts`
    and :meth:`repro.protocol.session.ProtocolSession.naive_counts`).
    """
    return [
        keep_a * keep_b,
        keep_a * (1.0 - keep_b),
        (1.0 - keep_a) * keep_b,
        (1.0 - keep_a) * (1.0 - keep_b),
    ]


def debias_intersection_counts(n1, n2, pool: int, p: float):
    """The paper's Theorem-3 unbiased ``C2`` from ``(N1, N2)`` counts.

    ``f̃2 = [N1 (1-p)² - (N2 - N1) p(1-p) + (pool - N2) p²] / (1-2p)²``
    where ``N1``/``N2`` are the noisy intersection/union sizes and
    ``pool`` the candidate-pool size. Vectorized over whole workloads;
    the single-pair OneR estimator and the batch engine both call this.
    """
    p = _check_flip(p)
    n1 = np.asarray(n1, dtype=np.float64)
    n2 = np.asarray(n2, dtype=np.float64)
    denom = (1.0 - 2.0 * p) ** 2
    return (
        n1 * (1.0 - p) ** 2
        - (n2 - n1) * p * (1.0 - p)
        + (pool - n2) * p * p
    ) / denom


# ----------------------------------------------------------------------
# k-ary randomized response (the HLL register release)
# ----------------------------------------------------------------------
def krr_probabilities(epsilon: float, k: int) -> tuple[float, float]:
    """``(truthful, other)`` report probabilities of k-ary RR.

    A value from a ``k``-element domain is reported truthfully with
    probability ``e^ε / (e^ε + k - 1)`` and as any *specific* other value
    with probability ``(1 - truthful)/(k - 1)``; the mechanism is ε-DP
    for any change of the input value.
    """
    if k < 2:
        raise PrivacyError(f"k-ary RR needs a domain of at least 2, got {k}")
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise PrivacyError(f"epsilon must be a positive finite number, got {epsilon}")
    e = math.exp(min(epsilon, 700.0))
    truthful = e / (e + k - 1.0)
    other = (1.0 - truthful) / (k - 1.0)
    return truthful, other


def krr_debias_cdf(reports, t: int, epsilon: float, k: int):
    """Unbiased per-entry estimate of ``1{value <= t}`` from k-RR reports.

    With truthful probability ``ρ`` and per-other probability ``u``,
    ``P(report <= t) = ρ·1{value <= t} + (t + 1 - 1{value <= t})·u``, so
    ``(1{report <= t} - (t + 1)·u) / (ρ - u)`` has expectation exactly
    the true indicator. Vectorized over report arrays.
    """
    truthful, other = krr_probabilities(epsilon, k)
    below = (np.asarray(reports) <= t).astype(np.float64)
    return (below - (t + 1) * other) / (truthful - other)


def krr_cdf_variance(epsilon: float, k: int) -> float:
    """Worst-case variance of one :func:`krr_debias_cdf` entry.

    The indicator ``1{report <= t}`` is Bernoulli, so its variance is at
    most 1/4; dividing by ``(ρ - u)²`` bounds the debiased estimate's
    variance for every threshold and true value.
    """
    truthful, other = krr_probabilities(epsilon, k)
    return 0.25 / (truthful - other) ** 2

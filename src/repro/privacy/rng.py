"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either a
:class:`numpy.random.Generator`, an integer seed, or ``None`` (fresh
OS-seeded generator). :func:`ensure_rng` normalizes the three forms, and
:func:`spawn_rngs` derives independent child streams for per-vertex /
per-trial simulation without correlated randomness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]

RngLike = np.random.Generator | int | None


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` (Generator | seed | None) into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    seed_seq = getattr(parent.bit_generator, "seed_seq", None)
    if seed_seq is not None:
        children = seed_seq.spawn(count)
        return [np.random.default_rng(child) for child in children]
    # Fallback for bit generators without a seed sequence: derive child
    # seeds from the parent stream itself.
    seeds = parent.integers(0, 2**63, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]

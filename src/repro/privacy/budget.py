"""Privacy-budget containers and split policies.

The multiple-round algorithms divide a total budget ``eps`` across rounds:
``eps0`` for the degree-estimation round, ``eps1`` for noisy-graph
construction (randomized response), and ``eps2`` for the Laplace release of
the local estimators. :class:`BudgetSplit` captures one allocation and
validates it; helper constructors implement the paper's default policies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PrivacyError

__all__ = ["BudgetSplit"]

_REL_TOL = 1e-9


@dataclass(frozen=True)
class BudgetSplit:
    """An allocation of the total privacy budget across protocol rounds.

    Attributes
    ----------
    degree:
        ``eps0`` — budget for noisy degree reports (0 when unused).
    graph:
        ``eps1`` — budget for randomized response / noisy-graph round.
    estimator:
        ``eps2`` — budget for the Laplace release of local estimators
        (0 for one-round algorithms that rely on RR alone).
    """

    degree: float
    graph: float
    estimator: float

    def __post_init__(self):
        for name, value in (
            ("degree", self.degree),
            ("graph", self.graph),
            ("estimator", self.estimator),
        ):
            if not math.isfinite(value) or value < 0.0:
                raise PrivacyError(f"budget component {name} must be >= 0, got {value}")
        if self.graph <= 0.0:
            raise PrivacyError("graph (eps1) component must be positive")

    @property
    def total(self) -> float:
        """Sequential-composition total ``eps0 + eps1 + eps2``."""
        return self.degree + self.graph + self.estimator

    # ------------------------------------------------------------------
    # Paper policies
    # ------------------------------------------------------------------
    @classmethod
    def single_round(cls, epsilon: float) -> "BudgetSplit":
        """All budget on randomized response (Naive / OneR)."""
        return cls(degree=0.0, graph=float(epsilon), estimator=0.0)

    @classmethod
    def even(cls, epsilon: float) -> "BudgetSplit":
        """MultiR-SS default: ``eps1 = eps2 = eps / 2`` (Alg. 3, line 1)."""
        half = float(epsilon) / 2.0
        return cls(degree=0.0, graph=half, estimator=half)

    @classmethod
    def with_fraction(cls, epsilon: float, graph_fraction: float) -> "BudgetSplit":
        """Fixed ``eps1 = fraction * eps``, remainder to the estimator."""
        epsilon = float(epsilon)
        if not 0.0 < graph_fraction < 1.0:
            raise PrivacyError(
                f"graph_fraction must be in (0, 1), got {graph_fraction}"
            )
        graph = epsilon * graph_fraction
        return cls(degree=0.0, graph=graph, estimator=epsilon - graph)

    @classmethod
    def three_round(
        cls, epsilon: float, degree_fraction: float, graph_budget: float
    ) -> "BudgetSplit":
        """MultiR-DS allocation: ``eps0 = fraction * eps``, explicit ``eps1``,
        remainder to ``eps2`` (Alg. 4, lines 1 and 13)."""
        epsilon = float(epsilon)
        if not 0.0 <= degree_fraction < 1.0:
            raise PrivacyError(
                f"degree_fraction must be in [0, 1), got {degree_fraction}"
            )
        degree = epsilon * degree_fraction
        estimator = epsilon - degree - graph_budget
        if estimator <= 0.0:
            raise PrivacyError(
                f"graph budget {graph_budget:g} leaves no estimator budget "
                f"out of eps={epsilon:g} (eps0={degree:g})"
            )
        return cls(degree=degree, graph=graph_budget, estimator=estimator)

    # ------------------------------------------------------------------
    def matches_total(self, epsilon: float) -> bool:
        """Whether this split consumes exactly ``epsilon`` (up to fp error)."""
        return math.isclose(self.total, epsilon, rel_tol=_REL_TOL, abs_tol=1e-12)

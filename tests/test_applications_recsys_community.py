"""Tests for the recommendation and community-detection applications."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.applications.community import (
    detect_communities,
    ldp_communities,
    pairwise_rand_index,
)
from repro.applications.recommendation import recommend_items
from repro.errors import PrivacyError, ReproError
from repro.graph.bipartite import BipartiteGraph, Layer


@pytest.fixture()
def taste_graph() -> BipartiteGraph:
    """Target user 0 likes items 0-9; users 1,2 share that taste and also
    like items 10-14; user 3 likes disjoint items 20-29."""
    edges = [(0, i) for i in range(10)]
    edges += [(1, i) for i in range(15)]
    edges += [(2, i) for i in range(2, 15)]
    edges += [(3, i) for i in range(20, 30)]
    return BipartiteGraph(4, 40, edges)


@pytest.fixture()
def two_cluster_graph() -> BipartiteGraph:
    """Two groups of users with disjoint item pools — two communities."""
    edges = []
    for u in range(4):  # cluster A: users 0-3 on items 0-7
        edges += [(u, i) for i in range(8)]
    for u in range(4, 8):  # cluster B: users 4-7 on items 20-27
        edges += [(u, i) for i in range(20, 28)]
    return BipartiteGraph(8, 40, edges)


class TestRecommendation:
    def test_high_budget_recommends_shared_taste(self, taste_graph):
        recs = recommend_items(
            taste_graph, Layer.UPPER, 0, [1, 2, 3],
            epsilon_similarity=60.0, epsilon_lists=20.0,
            k=2, top_items=5, rng=1,
        )
        assert len(recs) == 5
        # Users 1 and 2 both like items 10-14, which user 0 lacks.
        top_set = {r.item for r in recs}
        assert len(top_set & set(range(10, 15))) >= 4

    def test_owned_items_excluded(self, taste_graph):
        recs = recommend_items(
            taste_graph, Layer.UPPER, 0, [1, 2],
            epsilon_similarity=40.0, epsilon_lists=10.0,
            k=2, top_items=8, rng=2,
        )
        owned = set(map(int, taste_graph.neighbors(Layer.UPPER, 0)))
        assert not owned & {r.item for r in recs}

    def test_owned_items_kept_when_requested(self, taste_graph):
        recs = recommend_items(
            taste_graph, Layer.UPPER, 0, [1, 2],
            epsilon_similarity=40.0, epsilon_lists=10.0,
            k=2, top_items=40, exclude_owned=False, rng=3,
        )
        owned = set(map(int, taste_graph.neighbors(Layer.UPPER, 0)))
        assert owned & {r.item for r in recs}

    def test_scores_sorted_descending(self, taste_graph):
        recs = recommend_items(
            taste_graph, Layer.UPPER, 0, [1, 2, 3],
            epsilon_similarity=20.0, epsilon_lists=5.0, rng=4,
        )
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_parameters(self, taste_graph):
        with pytest.raises(PrivacyError):
            recommend_items(
                taste_graph, Layer.UPPER, 0, [1], 2.0, epsilon_lists=0.0
            )
        with pytest.raises(PrivacyError):
            recommend_items(
                taste_graph, Layer.UPPER, 0, [1], 2.0, 1.0, top_items=0
            )

    def test_no_candidates_returns_empty(self, taste_graph):
        recs = recommend_items(
            taste_graph, Layer.UPPER, 0, [], 2.0, 1.0, rng=5
        )
        assert recs == []

    def test_deterministic(self, taste_graph):
        kwargs = dict(
            epsilon_similarity=10.0, epsilon_lists=3.0, k=2, top_items=5,
        )
        a = recommend_items(taste_graph, Layer.UPPER, 0, [1, 2, 3], rng=7, **kwargs)
        b = recommend_items(taste_graph, Layer.UPPER, 0, [1, 2, 3], rng=7, **kwargs)
        assert a == b


class TestDetectCommunities:
    def test_two_cliques(self):
        g = nx.Graph()
        g.add_weighted_edges_from([(0, 1, 5), (1, 2, 5), (0, 2, 5)])
        g.add_weighted_edges_from([(10, 11, 5), (11, 12, 5), (10, 12, 5)])
        communities = detect_communities(g)
        assert {frozenset(c) for c in communities} == {
            frozenset({0, 1, 2}),
            frozenset({10, 11, 12}),
        }

    def test_isolated_vertices_singletons(self):
        g = nx.Graph()
        g.add_nodes_from([1, 2, 3])
        communities = detect_communities(g)
        assert sorted(map(tuple, communities)) == [(1,), (2,), (3,)]

    def test_empty_graph(self):
        assert detect_communities(nx.Graph()) == []

    def test_unknown_method(self):
        with pytest.raises(ReproError):
            detect_communities(nx.Graph(), method="kmeans")

    def test_label_propagation_runs(self):
        g = nx.complete_graph(5)
        nx.set_edge_attributes(g, 1.0, "weight")
        communities = detect_communities(g, method="label-propagation")
        assert sum(len(c) for c in communities) == 5


class TestLdpCommunities:
    def test_recovers_planted_clusters_at_high_budget(self, two_cluster_graph):
        vertices = list(range(8))
        found = ldp_communities(
            two_cluster_graph, Layer.UPPER, vertices, epsilon=40.0,
            threshold=2.0, rng=6,
        )
        expected = [set(range(4)), set(range(4, 8))]
        assert pairwise_rand_index(found, expected) == pytest.approx(1.0)

    def test_partition_covers_all_vertices(self, two_cluster_graph):
        vertices = list(range(8))
        found = ldp_communities(
            two_cluster_graph, Layer.UPPER, vertices, epsilon=2.0, rng=7
        )
        covered = sorted(v for group in found for v in group)
        assert covered == vertices


class TestRandIndex:
    def test_identical_partitions(self):
        a = [{1, 2}, {3}]
        assert pairwise_rand_index(a, [{1, 2}, {3}]) == 1.0

    def test_orthogonal_partitions(self):
        together = [{1, 2, 3, 4}]
        apart = [{1}, {2}, {3}, {4}]
        assert pairwise_rand_index(together, apart) == 0.0

    def test_partial_agreement(self):
        a = [{1, 2}, {3, 4}]
        b = [{1, 2, 3}, {4}]
        # pairs: (1,2) agree; (3,4) disagree; (1,3),(2,3) disagree; (1,4),(2,4) agree.
        assert pairwise_rand_index(a, b) == pytest.approx(3 / 6)

    def test_mismatched_elements_raise(self):
        with pytest.raises(ReproError):
            pairwise_rand_index([{1}], [{2}])

    def test_single_element(self):
        assert pairwise_rand_index([{1}], [{1}]) == 1.0

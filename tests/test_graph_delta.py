"""Unit and property tests for the streaming delta layer.

Covers :class:`~repro.graph.delta.DeltaLog` (last-op-wins net semantics,
dirty-vertex extraction, cancellation) and
:meth:`BipartiteGraph.apply_edge_delta` (the CSR-splice fast path must be
indistinguishable from rebuilding the graph from its mutated edge list).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import BipartiteGraph, DeltaLog, Layer, random_bipartite


def _rebuild_naive(graph, inserts, deletes):
    """Oracle: mutate the edge list and rebuild through the constructor."""
    edges = {(int(u), int(l)) for u, l in graph.edges}
    edges -= {(int(u), int(l)) for u, l in np.asarray(deletes).reshape(-1, 2)}
    edges |= {(int(u), int(l)) for u, l in np.asarray(inserts).reshape(-1, 2)}
    return BipartiteGraph(graph.num_upper, graph.num_lower, sorted(edges))


def _assert_graphs_equal(a: BipartiteGraph, b: BipartiteGraph) -> None:
    assert a.num_upper == b.num_upper and a.num_lower == b.num_lower
    np.testing.assert_array_equal(a.edges, b.edges)
    for layer in Layer:
        np.testing.assert_array_equal(a.degrees(layer), b.degrees(layer))
        for v in range(a.layer_size(layer)):
            np.testing.assert_array_equal(
                a.neighbors(layer, v), b.neighbors(layer, v)
            )


class TestApplyEdgeDelta:
    def test_insert_and_delete_roundtrip(self):
        g = random_bipartite(12, 10, 40, rng=3)
        absent = next(
            (u, l)
            for u in range(12)
            for l in range(10)
            if not g.has_edge(u, l)
        )
        g2 = g.insert_edges(np.array([absent]))
        assert g2.has_edge(*absent) and not g.has_edge(*absent)
        g3 = g2.delete_edges(np.array([absent]))
        _assert_graphs_equal(g3, g)

    def test_present_insert_and_absent_delete_are_noops(self):
        g = random_bipartite(10, 8, 30, rng=4)
        edge = tuple(int(x) for x in g.edges[0])
        same = g.insert_edges(np.array([edge]))
        assert same is g
        absent = next(
            (u, l) for u in range(10) for l in range(8) if not g.has_edge(u, l)
        )
        assert g.delete_edges(np.array([absent])) is g

    def test_conflicting_delta_refused(self):
        g = random_bipartite(10, 8, 30, rng=5)
        edge = np.array([g.edges[0]], dtype=np.int64)
        with pytest.raises(GraphError):
            g.apply_edge_delta(edge, edge)

    def test_out_of_range_refused(self):
        g = random_bipartite(6, 5, 12, rng=6)
        with pytest.raises(GraphError):
            g.insert_edges(np.array([[6, 0]]))
        with pytest.raises(GraphError):
            g.delete_edges(np.array([[0, 5]]))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_splice_matches_naive_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        n_u, n_l = int(rng.integers(2, 20)), int(rng.integers(2, 16))
        g = random_bipartite(
            n_u, n_l, int(rng.integers(0, n_u * n_l // 2 + 1)), rng=rng
        )
        k_del = int(rng.integers(0, g.num_edges + 1))
        deletes = (
            g.edges[rng.choice(g.num_edges, size=k_del, replace=False)]
            if k_del
            else np.empty((0, 2), dtype=np.int64)
        )
        absent = [
            (u, l)
            for u in range(n_u)
            for l in range(n_l)
            if not g.has_edge(u, l)
        ]
        k_ins = int(rng.integers(0, min(8, len(absent)) + 1))
        inserts = (
            np.array(
                [absent[i] for i in rng.choice(len(absent), k_ins, replace=False)],
                dtype=np.int64,
            )
            if k_ins
            else np.empty((0, 2), dtype=np.int64)
        )
        spliced = g.apply_edge_delta(inserts, deletes)
        _assert_graphs_equal(spliced, _rebuild_naive(g, inserts, deletes))


class TestDeltaLog:
    def test_last_op_wins_and_cancellation(self):
        g = random_bipartite(8, 8, 20, rng=7)
        absent = next(
            (u, l) for u in range(8) for l in range(8) if not g.has_edge(u, l)
        )
        log = DeltaLog(g)
        log.insert(*absent)
        log.delete(*absent)
        assert len(log) == 2  # recorded ops include the cancelled pair
        assert log.is_net_empty
        assert log.dirty_vertices(Layer.UPPER).size == 0
        assert log.apply() is g

    def test_net_reflects_base_membership(self):
        g = random_bipartite(8, 8, 20, rng=8)
        present = tuple(int(x) for x in g.edges[0])
        log = DeltaLog(g)
        log.insert(*present)  # no-op: already present
        assert log.is_net_empty
        log.delete(*present)
        assert not log.is_net_empty
        np.testing.assert_array_equal(
            log.net_deletes(), np.array([present], dtype=np.int64)
        )
        assert log.net_inserts().size == 0

    def test_dirty_vertices_per_layer(self):
        g = BipartiteGraph(5, 5, [(0, 0), (1, 1)])
        log = DeltaLog(g)
        log.delete(0, 0)
        log.insert(2, 3)
        np.testing.assert_array_equal(
            log.dirty_vertices(Layer.UPPER), np.array([0, 2])
        )
        np.testing.assert_array_equal(
            log.dirty_vertices(Layer.LOWER), np.array([0, 3])
        )

    def test_apply_builds_mutated_snapshot(self):
        g = random_bipartite(10, 9, 30, rng=9)
        log = DeltaLog(g)
        victim = tuple(int(x) for x in g.edges[-1])
        absent = next(
            (u, l) for u in range(10) for l in range(9) if not g.has_edge(u, l)
        )
        log.delete(*victim)
        log.insert(*absent)
        g2 = log.apply()
        assert g2 is not g
        assert not g2.has_edge(*victim) and g2.has_edge(*absent)
        _assert_graphs_equal(
            g2, _rebuild_naive(g, np.array([absent]), np.array([victim]))
        )

    def test_out_of_range_refused(self):
        g = BipartiteGraph(3, 3, [(0, 0)])
        log = DeltaLog(g)
        with pytest.raises(GraphError):
            log.insert(3, 0)
        with pytest.raises(GraphError):
            log.delete(0, -1)

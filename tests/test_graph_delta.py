"""Unit and property tests for the streaming delta layer.

Covers :class:`~repro.graph.delta.DeltaLog` (last-op-wins net semantics,
dirty-vertex extraction, cancellation) and
:meth:`BipartiteGraph.apply_edge_delta` (the CSR-splice fast path must be
indistinguishable from rebuilding the graph from its mutated edge list).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import BipartiteGraph, DeltaLog, Layer, random_bipartite


def _rebuild_naive(graph, inserts, deletes):
    """Oracle: mutate the edge list and rebuild through the constructor."""
    edges = {(int(u), int(l)) for u, l in graph.edges}
    edges -= {(int(u), int(l)) for u, l in np.asarray(deletes).reshape(-1, 2)}
    edges |= {(int(u), int(l)) for u, l in np.asarray(inserts).reshape(-1, 2)}
    return BipartiteGraph(graph.num_upper, graph.num_lower, sorted(edges))


def _assert_graphs_equal(a: BipartiteGraph, b: BipartiteGraph) -> None:
    assert a.num_upper == b.num_upper and a.num_lower == b.num_lower
    np.testing.assert_array_equal(a.edges, b.edges)
    for layer in Layer:
        np.testing.assert_array_equal(a.degrees(layer), b.degrees(layer))
        for v in range(a.layer_size(layer)):
            np.testing.assert_array_equal(
                a.neighbors(layer, v), b.neighbors(layer, v)
            )


class TestApplyEdgeDelta:
    def test_insert_and_delete_roundtrip(self):
        g = random_bipartite(12, 10, 40, rng=3)
        absent = next(
            (u, l)
            for u in range(12)
            for l in range(10)
            if not g.has_edge(u, l)
        )
        g2 = g.insert_edges(np.array([absent]))
        assert g2.has_edge(*absent) and not g.has_edge(*absent)
        g3 = g2.delete_edges(np.array([absent]))
        _assert_graphs_equal(g3, g)

    def test_present_insert_and_absent_delete_are_noops(self):
        g = random_bipartite(10, 8, 30, rng=4)
        edge = tuple(int(x) for x in g.edges[0])
        same = g.insert_edges(np.array([edge]))
        assert same is g
        absent = next(
            (u, l) for u in range(10) for l in range(8) if not g.has_edge(u, l)
        )
        assert g.delete_edges(np.array([absent])) is g

    def test_conflicting_delta_refused(self):
        g = random_bipartite(10, 8, 30, rng=5)
        edge = np.array([g.edges[0]], dtype=np.int64)
        with pytest.raises(GraphError):
            g.apply_edge_delta(edge, edge)

    def test_out_of_range_refused(self):
        g = random_bipartite(6, 5, 12, rng=6)
        with pytest.raises(GraphError):
            g.insert_edges(np.array([[6, 0]]))
        with pytest.raises(GraphError):
            g.delete_edges(np.array([[0, 5]]))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_splice_matches_naive_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        n_u, n_l = int(rng.integers(2, 20)), int(rng.integers(2, 16))
        g = random_bipartite(
            n_u, n_l, int(rng.integers(0, n_u * n_l // 2 + 1)), rng=rng
        )
        k_del = int(rng.integers(0, g.num_edges + 1))
        deletes = (
            g.edges[rng.choice(g.num_edges, size=k_del, replace=False)]
            if k_del
            else np.empty((0, 2), dtype=np.int64)
        )
        absent = [
            (u, l)
            for u in range(n_u)
            for l in range(n_l)
            if not g.has_edge(u, l)
        ]
        k_ins = int(rng.integers(0, min(8, len(absent)) + 1))
        inserts = (
            np.array(
                [absent[i] for i in rng.choice(len(absent), k_ins, replace=False)],
                dtype=np.int64,
            )
            if k_ins
            else np.empty((0, 2), dtype=np.int64)
        )
        spliced = g.apply_edge_delta(inserts, deletes)
        _assert_graphs_equal(spliced, _rebuild_naive(g, inserts, deletes))


class TestDeltaLog:
    def test_last_op_wins_and_cancellation(self):
        g = random_bipartite(8, 8, 20, rng=7)
        absent = next(
            (u, l) for u in range(8) for l in range(8) if not g.has_edge(u, l)
        )
        log = DeltaLog(g)
        log.insert(*absent)
        log.delete(*absent)
        assert len(log) == 2  # recorded ops include the cancelled pair
        assert log.is_net_empty
        assert log.dirty_vertices(Layer.UPPER).size == 0
        assert log.apply() is g

    def test_net_reflects_base_membership(self):
        g = random_bipartite(8, 8, 20, rng=8)
        present = tuple(int(x) for x in g.edges[0])
        log = DeltaLog(g)
        log.insert(*present)  # no-op: already present
        assert log.is_net_empty
        log.delete(*present)
        assert not log.is_net_empty
        np.testing.assert_array_equal(
            log.net_deletes(), np.array([present], dtype=np.int64)
        )
        assert log.net_inserts().size == 0

    def test_dirty_vertices_per_layer(self):
        g = BipartiteGraph(5, 5, [(0, 0), (1, 1)])
        log = DeltaLog(g)
        log.delete(0, 0)
        log.insert(2, 3)
        np.testing.assert_array_equal(
            log.dirty_vertices(Layer.UPPER), np.array([0, 2])
        )
        np.testing.assert_array_equal(
            log.dirty_vertices(Layer.LOWER), np.array([0, 3])
        )

    def test_apply_builds_mutated_snapshot(self):
        g = random_bipartite(10, 9, 30, rng=9)
        log = DeltaLog(g)
        victim = tuple(int(x) for x in g.edges[-1])
        absent = next(
            (u, l) for u in range(10) for l in range(9) if not g.has_edge(u, l)
        )
        log.delete(*victim)
        log.insert(*absent)
        g2 = log.apply()
        assert g2 is not g
        assert not g2.has_edge(*victim) and g2.has_edge(*absent)
        _assert_graphs_equal(
            g2, _rebuild_naive(g, np.array([absent]), np.array([victim]))
        )

    def test_out_of_range_refused(self):
        g = BipartiteGraph(3, 3, [(0, 0)])
        log = DeltaLog(g)
        with pytest.raises(GraphError):
            log.insert(3, 0)
        with pytest.raises(GraphError):
            log.delete(0, -1)


# Random mutation scripts over a small fixed graph shape: each op is
# (is_insert, upper, lower). Small endpoint ranges force repeated
# touches of the same edge — the cancellation / last-op-wins paths.
_N_UP, _N_LO = 10, 8
op_scripts = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=_N_UP - 1),
        st.integers(min_value=0, max_value=_N_LO - 1),
    ),
    min_size=0,
    max_size=60,
)


def _record(log, script):
    for is_insert, u, v in script:
        (log.insert if is_insert else log.delete)(u, v)


class TestCompaction:
    @given(script=op_scripts, seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=80, deadline=None)
    def test_compact_preserves_net_effect(self, script, seed):
        """compact(log) ≡ net-of-ops: same nets, same applied graph."""
        g = random_bipartite(_N_UP, _N_LO, 25, rng=seed)
        log = DeltaLog(g)
        _record(log, script)
        compacted = log.compact()
        assert compacted.base is g
        np.testing.assert_array_equal(
            compacted.net_inserts(), log.net_inserts()
        )
        np.testing.assert_array_equal(
            compacted.net_deletes(), log.net_deletes()
        )
        for layer in Layer:
            np.testing.assert_array_equal(
                compacted.dirty_vertices(layer), log.dirty_vertices(layer)
            )
        _assert_graphs_equal(compacted.apply(), log.apply())

    @given(script=op_scripts)
    @settings(max_examples=80, deadline=None)
    def test_full_cancellation_compacts_to_nothing(self, script):
        """A script followed by its exact inverse nets to the base."""
        g = random_bipartite(_N_UP, _N_LO, 25, rng=5)
        log = DeltaLog(g)
        _record(log, script)
        # Undo every touched edge back to its base membership.
        for u, v in {(u, v) for _, u, v in script}:
            (log.insert if g.has_edge(u, v) else log.delete)(u, v)
        compacted = log.compact()
        assert compacted.is_net_empty
        assert len(compacted) == 0
        assert compacted.apply() is g

    def test_compacted_memory_bounded_by_dirty_edges_not_ops(self):
        """10k churning ops over 3 edges compact to at most 3 entries."""
        g = random_bipartite(_N_UP, _N_LO, 25, rng=6)
        edges = [(0, 0), (3, 5), (7, 2)]
        log = DeltaLog(g)
        for i in range(10_000):
            u, v = edges[i % len(edges)]
            (log.insert if i % 2 else log.delete)(u, v)
        assert len(log) == 10_000
        compacted = log.compact()
        assert len(compacted) <= len(edges)
        # The kept entries are exactly the net ops — dirty vertices, not
        # op history, bound the compacted footprint.
        assert len(compacted) == (
            compacted.net_inserts().shape[0] + compacted.net_deletes().shape[0]
        )

    @given(first=op_scripts, second=op_scripts)
    @settings(max_examples=80, deadline=None)
    def test_compose_matches_sequential_application(self, first, second):
        """compose(earlier, later).apply() ≡ apply each epoch in turn."""
        g = random_bipartite(_N_UP, _N_LO, 25, rng=11)
        earlier = DeltaLog(g)
        _record(earlier, first)
        mid = earlier.apply()
        later = DeltaLog(mid)
        _record(later, second)
        sequential = later.apply()
        composed = DeltaLog.compose(earlier, later)
        assert composed.base is g
        _assert_graphs_equal(composed.apply(), sequential)
        # Composition survives compaction on either side.
        _assert_graphs_equal(
            DeltaLog.compose(earlier.compact(), later.compact()).apply(),
            sequential,
        )

    def test_compose_refuses_mismatched_layer_sizes(self):
        a = DeltaLog(BipartiteGraph(3, 3, [(0, 0)]))
        b = DeltaLog(BipartiteGraph(4, 3, [(0, 0)]))
        with pytest.raises(GraphError):
            DeltaLog.compose(a, b)

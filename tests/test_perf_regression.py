"""Performance smoke guard: the engine must stay far ahead of the loop.

Not a benchmark (see ``benchmarks/bench_engine_batch.py`` for those
numbers) — a regression tripwire with generous margins so it never flakes
on a loaded CI box while still catching an accidental re-introduction of
per-pair Python work into the engine's hot path.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.engine import BatchQueryEngine
from repro.estimators.batch import BatchOneRound
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import sample_query_pairs
from repro.protocol.session import ExecutionMode
from repro.serving import QueryServer


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def large_domain_workload():
    """1k pairs on a graph whose candidate pool exceeds the AUTO
    materialization limit, so the engine's default path is the sketch."""
    graph = random_bipartite(2000, 25_000, 80_000, rng=1)
    pairs = sample_query_pairs(graph, Layer.UPPER, 1000, rng=2)
    return graph, pairs


@pytest.fixture(scope="module")
def materialize_workload():
    graph = random_bipartite(2000, 10_000, 60_000, rng=3)
    pairs = sample_query_pairs(graph, Layer.UPPER, 1000, rng=4)
    return graph, pairs


def test_engine_default_path_at_least_5x_faster(large_domain_workload):
    graph, pairs = large_domain_workload
    loop = BatchOneRound()
    engine = BatchQueryEngine()
    loop_time = _best_of(
        2, lambda: loop.estimate_pairs(graph, Layer.UPPER, pairs, 2.0, rng=7)
    )
    engine_time = _best_of(
        2, lambda: engine.estimate_pairs(graph, Layer.UPPER, pairs, 2.0, rng=7)
    )
    assert loop_time >= 5.0 * engine_time, (
        f"engine default path only {loop_time / engine_time:.1f}x faster "
        f"({loop_time:.3f}s vs {engine_time:.3f}s)"
    )


def test_engine_materialized_path_faster_than_loop(materialize_workload):
    """Same mode on both sides: the vectorized materialized path must beat
    the per-vertex/per-pair loop outright (typically ~2-3x; asserted at a
    noise-proof 1.2x)."""
    graph, pairs = materialize_workload
    loop = BatchOneRound()
    engine = BatchQueryEngine(mode=ExecutionMode.MATERIALIZE)
    loop_time = _best_of(
        2, lambda: loop.estimate_pairs(graph, Layer.UPPER, pairs, 2.0, rng=9)
    )
    engine_time = _best_of(
        2, lambda: engine.estimate_pairs(graph, Layer.UPPER, pairs, 2.0, rng=9)
    )
    assert loop_time >= 1.2 * engine_time, (
        f"materialized engine only {loop_time / engine_time:.1f}x faster "
        f"({loop_time:.3f}s vs {engine_time:.3f}s)"
    )


def test_served_workload_beats_per_query_engine_calls(large_domain_workload):
    """The serving layer must keep its coalescing win: one tick per burst
    (one bulk draw, one accounting round) instead of one engine call per
    query. Typically ~3-4x on this workload; asserted at a noise-proof 2x.
    """
    graph, pairs = large_domain_workload
    engine = BatchQueryEngine()

    def per_query():
        rng = np.random.default_rng(7)
        for pair in pairs:
            engine.estimate_pairs(graph, Layer.UPPER, [pair], 2.0, rng=rng)

    def served():
        async def run():
            async with QueryServer(graph, Layer.UPPER, 2.0, rng=7) as server:
                await asyncio.gather(*(server.query_pair(p) for p in pairs))

        asyncio.run(run())

    per_query_time = _best_of(2, per_query)
    served_time = _best_of(2, served)
    assert per_query_time >= 2.0 * served_time, (
        f"served path only {per_query_time / served_time:.1f}x faster "
        f"({per_query_time:.3f}s vs {served_time:.3f}s)"
    )

"""Performance smoke guard: the engine must stay far ahead of the loop.

Not a benchmark (see ``benchmarks/bench_engine_batch.py`` for those
numbers) — a regression tripwire with generous margins so it never flakes
on a loaded CI box while still catching an accidental re-introduction of
per-pair Python work into the engine's hot path.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import BatchQueryEngine
from repro.estimators.batch import BatchOneRound
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import sample_query_pairs
from repro.protocol.session import ExecutionMode


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def large_domain_workload():
    """1k pairs on a graph whose candidate pool exceeds the AUTO
    materialization limit, so the engine's default path is the sketch."""
    graph = random_bipartite(2000, 25_000, 80_000, rng=1)
    pairs = sample_query_pairs(graph, Layer.UPPER, 1000, rng=2)
    return graph, pairs


@pytest.fixture(scope="module")
def materialize_workload():
    graph = random_bipartite(2000, 10_000, 60_000, rng=3)
    pairs = sample_query_pairs(graph, Layer.UPPER, 1000, rng=4)
    return graph, pairs


def test_engine_default_path_at_least_5x_faster(large_domain_workload):
    graph, pairs = large_domain_workload
    loop = BatchOneRound()
    engine = BatchQueryEngine()
    loop_time = _best_of(
        2, lambda: loop.estimate_pairs(graph, Layer.UPPER, pairs, 2.0, rng=7)
    )
    engine_time = _best_of(
        2, lambda: engine.estimate_pairs(graph, Layer.UPPER, pairs, 2.0, rng=7)
    )
    assert loop_time >= 5.0 * engine_time, (
        f"engine default path only {loop_time / engine_time:.1f}x faster "
        f"({loop_time:.3f}s vs {engine_time:.3f}s)"
    )


def test_engine_materialized_path_faster_than_loop(materialize_workload):
    """Same mode on both sides: the vectorized materialized path must beat
    the per-vertex/per-pair loop outright (typically ~2-3x; asserted at a
    noise-proof 1.2x)."""
    graph, pairs = materialize_workload
    loop = BatchOneRound()
    engine = BatchQueryEngine(mode=ExecutionMode.MATERIALIZE)
    loop_time = _best_of(
        2, lambda: loop.estimate_pairs(graph, Layer.UPPER, pairs, 2.0, rng=9)
    )
    engine_time = _best_of(
        2, lambda: engine.estimate_pairs(graph, Layer.UPPER, pairs, 2.0, rng=9)
    )
    assert loop_time >= 1.2 * engine_time, (
        f"materialized engine only {loop_time / engine_time:.1f}x faster "
        f"({loop_time:.3f}s vs {engine_time:.3f}s)"
    )

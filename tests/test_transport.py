"""Transport contract suite: the pluggable substrate behind sharded draws.

The contract under test (``docs/distributed-guide.md``): a shard task is
a pure function of its :class:`ShardSpec`, so *which*
:class:`ShardTransport` executes it — inline in the caller, a forked
worker pool, or a remote socket worker — is invisible in the bytes. This
suite pins the contract surface itself: :func:`execute_spec` purity,
transport lifecycle (``close()`` idempotent and safe never-started),
:func:`make_transport` resolution, :class:`RetryPolicy` validation and
keyed backoff, :class:`WorkerRegistry` parsing/liveness, and the
per-transport breakdown of :attr:`ShardedRunner.fault_totals`. The
loopback cluster integration lives in ``tests/test_distributed.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.faults import FaultPlan
from repro.engine.pairwise import pairwise_intersections
from repro.engine.planner import plan_shards
from repro.engine.sharded import ShardedRunner
from repro.engine.transport import (
    ForkTransport,
    InlineTransport,
    RetryPolicy,
    ShardSpec,
    SocketTransport,
    WorkerHandle,
    WorkerRegistry,
    execute_spec,
    fork_available,
    make_transport,
)
from repro.errors import ProtocolError
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import sample_query_pairs

EPS = 2.0
ENTROPY = 77_001

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork transport needs the fork start method"
)


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(60, 40, 450, rng=31)


@pytest.fixture(scope="module")
def plan(graph):
    return plan_shards(
        graph, Layer.UPPER, np.arange(60, dtype=np.int64), EPS, shards=3
    )


def spec_for(plan, shard=0, **overrides):
    lo, hi = plan.ranges()[shard]
    base = dict(
        shard=shard,
        lo=int(lo),
        hi=int(hi),
        vertices=plan.vertices[lo:hi],
        epsilon=EPS,
        entropy=ENTROPY,
        epoch=0,
    )
    base.update(overrides)
    return ShardSpec(**base)


# ----------------------------------------------------------------------
# execute_spec: the one pure compute routine every substrate shares
# ----------------------------------------------------------------------
class TestExecuteSpec:
    def test_attempt_never_changes_the_bytes(self, graph, plan):
        """Re-dispatch safety in one line: the draw is keyed by
        (entropy, epoch, vertex, version), never by which attempt ran it."""
        results = [
            execute_spec(graph, Layer.UPPER, spec_for(plan, attempt=a))
            for a in (0, 3, -1)
        ]
        for other in results[1:]:
            np.testing.assert_array_equal(results[0].indptr, other.indptr)
            np.testing.assert_array_equal(results[0].columns, other.columns)

    def test_want_fragment_false_keeps_sizes_drops_rows(self, graph, plan):
        full = execute_spec(graph, Layer.UPPER, spec_for(plan))
        slim = execute_spec(
            graph, Layer.UPPER, spec_for(plan, want_fragment=False)
        )
        np.testing.assert_array_equal(full.sizes, slim.sizes)
        assert slim.indptr is None and slim.columns is None
        assert full.indptr is not None and full.columns is not None

    def test_local_pairs_match_parent_side_reduction(self, graph, plan):
        """In-worker diagonal reduction is exact: the worker's N1 scalars
        equal what the parent would count from the shipped fragment."""
        lo, hi = plan.ranges()[0]
        rows = hi - lo
        ia = np.array([0, 1, 2], dtype=np.int64)
        ib = np.array([3, 4, 5], dtype=np.int64)
        assert rows > 5
        domain = graph.num_lower
        reduced = execute_spec(
            graph,
            Layer.UPPER,
            spec_for(plan, ia=ia, ib=ib, domain=domain, want_fragment=False),
        )
        full = execute_spec(graph, Layer.UPPER, spec_for(plan))
        expected = pairwise_intersections(
            full.indptr, full.columns, ia, ib, domain
        )
        np.testing.assert_array_equal(reduced.n1, expected)
        assert reduced.backend is not None


# ----------------------------------------------------------------------
# Lifecycle: close() is idempotent and safe on a never-started transport
# ----------------------------------------------------------------------
class TestLifecycle:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: InlineTransport(),
            lambda: ForkTransport(max_workers=2),
            lambda: SocketTransport(["127.0.0.1:1"]),
        ],
        ids=["inline", "fork", "socket"],
    )
    def test_close_never_started_then_twice(self, build):
        """A transport that never ran a spec (a serve-mode runner whose
        first tick never arrived) must close cleanly — twice."""
        transport = build()
        transport.close()
        transport.close()

    def test_runner_close_idempotent_on_unstarted_socket_transport(
        self, graph
    ):
        """The satellite acceptance: a runner holding a socket transport
        pointed at an unreachable cluster closes without ever connecting."""
        runner = ShardedRunner(
            graph,
            Layer.UPPER,
            transport=SocketTransport(["127.0.0.1:1", "127.0.0.1:2"]),
        )
        runner.close()
        runner.close()

    def test_context_manager_closes(self, graph):
        with ForkTransport(max_workers=1) as transport:
            transport.bind(graph, Layer.UPPER)
        transport.close()  # and again, after __exit__ already closed

    def test_describe_names_the_substrate(self):
        assert InlineTransport().describe() == {"name": "inline", "workers": 1}
        fork = ForkTransport(max_workers=3).describe()
        assert fork["name"] == "fork" and fork["workers"] == 3
        sock = SocketTransport(["127.0.0.1:1"]).describe()
        assert sock["name"] == "socket"
        assert sock["cluster"][0]["address"] == "127.0.0.1:1"


# ----------------------------------------------------------------------
# Byte-identity: inline vs fork, draw and workload
# ----------------------------------------------------------------------
class TestForkMatchesInline:
    @needs_fork
    def test_draw_is_byte_identical(self, graph, plan):
        with ShardedRunner(
            graph, Layer.UPPER, transport=InlineTransport()
        ) as inline_runner:
            ref = inline_runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
        with ShardedRunner(
            graph, Layer.UPPER, transport=ForkTransport(max_workers=2)
        ) as fork_runner:
            forked = fork_runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
        np.testing.assert_array_equal(ref.indptr, forked.indptr)
        np.testing.assert_array_equal(ref.columns, forked.columns)

    @needs_fork
    def test_run_workload_is_byte_identical(self, graph, plan):
        pairs = sample_query_pairs(graph, Layer.UPPER, 80, rng=5)
        ia = np.array([p.a for p in pairs], dtype=np.int64)
        ib = np.array([p.b for p in pairs], dtype=np.int64)
        kwargs = dict(
            entropy=ENTROPY, epoch=0, ia=ia, ib=ib, domain=graph.num_lower
        )
        with ShardedRunner(
            graph, Layer.UPPER, transport=InlineTransport()
        ) as inline_runner:
            ref = inline_runner.run_workload(plan, EPS, **kwargs)
        with ShardedRunner(
            graph, Layer.UPPER, transport=ForkTransport(max_workers=2)
        ) as fork_runner:
            forked = fork_runner.run_workload(plan, EPS, **kwargs)
        np.testing.assert_array_equal(ref.n1, forked.n1)
        np.testing.assert_array_equal(ref.sizes, forked.sizes)
        assert forked.transport["name"] == "fork"
        assert ref.transport["name"] == "inline"


# ----------------------------------------------------------------------
# make_transport: the CLI's resolution path
# ----------------------------------------------------------------------
class TestMakeTransport:
    def test_builds_each_kind(self):
        assert isinstance(make_transport("inline"), InlineTransport)
        fork = make_transport("fork", max_workers=3)
        assert isinstance(fork, ForkTransport) and fork.max_workers == 3
        sock = make_transport("socket", workers=["127.0.0.1:9"])
        assert isinstance(sock, SocketTransport)
        assert sock.registry.handles[0].port == 9

    def test_unknown_kind_refused(self):
        with pytest.raises(ProtocolError, match="unknown transport"):
            make_transport("carrier-pigeon")

    def test_socket_without_workers_refused(self):
        with pytest.raises(ProtocolError, match="--workers"):
            make_transport("socket")

    def test_fork_rejects_nonpositive_workers(self):
        with pytest.raises(ProtocolError, match="max_workers"):
            make_transport("fork", max_workers=0)


# ----------------------------------------------------------------------
# RetryPolicy: validation and the keyed backoff schedule
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ProtocolError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ProtocolError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ProtocolError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ProtocolError):
            RetryPolicy(backoff_cap_s=-1.0)

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base_s=0.05, backoff_cap_s=0.2)
        waits = [policy.backoff_wait(123, 0, a) for a in range(1, 6)]
        again = [policy.backoff_wait(123, 0, a) for a in range(1, 6)]
        assert waits == again  # keyed jitter, no wall-clock randomness
        assert all(0 < w <= 0.2 for w in waits)
        # A different entropy decorrelates the jitter without changing
        # the envelope.
        other = [policy.backoff_wait(456, 0, a) for a in range(1, 6)]
        assert other != waits

    def test_zero_base_means_no_wait(self):
        policy = RetryPolicy(backoff_base_s=0.0)
        assert policy.backoff_wait(1, 0, 1) == 0.0


# ----------------------------------------------------------------------
# WorkerRegistry: address parsing and liveness bookkeeping
# ----------------------------------------------------------------------
class TestWorkerRegistry:
    def test_parses_address_forms(self):
        registry = WorkerRegistry(
            ["10.0.0.1:4000", ("10.0.0.2", 4001), WorkerHandle("h", 4002)]
        )
        assert [h.address for h in registry.handles] == [
            "10.0.0.1:4000",
            "10.0.0.2:4001",
            "h:4002",
        ]

    def test_rejects_malformed_and_empty(self):
        with pytest.raises(ProtocolError, match="host:port"):
            WorkerRegistry(["nocolon"])
        with pytest.raises(ProtocolError, match="host:port"):
            WorkerRegistry(["host:notaport"])
        with pytest.raises(ProtocolError, match="at least one"):
            WorkerRegistry([])

    def test_mark_dead_leaves_the_live_list(self):
        registry = WorkerRegistry(["a:1", "b:2"])
        assert len(registry.live()) == 2
        registry.mark_dead(registry.handles[0])
        assert [h.address for h in registry.live()] == ["b:2"]
        described = registry.describe()
        assert described[0]["alive"] is False
        assert described[1]["alive"] is True


# ----------------------------------------------------------------------
# Per-transport fault counters (the satellite's fault_totals breakdown)
# ----------------------------------------------------------------------
class TestPerTransportFaultTotals:
    @needs_fork
    def test_fork_faults_counted_under_the_transport_name(self, graph, plan):
        with FaultPlan.kill_shards([0]).active():
            with ShardedRunner(
                graph, Layer.UPPER, transport=ForkTransport(max_workers=2)
            ) as runner:
                draw = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
                totals = dict(runner.fault_totals)
        assert draw.faults["worker_deaths"] >= 1
        assert totals["worker_deaths"] >= 1
        # The same counts accumulate under the substrate's name, so a
        # mixed-transport server can see which substrate faulted.
        assert totals["fork:worker_deaths"] == totals["worker_deaths"]
        assert totals["fork:retries"] == totals["retries"]

    def test_clean_inline_draw_records_no_faults(self, graph, plan):
        with ShardedRunner(
            graph, Layer.UPPER, transport=InlineTransport()
        ) as runner:
            runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
            totals = {
                k: v for k, v in runner.fault_totals.items() if v
            }
        assert totals == {}

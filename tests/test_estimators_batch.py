"""Tests for the shared-round batch estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.estimators.batch import BatchOneRound
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import QueryPair, sample_query_pairs
from repro.privacy.rng import spawn_rngs


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(40, 60, 450, rng=77)


@pytest.fixture()
def workload(graph):
    return sample_query_pairs(graph, Layer.UPPER, 12, rng=5)


class TestInterface:
    def test_result_shape(self, graph, workload):
        result = BatchOneRound().estimate_pairs(
            graph, Layer.UPPER, workload, 2.0, rng=1
        )
        assert result.values.shape == (len(workload),)
        assert result.pairs == tuple(workload)
        assert result.epsilon == 2.0

    def test_value_lookup(self, graph, workload):
        result = BatchOneRound().estimate_pairs(
            graph, Layer.UPPER, workload, 2.0, rng=1
        )
        assert result.value(workload[3]) == result.values[3]

    def test_empty_workload_rejected(self, graph):
        with pytest.raises(ProtocolError):
            BatchOneRound().estimate_pairs(graph, Layer.UPPER, [], 2.0)

    def test_wrong_layer_rejected(self, graph):
        pair = QueryPair(Layer.LOWER, 0, 1)
        with pytest.raises(ProtocolError):
            BatchOneRound().estimate_pairs(graph, Layer.UPPER, [pair], 2.0)

    def test_deterministic(self, graph, workload):
        a = BatchOneRound().estimate_pairs(graph, Layer.UPPER, workload, 2.0, rng=3)
        b = BatchOneRound().estimate_pairs(graph, Layer.UPPER, workload, 2.0, rng=3)
        np.testing.assert_array_equal(a.values, b.values)


class TestPrivacySemantics:
    def test_each_vertex_charged_once(self, graph):
        """A vertex appearing in many pairs still spends only epsilon."""
        pairs = [
            QueryPair(Layer.UPPER, 0, other) for other in (1, 2, 3, 4, 5, 6)
        ]
        result = BatchOneRound().estimate_pairs(graph, Layer.UPPER, pairs, 1.5, rng=2)
        assert result.max_epsilon_spent == pytest.approx(1.5)
        assert result.num_query_vertices == 7

    def test_upload_counts_distinct_vertices_only(self, graph):
        dense_pairs = [QueryPair(Layer.UPPER, 0, v) for v in range(1, 8)]
        sparse_pairs = [
            QueryPair(Layer.UPPER, 2 * i, 2 * i + 1) for i in range(7)
        ]
        dense = BatchOneRound().estimate_pairs(
            graph, Layer.UPPER, dense_pairs, 2.0, rng=4
        )
        sparse = BatchOneRound().estimate_pairs(
            graph, Layer.UPPER, sparse_pairs, 2.0, rng=4
        )
        # 8 distinct vertices vs 14: the dense workload uploads fewer lists.
        assert dense.num_query_vertices < sparse.num_query_vertices
        assert dense.upload_bytes < sparse.upload_bytes


class TestStatistics:
    def test_unbiased_per_pair(self, graph):
        pairs = [QueryPair(Layer.UPPER, 0, 1), QueryPair(Layer.UPPER, 2, 3)]
        truths = np.array(
            [graph.count_common_neighbors(Layer.UPPER, p.a, p.b) for p in pairs]
        )
        rngs = spawn_rngs(9, 1500)
        sums = np.zeros(len(pairs))
        squares = np.zeros(len(pairs))
        for r in rngs:
            values = BatchOneRound().estimate_pairs(
                graph, Layer.UPPER, pairs, 2.0, rng=r
            ).values
            sums += values
            squares += values**2
        means = sums / len(rngs)
        variances = squares / len(rngs) - means**2
        se = np.sqrt(variances / len(rngs))
        assert (np.abs(means - truths) < 5 * se + 1e-9).all()

    def test_huge_epsilon_recovers_truth(self, graph, workload):
        result = BatchOneRound().estimate_pairs(
            graph, Layer.UPPER, workload, 50.0, rng=6
        )
        truths = np.array(
            [graph.count_common_neighbors(Layer.UPPER, p.a, p.b) for p in workload]
        )
        np.testing.assert_allclose(result.values, truths, atol=1e-6)

    def test_shared_vertex_errors_correlate(self):
        """Pairs sharing a vertex reuse its noisy list — their errors must
        correlate, unlike independent per-pair runs.

        The shared-list covariance is ``Var(phi) * C2(b, c)`` for pairs
        ``(a, b)`` and ``(a, c)``, so the effect is only visible when the
        other endpoints share neighbors; the graph plants that overlap.
        """
        edges = [(0, j) for j in range(20)]
        edges += [(1, j) for j in range(5, 45)]
        edges += [(2, j) for j in range(5, 45)]
        graph = BipartiteGraph(3, 60, edges)
        pairs = [QueryPair(Layer.UPPER, 0, 1), QueryPair(Layer.UPPER, 0, 2)]
        rngs = spawn_rngs(11, 800)
        errors = np.empty((len(rngs), 2))
        for i, r in enumerate(rngs):
            values = BatchOneRound().estimate_pairs(
                graph, Layer.UPPER, pairs, 1.0, rng=r
            ).values
            errors[i, 0] = values[0] - graph.count_common_neighbors(Layer.UPPER, 0, 1)
            errors[i, 1] = values[1] - graph.count_common_neighbors(Layer.UPPER, 0, 2)
        corr = np.corrcoef(errors.T)[0, 1]
        assert corr > 0.15

"""Cluster-differential harness for distributed streaming ingest.

The streaming acceptance across the wire: hypothesis mutation scripts
replayed against a real loopback socket cluster must leave every served
view **byte-identical** to both the single-process incremental path and
a from-scratch keyed rebuild over the mutated graph — whatever the shard
tiling (1/2/4 ranges over 2 workers), and even while a chaos plan kills
a worker mid-mutation-push. Rotations travel as MUTATE delta frames, so
the tests also pin the ingest ledger: deltas must actually be pushed,
must cost fewer bytes than re-shipping the graph, and a worker that
falls off the chain (a rejoined replacement) must resync through one
full install before riding deltas again.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.bulkrr import keyed_bulk_randomized_response
from repro.engine.faults import FAULT_PLAN_ENV, FaultPlan
from repro.engine.sharded import ShardedRunner
from repro.engine.transport import SocketTransport
from repro.engine.worker import MUTATE_FAULT_SHARD
from repro.graph import Layer, random_bipartite
from repro.serving import NoisyViewCache

EPSILON = 2.0
N_UPPER, N_LOWER, N_EDGES = 30, 24, 180
SRC = Path(__file__).resolve().parents[1] / "src"


def launch_worker(extra_env: dict | None = None, listen: str = "127.0.0.1:0"):
    """Start one worker subprocess; return (process, "host:port")."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(FAULT_PLAN_ENV, None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.engine.worker", "--listen", listen],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"worker never announced itself: {line!r}")
    return proc, line.split(" ", 1)[1]


def stop_worker(proc) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=5)
    except subprocess.TimeoutExpired:  # pragma: no cover - wedged worker
        proc.kill()
        proc.wait(timeout=5)


@pytest.fixture(scope="module")
def cluster():
    """Two healthy loopback workers, shared by the whole module."""
    workers = [launch_worker() for _ in range(2)]
    yield [addr for _, addr in workers]
    for proc, _ in workers:
        stop_worker(proc)


# Mutation scripts: rounds of coordinate-level ops whose net effect
# (insert / delete / no-op) depends on the evolving membership — the
# same shape as the single-process differential harness, so the two
# suites disagree only if the wire path does.
ops = st.tuples(
    st.booleans(),  # True = insert, False = delete
    st.integers(0, N_UPPER - 1),
    st.integers(0, N_LOWER - 1),
)
scripts = st.lists(
    st.lists(ops, min_size=1, max_size=10), min_size=1, max_size=3
)


def _graph(seed: int = 11):
    return random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=seed)


def _refill(cache: NoisyViewCache) -> None:
    missing = np.array(
        [v for v in range(N_UPPER) if not cache.has_view(v)], dtype=np.int64
    )
    if missing.size:
        cache.materialize_fresh(missing)


def _absent_edges(graph, count: int):
    """``count`` absent edges on distinct upper vertices, so every
    round dirties enough vertices to keep the draws genuinely sharded
    (a single-spec draw degrades to the parent's inline path)."""
    out = []
    for u in range(N_UPPER):
        for l in range(N_LOWER):
            if not graph.has_edge(u, l):
                out.append((u, l))
                break
        if len(out) == count:
            return out
    raise AssertionError("graph too dense for the test")  # pragma: no cover


def _assert_matches_rebuild(cache: NoisyViewCache) -> None:
    """Every resident view equals a from-scratch keyed draw over the
    cache's own (entropy, draw_epoch, versions) on the mutated graph."""
    verts = np.arange(N_UPPER, dtype=np.int64)
    ref_ip, ref_cols = keyed_bulk_randomized_response(
        cache.graph, Layer.UPPER, verts, EPSILON,
        entropy=cache._entropy, epoch=cache.draw_epoch,
        versions=cache._versions[verts],
    )
    for i, v in enumerate(verts):
        np.testing.assert_array_equal(
            cache.view(v), ref_cols[ref_ip[i] : ref_ip[i + 1]]
        )


# ----------------------------------------------------------------------
# Satellite 1: socket cluster ≡ single-process incremental ≡ rebuild
# ----------------------------------------------------------------------
class TestClusterDifferential:
    @given(script=scripts)
    @settings(max_examples=5, deadline=None)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_cluster_matches_single_process_and_rebuild(
        self, shards, cluster, script
    ):
        """Replay one script through a socket-sharded cache and a plain
        single-process cache built from the same seed: every rotation,
        version word, and served byte must agree — and the cluster state
        must equal a from-scratch keyed rebuild."""
        verts = np.arange(N_UPPER, dtype=np.int64)
        graph = _graph()
        runner = ShardedRunner(
            graph, Layer.UPPER, max_workers=shards,
            transport=SocketTransport(cluster),
        )
        clustered = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            rng=np.random.default_rng(21), shard_runner=runner,
        )
        solo = NoisyViewCache(
            _graph(), Layer.UPPER, EPSILON, max_entries=10**6,
            rng=np.random.default_rng(21),
        )
        # Identical seeds make the keyed entropies identical, which is
        # what licenses byte-comparison between the two caches.
        assert clustered._entropy == solo._entropy
        try:
            expect_push = False
            for cache in (clustered, solo):
                cache.materialize_fresh(verts)
            for round_ops in script:
                inserts = [(u, l) for ins, u, l in round_ops if ins]
                deletes = [(u, l) for ins, u, l in round_ops if not ins]
                for cache in (clustered, solo):
                    cache.mutate(inserts=inserts, deletes=deletes)
                dirty = clustered.pending_dirty().size
                for cache in (clustered, solo):
                    cache.rotate()
                    _refill(cache)
                # A single-spec draw is executed inline in the parent
                # (the resilience envelope's degenerate case), so wire
                # pushes only happen when the refill genuinely sharded.
                expect_push |= bool(
                    clustered.last_rotation["incremental"]
                    and dirty
                    and len(clustered.last_shard_draw) > 1
                )

            # The two incremental paths agree on everything observable.
            assert clustered.draw_epoch == solo.draw_epoch
            np.testing.assert_array_equal(
                clustered.graph.edges, solo.graph.edges
            )
            np.testing.assert_array_equal(
                clustered._versions, solo._versions
            )
            for v in verts:
                np.testing.assert_array_equal(
                    clustered.view(v), solo.view(v)
                )
            _assert_matches_rebuild(clustered)

            # Incremental rotations with dirty vertices travelled as
            # MUTATE frames, each cheaper than re-shipping the graph.
            ingest = runner.transport.describe()["ingest"]
            if expect_push:
                assert ingest["delta_pushes"] >= 1
                assert ingest["delta_saved_bytes"] > 0
                assert (
                    ingest["delta_bytes"]
                    < ingest["delta_bytes"] + ingest["delta_saved_bytes"]
                )
        finally:
            runner.close()

    def test_multi_epoch_chain_composes_to_one_push(self, cluster):
        """Three rotations with no draws in between: each worker is three
        snapshots behind at the next draw, yet resyncs with ONE composed
        MUTATE push — no full graph re-ship."""
        verts = np.arange(N_UPPER, dtype=np.int64)
        graph = _graph(17)
        transport = SocketTransport(cluster)
        runner = ShardedRunner(
            graph, Layer.UPPER, max_workers=2, transport=transport
        )
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            rng=np.random.default_rng(33), shard_runner=runner,
        )
        try:
            cache.materialize_fresh(verts)
            installs_after_seed = transport.describe()["ingest"][
                "graph_installs"
            ]
            fresh = _absent_edges(graph, 6)
            for k in range(3):
                cache.mutate(inserts=fresh[2 * k : 2 * k + 2])
                cache.rotate()
                assert cache.last_rotation["incremental"]
            assert transport.describe()["ingest"]["delta_pushes"] == 0
            _refill(cache)
            ingest = transport.describe()["ingest"]
            # Every worker that drew resynced by delta; nobody needed a
            # second full install despite being three epochs stale.
            assert 1 <= ingest["delta_pushes"] <= 2
            assert ingest["graph_installs"] == installs_after_seed
            assert ingest["diverged"] == 0
            digest = transport._ensure_digest()
            for row in transport.registry.describe():
                if row["delta_pushes"]:
                    assert row["digest"] == digest
            _assert_matches_rebuild(cache)
        finally:
            runner.close()


# ----------------------------------------------------------------------
# Satellite 2: chaos mid-mutation-batch, then rejoin and resync
# ----------------------------------------------------------------------
class TestStreamingChaos:
    def test_kill_mid_mutation_push_is_invisible_in_the_bits(self):
        """One worker dies executing its first MUTATE frame. The driver
        must mark it dead, re-dispatch its ranges to the survivor, and
        the served views must stay byte-identical to a same-seed
        single-process cache. A replacement worker then rebinds the dead
        address, is revived by the heartbeat, resyncs through one full
        install (its digest diverged off the chain), and rides delta
        pushes from the next rotation on."""
        chaos_env = {
            FAULT_PLAN_ENV: FaultPlan.kill_shards(
                [MUTATE_FAULT_SHARD]
            ).to_json()
        }
        chaos_proc, chaos_addr = launch_worker(chaos_env)
        healthy_proc, healthy_addr = launch_worker()
        replacement = None
        verts = np.arange(N_UPPER, dtype=np.int64)
        graph = _graph(29)
        transport = SocketTransport([chaos_addr, healthy_addr])
        runner = ShardedRunner(
            graph, Layer.UPPER, max_workers=2, transport=transport
        )
        clustered = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            rng=np.random.default_rng(47), shard_runner=runner,
        )
        solo = NoisyViewCache(
            _graph(29), Layer.UPPER, EPSILON, max_entries=10**6,
            rng=np.random.default_rng(47),
        )
        try:
            for cache in (clustered, solo):
                cache.materialize_fresh(verts)
            fresh = _absent_edges(graph, 4)

            # Round 1: the delta push kills the chaos worker mid-frame.
            for cache in (clustered, solo):
                cache.mutate(inserts=fresh[:2])
                cache.rotate()
                assert cache.last_rotation["incremental"]
                _refill(cache)
            for v in verts:
                np.testing.assert_array_equal(
                    clustered.view(v), solo.view(v)
                )
            _assert_matches_rebuild(clustered)
            described = {
                w["address"]: w for w in transport.registry.describe()
            }
            assert described[chaos_addr]["alive"] is False
            assert described[healthy_addr]["alive"] is True
            assert runner.fault_totals.get("socket:worker_deaths", 0) >= 1

            # A replacement binds the dead worker's address; the next
            # heartbeat revives the handle. Its HELLO digest is off the
            # chain, so resync is a full install, not a delta.
            chaos_proc.wait(timeout=5)
            replacement, _ = launch_worker(listen=chaos_addr)
            assert transport.ping() == 2
            installs_before = transport.describe()["ingest"][
                "graph_installs"
            ]

            # Round 2: both workers draw; the replacement takes the full
            # install, then everyone is current.
            for cache in (clustered, solo):
                cache.mutate(inserts=fresh[2:])
                cache.rotate()
                assert cache.last_rotation["incremental"]
                _refill(cache)
            for v in verts:
                np.testing.assert_array_equal(
                    clustered.view(v), solo.view(v)
                )
            _assert_matches_rebuild(clustered)
            ingest = transport.describe()["ingest"]
            assert ingest["graph_installs"] >= installs_before + 1
            digest = transport._ensure_digest()
            described = {
                w["address"]: w for w in transport.registry.describe()
            }
            assert described[chaos_addr]["alive"] is True
            assert described[chaos_addr]["digest"] == digest

            # Round 3: the rejoined worker now rides the delta chain.
            pushes_before = {
                w["address"]: w["delta_pushes"]
                for w in transport.registry.describe()
            }
            for cache in (clustered, solo):
                cache.mutate(deletes=fresh[2:])
                cache.rotate()
                _refill(cache)
            for v in verts:
                np.testing.assert_array_equal(
                    clustered.view(v), solo.view(v)
                )
            _assert_matches_rebuild(clustered)
            described = {
                w["address"]: w for w in transport.registry.describe()
            }
            drew = [
                a
                for a, w in described.items()
                if w["delta_pushes"] > pushes_before[a]
            ]
            assert drew, "no worker absorbed the rotation as a delta"
        finally:
            runner.close()
            stop_worker(healthy_proc)
            if replacement is not None:
                stop_worker(replacement)
            if chaos_proc.poll() is None:  # pragma: no cover - no kill
                stop_worker(chaos_proc)

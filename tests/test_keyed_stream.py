"""The bounded cache's keyed-stream determinism contract, pinned.

The contract (docs/privacy-semantics.md): every bounded-mode draw comes
from ``np.random.Philox`` under the fixed counter layout — key
``[entropy, domain_tag]``, counter ``[block, stage, vertex, epoch]``
(pairs: ``[block, b, a, epoch]``). Three layers of evidence:

1. **Raw** — the vectorized :func:`philox4x64` kernel emits the same
   64-bit words as ``np.random.Philox.random_raw`` (modulo numpy's
   increment-before-generate off-by-one).
2. **Stream** — the kept-mask stage's uniforms equal
   ``Generator(Philox(...)).random(d)`` per vertex, so the contract is
   expressible entirely in numpy's public API.
3. **Draws** — batched and solo keyed draws are bit-identical (the
   eviction-redraw guarantee), streams are independent across vertices /
   epochs / entropy, and the keyed Laplace noise follows its law.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as sps

from repro.engine.bulkrr import (
    KEYED_STAGE_KEEP,
    KEYED_TAG_ROWS,
    _keyed_uniforms_ragged,
    bulk_randomized_response,
    keyed_bulk_randomized_response,
    keyed_laplace_noise,
    keyed_pair_generator,
    philox4x64,
)
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite

EPSILON = 2.0
ENTROPY = 0x5EED_0F_CAC4E
EPOCH = 3


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(300, 200, 3600, rng=17)


class TestPhiloxKernel:
    def test_matches_numpy_philox_raw(self):
        """The vectorized kernel is bit-identical to np.random.Philox.

        numpy increments its 256-bit counter *before* emitting a block,
        so our block at counter ``[c, c1, c2, c3]`` equals numpy's output
        when constructed at ``[c - 1, c1, c2, c3]``.
        """
        rng = np.random.default_rng(7)
        for _ in range(8):
            counter = [int(x) for x in rng.integers(0, 2**62, 4)]
            key = (int(rng.integers(0, 2**62)), int(rng.integers(0, 2**62)))
            expected = np.random.Philox(
                counter=counter, key=list(key)
            ).random_raw(12)
            counters = np.empty((3, 4), dtype=np.uint64)
            counters[:, 0] = counter[0] + 1 + np.arange(3)
            counters[:, 1:] = np.asarray(counter[1:], dtype=np.uint64)
            got = philox4x64(counters, key).ravel()
            np.testing.assert_array_equal(got, expected.astype(np.uint64))

    def test_distinct_keys_decorrelate(self):
        counters = np.zeros((64, 4), dtype=np.uint64)
        counters[:, 0] = np.arange(1, 65)
        a = philox4x64(counters, (1, 2))
        b = philox4x64(counters, (1, 3))
        assert not np.array_equal(a, b)

    def test_chunking_is_invisible(self):
        """Output is independent of the internal chunk partitioning."""
        rng = np.random.default_rng(3)
        counters = rng.integers(0, 2**62, size=(40_000, 4)).astype(np.uint64)
        whole = philox4x64(counters, (11, 22))
        parts = np.vstack(
            [philox4x64(counters[s : s + 1337], (11, 22)) for s in range(0, 40_000, 1337)]
        )
        np.testing.assert_array_equal(whole, parts)


class TestGeneratorLevelContract:
    def test_keep_stage_equals_numpy_generator_random(self):
        """Per vertex, the kept-mask uniforms are exactly what a numpy
        Generator over the contract's Philox would produce — the layout
        is reproducible without this library."""
        ids = np.array([0, 5, 1_000_003, 42], dtype=np.int64)
        counts = np.array([7, 1, 12, 4], dtype=np.int64)
        flat = _keyed_uniforms_ragged(
            (ENTROPY, KEYED_TAG_ROWS), KEYED_STAGE_KEEP, ids, EPOCH, counts
        )
        offset = 0
        for vertex, count in zip(ids, counts):
            gen = np.random.Generator(
                np.random.Philox(
                    counter=[0, KEYED_STAGE_KEEP, int(vertex), EPOCH],
                    key=[ENTROPY, KEYED_TAG_ROWS],
                )
            )
            np.testing.assert_array_equal(
                flat[offset : offset + count], gen.random(int(count))
            )
            offset += count

    def test_pair_generator_layout(self):
        gen = keyed_pair_generator(ENTROPY, EPOCH, 3, 9)
        reference = np.random.Generator(
            np.random.Philox(counter=[0, 9, 3, EPOCH], key=[ENTROPY, 0x50414952])
        )
        np.testing.assert_array_equal(gen.random(16), reference.random(16))


class TestKeyedDraws:
    def test_batched_equals_solo(self, graph):
        """The eviction-redraw guarantee: a vertex's row is the same bit
        pattern whether drawn inside a block or alone."""
        vertices = np.arange(250, dtype=np.int64)
        indptr, columns = keyed_bulk_randomized_response(
            graph, Layer.UPPER, vertices, EPSILON, entropy=ENTROPY, epoch=EPOCH
        )
        for v in (0, 3, 17, 128, 249):
            _, solo = keyed_bulk_randomized_response(
                graph, Layer.UPPER, np.array([v]), EPSILON,
                entropy=ENTROPY, epoch=EPOCH,
            )
            np.testing.assert_array_equal(solo, columns[indptr[v] : indptr[v + 1]])

    def test_batch_composition_is_irrelevant(self, graph):
        """A vertex's bits do not depend on which other vertices share
        the block (the property SeedSequence-per-vertex had, kept)."""
        a = keyed_bulk_randomized_response(
            graph, Layer.UPPER, np.array([5, 9, 40]), EPSILON,
            entropy=ENTROPY, epoch=EPOCH,
        )
        b = keyed_bulk_randomized_response(
            graph, Layer.UPPER, np.array([9, 199]), EPSILON,
            entropy=ENTROPY, epoch=EPOCH,
        )
        ia, ca = a
        ib, cb = b
        np.testing.assert_array_equal(ca[ia[1] : ia[2]], cb[ib[0] : ib[1]])

    def test_rows_sorted_unique_in_domain(self, graph):
        indptr, columns = keyed_bulk_randomized_response(
            graph, Layer.UPPER, np.arange(120), EPSILON,
            entropy=ENTROPY, epoch=EPOCH,
        )
        domain = graph.layer_size(Layer.LOWER)
        for v in range(120):
            row = columns[indptr[v] : indptr[v + 1]]
            assert np.all(np.diff(row) > 0)
            assert row.size == 0 or (0 <= row[0] and row[-1] < domain)

    def test_epoch_entropy_and_vertex_separate_streams(self, graph):
        base = keyed_bulk_randomized_response(
            graph, Layer.UPPER, np.arange(60), EPSILON,
            entropy=ENTROPY, epoch=EPOCH,
        )[1]
        other_epoch = keyed_bulk_randomized_response(
            graph, Layer.UPPER, np.arange(60), EPSILON,
            entropy=ENTROPY, epoch=EPOCH + 1,
        )[1]
        other_entropy = keyed_bulk_randomized_response(
            graph, Layer.UPPER, np.arange(60), EPSILON,
            entropy=ENTROPY + 1, epoch=EPOCH,
        )[1]
        assert not np.array_equal(base, other_epoch)
        assert not np.array_equal(base, other_entropy)

    def test_empty_and_degenerate_blocks(self, graph):
        indptr, columns = keyed_bulk_randomized_response(
            graph, Layer.UPPER, np.empty(0, dtype=np.int64), EPSILON,
            entropy=ENTROPY, epoch=EPOCH,
        )
        assert indptr.tolist() == [0] and columns.size == 0


class TestKeyedLaplace:
    def test_deterministic_and_keyed(self):
        vertices = np.arange(50, dtype=np.int64)
        a = keyed_laplace_noise(ENTROPY, EPOCH, vertices, 2.0)
        b = keyed_laplace_noise(ENTROPY, EPOCH, vertices, 2.0)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, keyed_laplace_noise(ENTROPY, EPOCH + 1, vertices, 2.0))
        # scale only rescales the fixed uniform draw
        np.testing.assert_allclose(
            keyed_laplace_noise(ENTROPY, EPOCH, vertices, 4.0), 2.0 * a
        )

    def test_matches_laplace_law(self):
        """KS test of 40k keyed draws against Laplace(0, scale)."""
        noise = keyed_laplace_noise(0xABCD, 1, np.arange(40_000), 3.0)
        result = sps.kstest(noise, sps.laplace(scale=3.0).cdf)
        assert result.pvalue > 1e-4, f"keyed Laplace off (p={result.pvalue:.2e})"
        assert abs(float(np.median(noise))) < 0.1


class TestKeyedMatchesSharedLaw:
    def test_mean_noisy_degree_tracks_unbounded(self, graph):
        """Cheap cross-check on top of the chi-square suite: keyed and
        shared draws agree on the expected noisy row size."""
        vertices = np.arange(300, dtype=np.int64)
        ik, _ = keyed_bulk_randomized_response(
            graph, Layer.UPPER, vertices, EPSILON, entropy=99, epoch=0
        )
        iu, _ = bulk_randomized_response(
            graph, Layer.UPPER, vertices, EPSILON, np.random.default_rng(5)
        )
        keyed_sizes = np.diff(ik)
        shared_sizes = np.diff(iu)
        assert abs(keyed_sizes.mean() - shared_sizes.mean()) < 3.0

"""Tests for exact wedge/butterfly counting."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite
from repro.graph.motifs import (
    butterflies_between,
    butterfly_degree,
    choose2,
    count_butterflies,
    count_wedges,
)


@pytest.fixture()
def k22() -> BipartiteGraph:
    """A complete 2x2 biclique — exactly one butterfly."""
    return BipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])


@pytest.fixture()
def k23() -> BipartiteGraph:
    """K_{2,3} — C(3,2) = 3 butterflies."""
    return BipartiteGraph(2, 3, [(u, l) for u in range(2) for l in range(3)])


def _brute_force_butterflies(graph: BipartiteGraph) -> int:
    total = 0
    for a, b in combinations(range(graph.num_upper), 2):
        c2 = graph.count_common_neighbors(Layer.UPPER, a, b)
        total += c2 * (c2 - 1) // 2
    return total


class TestChoose2:
    def test_integers(self):
        assert choose2(0) == 0
        assert choose2(1) == 0
        assert choose2(2) == 1
        assert choose2(5) == 10

    def test_real_argument(self):
        assert choose2(2.5) == pytest.approx(1.875)


class TestWedges:
    def test_k22(self, k22):
        # Each lower vertex has degree 2 -> one wedge each.
        assert count_wedges(k22, Layer.UPPER) == 2

    def test_k23(self, k23):
        assert count_wedges(k23, Layer.UPPER) == 3
        # Endpoints on the lower layer: each upper vertex (deg 3) gives 3.
        assert count_wedges(k23, Layer.LOWER) == 6

    def test_empty_graph(self):
        assert count_wedges(BipartiteGraph(3, 3), Layer.UPPER) == 0


class TestButterfliesBetween:
    def test_k22(self, k22):
        assert butterflies_between(k22, Layer.UPPER, 0, 1) == 1

    def test_k23(self, k23):
        assert butterflies_between(k23, Layer.UPPER, 0, 1) == 3

    def test_no_overlap(self):
        g = BipartiteGraph(2, 4, [(0, 0), (0, 1), (1, 2), (1, 3)])
        assert butterflies_between(g, Layer.UPPER, 0, 1) == 0

    def test_matches_choose2_of_c2(self, medium_graph):
        for a, b in [(0, 1), (5, 17), (100, 200)]:
            c2 = medium_graph.count_common_neighbors(Layer.UPPER, a, b)
            assert butterflies_between(medium_graph, Layer.UPPER, a, b) == (
                c2 * (c2 - 1) // 2
            )


class TestButterflyDegree:
    def test_k22_each_vertex_in_one(self, k22):
        for u in range(2):
            assert butterfly_degree(k22, Layer.UPPER, u) == 1
        for l in range(2):
            assert butterfly_degree(k22, Layer.LOWER, l) == 1

    def test_k23(self, k23):
        assert butterfly_degree(k23, Layer.UPPER, 0) == 3
        # Each lower vertex pairs with the other two lower vertices once.
        assert butterfly_degree(k23, Layer.LOWER, 0) == 2

    def test_sums_to_four_times_total(self, small_graph):
        # Every butterfly contains exactly 2 upper + 2 lower vertices.
        total = count_butterflies(small_graph)
        upper_sum = sum(
            butterfly_degree(small_graph, Layer.UPPER, u)
            for u in range(small_graph.num_upper)
        )
        lower_sum = sum(
            butterfly_degree(small_graph, Layer.LOWER, l)
            for l in range(small_graph.num_lower)
        )
        assert upper_sum == 2 * total
        assert lower_sum == 2 * total


class TestGlobalCount:
    def test_k22(self, k22):
        assert count_butterflies(k22) == 1

    def test_k23(self, k23):
        assert count_butterflies(k23) == 3

    def test_k33(self):
        g = BipartiteGraph(3, 3, [(u, l) for u in range(3) for l in range(3)])
        # C(3,2)^2 = 9 butterflies.
        assert count_butterflies(g) == 9

    def test_empty(self):
        assert count_butterflies(BipartiteGraph(4, 4)) == 0

    def test_matches_brute_force(self):
        g = random_bipartite(25, 20, 160, rng=3)
        assert count_butterflies(g) == _brute_force_butterflies(g)

    def test_matches_brute_force_skewed(self):
        g = random_bipartite(8, 40, 120, rng=4)
        assert count_butterflies(g) == _brute_force_butterflies(g)

"""Tests for the multi-query budget manager."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError, PrivacyError
from repro.privacy.composition import QueryBudgetManager


class TestConstruction:
    def test_uniform_requires_num_queries(self):
        with pytest.raises(PrivacyError):
            QueryBudgetManager(2.0, policy="uniform")

    def test_fixed_requires_per_query(self):
        with pytest.raises(PrivacyError):
            QueryBudgetManager(2.0, policy="fixed")

    def test_fixed_per_query_within_total(self):
        with pytest.raises(PrivacyError):
            QueryBudgetManager(2.0, policy="fixed", per_query=3.0)

    def test_unknown_policy(self):
        with pytest.raises(PrivacyError):
            QueryBudgetManager(2.0, policy="magic")

    def test_invalid_total(self):
        with pytest.raises(PrivacyError):
            QueryBudgetManager(0.0, policy="fixed", per_query=0.1)

    def test_invalid_ratio(self):
        with pytest.raises(PrivacyError):
            QueryBudgetManager(2.0, policy="geometric", ratio=1.0)


class TestUniform:
    def test_slices_equal(self):
        manager = QueryBudgetManager(2.0, policy="uniform", num_queries=4)
        slices = [manager.next_budget() for _ in range(4)]
        assert all(s == pytest.approx(0.5) for s in slices)
        assert manager.spent == pytest.approx(2.0)
        assert manager.remaining == pytest.approx(0.0)

    def test_exhaustion_raises(self):
        manager = QueryBudgetManager(1.0, policy="uniform", num_queries=2)
        manager.next_budget()
        manager.next_budget()
        with pytest.raises(BudgetExceededError):
            manager.next_budget()

    def test_queries_issued(self):
        manager = QueryBudgetManager(1.0, policy="uniform", num_queries=3)
        manager.next_budget()
        assert manager.queries_issued == 1


class TestFixed:
    def test_constant_slices_until_exhausted(self):
        manager = QueryBudgetManager(1.0, policy="fixed", per_query=0.4)
        assert manager.next_budget() == pytest.approx(0.4)
        assert manager.next_budget() == pytest.approx(0.4)
        with pytest.raises(BudgetExceededError):
            manager.next_budget()  # 0.2 remaining < 0.4

    def test_remaining_tracks_spend(self):
        manager = QueryBudgetManager(1.0, policy="fixed", per_query=0.25)
        manager.next_budget()
        assert manager.remaining == pytest.approx(0.75)


class TestGeometric:
    def test_slices_decay(self):
        manager = QueryBudgetManager(1.0, policy="geometric", ratio=0.5)
        slices = [manager.next_budget() for _ in range(5)]
        assert slices[0] == pytest.approx(0.5)
        for earlier, later in zip(slices, slices[1:]):
            assert later == pytest.approx(earlier * 0.5)

    def test_never_exceeds_total(self):
        manager = QueryBudgetManager(3.0, policy="geometric", ratio=0.8)
        for _ in range(200):
            manager.next_budget()
        assert manager.spent <= 3.0 + 1e-9

    def test_repr(self):
        manager = QueryBudgetManager(2.0, policy="uniform", num_queries=2)
        assert "uniform" in repr(manager)

"""End-to-end integration tests: full flows across module boundaries."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Layer
from repro.applications import estimate_jaccard, ldp_projection
from repro.experiments.export import load_panel, save_panels
from repro.experiments.runner import evaluate_algorithms
from repro.experiments.workloads import build_workload
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.datasets.cache import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


class TestDatasetToEstimateFlow:
    def test_synthesize_persist_reload_estimate(self, tmp_path):
        """dataset registry -> npz round trip -> estimator -> sane answer."""
        graph = repro.load_dataset("RM", max_edges=12_000)
        path = tmp_path / "rm.npz"
        save_npz(graph, path)
        reloaded = load_npz(path)
        assert reloaded == graph

        pairs = repro.sample_query_pairs(reloaded, Layer.UPPER, 5, rng=1)
        for pair in pairs:
            result = repro.estimate_common_neighbors(
                reloaded, Layer.UPPER, pair.a, pair.b, 2.0, rng=2
            )
            assert np.isfinite(result.value)
            assert result.transcript.max_epsilon_spent <= 2.0 + 1e-9

    def test_edge_list_round_trip_preserves_structure(self, tmp_path):
        graph = repro.load_dataset("RM", max_edges=12_000)
        path = tmp_path / "rm.tsv"
        write_edge_list(graph, path)
        reloaded = read_edge_list(path)
        assert reloaded.num_edges == graph.num_edges
        # IDs are re-interned; degree multiset is invariant.
        assert sorted(reloaded.degrees(Layer.UPPER)) == sorted(
            graph.degrees(Layer.UPPER)
        )


class TestWorkloadToReportFlow:
    def test_workload_runner_export_reload(self, tmp_path):
        """workload builder -> evaluation -> panel -> export -> reload."""
        graph = repro.load_dataset("AC", max_edges=12_000)
        pairs = build_workload("uniform", graph, Layer.UPPER, 10, rng=5)
        stats = evaluate_algorithms(
            graph, pairs, ["oner", "multir-ds", "central-dp"], 2.0, rng=6
        )
        from repro.experiments.report import SeriesPanel

        panel = SeriesPanel("integration", "algorithm", list(stats))
        panel.add("mae", [stats[name].errors.mae for name in stats])
        written = save_panels([panel], tmp_path, stem="integration")
        json_path = next(p for p in written if p.suffix == ".json")
        restored = load_panel(json_path)
        assert restored.series["mae"] == panel.series["mae"]
        # Utility sanity: the central model beats the local ones.
        assert stats["central-dp"].errors.mae <= stats["oner"].errors.mae

    def test_quality_chain_mae_matches_theory_scale(self):
        """Measured MAE should be on the scale the loss model predicts
        (MAE ≈ sqrt(2/pi)·sigma for a normal-ish error)."""
        graph = repro.load_dataset("RM", max_edges=12_000)
        pairs = build_workload("uniform", graph, Layer.UPPER, 40, rng=7)
        stats = evaluate_algorithms(graph, pairs, ["multir-ss"], 2.0, rng=8)
        from repro.analysis.loss import single_source_variance

        degrees = graph.degrees(Layer.UPPER)
        mean_deg = float(
            np.mean([degrees[p.a] for p in pairs])
        )
        sigma = np.sqrt(single_source_variance(1.0, 1.0, mean_deg))
        mae = stats["multir-ss"].errors.mae
        assert 0.2 * sigma < mae < 2.5 * sigma


class TestApplicationFlow:
    def test_jaccard_projection_consistency(self):
        """Pairs ranked similar by Jaccard should be the projection's
        heavy edges (shared estimates, different surface)."""
        graph = repro.load_dataset("RM", max_edges=12_000)
        degrees = graph.degrees(Layer.UPPER)
        group = [int(v) for v in np.argsort(degrees)[-6:]]

        projection = ldp_projection(
            graph, Layer.UPPER, group, epsilon=25.0, threshold=0.5, rng=9
        )
        for a, b, data in projection.edges(data=True):
            jaccard = estimate_jaccard(
                graph, Layer.UPPER, a, b, epsilon=25.0, rng=10
            )
            true_c2 = graph.count_common_neighbors(Layer.UPPER, a, b)
            assert data["weight"] == pytest.approx(true_c2, abs=4 + 0.3 * true_c2)
            assert 0.0 <= jaccard.value <= 1.0

    def test_cli_to_library_consistency(self, capsys):
        """The CLI's estimate equals the library call with the same seed."""
        import repro.cli as cli

        code = cli.main(
            ["estimate", "--dataset", "RM", "-u", "0", "-w", "1",
             "--method", "oner", "--seed", "77", "--max-edges", "12000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        printed = float(out.splitlines()[0].split(":")[1])

        graph = repro.load_dataset("RM", max_edges=12_000)
        direct = repro.estimate_common_neighbors(
            graph, Layer.UPPER, 0, 1, 2.0, method="oner", rng=77
        )
        assert printed == pytest.approx(direct.value, abs=5e-5)

"""Tests for the downstream applications (Jaccard, projection, anomaly)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.anomaly import (
    expected_null_c2,
    rank_pairs,
    score_pair,
)
from repro.applications.jaccard import estimate_jaccard
from repro.applications.projection import exact_projection, ldp_projection
from repro.errors import PrivacyError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.sampling import QueryPair


@pytest.fixture()
def overlap_graph() -> BipartiteGraph:
    """Two users sharing 8 of 10 items each; a third sharing nothing."""
    edges = [(0, i) for i in range(10)]
    edges += [(1, i) for i in range(2, 12)]
    edges += [(2, i) for i in range(20, 25)]
    return BipartiteGraph(3, 30, edges)


class TestJaccard:
    def test_value_clamped_to_unit_interval(self, overlap_graph):
        for seed in range(10):
            est = estimate_jaccard(
                overlap_graph, Layer.UPPER, 0, 1, epsilon=1.0, rng=seed
            )
            assert 0.0 <= est.value <= 1.0

    def test_budget_split_recorded(self, overlap_graph):
        est = estimate_jaccard(
            overlap_graph, Layer.UPPER, 0, 1, epsilon=2.0, degree_fraction=0.25,
            rng=1,
        )
        assert est.epsilon_degrees == pytest.approx(0.5)
        assert est.epsilon_c2 == pytest.approx(1.5)

    def test_high_budget_approaches_truth(self, overlap_graph):
        true_j = overlap_graph.jaccard(Layer.UPPER, 0, 1)
        values = [
            estimate_jaccard(
                overlap_graph, Layer.UPPER, 0, 1, epsilon=30.0, rng=s
            ).value
            for s in range(40)
        ]
        assert np.mean(values) == pytest.approx(true_j, abs=0.1)

    def test_disjoint_pair_scores_low(self, overlap_graph):
        values = [
            estimate_jaccard(
                overlap_graph, Layer.UPPER, 0, 2, epsilon=8.0, rng=s
            ).value
            for s in range(40)
        ]
        assert np.mean(values) < 0.2

    def test_invalid_degree_fraction(self, overlap_graph):
        with pytest.raises(PrivacyError):
            estimate_jaccard(
                overlap_graph, Layer.UPPER, 0, 1, epsilon=1.0, degree_fraction=1.0
            )

    def test_method_forwarding(self, overlap_graph):
        est = estimate_jaccard(
            overlap_graph, Layer.UPPER, 0, 1, epsilon=2.0, method="oner", rng=3
        )
        assert np.isfinite(est.value)


class TestProjection:
    def test_exact_projection_weights(self, overlap_graph):
        g = exact_projection(overlap_graph, Layer.UPPER, [0, 1, 2])
        assert g.number_of_nodes() == 3
        assert g[0][1]["weight"] == 8.0
        assert not g.has_edge(0, 2)

    def test_ldp_projection_nodes(self, overlap_graph):
        g = ldp_projection(
            overlap_graph, Layer.UPPER, [0, 1, 2], epsilon=2.0, rng=1
        )
        assert set(g.nodes) == {0, 1, 2}

    def test_ldp_projection_finds_strong_edge(self, overlap_graph):
        # With a generous budget the (0, 1) edge (weight 8) must survive
        # thresholding while (0, 2) (weight 0) must not.
        g = ldp_projection(
            overlap_graph, Layer.UPPER, [0, 1, 2], epsilon=20.0,
            threshold=3.0, rng=2,
        )
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)

    def test_threshold_filters_everything(self, overlap_graph):
        g = ldp_projection(
            overlap_graph, Layer.UPPER, [0, 1, 2], epsilon=2.0,
            threshold=1e9, rng=3,
        )
        assert g.number_of_edges() == 0

    def test_deterministic_with_seed(self, overlap_graph):
        a = ldp_projection(overlap_graph, Layer.UPPER, [0, 1, 2], 2.0, rng=7)
        b = ldp_projection(overlap_graph, Layer.UPPER, [0, 1, 2], 2.0, rng=7)
        assert sorted(a.edges) == sorted(b.edges)


class TestAnomaly:
    def test_expected_null(self):
        assert expected_null_c2(10, 20, 100) == pytest.approx(2.0)

    def test_expected_null_degenerate(self):
        assert expected_null_c2(10, 20, 0) == 0.0
        assert expected_null_c2(-5, 20, 100) == 0.0

    def test_score_pair_fields(self, overlap_graph):
        score = score_pair(overlap_graph, Layer.UPPER, 0, 1, epsilon=2.0, rng=1)
        assert score.u == 0 and score.w == 1
        assert np.isfinite(score.score)

    def test_overlapping_pair_scores_higher(self, overlap_graph):
        # Average over seeds: pair (0,1) shares 8 items, (0,2) shares none.
        hot = np.mean(
            [
                score_pair(overlap_graph, Layer.UPPER, 0, 1, 8.0, rng=s).score
                for s in range(30)
            ]
        )
        cold = np.mean(
            [
                score_pair(overlap_graph, Layer.UPPER, 0, 2, 8.0, rng=s).score
                for s in range(30)
            ]
        )
        assert hot > cold + 1.0

    def test_rank_pairs_sorted(self, overlap_graph):
        pairs = [
            QueryPair(Layer.UPPER, 0, 1),
            QueryPair(Layer.UPPER, 0, 2),
            QueryPair(Layer.UPPER, 1, 2),
        ]
        ranked = rank_pairs(overlap_graph, Layer.UPPER, pairs, epsilon=4.0, rng=5)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_degree_fraction(self, overlap_graph):
        with pytest.raises(PrivacyError):
            score_pair(
                overlap_graph, Layer.UPPER, 0, 1, 1.0, degree_fraction=0.0
            )

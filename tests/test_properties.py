"""Hypothesis property-based tests on core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.loss import (
    double_source_variance,
    naive_l2_loss,
    oner_variance,
    single_source_variance,
)
from repro.analysis.metrics import mean_absolute_error, summarize_errors
from repro.analysis.optimizer import optimal_alpha, optimize_double_source
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.privacy.budget import BudgetSplit
from repro.privacy.mechanisms import RandomizedResponse, flip_probability


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def bipartite_graphs(draw):
    n_upper = draw(st.integers(min_value=2, max_value=12))
    n_lower = draw(st.integers(min_value=2, max_value=12))
    cells = [(u, l) for u in range(n_upper) for l in range(n_lower)]
    edges = draw(st.lists(st.sampled_from(cells), max_size=40))
    return BipartiteGraph(n_upper, n_lower, edges)


epsilons = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)
degrees = st.integers(min_value=0, max_value=500)
positive_degrees = st.integers(min_value=1, max_value=500)


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_match_edges(self, g):
        assert g.degrees(Layer.UPPER).sum() == g.num_edges
        assert g.degrees(Layer.LOWER).sum() == g.num_edges

    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_neighbors_sorted_unique_and_consistent(self, g):
        for layer in Layer:
            for v in range(g.layer_size(layer)):
                nbrs = g.neighbors(layer, v)
                assert (np.diff(nbrs) > 0).all()
                assert nbrs.size == g.degree(layer, v)

    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_is_symmetric_across_layers(self, g):
        for u in range(g.num_upper):
            for l in map(int, g.neighbors(Layer.UPPER, u)):
                assert u in g.neighbors(Layer.LOWER, l)

    @given(bipartite_graphs(), st.integers(0, 11), st.integers(0, 11))
    @settings(max_examples=60, deadline=None)
    def test_common_neighbors_symmetric_and_bounded(self, g, a, b):
        a %= g.num_upper
        b %= g.num_upper
        if a == b:
            return
        c_ab = g.count_common_neighbors(Layer.UPPER, a, b)
        c_ba = g.count_common_neighbors(Layer.UPPER, b, a)
        assert c_ab == c_ba
        assert c_ab <= min(g.degree(Layer.UPPER, a), g.degree(Layer.UPPER, b))

    @given(bipartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_induced_subgraph_never_adds_edges(self, g):
        keep_u = np.arange(0, g.num_upper, 2)
        keep_l = np.arange(0, g.num_lower, 2)
        sub = g.induced_subgraph(keep_u, keep_l)
        assert sub.num_edges <= g.num_edges
        for u_new, u_old in enumerate(keep_u):
            for l_new, l_old in enumerate(keep_l):
                assert sub.has_edge(u_new, l_new) == g.has_edge(int(u_old), int(l_old))


# ----------------------------------------------------------------------
# Privacy primitives
# ----------------------------------------------------------------------
class TestPrivacyProperties:
    @given(epsilons)
    @settings(max_examples=100, deadline=None)
    def test_flip_probability_range(self, eps):
        p = flip_probability(eps)
        assert 0.0 < p < 0.5

    @given(epsilons)
    @settings(max_examples=100, deadline=None)
    def test_rr_likelihood_ratio_bounded_by_exp_eps(self, eps):
        """The defining edge-LDP inequality for one bit of RR."""
        p = flip_probability(eps)
        ratio = (1 - p) / p
        assert ratio <= math.exp(eps) * (1 + 1e-9)
        assert ratio >= math.exp(eps) * (1 - 1e-9)

    @given(epsilons, st.integers(0, 30), st.integers(1, 60))
    @settings(max_examples=50, deadline=None)
    def test_perturbed_list_stays_in_domain(self, eps, degree, domain):
        degree = min(degree, domain)
        rr = RandomizedResponse(eps)
        neighbors = np.arange(degree, dtype=np.int64)
        noisy = rr.perturb_neighbor_list(neighbors, domain, np.random.default_rng(0))
        assert np.unique(noisy).size == noisy.size
        if noisy.size:
            assert 0 <= noisy.min() and noisy.max() < domain

    @given(epsilons, st.floats(0.01, 0.99))
    @settings(max_examples=60, deadline=None)
    def test_budget_split_total(self, eps, frac):
        split = BudgetSplit.with_fraction(eps, frac)
        assert split.matches_total(eps)
        assert split.graph > 0
        assert split.estimator > 0


# ----------------------------------------------------------------------
# Loss model invariants
# ----------------------------------------------------------------------
class TestLossProperties:
    @given(epsilons, st.integers(1, 100_000), degrees, degrees)
    @settings(max_examples=80, deadline=None)
    def test_losses_non_negative(self, eps, n, du, dw):
        c2 = min(du, dw)
        assert naive_l2_loss(eps, max(n, du + dw), du, dw, c2) >= 0
        assert oner_variance(eps, n, du, dw) >= 0

    @given(epsilons, positive_degrees)
    @settings(max_examples=80, deadline=None)
    def test_single_source_decreasing_in_budget(self, eps, d):
        small = single_source_variance(eps / 2, eps / 2, d)
        large = single_source_variance(eps, eps, d)
        assert large <= small

    @given(epsilons, positive_degrees, positive_degrees, st.floats(0, 1))
    @settings(max_examples=80, deadline=None)
    def test_optimal_alpha_never_worse_than_any_alpha(self, eps, du, dw, alpha):
        eps1 = eps2 = eps / 2
        best = optimal_alpha(eps1, eps2, du, dw)
        assert double_source_variance(eps1, eps2, best, du, dw) <= (
            double_source_variance(eps1, eps2, alpha, du, dw) + 1e-9
        )

    @given(
        st.floats(0.5, 5.0), positive_degrees, positive_degrees
    )
    @settings(max_examples=40, deadline=None)
    def test_optimizer_feasible_and_optimal_at_alpha(self, eps, du, dw):
        alloc = optimize_double_source(eps, du, dw, eps0=0.05 * eps)
        assert alloc.eps1 > 0 and alloc.eps2 > 0
        assert 0.0 <= alloc.alpha <= 1.0
        assert alloc.total == pytest.approx(eps)
        # At the chosen split the returned alpha must be the closed-form one.
        assert alloc.alpha == pytest.approx(
            optimal_alpha(alloc.eps1, alloc.eps2, du, dw), abs=1e-6
        )


# ----------------------------------------------------------------------
# Metrics invariants
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_mae_zero_iff_identical(self, values):
        assert mean_absolute_error(values, values) == 0.0

    @given(
        st.lists(
            st.tuples(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_summary_invariants(self, pairs):
        true = [a for a, _ in pairs]
        est = [b for _, b in pairs]
        s = summarize_errors(true, est)
        assert s.mae >= 0
        assert s.l2 >= 0
        assert abs(s.bias) <= s.mae + 1e-9
        assert s.mae**2 <= s.l2 + 1e-6

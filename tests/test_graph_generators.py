"""Tests for the random bipartite graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.bipartite import Layer
from repro.graph.generators import (
    chung_lu_bipartite,
    configuration_bipartite,
    power_law_degrees,
    random_bipartite,
)


class TestRandomBipartite:
    def test_exact_edge_count(self):
        g = random_bipartite(40, 30, 333, rng=0)
        assert g.num_edges == 333

    def test_dense_regime(self):
        g = random_bipartite(10, 10, 80, rng=0)
        assert g.num_edges == 80

    def test_full_grid(self):
        g = random_bipartite(5, 4, 20, rng=0)
        assert g.num_edges == 20
        assert g.density() == 1.0

    def test_zero_edges(self):
        assert random_bipartite(5, 5, 0, rng=0).num_edges == 0

    def test_too_many_edges_raises(self):
        with pytest.raises(GraphError):
            random_bipartite(3, 3, 10, rng=0)

    def test_negative_edges_raises(self):
        with pytest.raises(GraphError):
            random_bipartite(3, 3, -1, rng=0)

    def test_empty_layer_with_edges_raises(self):
        with pytest.raises(GraphError):
            random_bipartite(0, 3, 1, rng=0)

    def test_empty_layer_without_edges(self):
        g = random_bipartite(0, 3, 0, rng=0)
        assert g.num_upper == 0

    def test_seed_determinism(self):
        a = random_bipartite(40, 30, 200, rng=42)
        b = random_bipartite(40, 30, 200, rng=42)
        assert a == b

    def test_uniformity_of_degrees(self):
        # With m = n1*n2/4 each upper vertex's expected degree is n2/4.
        g = random_bipartite(50, 40, 500, rng=3)
        degs = g.degrees(Layer.UPPER)
        assert degs.mean() == pytest.approx(10.0, abs=0.001)
        assert degs.max() < 30  # far below any clustering pathology


class TestPowerLawDegrees:
    def test_bounds_respected(self):
        d = power_law_degrees(5000, exponent=2.5, d_min=2, d_max=50, rng=1)
        assert d.min() >= 2
        assert d.max() <= 50

    def test_heavy_tail_shape(self):
        d = power_law_degrees(20000, exponent=2.2, d_min=1, d_max=1000, rng=2)
        # Power laws put most mass at the minimum and produce rare giants.
        assert np.median(d) <= 3
        assert d.max() > 50

    def test_default_d_max(self):
        d = power_law_degrees(100, exponent=2.5, rng=3)
        assert d.max() <= 4 * int(round(100**0.5))

    def test_zero_samples(self):
        assert power_law_degrees(0, rng=1).size == 0

    def test_invalid_d_min(self):
        with pytest.raises(GraphError):
            power_law_degrees(10, d_min=0, rng=1)

    def test_invalid_exponent(self):
        with pytest.raises(GraphError):
            power_law_degrees(10, exponent=1.0, rng=1)

    def test_d_max_below_d_min(self):
        with pytest.raises(GraphError):
            power_law_degrees(10, d_min=5, d_max=3, rng=1)


class TestChungLu:
    def test_exact_edge_count(self):
        w_u = power_law_degrees(200, rng=1).astype(float)
        w_l = power_law_degrees(150, rng=2).astype(float)
        g = chung_lu_bipartite(w_u, w_l, num_edges=800, rng=3)
        assert g.num_edges == 800
        assert g.num_upper == 200
        assert g.num_lower == 150

    def test_default_edge_count_from_weights(self):
        w_u = np.full(50, 4.0)
        w_l = np.full(40, 5.0)
        g = chung_lu_bipartite(w_u, w_l, rng=4)
        assert g.num_edges == 200

    def test_degrees_track_weights(self):
        # A vertex with 20x the weight should end with a clearly larger degree.
        w_u = np.ones(100)
        w_u[0] = 50.0
        w_l = np.ones(80)
        g = chung_lu_bipartite(w_u, w_l, num_edges=600, rng=5)
        degs = g.degrees(Layer.UPPER)
        assert degs[0] > 3 * np.median(degs[1:])

    def test_zero_edges(self):
        g = chung_lu_bipartite(np.ones(5), np.ones(5), num_edges=0, rng=1)
        assert g.num_edges == 0

    def test_negative_weights_raise(self):
        with pytest.raises(GraphError):
            chung_lu_bipartite(np.array([-1.0, 1.0]), np.ones(3), 2, rng=1)

    def test_empty_layer_raises(self):
        with pytest.raises(GraphError):
            chung_lu_bipartite(np.empty(0), np.ones(3), 1, rng=1)

    def test_too_many_edges_raises(self):
        with pytest.raises(GraphError):
            chung_lu_bipartite(np.ones(2), np.ones(2), 5, rng=1)

    def test_bad_weight_shape(self):
        with pytest.raises(GraphError):
            chung_lu_bipartite(np.ones((2, 2)), np.ones(3), 2, rng=1)

    def test_concentrated_weights_still_reach_target(self):
        # One dominant vertex per layer: resampling alone cannot produce
        # enough distinct pairs, so the uniform fallback must kick in.
        w_u = np.array([1000.0] + [0.001] * 30)
        w_l = np.array([1000.0] + [0.001] * 30)
        g = chung_lu_bipartite(w_u, w_l, num_edges=100, rng=6)
        assert g.num_edges == 100

    def test_determinism(self):
        w_u = power_law_degrees(100, rng=1).astype(float)
        w_l = power_law_degrees(100, rng=2).astype(float)
        a = chung_lu_bipartite(w_u, w_l, 300, rng=9)
        b = chung_lu_bipartite(w_u, w_l, 300, rng=9)
        assert a == b


class TestConfigurationModel:
    def test_stub_counts_must_match(self):
        with pytest.raises(GraphError):
            configuration_bipartite(np.array([2, 2]), np.array([3]), rng=1)

    def test_degrees_approximate_targets(self):
        upper = np.array([3, 2, 1, 2])
        lower = np.array([2, 2, 2, 2])
        g = configuration_bipartite(upper, lower, rng=2)
        # Parallel edges collapse, so realized <= target.
        assert (g.degrees(Layer.UPPER) <= upper).all()
        assert g.num_edges <= upper.sum()

    def test_negative_degrees_raise(self):
        with pytest.raises(GraphError):
            configuration_bipartite(np.array([-1, 1]), np.array([0]), rng=1)

    def test_zero_degrees(self):
        g = configuration_bipartite(np.zeros(3, dtype=int), np.zeros(2, dtype=int), rng=1)
        assert g.num_edges == 0

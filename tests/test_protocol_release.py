"""Tests for the one-shot noisy-graph release baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PrivacyError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite
from repro.privacy.mechanisms import flip_probability
from repro.privacy.rng import spawn_rngs
from repro.protocol.release import (
    release_noisy_graph,
    released_common_neighbors,
    released_degree,
)


@pytest.fixture(scope="module")
def graph() -> BipartiteGraph:
    return random_bipartite(60, 80, 700, rng=23)


class TestRelease:
    def test_shape_preserved(self, graph):
        release = release_noisy_graph(graph, 2.0, rng=1)
        assert release.noisy_graph.num_upper == graph.num_upper
        assert release.noisy_graph.num_lower == graph.num_lower

    def test_noisy_edge_volume_near_expectation(self, graph):
        release = release_noisy_graph(graph, 2.0, rng=2)
        p = flip_probability(2.0)
        expected = graph.num_edges * (1 - 2 * p) + graph.num_upper * graph.num_lower * p
        assert release.num_noisy_edges == pytest.approx(expected, rel=0.1)

    def test_upload_bytes(self, graph):
        release = release_noisy_graph(graph, 2.0, rng=3)
        assert release.upload_bytes == release.num_noisy_edges * 8

    def test_huge_epsilon_reproduces_graph(self, graph):
        release = release_noisy_graph(graph, 50.0, rng=4)
        assert release.noisy_graph == graph

    def test_cap_enforced(self):
        big = BipartiteGraph(10_000, 10_000)
        with pytest.raises(PrivacyError):
            release_noisy_graph(big, 1.0, max_expected_edges=1000)

    def test_deterministic(self, graph):
        a = release_noisy_graph(graph, 2.0, rng=9)
        b = release_noisy_graph(graph, 2.0, rng=9)
        assert a.noisy_graph == b.noisy_graph


class TestReleasedQueries:
    def test_common_neighbors_unbiased_upper(self, graph):
        true = graph.count_common_neighbors(Layer.UPPER, 0, 1)
        rngs = spawn_rngs(5, 600)
        values = np.array(
            [
                released_common_neighbors(
                    release_noisy_graph(graph, 2.0, rng=r), Layer.UPPER, 0, 1
                )
                for r in rngs
            ]
        )
        se = values.std(ddof=1) / np.sqrt(values.size)
        assert abs(values.mean() - true) < 5 * se

    def test_common_neighbors_unbiased_lower(self, graph):
        """One release answers queries on the *other* layer too."""
        true = graph.count_common_neighbors(Layer.LOWER, 3, 4)
        rngs = spawn_rngs(6, 600)
        values = np.array(
            [
                released_common_neighbors(
                    release_noisy_graph(graph, 2.0, rng=r), Layer.LOWER, 3, 4
                )
                for r in rngs
            ]
        )
        se = values.std(ddof=1) / np.sqrt(values.size)
        assert abs(values.mean() - true) < 5 * se

    def test_many_queries_from_one_release(self, graph):
        """Post-processing: every pair is answerable from one release."""
        release = release_noisy_graph(graph, 30.0, rng=7)
        for a, b in [(0, 1), (2, 9), (10, 30)]:
            est = released_common_neighbors(release, Layer.UPPER, a, b)
            true = graph.count_common_neighbors(Layer.UPPER, a, b)
            assert est == pytest.approx(true, abs=1.5)

    def test_identical_vertices_rejected(self, graph):
        release = release_noisy_graph(graph, 2.0, rng=8)
        with pytest.raises(PrivacyError):
            released_common_neighbors(release, Layer.UPPER, 1, 1)

    def test_degree_unbiased(self, graph):
        true = graph.degree(Layer.UPPER, 5)
        rngs = spawn_rngs(11, 500)
        values = np.array(
            [
                released_degree(
                    release_noisy_graph(graph, 2.0, rng=r), Layer.UPPER, 5
                )
                for r in rngs
            ]
        )
        se = values.std(ddof=1) / np.sqrt(values.size)
        assert abs(values.mean() - true) < 5 * se

"""Differential tests against brute-force reference implementations.

For candidate pools small enough to enumerate every randomized-response
outcome exactly, the estimators' means and variances can be computed *in
closed form by exhaustion* — no sampling, no tolerance games. These
oracles pin down the analytic formulas in ``repro.analysis.loss`` and the
estimator algebra to machine precision.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.analysis.loss import (
    naive_expectation,
    naive_variance,
    oner_variance,
    single_source_variance,
)
from repro.privacy.mechanisms import flip_probability

EPSILON = 1.3
P = flip_probability(EPSILON)


def _pattern_probability(original: np.ndarray, noisy: np.ndarray, p: float) -> float:
    """Probability RR turns ``original`` into ``noisy`` (independent bits)."""
    flips = int(np.sum(original != noisy))
    keeps = original.size - flips
    return (p**flips) * ((1 - p) ** keeps)


def _enumerate_rr_outcomes(original: np.ndarray, p: float):
    """Yield every (noisy_row, probability) for one row."""
    n = original.size
    for bits in itertools.product((0, 1), repeat=n):
        noisy = np.array(bits, dtype=np.int8)
        yield noisy, _pattern_probability(original, noisy, p)


class TestNaiveOracle:
    """Exact mean/variance of |N(u,G') ∩ N(w,G')| by full enumeration."""

    @pytest.mark.parametrize(
        "row_u,row_w",
        [
            ([1, 1, 0, 0], [1, 0, 1, 0]),
            ([1, 1, 1, 0, 0], [1, 1, 0, 0, 0]),
            ([0, 0, 0, 0], [0, 0, 0, 0]),
            ([1, 1, 1], [1, 1, 1]),
        ],
    )
    def test_matches_closed_forms(self, row_u, row_w):
        row_u = np.array(row_u, dtype=np.int8)
        row_w = np.array(row_w, dtype=np.int8)
        n = row_u.size
        c2 = int(np.sum(row_u & row_w))
        du, dw = int(row_u.sum()), int(row_w.sum())

        mean = 0.0
        second = 0.0
        for noisy_u, prob_u in _enumerate_rr_outcomes(row_u, P):
            for noisy_w, prob_w in _enumerate_rr_outcomes(row_w, P):
                value = float(np.sum(noisy_u & noisy_w))
                weight = prob_u * prob_w
                mean += weight * value
                second += weight * value * value
        variance = second - mean * mean

        assert mean == pytest.approx(
            naive_expectation(EPSILON, n, du, dw, c2), abs=1e-12
        )
        assert variance == pytest.approx(
            naive_variance(EPSILON, n, du, dw, c2), abs=1e-12
        )


class TestOneROracle:
    """Exact moments of the de-biased estimator by full enumeration."""

    @pytest.mark.parametrize(
        "row_u,row_w",
        [
            ([1, 1, 0, 0], [1, 0, 1, 0]),
            ([1, 0, 0, 0, 1], [1, 1, 0, 0, 1]),
            ([0, 1, 0], [1, 1, 1]),
        ],
    )
    def test_unbiased_and_variance_exact(self, row_u, row_w):
        row_u = np.array(row_u, dtype=np.int8)
        row_w = np.array(row_w, dtype=np.int8)
        n = row_u.size
        c2 = int(np.sum(row_u & row_w))
        du, dw = int(row_u.sum()), int(row_w.sum())
        denom = (1 - 2 * P) ** 2

        mean = 0.0
        second = 0.0
        for noisy_u, prob_u in _enumerate_rr_outcomes(row_u, P):
            for noisy_w, prob_w in _enumerate_rr_outcomes(row_w, P):
                value = float(np.sum((noisy_u - P) * (noisy_w - P)) / denom)
                weight = prob_u * prob_w
                mean += weight * value
                second += weight * value * value
        variance = second - mean * mean

        # Theorem 3: exactly unbiased.
        assert mean == pytest.approx(c2, abs=1e-12)
        # Theorem 4 (exact form).
        assert variance == pytest.approx(
            oner_variance(EPSILON, n, du, dw), abs=1e-12
        )


class TestSingleSourceOracle:
    """Exact moments of f̃u: enumerate w's noisy bits over N(u); add the
    Laplace variance analytically."""

    @pytest.mark.parametrize(
        "neighbors_of_u_in_w",  # A[v, w] for each v in N(u)
        [[1, 0, 0], [1, 1, 0, 0, 0], [0, 0], [1, 1, 1, 1]],
    )
    def test_moments_exact(self, neighbors_of_u_in_w):
        eps1 = eps2 = EPSILON / 2
        p1 = flip_probability(eps1)
        bits = np.array(neighbors_of_u_in_w, dtype=np.int8)
        du = bits.size
        c2 = int(bits.sum())

        mean = 0.0
        second = 0.0
        for noisy, prob in _enumerate_rr_outcomes(bits, p1):
            s1 = int(noisy.sum())
            s2 = du - s1
            raw = s1 * (1 - p1) / (1 - 2 * p1) - s2 * p1 / (1 - 2 * p1)
            mean += prob * raw
            second += prob * raw * raw
        raw_variance = second - mean * mean

        from repro.privacy.sensitivity import single_source_sensitivity

        laplace_var = 2.0 * (single_source_sensitivity(eps1) / eps2) ** 2

        assert mean == pytest.approx(c2, abs=1e-12)  # Lemma 1
        assert raw_variance + laplace_var == pytest.approx(  # Theorem 6
            single_source_variance(eps1, eps2, du), abs=1e-12
        )


class TestRandomizedResponseOracle:
    def test_enumeration_probabilities_sum_to_one(self):
        row = np.array([1, 0, 1, 0, 0], dtype=np.int8)
        total = sum(prob for _, prob in _enumerate_rr_outcomes(row, P))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_phi_exactly_unbiased_by_enumeration(self):
        for bit in (0, 1):
            row = np.array([bit], dtype=np.int8)
            expected = sum(
                prob * (noisy[0] - P) / (1 - 2 * P)
                for noisy, prob in _enumerate_rr_outcomes(row, P)
            )
            assert expected == pytest.approx(bit, abs=1e-14)

    def test_empirical_rr_matches_enumerated_law(self, rng):
        """The vectorized sampler follows the enumerated distribution."""
        row = np.array([1, 0, 1], dtype=np.int8)
        from repro.privacy.mechanisms import RandomizedResponse

        rr = RandomizedResponse(EPSILON)
        counts: dict[tuple, int] = {}
        trials = 40_000
        for _ in range(trials):
            noisy = tuple(rr.perturb_bits(row, rng).tolist())
            counts[noisy] = counts.get(noisy, 0) + 1
        for noisy, prob in _enumerate_rr_outcomes(row, P):
            observed = counts.get(tuple(noisy.tolist()), 0) / trials
            tol = 5 * math.sqrt(prob * (1 - prob) / trials)
            assert abs(observed - prob) < tol

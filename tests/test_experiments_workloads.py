"""Tests for the named workload builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments.workloads import (
    WORKLOADS,
    build_workload,
    hub_workload,
    overlapping_workload,
    stratified_by_overlap,
    uniform_workload,
)
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import chung_lu_bipartite, power_law_degrees


@pytest.fixture(scope="module")
def graph():
    weights = power_law_degrees(300, exponent=2.0, d_min=1, d_max=150, rng=1)
    return chung_lu_bipartite(
        weights.astype(float), np.ones(250), num_edges=2400, rng=2
    )


class TestRegistry:
    def test_known_names(self):
        assert set(WORKLOADS) == {"uniform", "imbalanced", "hubs", "overlapping"}

    def test_build_by_name(self, graph):
        pairs = build_workload("uniform", graph, Layer.UPPER, 10, rng=3)
        assert len(pairs) == 10

    def test_unknown_name(self, graph):
        with pytest.raises(ReproError):
            build_workload("nope", graph, Layer.UPPER, 10)

    def test_kwargs_forwarded(self, graph):
        pairs = build_workload(
            "imbalanced", graph, Layer.UPPER, 8, rng=4, kappa=10.0
        )
        degrees = graph.degrees(Layer.UPPER)
        for p in pairs:
            assert max(degrees[p.a], degrees[p.b]) > 10 * min(
                degrees[p.a], degrees[p.b]
            )


class TestBuilders:
    def test_uniform_counts(self, graph):
        assert len(uniform_workload(graph, Layer.UPPER, 25, rng=5)) == 25

    def test_hub_workload_degrees(self, graph):
        pairs = hub_workload(graph, Layer.UPPER, 15, rng=6, pool_fraction=0.05)
        degrees = graph.degrees(Layer.UPPER)
        cutoff = np.quantile(degrees, 0.9)
        for p in pairs:
            assert degrees[p.a] >= cutoff
            assert degrees[p.b] >= cutoff

    def test_overlapping_workload_has_common_neighbors(self, graph):
        pairs = overlapping_workload(graph, Layer.UPPER, 12, rng=7, min_overlap=1)
        for p in pairs:
            assert graph.count_common_neighbors(Layer.UPPER, p.a, p.b) >= 1

    def test_overlapping_impossible_raises(self):
        star = BipartiteGraph(3, 3, [(0, 0), (1, 1), (2, 2)])
        with pytest.raises(ReproError):
            overlapping_workload(star, Layer.UPPER, 1, rng=8, max_attempts=100)

    def test_stratified_fills_every_stratum(self, graph):
        strata = stratified_by_overlap(
            graph, Layer.UPPER, 6, rng=9, thresholds=(0, 1, 3)
        )
        assert set(strata) == {0, 1, 3}
        for threshold, pairs in strata.items():
            assert len(pairs) == 6
            for p in pairs:
                assert (
                    graph.count_common_neighbors(Layer.UPPER, p.a, p.b)
                    >= threshold
                )

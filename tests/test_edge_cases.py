"""Edge cases and failure injection across the stack.

Degenerate graphs (empty layers, isolated vertices, complete bipartite),
extreme privacy budgets, and hostile inputs must either work or fail with
the library's own exception types — never with bare numpy errors or
silent nonsense.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, PrivacyError, ReproError
from repro.estimators.registry import available_estimators, get_estimator
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.protocol.session import ExecutionMode, ProtocolSession

LDP_NAMES = [
    n for n in available_estimators() if n not in ("exact", "central-dp")
]


@pytest.fixture()
def isolated_pair_graph() -> BipartiteGraph:
    """Two completely isolated query vertices plus unrelated structure."""
    return BipartiteGraph(4, 6, [(2, 0), (2, 1), (3, 4)])


@pytest.fixture()
def complete_graph() -> BipartiteGraph:
    return BipartiteGraph(4, 5, [(u, l) for u in range(4) for l in range(5)])


class TestDegenerateGraphs:
    @pytest.mark.parametrize("name", LDP_NAMES)
    def test_isolated_query_vertices(self, isolated_pair_graph, name):
        """Degree-0 vertices must be estimable (true C2 = 0)."""
        # hll-view's 31-symbol k-RR inversion is only informative at
        # larger budgets (see docs/sketch-guide.md); query it there.
        epsilon = 8.0 if name == "hll-view" else 2.0
        result = get_estimator(name).estimate(
            isolated_pair_graph, Layer.UPPER, 0, 1, epsilon, rng=3
        )
        assert np.isfinite(result.value)
        # With no signal everything is noise around zero.
        assert abs(result.value) < 50

    @pytest.mark.parametrize(
        "name",
        [
            n for n in LDP_NAMES
            if ExecutionMode.MATERIALIZE
            in get_estimator(n).supported_modes
        ],
    )
    def test_complete_bipartite(self, complete_graph, name):
        """Full overlap: estimates concentrate near C2 = n_lower."""
        result = get_estimator(name).estimate(
            complete_graph, Layer.UPPER, 0, 1, 30.0, rng=4,
            mode=ExecutionMode.MATERIALIZE,
        )
        assert result.value == pytest.approx(5, abs=1.0)

    @pytest.mark.parametrize("name", ["bloom-view", "voc-view", "hll-view"])
    def test_complete_bipartite_sketch_views(self, complete_graph, name):
        """Sketch views concentrate in the mean (hash randomness keeps a
        single voc draw wide; the seed average must still land on C2)."""
        vals = [
            get_estimator(name).estimate(
                complete_graph, Layer.UPPER, 0, 1, 30.0, rng=seed
            ).value
            for seed in range(30)
        ]
        assert np.mean(vals) == pytest.approx(5, abs=1.0)

    def test_single_opposite_vertex(self):
        g = BipartiteGraph(3, 1, [(0, 0), (1, 0)])
        result = get_estimator("oner").estimate(g, Layer.UPPER, 0, 1, 2.0, rng=5)
        assert np.isfinite(result.value)

    def test_two_vertex_layer(self):
        g = BipartiteGraph(2, 3, [(0, 0), (1, 0)])
        for name in LDP_NAMES:
            result = get_estimator(name).estimate(g, Layer.UPPER, 0, 1, 2.0, rng=6)
            assert np.isfinite(result.value), name

    def test_empty_opposite_layer_rejected_gracefully(self):
        g = BipartiteGraph(3, 0)
        # The candidate pool is empty; estimates are trivially zero-noise
        # for RR (nothing to perturb) but the protocol must not crash.
        result = get_estimator("oner").estimate(g, Layer.UPPER, 0, 1, 2.0, rng=7)
        assert result.value == pytest.approx(0.0)


class TestExtremeBudgets:
    def test_tiny_epsilon_still_valid(self, small_graph):
        for name in LDP_NAMES:
            result = get_estimator(name).estimate(
                small_graph, Layer.UPPER, 0, 1, 0.01, rng=8
            )
            assert np.isfinite(result.value), name
            assert result.transcript.max_epsilon_spent <= 0.01 + 1e-9

    def test_zero_epsilon_rejected(self, small_graph):
        for name in LDP_NAMES:
            with pytest.raises((PrivacyError, ValueError)):
                get_estimator(name).estimate(small_graph, Layer.UPPER, 0, 1, 0.0)

    def test_negative_epsilon_rejected(self, small_graph):
        with pytest.raises(PrivacyError):
            ProtocolSession(small_graph, Layer.UPPER, 0, 1, -1.0)

    def test_nan_epsilon_rejected(self, small_graph):
        with pytest.raises(PrivacyError):
            ProtocolSession(small_graph, Layer.UPPER, 0, 1, float("nan"))


class TestHostileInputs:
    def test_estimator_rejects_out_of_range_vertex(self, small_graph):
        with pytest.raises(GraphError):
            get_estimator("oner").estimate(small_graph, Layer.UPPER, 0, 10**6, 2.0)

    def test_registry_error_lists_known_names(self):
        with pytest.raises(ReproError) as exc:
            get_estimator("does-not-exist")
        assert "multir-ds" in str(exc.value)

    def test_builder_rejects_unhashable_names(self):
        from repro.graph.builder import GraphBuilder

        with pytest.raises(TypeError):
            GraphBuilder().add_edge([1, 2], "x")

    def test_read_edge_list_missing_file(self, tmp_path):
        from repro.graph.io import read_edge_list

        with pytest.raises(FileNotFoundError):
            read_edge_list(tmp_path / "nope.tsv")

    def test_session_rejects_lower_query_on_upper_session(self, small_graph):
        session = ProtocolSession(small_graph, Layer.UPPER, 0, 1, 2.0, rng=1)
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            session.randomized_response(55, 1.0)


class TestSeedStability:
    """Estimates must be bit-stable across runs for fixed seeds — the
    reproducibility contract the manifests rely on."""

    @pytest.mark.parametrize("name", LDP_NAMES)
    def test_repeatable_across_fresh_generators(self, small_graph, name):
        est = get_estimator(name)
        a = est.estimate(small_graph, Layer.UPPER, 2, 5, 2.0, rng=999)
        b = est.estimate(small_graph, Layer.UPPER, 2, 5, 2.0, rng=999)
        assert a.value == b.value
        assert a.communication_bytes == b.communication_bytes

    def test_different_seeds_differ(self, small_graph):
        est = get_estimator("multir-ds")
        values = {
            est.estimate(small_graph, Layer.UPPER, 2, 5, 2.0, rng=s).value
            for s in range(8)
        }
        assert len(values) > 1

"""Multi-tenant serving: budget isolation, free hits, refusals, rotation.

The acceptance contract: two tenants sharing one hot vertex pool never
touch each other's :class:`QueryBudgetManager` — a cache hit debits no
one, a miss debits exactly the requesting tenant by epsilon per fresh
vertex, and the per-tenant debits always sum to what the
:class:`EpochAccountant` actually charged. A tenant out of quota is
refused query by query while everyone else keeps being served.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.engine.planner import plan_workload, slice_by_tenant
from repro.errors import BudgetExceededError, PrivacyError, ProtocolError
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import QueryPair
from repro.privacy.composition import QueryBudgetManager
from repro.protocol.session import ExecutionMode
from repro.serving import QueryServer, TenantRegistry

EPSILON = 2.0
MODES = (ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH)


@pytest.fixture()
def graph():
    return random_bipartite(60, 50, 520, rng=7)


def make_registry(*totals: float) -> TenantRegistry:
    registry = TenantRegistry()
    for i, total in enumerate(totals):
        registry.register(f"t{i}", total)
    return registry


def serve(graph, registry, script, *, mode=ExecutionMode.MATERIALIZE, **kwargs):
    """Run `script(server)` against a started multi-tenant server."""

    async def run():
        async with QueryServer(
            graph, Layer.UPPER, EPSILON, mode=mode, tenants=registry, rng=3,
            **kwargs,
        ) as server:
            return await script(server)

    return asyncio.run(run())


class TestBudgetIsolation:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_misses_debit_requester_only_hits_debit_no_one(self, graph, mode):
        registry = make_registry(100.0, 100.0)
        a, b = registry.get("t0"), registry.get("t1")

        async def script(server):
            # t0 misses on a fresh pair: pays for both endpoints.
            await server.query(0, 1, tenant="t0")
            spent_after_miss = (a.budget.spent, b.budget.spent)
            # t1 replays the same pair: a pure cache hit, free for t1.
            await server.query(0, 1, tenant="t1")
            return spent_after_miss

        spent_after_miss = serve(graph, registry, script, mode=mode)
        assert spent_after_miss == (pytest.approx(2 * EPSILON), 0.0)
        # The hit debited neither tenant.
        assert a.budget.spent == pytest.approx(2 * EPSILON)
        assert b.budget.spent == 0.0
        assert a.stats.misses == 1 and b.stats.hits == 1

    def test_materialize_overlap_charges_only_new_vertex(self, graph):
        registry = make_registry(100.0, 100.0)
        a, b = registry.get("t0"), registry.get("t1")

        async def script(server):
            await server.query(0, 1, tenant="t0")  # t0 pays vertices 0 and 1
            await server.query(0, 2, tenant="t1")  # 0 is cached: t1 pays only 2

        serve(graph, registry, script)
        assert a.budget.spent == pytest.approx(2 * EPSILON)
        assert b.budget.spent == pytest.approx(EPSILON)
        assert a.stats.vertices_paid == 2
        assert b.stats.vertices_paid == 1

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_tenant_debits_sum_to_accountant_charges(self, graph, mode):
        """Across a racing two-tenant hot-pool workload, analyst-side
        metering and the privacy-side accountant must agree exactly."""
        registry = make_registry(500.0, 500.0)
        pool = list(range(12))
        rng = np.random.default_rng(5)
        pairs = [
            QueryPair(Layer.UPPER, *rng.choice(pool, size=2, replace=False))
            for _ in range(60)
        ]

        async def script(server):
            await asyncio.gather(
                *(
                    server.query_pair(pair, tenant=f"t{i % 2}")
                    for i, pair in enumerate(pairs)
                )
            )
            return server.accountant

        accountant = serve(graph, registry, script, mode=mode)
        total_charged = sum(
            accountant.lifetime_spent(Layer.UPPER, v) for v in range(60)
        )
        metered = sum(t.stats.epsilon_charged for t in registry.tenants())
        assert metered == pytest.approx(total_charged)

    def test_shared_tick_vertex_paid_once_by_first_requester(self, graph):
        """Two tenants race the same fresh pair into one tick: the first
        arrival pays, the second rides the same draw for free."""
        registry = make_registry(100.0, 100.0)

        async def script(server):
            await asyncio.gather(
                server.query(3, 4, tenant="t0"),
                server.query(3, 4, tenant="t1"),
            )
            return server.stats.ticks

        ticks = serve(graph, registry, script)
        assert ticks == 1
        assert registry.get("t0").budget.spent == pytest.approx(2 * EPSILON)
        assert registry.get("t1").budget.spent == 0.0


class TestRefusals:
    def test_out_of_quota_tenant_refused_others_served(self, graph):
        # t0 can afford exactly one two-vertex miss; t1 is rich.
        registry = make_registry(2 * EPSILON, 100.0)

        async def script(server):
            await server.query(0, 1, tenant="t0")  # exhausts t0
            with pytest.raises(BudgetExceededError):
                await server.query(2, 3, tenant="t0")
            # t1 is unaffected, and t0 can still ride cache hits for free.
            est = await server.query(2, 3, tenant="t1")
            hit = await server.query(0, 1, tenant="t0")
            return est, hit

        est, hit = serve(graph, registry, script)
        assert est.tenant == "t1"
        assert hit.cache_hit
        assert registry.get("t0").stats.rejected == 1
        assert registry.get("t0").budget.remaining == pytest.approx(0.0)

    def test_refused_cost_falls_to_next_requester(self, graph):
        """t0 cannot pay for pair (5, 6); t1 queries it in the same tick
        and picks up the charge instead."""
        registry = make_registry(EPSILON, 100.0)  # t0 cannot afford 2 vertices

        async def script(server):
            results = await asyncio.gather(
                server.query(5, 6, tenant="t0"),
                server.query(5, 6, tenant="t1"),
                return_exceptions=True,
            )
            return results

        results = serve(graph, registry, script)
        assert isinstance(results[0], BudgetExceededError)
        assert results[1].tenant == "t1"
        assert registry.get("t0").budget.spent == 0.0
        assert registry.get("t1").budget.spent == pytest.approx(2 * EPSILON)

    def test_failed_tick_refunds_admission_debits(self, graph):
        """Sketch mode with an enforced allowance: the engine refuses the
        recharge of an overlapping new pair *after* admission debited the
        tenant — the debit must be rolled back, keeping metering equal to
        the accountant's truth."""
        registry = make_registry(100.0)
        tenant = registry.get("t0")

        async def script(server):
            await server.query(0, 1, tenant="t0")
            spent_before = tenant.budget.spent
            with pytest.raises(BudgetExceededError):
                # New pair (0, 2): vertex 0 would exceed the allowance.
                await server.query(0, 2, tenant="t0")
            return spent_before, server.accountant

        spent_before, accountant = serve(
            graph, registry, script,
            mode=ExecutionMode.SKETCH, epsilon_per_epoch=EPSILON,
        )
        assert spent_before == pytest.approx(2 * EPSILON)
        assert tenant.budget.spent == pytest.approx(spent_before)
        assert tenant.stats.epsilon_charged == pytest.approx(
            accountant.lifetime_spent(Layer.UPPER, 0)
            + accountant.lifetime_spent(Layer.UPPER, 1)
        )
        assert tenant.stats.vertices_paid == 2

    def test_failed_tick_after_partial_rejection_refunds_admitted_only(
        self, graph
    ):
        """Regression for the refund/admission position contract: a tick
        holding both a *rejected* query (tenant out of quota) and an
        *admitted* one (debited) fails in the engine after admission —
        the refund must credit exactly the admitted debit, keyed by the
        query's position in the original batch, and must not touch the
        rejected query's tenant."""
        registry = make_registry(0.5, 100.0)  # t0 cannot afford one miss
        poor, rich = registry.get("t0"), registry.get("t1")

        async def script(server):
            await server.query(0, 1, tenant="t1")  # t1 pays 2 eps, tick 1
            spent_mid = rich.budget.spent
            # One coalesced tick: t0 first (rejected at admission), then
            # t1 with a new overlapping pair the enforced allowance will
            # refuse inside the engine after t1 was already debited.
            results = await asyncio.gather(
                server.query(5, 6, tenant="t0"),
                server.query(0, 2, tenant="t1"),
                return_exceptions=True,
            )
            return spent_mid, results, server.stats.ticks

        spent_mid, results, ticks = serve(
            graph, registry, script,
            mode=ExecutionMode.SKETCH, epsilon_per_epoch=EPSILON,
        )
        assert all(isinstance(r, BudgetExceededError) for r in results)
        # The rejected query was never debited and never refunded.
        assert poor.budget.spent == 0.0
        assert poor.stats.rejected == 1
        assert poor.stats.epsilon_charged == 0.0
        assert poor.stats.vertices_paid == 0
        # The admitted query's debit was rolled back exactly.
        assert spent_mid == pytest.approx(2 * EPSILON)
        assert rich.budget.spent == pytest.approx(2 * EPSILON)
        assert rich.stats.epsilon_charged == pytest.approx(2 * EPSILON)
        assert rich.stats.vertices_paid == 2
        # Metering still equals the accountant's truth after the rollback.
        server_total = rich.stats.epsilon_charged + poor.stats.epsilon_charged
        assert server_total == pytest.approx(2 * EPSILON)

    def test_tenant_tag_validation(self, graph):
        registry = make_registry(10.0)

        async def unknown(server):
            await server.query(0, 1, tenant="nobody")

        async def missing(server):
            await server.query(0, 1)

        with pytest.raises(ProtocolError, match="unknown tenant"):
            serve(graph, registry, unknown)
        with pytest.raises(ProtocolError, match="multi-tenant"):
            serve(graph, registry, missing)

        async def unexpected():
            async with QueryServer(graph, Layer.UPPER, EPSILON, rng=1) as server:
                await server.query(0, 1, tenant="t0")

        with pytest.raises(ProtocolError, match="TenantRegistry"):
            asyncio.run(unexpected())


class TestRegistryAndBudgets:
    def test_register_rejects_duplicates_and_empty_names(self):
        registry = TenantRegistry()
        registry.register("alice", 5.0)
        with pytest.raises(ProtocolError):
            registry.register("alice", 5.0)
        with pytest.raises(ProtocolError):
            registry.register("", 5.0)
        assert "alice" in registry and len(registry) == 1

    def test_adopt_wraps_existing_manager(self):
        registry = TenantRegistry()
        manager = QueryBudgetManager(6.0, policy="metered")
        tenant = registry.adopt("bob", manager)
        assert tenant.budget is manager
        manager.debit(2.5)
        assert registry.get("bob").remaining == pytest.approx(3.5)

    def test_metered_policy_has_no_slices(self):
        manager = QueryBudgetManager(4.0, policy="metered")
        with pytest.raises(PrivacyError):
            manager.next_budget()
        assert manager.debit(0.0) == 0.0  # zero debit always allowed
        manager.debit(4.0)
        with pytest.raises(BudgetExceededError):
            manager.debit(0.1)
        with pytest.raises(PrivacyError):
            manager.debit(-1.0)

    def test_degree_releases_are_metered(self, graph):
        registry = make_registry(100.0, 100.0)

        async def script(server):
            await server.query(0, 1, tenant="t0")  # pays RR + degrees
            await server.query(0, 1, tenant="t1")  # full hit: free

        serve(graph, registry, script, degree_epsilon=0.5)
        assert registry.get("t0").budget.spent == pytest.approx(
            2 * EPSILON + 2 * 0.5
        )
        assert registry.get("t1").budget.spent == 0.0


def test_slice_by_tenant_partitions_plan(graph):
    pairs = [
        QueryPair(Layer.UPPER, 0, 1),
        QueryPair(Layer.UPPER, 1, 2),
        QueryPair(Layer.UPPER, 3, 4),
    ]
    plan = plan_workload(graph, Layer.UPPER, pairs, EPSILON)
    slices = slice_by_tenant(plan, ["a", "b", "a"])
    assert set(slices) == {"a", "b"}
    assert slices["a"].num_pairs == 2
    np.testing.assert_array_equal(slices["a"].indices, [0, 2])
    np.testing.assert_array_equal(slices["a"].vertices, [0, 1, 3, 4])
    np.testing.assert_array_equal(slices["b"].vertices, [1, 2])
    with pytest.raises(ProtocolError):
        slice_by_tenant(plan, ["a"])
